// Secondary (non-clustered) indexes and the clustered-key index.
//
// An Index wraps a paged B+-tree whose entries map the key columns of a row
// to its packed Rid. Non-clustered indexes drive Index Seek / Index
// Intersection / Index Nested Loops plans — the plans whose costing depends
// on the distinct page count the paper's monitors measure. The clustered-key
// index (is_clustered_key()) locates the first data page of a clustering-key
// range for clustered range scans.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/btree.h"
#include "table/table.h"

namespace dpcf {

/// One index over one table. Key is 1 or 2 INT64 columns.
class Index {
 public:
  /// Scans `table` (bypassing I/O accounting: index build is a DDL-time
  /// bulk operation) and bulk-loads the tree.
  static Result<std::unique_ptr<Index>> Build(BufferPool* pool, Table* table,
                                              std::string name,
                                              std::vector<int> key_cols,
                                              bool is_clustered_key = false);

  const std::string& name() const { return name_; }
  Table* table() const { return table_; }
  const std::vector<int>& key_cols() const { return key_cols_; }
  int leading_col() const { return key_cols_[0]; }
  bool is_clustered_key() const { return is_clustered_key_; }

  Btree* tree() { return tree_.get(); }
  const Btree* tree() const { return tree_.get(); }

  /// Extracts this index's composite key from a row image.
  BtreeKey KeyForRow(const RowView& row) const;

  /// True if the index key columns include every column in `cols`
  /// (the query can be answered by a covering index scan).
  bool Covers(const std::vector<int>& cols) const;

  /// Pages in the index (tree pages; used by the optimizer's cost model).
  uint32_t page_count() const { return tree_->page_count(); }

  /// Inserts/removes the entry for a row (maintenance path).
  Status InsertRow(const RowView& row, Rid rid);
  Status DeleteRow(const RowView& row, Rid rid);

 private:
  Index(Table* table, std::string name, std::vector<int> key_cols,
        bool is_clustered_key);

  Table* table_;
  std::string name_;
  std::vector<int> key_cols_;
  bool is_clustered_key_;
  std::unique_ptr<Btree> tree_;
};

}  // namespace dpcf
