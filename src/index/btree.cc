#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace dpcf {

namespace {

// On-page node format. All offsets are 8-byte aligned; entries are POD and
// accessed in place.
struct NodeHeader {
  uint16_t is_leaf;
  uint16_t level;  // 0 for leaves, parent = child level + 1
  uint32_t count;
  PageNo next;  // leaf chain; kInvalidPageNo when none / internal node
  PageNo prev;
};
static_assert(sizeof(NodeHeader) == 16);

struct LeafEntry {
  int64_t k1;
  int64_t k2;
  uint64_t aux;
};
static_assert(sizeof(LeafEntry) == 24);

struct InternalEntry {
  int64_t k1;
  int64_t k2;
  uint64_t aux;
  uint32_t child;
  uint32_t pad;
};
static_assert(sizeof(InternalEntry) == 32);

NodeHeader* Header(char* page) { return reinterpret_cast<NodeHeader*>(page); }
const NodeHeader* Header(const char* page) {
  return reinterpret_cast<const NodeHeader*>(page);
}
LeafEntry* LeafEntries(char* page) {
  return reinterpret_cast<LeafEntry*>(page + sizeof(NodeHeader));
}
const LeafEntry* LeafEntries(const char* page) {
  return reinterpret_cast<const LeafEntry*>(page + sizeof(NodeHeader));
}
InternalEntry* InternalEntries(char* page) {
  return reinterpret_cast<InternalEntry*>(page + sizeof(NodeHeader));
}
const InternalEntry* InternalEntries(const char* page) {
  return reinterpret_cast<const InternalEntry*>(page + sizeof(NodeHeader));
}

BtreeEntry ToEntry(const LeafEntry& e) {
  return BtreeEntry{{e.k1, e.k2}, e.aux};
}
BtreeEntry ToEntry(const InternalEntry& e) {
  return BtreeEntry{{e.k1, e.k2}, e.aux};
}

// First index i in the leaf with entries[i] >= target; count if none.
uint32_t LeafLowerBound(const char* page, const BtreeEntry& target) {
  const NodeHeader* h = Header(page);
  const LeafEntry* es = LeafEntries(page);
  uint32_t lo = 0, hi = h->count;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (ToEntry(es[mid]) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot for descending towards `target`: the last separator <= target,
// clamped to slot 0 (the first separator acts as -infinity).
uint32_t InternalChildSlot(const char* page, const BtreeEntry& target) {
  const NodeHeader* h = Header(page);
  const InternalEntry* es = InternalEntries(page);
  uint32_t lo = 0, hi = h->count;  // first separator > target
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (target < ToEntry(es[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

}  // namespace

std::string BtreeKey::ToString() const {
  if (k2 == 0) return std::to_string(k1);
  return "(" + std::to_string(k1) + "," + std::to_string(k2) + ")";
}

Btree::Btree(BufferPool* pool, SegmentId segment, std::string name)
    : pool_(pool), segment_(segment), name_(std::move(name)) {
  size_t usable = pool_->disk()->page_size() - sizeof(NodeHeader);
  leaf_capacity_ = static_cast<uint32_t>(usable / sizeof(LeafEntry));
  internal_capacity_ = static_cast<uint32_t>(usable / sizeof(InternalEntry));
  assert(leaf_capacity_ >= 2 && internal_capacity_ >= 2);
}

Result<Btree> Btree::Create(BufferPool* pool, std::string name) {
  SegmentId segment = pool->disk()->CreateSegment("index:" + name);
  Btree tree(pool, segment, std::move(name));
  PageId pid;
  auto guard = pool->NewPage(segment, &pid);
  if (!guard.ok()) return guard.status();
  NodeHeader* h = Header(guard->mutable_data());
  h->is_leaf = 1;
  h->level = 0;
  h->count = 0;
  h->next = kInvalidPageNo;
  h->prev = kInvalidPageNo;
  tree.root_ = pid.page_no;
  tree.height_ = 1;
  return tree;
}

Status Btree::FindLeaf(const BtreeKey& lo, PageNo* leaf) const {
  // The minimal entry with key >= lo is >= {lo, 0}? No: aux is unsigned and
  // keys with equal (k1,k2) differ only in aux >= 0, so {lo, aux=0} is the
  // smallest possible entry with this key.
  BtreeEntry target{lo, 0};
  PageNo node = root_;
  for (uint32_t level = height_; level > 1; --level) {
    auto guard = pool_->Fetch(PageId{segment_, node});
    if (!guard.ok()) return guard.status();
    const char* page = guard->data();
    assert(!Header(page)->is_leaf);
    uint32_t slot = InternalChildSlot(page, target);
    node = InternalEntries(page)[slot].child;
  }
  *leaf = node;
  return Status::OK();
}

Result<BtreeIterator> Btree::SeekFirst(const BtreeKey& lo) {
  PageNo leaf;
  DPCF_RETURN_IF_ERROR(FindLeaf(lo, &leaf));
  auto guard = pool_->Fetch(PageId{segment_, leaf});
  if (!guard.ok()) return guard.status();
  BtreeIterator it;
  it.pool_ = pool_;
  it.segment_ = segment_;
  it.guard_ = std::move(guard).value();
  it.leaf_ = leaf;
  it.leaf_count_ = Header(it.guard_.data())->count;
  it.idx_ = LeafLowerBound(it.guard_.data(), BtreeEntry{lo, 0});
  DPCF_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<BtreeIterator> Btree::Begin() {
  return SeekFirst(BtreeKey{INT64_MIN, INT64_MIN});
}

Status BtreeIterator::LoadCurrent() {
  // Skip trailing positions and (possibly lazily emptied) leaves.
  while (idx_ >= leaf_count_) {
    PageNo next = Header(guard_.data())->next;
    if (next == kInvalidPageNo) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    auto g = pool_->Fetch(PageId{segment_, next});
    if (!g.ok()) return g.status();
    guard_ = std::move(g).value();
    leaf_ = next;
    leaf_count_ = Header(guard_.data())->count;
    idx_ = 0;
  }
  entry_ = ToEntry(LeafEntries(guard_.data())[idx_]);
  valid_ = true;
  return Status::OK();
}

Status BtreeIterator::Next() {
  assert(valid_);
  ++idx_;
  return LoadCurrent();
}

Status BtreeIterator::NextRun(const BtreeKey& hi,
                              std::vector<BtreeEntry>* out) {
  out->clear();
  if (!valid_) return Status::OK();
  const LeafEntry* es = LeafEntries(guard_.data());
  while (idx_ < leaf_count_) {
    BtreeEntry e = ToEntry(es[idx_]);
    if (hi < e.key) {
      // Bound hit mid-leaf: stay on this entry so a later NextRun with a
      // wider bound (or Next()) resumes here.
      entry_ = e;
      return Status::OK();
    }
    out->push_back(e);
    ++idx_;
  }
  // Leaf drained: step to the next leaf (fetching it, exactly like the
  // per-entry path, which must load a leaf to learn its first key).
  return LoadCurrent();
}

Status Btree::Insert(const BtreeEntry& entry) {
  std::optional<SplitResult> split;
  DPCF_RETURN_IF_ERROR(InsertRec(root_, height_ - 1, entry, &split));
  if (split.has_value()) {
    DPCF_RETURN_IF_ERROR(GrowRoot(*split));
  }
  ++entry_count_;
  return Status::OK();
}

Status Btree::InsertRec(PageNo node, uint32_t level, const BtreeEntry& entry,
                        std::optional<SplitResult>* split) {
  split->reset();
  auto guard_r = pool_->Fetch(PageId{segment_, node});
  if (!guard_r.ok()) return guard_r.status();
  PageGuard guard = std::move(guard_r).value();

  if (level == 0) {
    char* page = guard.mutable_data();
    NodeHeader* h = Header(page);
    LeafEntry* es = LeafEntries(page);
    uint32_t pos = LeafLowerBound(page, entry);
    if (pos < h->count && ToEntry(es[pos]) == entry) {
      return Status::AlreadyExists("duplicate btree entry " +
                                   entry.key.ToString());
    }
    if (h->count < leaf_capacity_) {
      std::memmove(es + pos + 1, es + pos,
                   sizeof(LeafEntry) * (h->count - pos));
      es[pos] = LeafEntry{entry.key.k1, entry.key.k2, entry.aux};
      ++h->count;
      return Status::OK();
    }
    // Split the leaf: upper half moves to a new right sibling.
    PageId right_pid;
    auto right_r = pool_->NewPage(segment_, &right_pid);
    if (!right_r.ok()) return right_r.status();
    PageGuard right_guard = std::move(right_r).value();
    char* rpage = right_guard.mutable_data();
    NodeHeader* rh = Header(rpage);
    LeafEntry* res = LeafEntries(rpage);
    uint32_t mid = h->count / 2;
    rh->is_leaf = 1;
    rh->level = 0;
    rh->count = h->count - mid;
    rh->next = h->next;
    rh->prev = node;
    std::memcpy(res, es + mid, sizeof(LeafEntry) * rh->count);
    h->count = mid;
    if (rh->next != kInvalidPageNo) {
      auto nbr = pool_->Fetch(PageId{segment_, rh->next});
      if (!nbr.ok()) return nbr.status();
      Header(nbr->mutable_data())->prev = right_pid.page_no;
    }
    h->next = right_pid.page_no;
    // Insert into whichever half owns the entry.
    if (entry < ToEntry(res[0])) {
      uint32_t p = LeafLowerBound(page, entry);
      std::memmove(es + p + 1, es + p, sizeof(LeafEntry) * (h->count - p));
      es[p] = LeafEntry{entry.key.k1, entry.key.k2, entry.aux};
      ++h->count;
    } else {
      uint32_t p = LeafLowerBound(rpage, entry);
      std::memmove(res + p + 1, res + p, sizeof(LeafEntry) * (rh->count - p));
      res[p] = LeafEntry{entry.key.k1, entry.key.k2, entry.aux};
      ++rh->count;
    }
    *split = SplitResult{ToEntry(res[0]), right_pid.page_no};
    return Status::OK();
  }

  // Internal node: descend, then absorb a child split if one happened.
  uint32_t slot = InternalChildSlot(guard.data(), entry);
  if (slot == 0 && entry < ToEntry(InternalEntries(guard.data())[0])) {
    // Keep separators exact lower bounds of their subtrees: an insert
    // below the leftmost separator lowers it, so separators emitted by
    // later child-0 splits can never sort before slot 0.
    InternalEntry* es0 = InternalEntries(guard.mutable_data());
    es0[0].k1 = entry.key.k1;
    es0[0].k2 = entry.key.k2;
    es0[0].aux = entry.aux;
  }
  PageNo child = InternalEntries(guard.data())[slot].child;
  std::optional<SplitResult> child_split;
  DPCF_RETURN_IF_ERROR(InsertRec(child, level - 1, entry, &child_split));
  if (!child_split.has_value()) return Status::OK();

  char* page = guard.mutable_data();
  NodeHeader* h = Header(page);
  InternalEntry* es = InternalEntries(page);
  InternalEntry sep{child_split->separator.key.k1,
                    child_split->separator.key.k2, child_split->separator.aux,
                    child_split->right, 0};
  uint32_t pos = slot + 1;
  if (h->count < internal_capacity_) {
    std::memmove(es + pos + 1, es + pos,
                 sizeof(InternalEntry) * (h->count - pos));
    es[pos] = sep;
    ++h->count;
    return Status::OK();
  }
  // Split this internal node the same way (first-key separators: no key is
  // pushed up and removed; the right node's first separator is copied up).
  PageId right_pid;
  auto right_r = pool_->NewPage(segment_, &right_pid);
  if (!right_r.ok()) return right_r.status();
  PageGuard right_guard = std::move(right_r).value();
  char* rpage = right_guard.mutable_data();
  NodeHeader* rh = Header(rpage);
  InternalEntry* res = InternalEntries(rpage);
  uint32_t mid = h->count / 2;
  rh->is_leaf = 0;
  rh->level = static_cast<uint16_t>(level);
  rh->count = h->count - mid;
  rh->next = kInvalidPageNo;
  rh->prev = kInvalidPageNo;
  std::memcpy(res, es + mid, sizeof(InternalEntry) * rh->count);
  h->count = mid;
  if (BtreeEntry{{sep.k1, sep.k2}, sep.aux} < ToEntry(res[0])) {
    uint32_t p = pos;  // still valid: pos <= mid here
    assert(p <= h->count);
    std::memmove(es + p + 1, es + p, sizeof(InternalEntry) * (h->count - p));
    es[p] = sep;
    ++h->count;
  } else {
    uint32_t p = pos - mid;
    assert(p <= rh->count);
    std::memmove(res + p + 1, res + p,
                 sizeof(InternalEntry) * (rh->count - p));
    res[p] = sep;
    ++rh->count;
  }
  *split = SplitResult{ToEntry(res[0]), right_pid.page_no};
  return Status::OK();
}

Status Btree::GrowRoot(const SplitResult& split) {
  // Fetch the old root's first entry to build the left separator.
  BtreeEntry left_sep;
  {
    auto guard = pool_->Fetch(PageId{segment_, root_});
    if (!guard.ok()) return guard.status();
    const char* page = guard->data();
    const NodeHeader* h = Header(page);
    assert(h->count > 0);
    left_sep = h->is_leaf ? ToEntry(LeafEntries(page)[0])
                          : ToEntry(InternalEntries(page)[0]);
  }
  PageId pid;
  auto guard = pool_->NewPage(segment_, &pid);
  if (!guard.ok()) return guard.status();
  char* page = guard->mutable_data();
  NodeHeader* h = Header(page);
  h->is_leaf = 0;
  h->level = static_cast<uint16_t>(height_);
  h->count = 2;
  h->next = kInvalidPageNo;
  h->prev = kInvalidPageNo;
  InternalEntry* es = InternalEntries(page);
  es[0] = InternalEntry{left_sep.key.k1, left_sep.key.k2, left_sep.aux,
                        root_, 0};
  es[1] = InternalEntry{split.separator.key.k1, split.separator.key.k2,
                        split.separator.aux, split.right, 0};
  root_ = pid.page_no;
  ++height_;
  return Status::OK();
}

Status Btree::Delete(const BtreeEntry& entry) {
  PageNo leaf;
  DPCF_RETURN_IF_ERROR(FindLeaf(entry.key, &leaf));
  // Walk the leaf chain while the key could still be present (duplicates of
  // a key never span a separator gap, but equal keys may span leaves).
  while (leaf != kInvalidPageNo) {
    auto guard = pool_->Fetch(PageId{segment_, leaf});
    if (!guard.ok()) return guard.status();
    const char* cpage = guard->data();
    const NodeHeader* ch = Header(cpage);
    uint32_t pos = LeafLowerBound(cpage, entry);
    if (pos < ch->count) {
      if (ToEntry(LeafEntries(cpage)[pos]) == entry) {
        char* page = guard->mutable_data();
        NodeHeader* h = Header(page);
        LeafEntry* es = LeafEntries(page);
        std::memmove(es + pos, es + pos + 1,
                     sizeof(LeafEntry) * (h->count - pos - 1));
        --h->count;
        --entry_count_;
        return Status::OK();
      }
      break;  // positioned at an entry > target: not present
    }
    leaf = ch->next;
  }
  return Status::NotFound("btree entry " + entry.key.ToString());
}

Status Btree::BulkLoad(const std::vector<BtreeEntry>& sorted,
                       double fill_fraction) {
  if (entry_count_ != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (!(sorted[i - 1] < sorted[i])) {
      return Status::InvalidArgument(StrFormat(
          "BulkLoad input not strictly ascending at position %zu", i));
    }
  }
  if (sorted.empty()) return Status::OK();

  uint32_t leaf_fill = std::max<uint32_t>(
      1, std::min<uint32_t>(
             leaf_capacity_,
             static_cast<uint32_t>(leaf_capacity_ * fill_fraction)));
  uint32_t internal_fill = std::max<uint32_t>(
      2, std::min<uint32_t>(
             internal_capacity_,
             static_cast<uint32_t>(internal_capacity_ * fill_fraction)));

  // Level 0: fill leaves left to right, chaining them.
  struct NodeRef {
    BtreeEntry first;
    PageNo page;
  };
  std::vector<NodeRef> level_nodes;
  {
    PageNo prev = kInvalidPageNo;
    PageGuard prev_guard;
    size_t i = 0;
    while (i < sorted.size()) {
      uint32_t n = static_cast<uint32_t>(
          std::min<size_t>(leaf_fill, sorted.size() - i));
      PageId pid;
      auto guard_r = pool_->NewPage(segment_, &pid);
      if (!guard_r.ok()) return guard_r.status();
      PageGuard guard = std::move(guard_r).value();
      char* page = guard.mutable_data();
      NodeHeader* h = Header(page);
      h->is_leaf = 1;
      h->level = 0;
      h->count = n;
      h->next = kInvalidPageNo;
      h->prev = prev;
      LeafEntry* es = LeafEntries(page);
      for (uint32_t j = 0; j < n; ++j) {
        const BtreeEntry& e = sorted[i + j];
        es[j] = LeafEntry{e.key.k1, e.key.k2, e.aux};
      }
      if (prev != kInvalidPageNo) {
        Header(prev_guard.mutable_data())->next = pid.page_no;
      }
      level_nodes.push_back(NodeRef{sorted[i], pid.page_no});
      prev = pid.page_no;
      prev_guard = std::move(guard);
      i += n;
    }
  }

  // Upper levels until a single root remains.
  uint16_t level = 1;
  while (level_nodes.size() > 1) {
    std::vector<NodeRef> next_nodes;
    size_t i = 0;
    while (i < level_nodes.size()) {
      uint32_t n = static_cast<uint32_t>(
          std::min<size_t>(internal_fill, level_nodes.size() - i));
      // Avoid a trailing single-child node: borrow one from this node.
      if (level_nodes.size() - i - n == 1) n -= 1;
      PageId pid;
      auto guard_r = pool_->NewPage(segment_, &pid);
      if (!guard_r.ok()) return guard_r.status();
      PageGuard guard = std::move(guard_r).value();
      char* page = guard.mutable_data();
      NodeHeader* h = Header(page);
      h->is_leaf = 0;
      h->level = level;
      h->count = n;
      h->next = kInvalidPageNo;
      h->prev = kInvalidPageNo;
      InternalEntry* es = InternalEntries(page);
      for (uint32_t j = 0; j < n; ++j) {
        const NodeRef& ref = level_nodes[i + j];
        es[j] = InternalEntry{ref.first.key.k1, ref.first.key.k2,
                              ref.first.aux, ref.page, 0};
      }
      next_nodes.push_back(NodeRef{level_nodes[i].first, pid.page_no});
      i += n;
    }
    level_nodes = std::move(next_nodes);
    ++level;
  }

  // Retire the placeholder empty root created by Create(): simply repoint.
  root_ = level_nodes[0].page;
  height_ = level;
  entry_count_ = static_cast<int64_t>(sorted.size());
  return Status::OK();
}

Status Btree::CollectRange(const BtreeKey& lo, const BtreeKey& hi,
                           std::vector<uint64_t>* out) {
  DPCF_ASSIGN_OR_RETURN(BtreeIterator it, SeekFirst(lo));
  while (it.Valid() && it.key() <= hi) {
    out->push_back(it.aux());
    DPCF_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

Status Btree::CheckNode(PageNo node, uint32_t level,
                        const std::optional<BtreeEntry>& lower,
                        const std::optional<BtreeEntry>& upper,
                        int64_t* entries_seen, PageNo* leftmost_leaf) const {
  auto guard_r = pool_->Fetch(PageId{segment_, node});
  if (!guard_r.ok()) return guard_r.status();
  PageGuard guard = std::move(guard_r).value();
  const char* page = guard.data();
  const NodeHeader* h = Header(page);
  const bool expect_leaf = (level == 0);
  if (static_cast<bool>(h->is_leaf) != expect_leaf) {
    return Status::Corruption(StrFormat("node %u: is_leaf=%u at level %u",
                                        node, h->is_leaf, level));
  }
  if (h->level != level) {
    return Status::Corruption(StrFormat("node %u: level %u, expected %u",
                                        node, h->level, level));
  }
  auto in_bounds = [&](const BtreeEntry& e) {
    if (lower.has_value() && e < *lower) return false;
    if (upper.has_value() && !(e < *upper)) return false;
    return true;
  };
  if (h->is_leaf) {
    if (level == 0 && leftmost_leaf != nullptr &&
        *leftmost_leaf == kInvalidPageNo) {
      *leftmost_leaf = node;
    }
    const LeafEntry* es = LeafEntries(page);
    for (uint32_t i = 0; i < h->count; ++i) {
      BtreeEntry e = ToEntry(es[i]);
      if (i > 0 && !(ToEntry(es[i - 1]) < e)) {
        return Status::Corruption(
            StrFormat("leaf %u: entries out of order at %u", node, i));
      }
      if (!in_bounds(e)) {
        return Status::Corruption(
            StrFormat("leaf %u: entry %u outside separator bounds", node, i));
      }
    }
    *entries_seen += h->count;
    return Status::OK();
  }
  const InternalEntry* es = InternalEntries(page);
  if (h->count == 0) {
    return Status::Corruption(StrFormat("internal node %u is empty", node));
  }
  for (uint32_t i = 0; i < h->count; ++i) {
    BtreeEntry sep = ToEntry(es[i]);
    if (i > 0 && !(ToEntry(es[i - 1]) < sep)) {
      return Status::Corruption(
          StrFormat("internal %u: separators out of order at %u", node, i));
    }
    // Child i covers [sep_i, sep_{i+1}). Slot 0's separator acts as -inf
    // (lookups clamp to the first child), so the leftmost child's lower
    // bound is the inherited one, not its separator.
    std::optional<BtreeEntry> child_lower =
        (i == 0) ? lower : std::optional<BtreeEntry>(sep);
    std::optional<BtreeEntry> child_upper =
        (i + 1 < h->count) ? std::optional<BtreeEntry>(ToEntry(es[i + 1]))
                           : upper;
    PageNo leftmost = (leftmost_leaf != nullptr && i == 0)
                          ? *leftmost_leaf
                          : kInvalidPageNo;
    PageNo* lm = (leftmost_leaf != nullptr && i == 0) ? leftmost_leaf
                                                      : nullptr;
    (void)leftmost;
    DPCF_RETURN_IF_ERROR(CheckNode(es[i].child, level - 1, child_lower,
                                   child_upper, entries_seen, lm));
  }
  return Status::OK();
}

Status Btree::CheckInvariants() const {
  int64_t entries_seen = 0;
  PageNo leftmost_leaf = kInvalidPageNo;
  DPCF_RETURN_IF_ERROR(CheckNode(root_, height_ - 1, std::nullopt,
                                 std::nullopt, &entries_seen,
                                 &leftmost_leaf));
  if (entries_seen != entry_count_) {
    return Status::Corruption(
        StrFormat("entry count mismatch: tree reports %lld, found %lld",
                  static_cast<long long>(entry_count_),
                  static_cast<long long>(entries_seen)));
  }
  // Leaf chain: complete, ordered, consistent prev pointers.
  int64_t chain_entries = 0;
  std::optional<BtreeEntry> last;
  PageNo prev = kInvalidPageNo;
  PageNo cur = leftmost_leaf;
  while (cur != kInvalidPageNo) {
    auto guard = pool_->Fetch(PageId{segment_, cur});
    if (!guard.ok()) return guard.status();
    const char* page = guard->data();
    const NodeHeader* h = Header(page);
    if (!h->is_leaf) {
      return Status::Corruption(
          StrFormat("leaf chain reached internal node %u", cur));
    }
    if (h->prev != prev) {
      return Status::Corruption(
          StrFormat("leaf %u: prev=%u, expected %u", cur, h->prev, prev));
    }
    const LeafEntry* es = LeafEntries(page);
    for (uint32_t i = 0; i < h->count; ++i) {
      BtreeEntry e = ToEntry(es[i]);
      if (last.has_value() && !(*last < e)) {
        return Status::Corruption(
            StrFormat("leaf chain out of order at leaf %u entry %u", cur, i));
      }
      last = e;
    }
    chain_entries += h->count;
    prev = cur;
    cur = h->next;
  }
  if (chain_entries != entry_count_) {
    return Status::Corruption(StrFormat(
        "leaf chain holds %lld entries, tree reports %lld",
        static_cast<long long>(chain_entries),
        static_cast<long long>(entry_count_)));
  }
  return Status::OK();
}

}  // namespace dpcf
