// Paged B+-tree.
//
// Backs every index in the engine: secondary (non-clustered) indexes map
// (key [, second key column], rid) to the table row, and the clustered key
// index maps the clustering key to its rid so range scans can locate their
// starting data page. Nodes live in buffer-pool pages, so index traversal
// I/O is charged to the run like any other page access.
//
// Keys are composite (k1, k2) int64 pairs — wide enough for the one- and
// two-column indexes the paper's experiments use. Duplicate keys are
// supported by treating the stored (k1, k2, aux) triple as the full
// comparison key (aux carries the packed Rid, which is unique per row).
//
// Supported operations: point/range seek via iterators, single insert with
// node splits, lazy leaf delete (no rebalancing — the workloads are
// read-mostly; underfull leaves merely waste space), and linear bulk load
// for initial index build. CheckInvariants() validates ordering, separator
// and leaf-chain invariants for the test suite.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace dpcf {

/// Composite index key. Single-column indexes keep k2 = 0.
struct BtreeKey {
  int64_t k1 = 0;
  int64_t k2 = 0;

  bool operator==(const BtreeKey&) const = default;
  auto operator<=>(const BtreeKey&) const = default;

  /// Smallest/largest keys with a given leading column — used to turn a
  /// range predicate on the leading column into a full composite range.
  static BtreeKey Min(int64_t k1) { return BtreeKey{k1, INT64_MIN}; }
  static BtreeKey Max(int64_t k1) { return BtreeKey{k1, INT64_MAX}; }

  std::string ToString() const;
};

/// One index entry: composite key plus auxiliary payload (packed Rid).
struct BtreeEntry {
  BtreeKey key;
  uint64_t aux = 0;

  bool operator==(const BtreeEntry&) const = default;
  auto operator<=>(const BtreeEntry&) const = default;
};

/// Forward iterator over leaf entries in key order. Holds a pin on the
/// current leaf page; Next() follows the leaf chain (charging I/O).
class BtreeIterator {
 public:
  BtreeIterator() = default;

  bool Valid() const { return valid_; }
  const BtreeKey& key() const { return entry_.key; }
  uint64_t aux() const { return entry_.aux; }
  const BtreeEntry& entry() const { return entry_; }

  /// Page number of the current leaf (for leaf-page grouping).
  PageNo leaf_page() const { return leaf_; }

  /// Advances to the next entry; clears Valid() at the end of the index.
  Status Next();

  /// Leaf-run iteration: appends to `out` (cleared first) every entry from
  /// the current position with key <= hi, stopping at the end of the
  /// current leaf — so one call drains at most one leaf and the caller
  /// never buffers more than a leaf's worth of entries. On return the
  /// iterator stands on the first unconsumed entry: the in-leaf entry that
  /// exceeded hi, or the head of the next leaf (invalid at index end).
  /// Performs exactly the page fetches the equivalent per-entry Next()
  /// sequence would, in the same order, so I/O charging is identical. An
  /// empty `out` with Valid() still set means the bound was hit — the
  /// range is exhausted.
  Status NextRun(const BtreeKey& hi, std::vector<BtreeEntry>* out);

 private:
  friend class Btree;

  Status LoadCurrent();

  BufferPool* pool_ = nullptr;
  SegmentId segment_ = kInvalidSegment;
  PageGuard guard_;
  PageNo leaf_ = kInvalidPageNo;
  uint32_t idx_ = 0;
  uint32_t leaf_count_ = 0;
  BtreeEntry entry_;
  bool valid_ = false;
};

/// Paged B+-tree over one buffer-pool segment.
class Btree {
 public:
  /// Creates an empty tree (root = empty leaf) in a fresh segment.
  static Result<Btree> Create(BufferPool* pool, std::string name);

  /// Inserts one entry. Duplicate full (key, aux) triples are rejected
  /// with AlreadyExists.
  Status Insert(const BtreeEntry& entry);

  /// Removes the exact (key, aux) entry from its leaf (lazy delete: no
  /// rebalancing). NotFound if absent.
  Status Delete(const BtreeEntry& entry);

  /// Bulk-loads entries into an empty tree. `sorted` must be strictly
  /// ascending by (key, aux). `fill_fraction` controls leaf occupancy.
  Status BulkLoad(const std::vector<BtreeEntry>& sorted,
                  double fill_fraction = 1.0);

  /// Positions an iterator at the first entry with key >= lo.
  Result<BtreeIterator> SeekFirst(const BtreeKey& lo);

  /// Iterator from the smallest entry.
  Result<BtreeIterator> Begin();

  /// Convenience: collects aux values of all entries with lo <= key <= hi.
  Status CollectRange(const BtreeKey& lo, const BtreeKey& hi,
                      std::vector<uint64_t>* out);

  int64_t entry_count() const { return entry_count_; }
  uint32_t height() const { return height_; }
  uint32_t page_count() const {
    return pool_->disk()->SegmentPageCount(segment_);
  }
  SegmentId segment() const { return segment_; }
  const std::string& name() const { return name_; }

  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t internal_capacity() const { return internal_capacity_; }

  /// Verifies structural invariants (ordering within nodes, separator
  /// bounds, leaf chain completeness and global order, entry count).
  Status CheckInvariants() const;

 private:
  Btree(BufferPool* pool, SegmentId segment, std::string name);

  struct SplitResult {
    BtreeEntry separator;  // first entry of the new right sibling
    PageNo right;
  };

  Status InsertRec(PageNo node, uint32_t level, const BtreeEntry& entry,
                   std::optional<SplitResult>* split);
  Status GrowRoot(const SplitResult& split);
  Status FindLeaf(const BtreeKey& lo, PageNo* leaf) const;

  Status CheckNode(PageNo node, uint32_t level,
                   const std::optional<BtreeEntry>& lower,
                   const std::optional<BtreeEntry>& upper,
                   int64_t* entries_seen, PageNo* leftmost_leaf) const;

  BufferPool* pool_;
  SegmentId segment_;
  std::string name_;
  PageNo root_ = kInvalidPageNo;
  uint32_t height_ = 1;  // levels including the leaf level
  int64_t entry_count_ = 0;
  uint32_t leaf_capacity_ = 0;
  uint32_t internal_capacity_ = 0;
};

}  // namespace dpcf
