#include "index/secondary_index.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpcf {

Index::Index(Table* table, std::string name, std::vector<int> key_cols,
             bool is_clustered_key)
    : table_(table),
      name_(std::move(name)),
      key_cols_(std::move(key_cols)),
      is_clustered_key_(is_clustered_key) {}

BtreeKey Index::KeyForRow(const RowView& row) const {
  BtreeKey key;
  key.k1 = row.GetInt64(static_cast<size_t>(key_cols_[0]));
  key.k2 = key_cols_.size() > 1
               ? row.GetInt64(static_cast<size_t>(key_cols_[1]))
               : 0;
  return key;
}

bool Index::Covers(const std::vector<int>& cols) const {
  return std::all_of(cols.begin(), cols.end(), [this](int c) {
    return std::find(key_cols_.begin(), key_cols_.end(), c) !=
           key_cols_.end();
  });
}

Result<std::unique_ptr<Index>> Index::Build(BufferPool* pool, Table* table,
                                            std::string name,
                                            std::vector<int> key_cols,
                                            bool is_clustered_key) {
  if (key_cols.empty() || key_cols.size() > 2) {
    return Status::NotSupported("indexes support 1 or 2 key columns");
  }
  for (int c : key_cols) {
    if (c < 0 || c >= static_cast<int>(table->schema().num_columns())) {
      return Status::InvalidArgument(StrFormat("bad key column %d", c));
    }
    if (table->schema().column(c).type != ValueType::kInt64) {
      return Status::NotSupported(
          "index key columns must be INT64 (dictionary-encode strings)");
    }
  }
  // make_unique cannot reach the private constructor (Database is the
  // sole factory); the pointer is owned before any fallible step runs.
  auto index = std::unique_ptr<Index>(
      new Index(table, std::move(name), std::move(key_cols),  // NOLINT(dpcf-naked-new)
                is_clustered_key));
  DPCF_ASSIGN_OR_RETURN(Btree tree, Btree::Create(pool, index->name_));
  index->tree_ = std::make_unique<Btree>(std::move(tree));

  // Collect entries by walking the raw data pages (build-time, unaccounted).
  std::vector<BtreeEntry> entries;
  entries.reserve(static_cast<size_t>(table->row_count()));
  const HeapFile* file = table->file();
  const Schema* schema = &table->schema();
  DiskManager* disk = pool->disk();
  // Make sure the freshly built heap pages are on "disk".
  DPCF_RETURN_IF_ERROR(pool->FlushAll());
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = disk->RawPage(PageId{file->segment(), p});
    uint32_t n = HeapFile::PageRowCount(page);
    for (uint16_t s = 0; s < n; ++s) {
      RowView row(file->RowInPage(page, s), schema);
      entries.push_back(
          BtreeEntry{index->KeyForRow(row), Rid{p, s}.Pack()});
    }
  }
  std::sort(entries.begin(), entries.end());
  DPCF_RETURN_IF_ERROR(index->tree_->BulkLoad(entries));
  return index;
}

Status Index::InsertRow(const RowView& row, Rid rid) {
  return tree_->Insert(BtreeEntry{KeyForRow(row), rid.Pack()});
}

Status Index::DeleteRow(const RowView& row, Rid rid) {
  return tree_->Delete(BtreeEntry{KeyForRow(row), rid.Pack()});
}

}  // namespace dpcf
