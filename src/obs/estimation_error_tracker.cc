#include "obs/estimation_error_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dpcf {

void QErrorHistogram::Observe(double q) {
  if (!(q >= 1.0)) q = 1.0;  // q-errors are >= 1 by construction
  ++count_;
  sum_ += q;
  max_ = std::max(max_, q);
  // Bucket i spans (2^i, 2^(i+1)]; q == 1 lands in bucket 0.
  size_t bucket = 0;
  double bound = 2.0;
  while (q > bound && bucket + 1 < buckets_.size()) {
    bound *= 2.0;
    ++bucket;
  }
  ++buckets_[bucket];
}

double QErrorHistogram::Quantile(double phi) const {
  if (count_ == 0) return 0;
  const int64_t target = static_cast<int64_t>(
      std::ceil(phi * static_cast<double>(count_)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::pow(2.0, static_cast<double>(i + 1));
    }
  }
  return max_;
}

void EstimationErrorTracker::Record(const MonitorRecord& rec) {
  MutexLock lock(&mu_);
  GroupSummary& g = groups_[{rec.table, rec.mechanism}];
  if (g.records == 0) {
    g.table = rec.table;
    g.mechanism = rec.mechanism;
  }
  ++g.records;
  const double dpc_q = rec.DpcErrorFactor();
  const double card_q = rec.CardinalityErrorFactor();
  if (dpc_q > 0 || card_q > 0) ++g.with_estimates;
  if (dpc_q > 0) g.dpc_error.Observe(dpc_q);
  if (card_q > 0) g.cardinality_error.Observe(card_q);
}

void EstimationErrorTracker::RecordAll(
    const std::vector<MonitorRecord>& recs) {
  for (const MonitorRecord& rec : recs) Record(rec);
}

int64_t EstimationErrorTracker::total_records() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [key, g] : groups_) total += g.records;
  return total;
}

std::vector<EstimationErrorTracker::GroupSummary>
EstimationErrorTracker::Summaries() const {
  MutexLock lock(&mu_);
  std::vector<GroupSummary> out;
  out.reserve(groups_.size());
  for (const auto& [key, g] : groups_) out.push_back(g);
  return out;
}

std::string EstimationErrorTracker::Report() const {
  std::vector<GroupSummary> groups = Summaries();
  std::string out =
      "table          mechanism                  n      dpc-q(mean/p95/max)"
      "      card-q(mean/p95/max)\n";
  for (const GroupSummary& g : groups) {
    out += StrFormat(
        "%-14s %-26s %-6lld %s/%s/%s      %s/%s/%s\n", g.table.c_str(),
        g.mechanism.c_str(), static_cast<long long>(g.records),
        FormatDouble(g.dpc_error.mean(), 2).c_str(),
        FormatDouble(g.dpc_error.Quantile(0.95), 2).c_str(),
        FormatDouble(g.dpc_error.max(), 2).c_str(),
        FormatDouble(g.cardinality_error.mean(), 2).c_str(),
        FormatDouble(g.cardinality_error.Quantile(0.95), 2).c_str(),
        FormatDouble(g.cardinality_error.max(), 2).c_str());
  }
  if (groups.empty()) out += "(no monitored observations)\n";
  return out;
}

void EstimationErrorTracker::Clear() {
  MutexLock lock(&mu_);
  groups_.clear();
}

}  // namespace dpcf
