// Flight-recorder event journal: fixed-capacity per-thread ring buffers of
// compact binary events, always on at near-zero cost.
//
// Unlike the TraceCollector (opt-in, unbounded, span-structured), the
// journal is the crash-cart view: every thread that touches an
// instrumented site appends a 40-byte event to its own ring, overwriting
// the oldest, so the last `capacity` events per thread are available for
// dumping (`journal.json` under DPCF_OBS_DIR) no matter what tracing was
// configured. The write path takes no lock:
//
//  * each ring has exactly ONE writer — the thread that registered it —
//    so the head cursor is a plain monotone counter;
//  * slots are per-slot seqlocks over relaxed atomics (Boehm's pattern:
//    odd seq while writing, release-publish on completion; readers
//    re-check the seq and drop torn slots), so a concurrent Snapshot()
//    never blocks a writer and never observes a half-written event;
//  * ring registration pushes onto a lock-free intrusive list; the
//    journal's ranked mutex (lock_rank::kEventJournal) serializes only
//    the snapshot/drain side and is never held while recording.
//
// Threads cache their ring in a small thread_local table keyed by
// (journal pointer, globally unique journal id) so a destroyed journal's
// reused address can never resurrect a stale ring pointer.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace dpcf {

/// Event taxonomy (DESIGN.md section 15). Arguments a/b are event-typed:
/// page numbers, waited microseconds, window sizes, milli-q-errors.
enum class JournalEvent : uint32_t {
  kNone = 0,
  kRingSubmit = 1,        // a=page, b=read class (0 demand, 1 prefetch)
  kRingDispatch = 2,      // a=page, b=queue wait us
  kRingComplete = 3,      // a=page, b=service time us
  kBackpressureBegin = 4, // a=queued pages at full
  kBackpressureEnd = 5,   // a=waited us
  kLoadingWait = 6,       // a=page, b=waited us
  kReadaheadResize = 7,   // a=new window pages, b=old window pages
  kMonitorBuild = 8,      // a=monitor count
  kMonitorMerge = 9,      // a=merged bundles
  kEviction = 10,         // a=evicted page, b=1 if dirty writeback
  kDriftAlert = 11,       // a=milli q-error, b=observations
};

/// Stable lower_snake_case name for the JSON dump ("ring_submit", ...).
const char* JournalEventName(JournalEvent e);

class EventJournal {
 public:
  /// One decoded event, as returned by Snapshot()/Drain().
  struct Event {
    uint64_t ts_us = 0;        // steady-clock microseconds
    uint32_t thread_index = 0; // ring registration order
    JournalEvent type = JournalEvent::kNone;
    uint64_t a = 0;
    uint64_t b = 0;
  };

  explicit EventJournal(size_t events_per_thread = 4096);
  ~EventJournal();
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one event to the calling thread's ring. Lock-free; safe from
  /// any thread, including while holding any ranked latch.
  void Record(JournalEvent type, uint64_t a = 0, uint64_t b = 0);

  /// Copies every undrained event (oldest first, merged across rings and
  /// sorted by timestamp) without consuming them.
  std::vector<Event> Snapshot() const EXCLUDES(drain_mu_);

  /// Like Snapshot(), but advances each ring's watermark so the next
  /// Drain()/Snapshot() only sees newer events.
  std::vector<Event> Drain() EXCLUDES(drain_mu_);

  /// journal.json: capacity, ring count, drop counters, and the sorted
  /// undrained events.
  std::string ToJson() const EXCLUDES(drain_mu_);

  /// Events dropped because a writer overwrote them mid-copy (torn) or
  /// lapped the reader before the copy started (overwritten). Cumulative
  /// across snapshots.
  int64_t dropped_torn() const {
    return dropped_torn_.load(std::memory_order_relaxed);
  }
  int64_t dropped_overwritten() const {
    return dropped_overwritten_.load(std::memory_order_relaxed);
  }

  size_t capacity_per_thread() const { return capacity_; }
  /// Rings registered so far (monotone; rings are never removed).
  size_t thread_count() const {
    return num_rings_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    // Seqlock generation: odd while the writer is mid-update. All words
    // are relaxed atomics so concurrent snapshot copies are race-free;
    // the seq re-check (not the memory model) rejects torn copies.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> type{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    std::atomic<uint64_t> head{0};     // next position to write
    std::atomic<uint64_t> drained{0};  // first position Drain hasn't taken
    uint32_t thread_index = 0;
    Ring* next = nullptr;  // immutable after the CAS publish
  };

  /// Fast path: thread-local cache hit. Slow path: allocate + publish a
  /// new ring for this thread (lock-free CAS push).
  Ring* RingForThisThread();

  std::vector<Event> Collect(bool advance) const;

  const size_t capacity_;
  const uint64_t id_;  // process-unique, guards the thread-local cache
  std::atomic<Ring*> rings_{nullptr};
  std::atomic<uint32_t> num_rings_{0};
  mutable std::atomic<int64_t> dropped_torn_{0};
  mutable std::atomic<int64_t> dropped_overwritten_{0};
  /// Serializes Snapshot/Drain against each other (watermark updates);
  /// never touched by Record().
  mutable Mutex drain_mu_{lock_rank::kEventJournal};
};

}  // namespace dpcf
