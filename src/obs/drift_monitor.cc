#include "obs/drift_monitor.h"

#include "obs/event_journal.h"
#include "obs/metrics_registry.h"

namespace dpcf {

DriftMonitor::DriftMonitor(DriftMonitorOptions options)
    : options_(options) {
  if (options_.alpha <= 0 || options_.alpha > 1) options_.alpha = 0.3;
  if (options_.threshold_factor < 1) options_.threshold_factor = 1;
  if (options_.consecutive_k < 1) options_.consecutive_k = 1;
}

void DriftMonitor::AttachObservability(MetricsRegistry* metrics,
                                       EventJournal* journal) {
  MutexLock lock(&mu_);
  metrics_ = metrics;
  journal_ = journal;
  m_alerts_ = metrics == nullptr
                  ? nullptr
                  : metrics->GetCounter(
                        "estimation_drift_alerts_total",
                        "Drift alerts raised (K consecutive q-errors "
                        "above the threshold factor)");
}

bool DriftMonitor::Observe(const MonitorRecord& rec) {
  const double q = rec.DpcErrorFactor();
  if (q <= 0) return false;  // no estimate attached: nothing diagnosed

  MutexLock lock(&mu_);
  Series& s = series_[{rec.table, rec.label}];
  s.ewma = s.observations == 0
               ? q
               : options_.alpha * q + (1 - options_.alpha) * s.ewma;
  ++s.observations;
  if (s.gauge == nullptr && metrics_ != nullptr) {
    s.gauge = metrics_->GetGauge(
        "estimation_drift_q_error_factor",
        "EWMA q-error of the DPC estimate per (table, expression)",
        {{"table", rec.table}, {"expr", rec.label}});
  }
  if (s.gauge != nullptr) s.gauge->Set(s.ewma);

  if (q > options_.threshold_factor) {
    ++s.consecutive_high;
    if (!s.alert && s.consecutive_high >= options_.consecutive_k) {
      s.alert = true;
      ++alerts_raised_;
      if (m_alerts_ != nullptr) m_alerts_->Increment();
      if (journal_ != nullptr) {
        journal_->Record(JournalEvent::kDriftAlert,
                         static_cast<uint64_t>(s.ewma * 1000),
                         static_cast<uint64_t>(s.observations));
      }
    }
  } else {
    // One healthy observation clears the streak AND the alert: the
    // estimate (or the plan built from it) has been corrected.
    s.consecutive_high = 0;
    s.alert = false;
  }
  return s.alert;
}

bool DriftMonitor::ObserveAll(const std::vector<MonitorRecord>& records) {
  bool any = false;
  for (const MonitorRecord& rec : records) {
    any = Observe(rec) || any;
  }
  return any;
}

std::vector<DriftAlert> DriftMonitor::ActiveAlerts() const {
  MutexLock lock(&mu_);
  std::vector<DriftAlert> out;
  for (const auto& [key, s] : series_) {
    if (!s.alert) continue;
    out.push_back({key.first, key.second, s.ewma, s.observations});
  }
  return out;
}

int64_t DriftMonitor::alerts_raised() const {
  MutexLock lock(&mu_);
  return alerts_raised_;
}

}  // namespace dpcf
