// EstimationErrorTracker: cross-run accumulation of page-count and
// cardinality estimation error (DESIGN.md section 11).
//
// Every MonitorRecord the feedback driver diagnoses is folded into
// per-(table, mechanism) q-error histograms — q-error being the symmetric
// ratio max(est, actual) / min(est, actual), the metric the paper's
// diagnosis story and the q-error literature (PAPERS.md) both use. Unlike
// the per-query "statistics xml" view, the tracker answers workload-level
// questions: which table's DPC model is systematically wrong, and by how
// much at the tail.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/run_statistics.h"

namespace dpcf {

/// Bounded log-scale histogram of q-errors (>= 1). Bucket i spans
/// (2^i, 2^(i+1)] with bucket 0 catching the exact-ish [1, 2] band; the
/// last bucket absorbs everything beyond the range. Latched by the owning
/// tracker; this class itself is a plain value type.
class QErrorHistogram {
 public:
  explicit QErrorHistogram(size_t num_buckets = 16)
      : buckets_(num_buckets, 0) {}

  void Observe(double q);

  int64_t count() const { return count_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  /// Upper bound of the bucket holding the phi-quantile (conservative:
  /// quantile estimates round up to the bucket boundary).
  double Quantile(double phi) const;
  const std::vector<int64_t>& buckets() const { return buckets_; }

 private:
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

class EstimationErrorTracker {
 public:
  /// Per-(table, mechanism) aggregate, snapshot by Summaries().
  struct GroupSummary {
    std::string table;
    std::string mechanism;
    int64_t records = 0;         // all observations routed to this group
    int64_t with_estimates = 0;  // observations carrying optimizer estimates
    QErrorHistogram dpc_error;
    QErrorHistogram cardinality_error;
  };

  /// Folds one observation. Records without an attached estimate are
  /// counted but contribute to neither histogram.
  void Record(const MonitorRecord& rec) EXCLUDES(mu_);
  void RecordAll(const std::vector<MonitorRecord>& recs) EXCLUDES(mu_);

  int64_t total_records() const EXCLUDES(mu_);
  std::vector<GroupSummary> Summaries() const EXCLUDES(mu_);

  /// Aligned text report (one row per group), for bench output.
  std::string Report() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  // Leaf rank: Observe/Report fold records while holding no other latch.
  mutable Mutex mu_{lock_rank::kEstimationTracker};
  std::map<std::pair<std::string, std::string>, GroupSummary> groups_
      GUARDED_BY(mu_);
};

}  // namespace dpcf
