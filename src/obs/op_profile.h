// Per-operator execution profiles — the EXPLAIN ANALYZE layer (DESIGN.md
// section 11).
//
// When ExecContext::profiling() is on, the Operator base class wraps every
// Open/Next/Close call and accumulates wall time, row counts and the
// *inclusive* IoStats/CpuStats deltas (children execute inside their
// parent's calls, so a node's delta covers its whole subtree — exclusive
// values fall out at render time by subtracting the children). After the
// run the executor captures the operator tree into an OpProfileNode tree,
// and RenderAnnotatedPlan pairs each node's own monitor records with the
// optimizer estimates the feedback driver attached, giving estimated vs
// actual cardinality/DPC per operator.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_statistics.h"
#include "obs/stall_tracker.h"
#include "storage/io_stats.h"

namespace dpcf {

/// Counts and inclusive-of-children deltas for one operator in one run.
struct OpProfile {
  int64_t open_calls = 0;
  int64_t next_calls = 0;
  int64_t close_calls = 0;
  /// Tuples this operator emitted (Next() returning true).
  int64_t rows = 0;
  double open_wall_ms = 0;
  double next_wall_ms = 0;
  double close_wall_ms = 0;
  IoStats io;    // inclusive delta across open + drain + close
  CpuStats cpu;  // inclusive delta (driver + merged workers)
  /// Inclusive blocked-time delta (I/O wait vs submission-ring
  /// backpressure vs waits behind another thread's load), charged through
  /// the thread-local StallScope sinks and merged like cpu.
  StallStats stall;

  double wall_ms() const {
    return open_wall_ms + next_wall_ms + close_wall_ms;
  }
};

/// Value-type snapshot of one operator after execution: its description,
/// profile, *own* monitor records (children carry their own), and children.
struct OpProfileNode {
  std::string describe;
  OpProfile profile;
  std::vector<MonitorRecord> records;
  std::vector<OpProfileNode> children;
};

/// Renders the profile tree as an annotated plan: one operator per line
/// with rows / wall / simulated time / I/O, followed by one line per
/// monitored expression showing actual vs estimated cardinality and DPC.
/// `estimated` supplies records with optimizer estimates attached (as
/// produced by FeedbackDriver::AttachEstimates); they are matched to the
/// node's own records by (label, mechanism). Records already carrying
/// estimates render those directly.
std::string RenderAnnotatedPlan(const OpProfileNode& root,
                                const std::vector<MonitorRecord>& estimated,
                                const SimCostParams& params = SimCostParams());

}  // namespace dpcf
