#include "obs/stall_tracker.h"

#include "common/string_util.h"

namespace dpcf {

namespace {
thread_local StallStats* g_stall_sink = nullptr;
}  // namespace

StallScope::StallScope(StallStats* sink) : prev_(g_stall_sink) {
  g_stall_sink = sink;
}

StallScope::~StallScope() { g_stall_sink = prev_; }

StallStats* CurrentStallSink() { return g_stall_sink; }

void ChargeStall(StallKind kind, int64_t us) {
  StallStats* sink = g_stall_sink;
  if (sink == nullptr) return;
  switch (kind) {
    case StallKind::kIoWait:
      sink->io_wait_us += us;
      ++sink->io_waits;
      break;
    case StallKind::kBackpressureWait:
      sink->backpressure_wait_us += us;
      ++sink->backpressure_waits;
      break;
    case StallKind::kLoadingWait:
      sink->loading_wait_us += us;
      ++sink->loading_waits;
      break;
  }
}

std::string StallStats::ToString() const {
  return StrFormat(
      "io_wait=%lldus/%lld backpressure=%lldus/%lld loading=%lldus/%lld",
      static_cast<long long>(io_wait_us), static_cast<long long>(io_waits),
      static_cast<long long>(backpressure_wait_us),
      static_cast<long long>(backpressure_waits),
      static_cast<long long>(loading_wait_us),
      static_cast<long long>(loading_waits));
}

}  // namespace dpcf
