#include "obs/op_profile.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpcf {

namespace {

const MonitorRecord* FindEstimate(const MonitorRecord& rec,
                                  const std::vector<MonitorRecord>& pool) {
  auto it = std::find_if(pool.begin(), pool.end(),
                         [&rec](const MonitorRecord& e) {
                           return e.label == rec.label &&
                                  e.mechanism == rec.mechanism;
                         });
  return it == pool.end() ? &rec : &*it;
}

void RenderRec(const OpProfileNode& node,
               const std::vector<MonitorRecord>& estimated,
               const SimCostParams& params, int depth, std::string* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const OpProfile& p = node.profile;
  out->append(indent);
  out->append(node.describe);
  out->append("\n");
  out->append(indent);
  out->append(StrFormat(
      "    (actual rows=%lld  next=%lld  wall=%sms  sim=%sms  "
      "io: logical=%lld hits=%lld seq=%lld rand=%lld)\n",
      static_cast<long long>(p.rows), static_cast<long long>(p.next_calls),
      FormatDouble(p.wall_ms(), 2).c_str(),
      FormatDouble(SimulatedMillis(p.io, p.cpu, params), 2).c_str(),
      static_cast<long long>(p.io.logical_reads),
      static_cast<long long>(p.io.buffer_hits),
      static_cast<long long>(p.io.physical_seq_reads),
      static_cast<long long>(p.io.physical_rand_reads)));
  if (!p.stall.empty()) {
    out->append(indent);
    out->append(StrFormat(
        "    (stall: io_wait=%lldus/%lld backpressure=%lldus/%lld "
        "loading=%lldus/%lld)\n",
        static_cast<long long>(p.stall.io_wait_us),
        static_cast<long long>(p.stall.io_waits),
        static_cast<long long>(p.stall.backpressure_wait_us),
        static_cast<long long>(p.stall.backpressure_waits),
        static_cast<long long>(p.stall.loading_wait_us),
        static_cast<long long>(p.stall.loading_waits)));
  }
  for (const MonitorRecord& rec : node.records) {
    // Prefer a record from `estimated` (the feedback driver attaches
    // optimizer estimates after the run, outside this snapshot).
    const MonitorRecord& r =
        rec.estimated_dpc >= 0 ? rec : *FindEstimate(rec, estimated);
    out->append(indent);
    out->append(StrFormat(
        "    [monitor %s] expr=\"%s\" actualDpc=%s actualCard=%s",
        r.mechanism.c_str(), r.expr_text.c_str(),
        FormatDouble(r.actual_dpc, 1).c_str(),
        FormatDouble(r.actual_cardinality, 1).c_str()));
    if (r.estimated_dpc >= 0) {
      out->append(StrFormat(" estDpc=%s errFactor=%sx",
                            FormatDouble(r.estimated_dpc, 1).c_str(),
                            FormatDouble(r.DpcErrorFactor(), 2).c_str()));
    } else {
      out->append(" estDpc=none");
    }
    if (r.estimated_cardinality >= 0) {
      out->append(StrFormat(" estCard=%s",
                            FormatDouble(r.estimated_cardinality, 1).c_str()));
    }
    out->append("\n");
  }
  for (const OpProfileNode& child : node.children) {
    RenderRec(child, estimated, params, depth + 1, out);
  }
}

}  // namespace

std::string RenderAnnotatedPlan(const OpProfileNode& root,
                                const std::vector<MonitorRecord>& estimated,
                                const SimCostParams& params) {
  std::string out;
  RenderRec(root, estimated, params, 0, &out);
  return out;
}

}  // namespace dpcf
