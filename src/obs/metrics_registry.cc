#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace dpcf {

namespace {

// fetch_add on atomic<double> is C++20; spell it as a CAS loop so the
// registry does not depend on library support that gcc/clang gained at
// different times.
void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d,
                                   std::memory_order_relaxed)) {
  }
}

// Prometheus text exposition: inside a quoted label value, backslash,
// double-quote and newline must be escaped (\\, \", \n) or the line is
// unparseable and silently corrupts every sample after it.
std::string PromEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + PromEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string LabelsJson(const MetricLabels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

MetricLabels Canonical(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

LogHistogram::LogHistogram(double lower_bound, double growth, size_t num_buckets) {
  assert(lower_bound > 0 && growth > 1 && num_buckets > 0);
  bounds_.reserve(num_buckets);
  double bound = lower_bound;
  for (size_t i = 0; i < num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void LogHistogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
}

double LogHistogram::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  double rank = q * static_cast<double>(n);
  if (rank < 1.0) rank = 1.0;
  int64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const int64_t c = bucket_count(i);
    if (c > 0 && static_cast<double>(cumulative + c) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      return lo + (hi - lo) * ((rank - static_cast<double>(cumulative)) /
                               static_cast<double>(c));
    }
    cumulative += c;
  }
  return bounds_.back();
}

std::string MetricsRegistry::LabelKey(const MetricLabels& labels) {
  return RenderLabels(labels);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  labels = Canonical(std::move(labels));
  MutexLock lock(&mu_);
  Family<Counter>& fam = counters_[name];
  if (fam.help.empty()) fam.help = help;
  Child<Counter>& child = fam.children[LabelKey(labels)];
  if (child.metric == nullptr) {
    child.labels = std::move(labels);
    child.metric = std::make_unique<Counter>();
  }
  return child.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  labels = Canonical(std::move(labels));
  MutexLock lock(&mu_);
  Family<Gauge>& fam = gauges_[name];
  if (fam.help.empty()) fam.help = help;
  Child<Gauge>& child = fam.children[LabelKey(labels)];
  if (child.metric == nullptr) {
    child.labels = std::move(labels);
    child.metric = std::make_unique<Gauge>();
  }
  return child.metric.get();
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         double lower_bound, double growth,
                                         size_t num_buckets,
                                         MetricLabels labels) {
  labels = Canonical(std::move(labels));
  MutexLock lock(&mu_);
  HistogramFamily& fam = histograms_[name];
  if (fam.children.empty()) {
    fam.help = help;
    fam.lower_bound = lower_bound;
    fam.growth = growth;
    fam.num_buckets = num_buckets;
  }
  Child<LogHistogram>& child = fam.children[LabelKey(labels)];
  if (child.metric == nullptr) {
    child.labels = std::move(labels);
    child.metric = std::make_unique<LogHistogram>(fam.lower_bound, fam.growth,
                                               fam.num_buckets);
  }
  return child.metric.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, fam] : counters_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " counter\n";
    for (const auto& [key, child] : fam.children) {
      out += StrFormat("%s%s %lld\n", name.c_str(), key.c_str(),
                       static_cast<long long>(child.metric->value()));
    }
  }
  for (const auto& [name, fam] : gauges_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [key, child] : fam.children) {
      out += StrFormat("%s%s %s\n", name.c_str(), key.c_str(),
                       FormatDouble(child.metric->value(), 6).c_str());
    }
  }
  for (const auto& [name, fam] : histograms_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [key, child] : fam.children) {
      const LogHistogram& h = *child.metric;
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.num_buckets(); ++i) {
        cumulative += h.bucket_count(i);
        MetricLabels le = child.labels;
        le.emplace_back("le", FormatDouble(h.bucket_bound(i), 6));
        out += StrFormat("%s_bucket%s %lld\n", name.c_str(),
                         RenderLabels(le).c_str(),
                         static_cast<long long>(cumulative));
      }
      MetricLabels le = child.labels;
      le.emplace_back("le", "+Inf");
      out += StrFormat("%s_bucket%s %lld\n", name.c_str(),
                       RenderLabels(le).c_str(),
                       static_cast<long long>(h.count()));
      out += StrFormat("%s_sum%s %s\n", name.c_str(), key.c_str(),
                       FormatDouble(h.sum(), 6).c_str());
      out += StrFormat("%s_count%s %lld\n", name.c_str(), key.c_str(),
                       static_cast<long long>(h.count()));
      // Server-side quantile estimates as summary-style samples under the
      // family name, so dashboards read p50/p95/p99 straight from the
      // text without a histogram_quantile() layer.
      for (double q : {0.5, 0.95, 0.99}) {
        MetricLabels ql = child.labels;
        ql.emplace_back("quantile", FormatDouble(q, 2));
        out += StrFormat("%s%s %s\n", name.c_str(),
                         RenderLabels(ql).c_str(),
                         FormatDouble(h.Quantile(q), 6).c_str());
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [name, fam] : counters_) {
    for (const auto& [key, child] : fam.children) {
      out += first ? "\n" : ",\n";
      first = false;
      out += StrFormat("    {\"name\": \"%s\", \"labels\": %s, "
                       "\"value\": %lld}",
                       JsonEscape(name).c_str(),
                       LabelsJson(child.labels).c_str(),
                       static_cast<long long>(child.metric->value()));
    }
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [name, fam] : gauges_) {
    for (const auto& [key, child] : fam.children) {
      out += first ? "\n" : ",\n";
      first = false;
      out += StrFormat("    {\"name\": \"%s\", \"labels\": %s, "
                       "\"value\": %s}",
                       JsonEscape(name).c_str(),
                       LabelsJson(child.labels).c_str(),
                       FormatDouble(child.metric->value(), 6).c_str());
    }
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [name, fam] : histograms_) {
    for (const auto& [key, child] : fam.children) {
      const LogHistogram& h = *child.metric;
      out += first ? "\n" : ",\n";
      first = false;
      out += StrFormat("    {\"name\": \"%s\", \"labels\": %s, "
                       "\"count\": %lld, \"sum\": %s, \"buckets\": [",
                       JsonEscape(name).c_str(),
                       LabelsJson(child.labels).c_str(),
                       static_cast<long long>(h.count()),
                       FormatDouble(h.sum(), 6).c_str());
      for (size_t i = 0; i < h.num_buckets(); ++i) {
        if (i) out += ", ";
        out += StrFormat("{\"le\": %s, \"count\": %lld}",
                         FormatDouble(h.bucket_bound(i), 6).c_str(),
                         static_cast<long long>(h.bucket_count(i)));
      }
      out += StrFormat("], \"overflow\": %lld, "
                       "\"quantiles\": {\"p50\": %s, \"p95\": %s, "
                       "\"p99\": %s}}",
                       static_cast<long long>(h.overflow_count()),
                       FormatDouble(h.Quantile(0.5), 6).c_str(),
                       FormatDouble(h.Quantile(0.95), 6).c_str(),
                       FormatDouble(h.Quantile(0.99), 6).c_str());
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace dpcf
