// TraceCollector: Chrome trace_event JSON recording for the execution
// engine (DESIGN.md section 11).
//
// Spans are recorded as complete events ("ph": "X") with microsecond
// timestamps relative to the collector's construction, on a steady clock so
// recording never perturbs feedback determinism (wall time is reporting
// only, as with RunStatistics::wall_ms). The emitting sites — morsel
// dispatch, buffer-pool miss I/O, readahead prefetches, monitor merge,
// operator open/close — all check enabled() before touching the clock, so a
// disabled collector costs one relaxed load per potential span.
//
// The resulting JSON loads directly into chrome://tracing or Perfetto
// (ui.perfetto.dev); see README "Observability".

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace dpcf {

/// String (key, value) pairs attached to an event's "args" object.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class TraceCollector {
 public:
  explicit TraceCollector(bool enabled = false);

  /// RAII thread-local query-id scope: every event recorded from this
  /// thread while the scope is live carries a {"qid": "<id>"} arg, letting
  /// concurrent sessions untangle their spans in one trace file. The
  /// driver thread opens a scope in ExecutePlan from ExecContext::query_id;
  /// parallel-scan workers and the readahead thread open their own (the id
  /// is thread-local, so spawned threads do not inherit it). id 0 = no tag.
  /// Scopes nest; the previous id is restored on destruction.
  class QueryIdScope {
   public:
    explicit QueryIdScope(uint64_t query_id);
    QueryIdScope(const QueryIdScope&) = delete;
    QueryIdScope& operator=(const QueryIdScope&) = delete;
    ~QueryIdScope();

   private:
    uint64_t prev_;
  };

  /// The calling thread's current query id (0 when no scope is live).
  static uint64_t current_query_id();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since the collector's epoch (steady clock). Span sites
  /// take the begin timestamp themselves so the duration excludes none of
  /// the traced work.
  int64_t NowUs() const;

  /// Records a complete event spanning [begin_us, NowUs()] on the calling
  /// thread. No-op when disabled. Thread ids are interned to small
  /// integers; events beyond the cap are counted as dropped, not stored.
  void AddSpan(const char* category, std::string name, int64_t begin_us,
               TraceArgs args = {}) EXCLUDES(mu_);

  /// Records an instant event ("ph": "i") at NowUs(). No-op when disabled.
  void AddInstant(const char* category, std::string name,
                  TraceArgs args = {}) EXCLUDES(mu_);

  size_t event_count() const EXCLUDES(mu_);
  size_t dropped_events() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  /// Maximum stored events; further events are dropped (and counted).
  void set_max_events(size_t cap) { max_events_ = cap; }

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
  /// trace_event JSON object format.
  std::string ToJson() const EXCLUDES(mu_);

 private:
  struct Event {
    char phase;  // 'X' (complete) or 'i' (instant)
    const char* category;
    std::string name;
    int64_t ts_us = 0;
    int64_t dur_us = 0;  // complete events only
    int tid = 0;
    TraceArgs args;
  };

  void Record(Event event) EXCLUDES(mu_);
  int InternTidLocked() REQUIRES(mu_);

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_;
  size_t max_events_ = 1 << 20;
  // Highest rank: AddSpan may run below any other latch domain.
  mutable Mutex mu_{lock_rank::kTraceCollector};
  std::vector<Event> events_ GUARDED_BY(mu_);
  std::map<std::thread::id, int> tids_ GUARDED_BY(mu_);
  size_t dropped_ GUARDED_BY(mu_) = 0;
};

/// RAII span: captures the begin timestamp at construction and records on
/// destruction. Resolves to a no-op (no clock read) when `trace` is null or
/// disabled.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* trace, const char* category, std::string name)
      : trace_(trace != nullptr && trace->enabled() ? trace : nullptr) {
    if (trace_ != nullptr) {
      category_ = category;
      name_ = std::move(name);
      begin_us_ = trace_->NowUs();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->AddSpan(category_, std::move(name_), begin_us_);
    }
  }

 private:
  TraceCollector* trace_;
  const char* category_ = "";
  std::string name_;
  int64_t begin_us_ = 0;
};

}  // namespace dpcf
