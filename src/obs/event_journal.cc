#include "obs/event_journal.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace dpcf {

namespace {

// The journal is an observability sink (tools/analysis NONDET_BARRIERS):
// timestamps feed the dump, never feedback state.
uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> g_journal_ids{1};

// Per-thread ring cache. Entries are matched on BOTH the journal pointer
// and its process-unique id: a new journal allocated at a dead journal's
// address gets a different id, so a stale entry can only miss, never
// dangle. Four entries cover every test that juggles multiple journals;
// eviction just re-registers (the orphaned ring stays drainable in its
// journal until that journal dies).
struct RingCacheEntry {
  const void* journal = nullptr;
  uint64_t id = 0;
  void* ring = nullptr;
};
constexpr int kRingCacheSize = 4;
thread_local RingCacheEntry g_ring_cache[kRingCacheSize];
thread_local int g_ring_cache_next = 0;

}  // namespace

const char* JournalEventName(JournalEvent e) {
  switch (e) {
    case JournalEvent::kNone:
      return "none";
    case JournalEvent::kRingSubmit:
      return "ring_submit";
    case JournalEvent::kRingDispatch:
      return "ring_dispatch";
    case JournalEvent::kRingComplete:
      return "ring_complete";
    case JournalEvent::kBackpressureBegin:
      return "backpressure_begin";
    case JournalEvent::kBackpressureEnd:
      return "backpressure_end";
    case JournalEvent::kLoadingWait:
      return "loading_wait";
    case JournalEvent::kReadaheadResize:
      return "readahead_resize";
    case JournalEvent::kMonitorBuild:
      return "monitor_build";
    case JournalEvent::kMonitorMerge:
      return "monitor_merge";
    case JournalEvent::kEviction:
      return "eviction";
    case JournalEvent::kDriftAlert:
      return "drift_alert";
  }
  return "unknown";
}

EventJournal::EventJournal(size_t events_per_thread)
    : capacity_(events_per_thread == 0 ? 1 : events_per_thread),
      id_(g_journal_ids.fetch_add(1, std::memory_order_relaxed)) {}

EventJournal::~EventJournal() {
  Ring* r = rings_.load(std::memory_order_acquire);
  while (r != nullptr) {
    Ring* next = r->next;
    // The journal owns the whole intrusive list; see the new below.
    delete r;  // NOLINT(dpcf-naked-new)
    r = next;
  }
}

EventJournal::Ring* EventJournal::RingForThisThread() {
  for (int i = 0; i < kRingCacheSize; ++i) {
    const RingCacheEntry& e = g_ring_cache[i];
    if (e.journal == this && e.id == id_) {
      return static_cast<Ring*>(e.ring);
    }
  }
  // Raw new: the ring is published by lock-free CAS into an intrusive
  // list whose `next` must live inside the node, which rules out
  // unique_ptr links; the destructor above frees the list.
  Ring* ring = new Ring(capacity_);  // NOLINT(dpcf-naked-new)
  ring->thread_index = num_rings_.fetch_add(1, std::memory_order_acq_rel);
  Ring* head = rings_.load(std::memory_order_acquire);
  do {
    ring->next = head;
  } while (!rings_.compare_exchange_weak(head, ring,
                                         std::memory_order_release,
                                         std::memory_order_acquire));
  RingCacheEntry& slot = g_ring_cache[g_ring_cache_next];
  g_ring_cache_next = (g_ring_cache_next + 1) % kRingCacheSize;
  slot.journal = this;
  slot.id = id_;
  slot.ring = ring;
  return ring;
}

void EventJournal::Record(JournalEvent type, uint64_t a, uint64_t b) {
  Ring* ring = RingForThisThread();
  const uint64_t pos = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[pos % capacity_];
  const uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
  // Seqlock writer (single writer per ring): mark in-progress, publish the
  // words, then release the even generation. The release fence keeps the
  // odd seq visible before any word; the final release store keeps every
  // word visible before the even seq.
  s.seq.store(seq0 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts_us.store(SteadyNowUs(), std::memory_order_relaxed);
  s.type.store(static_cast<uint64_t>(type), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.seq.store(seq0 + 2, std::memory_order_release);
  ring->head.store(pos + 1, std::memory_order_release);
}

std::vector<EventJournal::Event> EventJournal::Collect(bool advance) const {
  std::vector<Event> out;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t drained = ring->drained.load(std::memory_order_relaxed);
    uint64_t start = head > capacity_ ? head - capacity_ : 0;
    if (drained > start) {
      start = drained;
    } else if (advance && start > drained) {
      // Positions lapped before this drain even looked: count them so the
      // loss is visible (Drain preserves events + drops == events
      // recorded; snapshots never consume, so they don't count these).
      dropped_overwritten_.fetch_add(
          static_cast<int64_t>(start - drained), std::memory_order_relaxed);
    }
    for (uint64_t pos = start; pos < head; ++pos) {
      const Slot& s = ring->slots[pos % capacity_];
      // A slot at ring position pos has been written exactly
      // pos/capacity + 1 times when it still holds pos's event; any other
      // generation means the writer lapped us.
      const uint64_t expect_seq = 2 * (pos / capacity_ + 1);
      const uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 != expect_seq) {
        if (s1 > expect_seq) {
          dropped_overwritten_.fetch_add(1, std::memory_order_relaxed);
        } else {
          dropped_torn_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      Event e;
      e.ts_us = s.ts_us.load(std::memory_order_relaxed);
      e.type = static_cast<JournalEvent>(
          s.type.load(std::memory_order_relaxed));
      e.a = s.a.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      e.thread_index = ring->thread_index;
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t s2 = s.seq.load(std::memory_order_relaxed);
      if (s1 != s2) {
        dropped_torn_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      out.push_back(e);
    }
    if (advance) {
      ring->drained.store(head, std::memory_order_relaxed);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.ts_us < y.ts_us;
                   });
  return out;
}

std::vector<EventJournal::Event> EventJournal::Snapshot() const {
  MutexLock lock(&drain_mu_);
  return Collect(/*advance=*/false);
}

std::vector<EventJournal::Event> EventJournal::Drain() {
  MutexLock lock(&drain_mu_);
  return Collect(/*advance=*/true);
}

std::string EventJournal::ToJson() const {
  std::vector<Event> events = Snapshot();
  std::string out = "{\n";
  out += StrFormat("  \"capacity_per_thread\": %zu,\n", capacity_);
  out += StrFormat("  \"threads\": %zu,\n", thread_count());
  out += StrFormat("  \"dropped_torn\": %lld,\n",
                   static_cast<long long>(dropped_torn()));
  out += StrFormat("  \"dropped_overwritten\": %lld,\n",
                   static_cast<long long>(dropped_overwritten()));
  out += "  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "\n    {\"ts_us\": %llu, \"thread\": %u, \"type\": \"%s\", "
        "\"a\": %llu, \"b\": %llu}",
        static_cast<unsigned long long>(e.ts_us), e.thread_index,
        JsonEscape(JournalEventName(e.type)).c_str(),
        static_cast<unsigned long long>(e.a),
        static_cast<unsigned long long>(e.b));
  }
  out += events.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace dpcf
