// MetricsRegistry: the engine-wide metric store behind the observability
// layer (DESIGN.md section 11).
//
// Registration (GetCounter / GetGauge / GetHistogram) is latched and
// idempotent — callers resolve a raw pointer once, typically at attach time
// (BufferPool::AttachObservability, DiskManager::AttachMetrics,
// MonitorManager's constructor) — while the returned handles update with
// relaxed atomics only, so publishing from the storage hot path never takes
// a lock and never serializes scan workers. Exposition renders the whole
// registry as Prometheus text or JSON at quiescent points; like IoStats,
// cross-metric consistency is only guaranteed then.
//
// Naming convention (machine-checked by the dpcf-metric-naming lint rule):
// snake_case with a unit suffix — counters end in `_total`, gauges and
// histograms in a unit such as `_us`, `_bytes`, `_pages`, `_rows`. A
// constant gauge whose payload is a label value (the Prometheus info-metric
// idiom, e.g. dpcf_simd_dispatch_info{isa="avx2"} 1) ends in `_info`.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace dpcf {

/// Sorted (key, value) label pairs identifying one child of a metric
/// family, e.g. {{"shard", "3"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Relaxed atomic: safe to bump from
/// any thread, totals exact at quiescent points.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. a configured latency knob).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Bounded log-scale histogram: bucket i spans
/// (lower_bound * growth^(i-1), lower_bound * growth^i]; one overflow
/// bucket catches everything above the last bound. Observe() is lock-free
/// (a short scan over immutable bounds plus relaxed increments), so it is
/// safe on concurrent paths such as the buffer pool's miss read.
class LogHistogram {
 public:
  LogHistogram(double lower_bound, double growth, size_t num_buckets);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  size_t num_buckets() const { return bounds_.size(); }
  /// Inclusive upper bound of bucket i (Prometheus `le`).
  double bucket_bound(size_t i) const { return bounds_[i]; }
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  int64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Server-side quantile estimate (q in [0, 1]) with linear interpolation
  /// inside the covering bucket — the same convention as PromQL's
  /// histogram_quantile, computed here so metrics.prom and metrics.json
  /// are dashboardable without a query layer. Observations in the overflow
  /// bucket clamp to the last bound. Like the rest of exposition, the
  /// relaxed bucket reads are only cross-consistent at quiescent points.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;  // immutable after the ctor
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> overflow_{0};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Name -> family -> labeled-child store with Prometheus-text and JSON
/// exposition. Pointers returned by the Get* methods are stable for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the counter `name` with `labels`. `help` is recorded
  /// on first registration of the family.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {}) EXCLUDES(mu_);

  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {}) EXCLUDES(mu_);

  /// LogHistogram bucket geometry is a property of the family: the parameters
  /// of the first registration win and later calls just resolve the child.
  LogHistogram* GetHistogram(const std::string& name, const std::string& help,
                          double lower_bound, double growth,
                          size_t num_buckets, MetricLabels labels = {})
      EXCLUDES(mu_);

  /// Prometheus text exposition format (# HELP / # TYPE + samples).
  std::string PrometheusText() const EXCLUDES(mu_);

  /// JSON exposition: {"counters": [...], "gauges": [...],
  /// "histograms": [...]}.
  std::string ToJson() const EXCLUDES(mu_);

 private:
  template <typename M>
  struct Child {
    MetricLabels labels;
    std::unique_ptr<M> metric;
  };
  template <typename M>
  struct Family {
    std::string help;
    // Keyed by the serialized label set for child lookup.
    std::map<std::string, Child<M>> children;
  };
  struct HistogramFamily : Family<LogHistogram> {
    double lower_bound = 1.0;
    double growth = 2.0;
    size_t num_buckets = 16;
  };

  static std::string LabelKey(const MetricLabels& labels);

  // Leaf rank: find-or-create and exposition hold no other latch.
  mutable Mutex mu_{lock_rank::kMetricsRegistry};
  std::map<std::string, Family<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Family<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramFamily> histograms_ GUARDED_BY(mu_);
};

}  // namespace dpcf
