// Per-thread stall attribution for the EXPLAIN ANALYZE breakdown.
//
// The storage layer blocks in three distinct places — waiting for a miss
// read to come back (I/O wait), waiting for room on the async submission
// ring (backpressure wait), and waiting behind another thread's in-flight
// load of the same frame (loading wait). Which query was stalled is
// information only the *blocked* thread has, so attribution rides a
// thread-local sink: the executor (driver thread) and the parallel scan
// (workers, readahead thread) install a StallScope around their work, the
// blocking sites call ChargeStall with the measured microseconds, and the
// per-thread tallies are folded into the ExecContext exactly like
// CpuStats. With no scope installed (offline paths, io workers) the
// charge is a single thread-local load and a branch.

#pragma once

#include <cstdint>
#include <string>

namespace dpcf {

/// Counters and waited-microsecond totals for one thread (or, after
/// merging, one query). Microseconds are wall-clock: stalls are real
/// blocked time, not simulated cost.
struct StallStats {
  int64_t io_wait_us = 0;
  int64_t backpressure_wait_us = 0;
  int64_t loading_wait_us = 0;
  int64_t io_waits = 0;
  int64_t backpressure_waits = 0;
  int64_t loading_waits = 0;

  int64_t total_wait_us() const {
    return io_wait_us + backpressure_wait_us + loading_wait_us;
  }
  bool empty() const {
    return io_waits == 0 && backpressure_waits == 0 && loading_waits == 0;
  }

  void Reset() { *this = StallStats(); }

  StallStats& operator+=(const StallStats& o) {
    io_wait_us += o.io_wait_us;
    backpressure_wait_us += o.backpressure_wait_us;
    loading_wait_us += o.loading_wait_us;
    io_waits += o.io_waits;
    backpressure_waits += o.backpressure_waits;
    loading_waits += o.loading_waits;
    return *this;
  }

  StallStats& operator-=(const StallStats& o) {
    io_wait_us -= o.io_wait_us;
    backpressure_wait_us -= o.backpressure_wait_us;
    loading_wait_us -= o.loading_wait_us;
    io_waits -= o.io_waits;
    backpressure_waits -= o.backpressure_waits;
    loading_waits -= o.loading_waits;
    return *this;
  }

  std::string ToString() const;
};

enum class StallKind {
  kIoWait,            // demand miss waiting on the (simulated) device
  kBackpressureWait,  // submission ring full
  kLoadingWait,       // another thread's load of the same frame
};

/// RAII: installs `sink` as the calling thread's stall accumulator for the
/// scope's lifetime, restoring the previous sink (scopes nest; the
/// innermost wins, matching how a sub-plan's stalls belong to its run).
class StallScope {
 public:
  explicit StallScope(StallStats* sink);
  ~StallScope();
  StallScope(const StallScope&) = delete;
  StallScope& operator=(const StallScope&) = delete;

 private:
  StallStats* prev_;
};

/// The calling thread's active sink, or null. Blocking sites use this to
/// skip the clock reads entirely when nobody is attributing.
StallStats* CurrentStallSink();

/// Charges `us` microseconds of `kind` to the calling thread's sink;
/// no-op without one.
void ChargeStall(StallKind kind, int64_t us);

}  // namespace dpcf
