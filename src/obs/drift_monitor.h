// Estimation-drift monitor: turns the per-run diagnosis reports into a
// standing alarm.
//
// The EstimationErrorTracker aggregates q-errors for an end-of-run report;
// this class watches the same MonitorRecord stream *online*. Each diagnosed
// record (one with an optimizer estimate attached) folds into a
// per-(table, expression) EWMA q-error series, and when the observed error
// stays above a configurable factor for K consecutive observations the
// series raises a structured DriftAlert — the trigger condition re-
// optimization loops (Wu et al., VLDB 2016) are built around. Alerts clear
// as soon as an observation comes back under the threshold (hysteresis is
// on the raise side only). Exposition is free: the EWMA per series is a
// labeled gauge and the raise count a counter in the MetricsRegistry, and
// each raise also lands in the flight-recorder journal.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/run_statistics.h"

namespace dpcf {

class MetricsRegistry;
class Counter;
class Gauge;
class EventJournal;

struct DriftMonitorOptions {
  /// EWMA smoothing: weight of the newest observation.
  double alpha = 0.3;
  /// A q-error above this factor counts as a drifted observation.
  double threshold_factor = 4.0;
  /// Observations that must exceed the threshold back-to-back before the
  /// series alerts — one bad estimate is a diagnosis, K in a row is drift.
  int consecutive_k = 3;
};

/// A series whose estimate has drifted past the threshold for K
/// consecutive observations.
struct DriftAlert {
  std::string table;
  std::string expression;  // MonitorRecord::label
  double ewma_q_error = 0;
  int64_t observations = 0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions options = {});

  /// Wires metric export (per-series EWMA gauge + alert counter) and the
  /// journal for kDriftAlert events. Either may be null.
  void AttachObservability(MetricsRegistry* metrics, EventJournal* journal)
      EXCLUDES(mu_);

  /// Folds one record; records without an estimate are ignored. Returns
  /// whether the record's series is alerting after the fold.
  bool Observe(const MonitorRecord& rec) EXCLUDES(mu_);

  /// Folds a whole feedback report; returns whether ANY touched series is
  /// alerting afterwards (the FeedbackOutcome::reoptimization_advised
  /// signal).
  bool ObserveAll(const std::vector<MonitorRecord>& records);

  std::vector<DriftAlert> ActiveAlerts() const EXCLUDES(mu_);

  /// Cumulative raise count (a cleared-and-re-raised series counts twice).
  int64_t alerts_raised() const EXCLUDES(mu_);

  const DriftMonitorOptions& options() const { return options_; }

 private:
  struct Series {
    double ewma = 0;
    int consecutive_high = 0;
    bool alert = false;
    int64_t observations = 0;
    Gauge* gauge = nullptr;  // per-series EWMA export, or null
  };

  DriftMonitorOptions options_;
  MetricsRegistry* metrics_ = nullptr;
  EventJournal* journal_ = nullptr;
  Counter* m_alerts_ = nullptr;

  // Ranked below kMetricsRegistry: Observe registers the per-series gauge
  // on first sight while holding mu_.
  mutable Mutex mu_{lock_rank::kDriftMonitor};
  std::map<std::pair<std::string, std::string>, Series> series_
      GUARDED_BY(mu_);
  int64_t alerts_raised_ GUARDED_BY(mu_) = 0;
};

}  // namespace dpcf
