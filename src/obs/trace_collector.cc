#include "obs/trace_collector.h"

#include "common/string_util.h"

namespace dpcf {

namespace {
thread_local uint64_t tls_query_id = 0;
}  // namespace

TraceCollector::QueryIdScope::QueryIdScope(uint64_t query_id)
    : prev_(tls_query_id) {
  tls_query_id = query_id;
}

TraceCollector::QueryIdScope::~QueryIdScope() { tls_query_id = prev_; }

uint64_t TraceCollector::current_query_id() { return tls_query_id; }

TraceCollector::TraceCollector(bool enabled)
    : epoch_(std::chrono::steady_clock::now()), enabled_(enabled) {}

int64_t TraceCollector::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceCollector::InternTidLocked() {
  const std::thread::id self = std::this_thread::get_id();
  auto it = tids_.find(self);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(self, tid);
  return tid;
}

void TraceCollector::Record(Event event) {
  if (tls_query_id != 0) {
    event.args.emplace_back("qid", std::to_string(tls_query_id));
  }
  MutexLock lock(&mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  event.tid = InternTidLocked();
  events_.push_back(std::move(event));
}

void TraceCollector::AddSpan(const char* category, std::string name,
                             int64_t begin_us, TraceArgs args) {
  if (!enabled()) return;
  Event e;
  e.phase = 'X';
  e.category = category;
  e.name = std::move(name);
  e.ts_us = begin_us;
  const int64_t end_us = NowUs();
  e.dur_us = end_us > begin_us ? end_us - begin_us : 0;
  e.args = std::move(args);
  Record(std::move(e));
}

void TraceCollector::AddInstant(const char* category, std::string name,
                                TraceArgs args) {
  if (!enabled()) return;
  Event e;
  e.phase = 'i';
  e.category = category;
  e.name = std::move(name);
  e.ts_us = NowUs();
  e.args = std::move(args);
  Record(std::move(e));
}

size_t TraceCollector::event_count() const {
  MutexLock lock(&mu_);
  return events_.size();
}

size_t TraceCollector::dropped_events() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void TraceCollector::Clear() {
  MutexLock lock(&mu_);
  events_.clear();
  tids_.clear();
  dropped_ = 0;
}

std::string TraceCollector::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    out += i ? ",\n" : "\n";
    out += StrFormat(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
        "\"ts\": %lld, \"pid\": 1, \"tid\": %d",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(), e.phase,
        static_cast<long long>(e.ts_us), e.tid);
    if (e.phase == 'X') {
      out += StrFormat(", \"dur\": %lld", static_cast<long long>(e.dur_us));
    }
    if (e.phase == 'i') {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a) out += ", ";
        out += "\"" + JsonEscape(e.args[a].first) + "\": \"" +
               JsonEscape(e.args[a].second) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace dpcf
