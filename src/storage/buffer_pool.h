// LRU buffer pool over the simulated disk.
//
// Every page access during query execution goes through Fetch(), which
// charges a logical read and, on a miss, a physical read; this is exactly the
// distinction the paper's DPC parameter drives ("each distinct page involves
// a new logical I/O and, if absent from the buffer pool, a physical I/O").
// ColdReset() empties the pool between measured runs to reproduce the
// paper's cold-cache methodology.
//
// Thread-safe: one latch guards the frame table, pin counts and the LRU
// list, and is held across the miss path (disk read into the frame) so two
// workers fetching the same absent page cannot both load it. Page *data*
// reads happen outside the latch, protected by the pin: a pinned frame is
// never a victim, so its bytes are stable while any PageGuard is alive.
// Morsel-parallel scan workers therefore share one pool directly.
//
// Lock order: BufferPool::mu_ before DiskManager::mu_ (the miss path calls
// into the disk while latched). The order is machine-checked two ways:
// ACQUIRED_BEFORE on mu_ (clang -Wthread-safety-beta) and EXCLUDES of the
// disk latch on every public entry point, so calling into the pool while
// holding the disk latch fails to compile under plain -Wthread-safety.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dpcf {

class BufferPool;

/// RAII pin on a buffer-pool frame. Movable, not copyable; unpins on
/// destruction. data() is valid while the guard is alive.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame, char* data);
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  const char* data() const { return data_; }

  /// Grants write access and marks the frame dirty (written back to the
  /// disk manager on eviction or FlushAll()).
  char* mutable_data();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
  char* data_ = nullptr;
};

/// Fixed-capacity page cache with LRU replacement and pin counts.
class BufferPool {
 public:
  /// `capacity_pages` frames are preallocated eagerly.
  BufferPool(DiskManager* disk, size_t capacity_pages);

  /// Pins the page, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame is pinned.
  Result<PageGuard> Fetch(PageId pid) EXCLUDES(mu_, disk_->mu_);

  /// Allocates a fresh zeroed page in `segment`, pins it, and returns the
  /// guard together with its id via `out_pid`. No physical read is charged
  /// (the page had no prior contents); the write is charged on eviction.
  Result<PageGuard> NewPage(SegmentId segment, PageId* out_pid)
      EXCLUDES(mu_, disk_->mu_);

  /// Writes back all dirty frames (keeps them cached).
  Status FlushAll() EXCLUDES(mu_, disk_->mu_);

  /// Writes back dirty frames and empties the pool: the next Fetch of any
  /// page is a physical read. Fails if any page is still pinned.
  Status ColdReset() EXCLUDES(mu_, disk_->mu_);

  size_t capacity() const { return capacity_pages_; }
  size_t cached_pages() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return page_table_.size();
  }
  DiskManager* disk() const { return disk_; }

  /// Names the pool latch in annotations and tests (see DiskManager::latch).
  Mutex* latch() const RETURN_CAPABILITY(mu_) { return &mu_; }

  /// The disk latch as this pool's annotations spell it. TSA matches
  /// capability *expressions*, so code that locks `disk()->latch()` under
  /// a different base object would not collide with the `disk_->mu_` in
  /// Fetch's EXCLUDES clause; locking through this accessor does (the
  /// negative-compile lock-order fixture relies on it).
  Mutex* disk_latch() const RETURN_CAPABILITY(disk_->mu_) {
    return disk_->latch();
  }

 private:
  friend class PageGuard;

  struct Frame {
    PageId pid;
    std::unique_ptr<char[]> data;
    int32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0; lru_.end() otherwise.
    std::list<int32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Returns a usable frame index: a free frame, or the LRU victim
  /// (written back if dirty). -1 if everything is pinned.
  int32_t AcquireFrame(Status* status) REQUIRES(mu_);

  /// Writes back all dirty frames.
  Status FlushAllLocked() REQUIRES(mu_);

  void Unpin(int32_t frame) EXCLUDES(mu_);
  void MarkDirty(int32_t frame) EXCLUDES(mu_);

  DiskManager* disk_;
  size_t capacity_pages_;  // == frames_.size(); immutable after the ctor
  mutable Mutex mu_ ACQUIRED_BEFORE(disk_->mu_);
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::vector<int32_t> free_frames_ GUARDED_BY(mu_);
  std::list<int32_t> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<PageId, int32_t, PageIdHash> page_table_
      GUARDED_BY(mu_);
};

}  // namespace dpcf
