// Sharded LRU buffer pool over the simulated disk.
//
// Every page access during query execution goes through Fetch(), which
// charges a logical read and, on a miss, a physical read; this is exactly the
// distinction the paper's DPC parameter drives ("each distinct page involves
// a new logical I/O and, if absent from the buffer pool, a physical I/O").
// ColdReset() empties the pool between measured runs to reproduce the
// paper's cold-cache methodology.
//
// Sharding: frames are partitioned into N shards (N a power of two), and a
// page belongs to shard PageIdHash(pid) & (N-1). Each shard has its own
// latch, page table, free list and LRU list, so concurrent fetches of pages
// in different shards never touch the same latch.
//
// Miss protocol (LOADING): on a miss the fetching thread claims a frame,
// publishes it in the shard's page table in the kLoading state, and *drops
// the shard latch for the disk read*. A second fetcher of the same page
// finds the kLoading entry and waits on the shard's condvar (releasing the
// latch) instead of issuing a duplicate read; fetchers of other pages in the
// shard proceed unimpeded. The loader re-latches to flip the frame to
// kReady and wakes the waiters, who re-check from the top. Page *data*
// reads happen outside the latch, protected by the pin: a pinned or loading
// frame is never a victim, so its bytes are stable while any PageGuard is
// alive. Dirty-victim writeback stays *under* the shard latch — dropping it
// there would let a concurrent miss of the victim page read stale bytes
// from the disk mid-writeback.
//
// Async mode (BufferPoolOptions::async_io, DESIGN.md section 14): the same
// LOADING protocol, but the disk read goes through DiskManager's
// submission ring instead of blocking the fetching thread inside ReadPage.
// The demand loader publishes the kLoading frame, submits, and waits on
// the shard condvar; the completion callback (on a disk io-thread)
// re-latches the shard, flips the frame to kReady (or kLoadError with the
// status), and wakes the waiters — so the loader and any wait-behind
// fetchers resume through the exact same re-check loop. PrefetchBatch()
// publishes a kLoading frame per page and hands the whole batch to
// SubmitBatch in one ring round-trip; its completions resolve frames to
// ready-unpinned-MRU with no waiting thread at all. Accounting is
// unchanged: the charge sites are identical, only the thread that blocks
// differs.
//
// Accounting is exact, not approximate: logical_reads is charged only when
// a fetch succeeds (hit, wait-behind-loader, or completed load), so
//   logical_reads == buffer_hits + physical_reads()
// holds under any interleaving, including ResourceExhausted failures.
//
// Lock order: any shard latch before DiskManager::mu_ (the miss and
// writeback paths call into the disk at most below one shard latch; no code
// path holds two shard latches at once — aggregate operations such as
// cached_pages()/ColdReset()/FlushAll() visit shards one at a time in
// increasing shard-index order). The order is machine-checked two ways:
// ACQUIRED_BEFORE on each shard's latch (clang -Wthread-safety-beta) and
// EXCLUDES of the disk latch on every public entry point, so calling into
// the pool while holding the disk latch fails to compile under plain
// -Wthread-safety.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dpcf {

class BufferPool;
class Counter;          // obs/metrics_registry.h
class LogHistogram;     // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h
class TraceCollector;   // obs/trace_collector.h
class EventJournal;     // obs/event_journal.h

/// RAII pin on a buffer-pool frame. Movable, not copyable; unpins on
/// destruction. data() is valid while the guard is alive.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t shard, int32_t frame, char* data);
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  const char* data() const { return data_; }

  /// Grants write access and marks the frame dirty (written back to the
  /// disk manager on eviction or FlushAll()).
  char* mutable_data();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t shard_ = 0;
  int32_t frame_ = -1;
  char* data_ = nullptr;
};

struct BufferPoolOptions {
  /// Number of shards; rounded down to a power of two and clamped to
  /// [1, capacity]. 0 picks a default that scales with capacity (1 shard
  /// for tiny pools, up to 8) so small single-threaded pools behave exactly
  /// like the historical monolithic pool.
  size_t num_shards = 0;
  /// Compatibility/benchmark mode: hold the shard latch across the miss
  /// disk read (the pre-sharding behavior). With num_shards = 1 this
  /// reproduces the monolithic pool bit for bit; bench_buffer_contention
  /// uses it as the A side of its A/B comparison.
  bool serialize_miss_io = false;
  /// Route miss and prefetch reads through DiskManager's asynchronous
  /// submission ring (SubmitRead/SubmitBatch) instead of synchronous
  /// ReadPage calls. Demand fetchers still block (on the shard condvar,
  /// woken by the completion) but prefetch becomes fire-and-forget and the
  /// simulated latency is paid by the disk's io_threads, which is what
  /// lets a scan overlap more reads than it has workers. Ignored when
  /// serialize_miss_io is set (that mode exists to reproduce the
  /// monolithic pool exactly).
  bool async_io = false;
};

/// Fixed-capacity sharded page cache with per-shard LRU replacement and pin
/// counts.
class BufferPool {
 public:
  /// `capacity_pages` frames are preallocated eagerly and split as evenly
  /// as possible across the shards (earlier shards get the remainder).
  BufferPool(DiskManager* disk, size_t capacity_pages,
             BufferPoolOptions options = BufferPoolOptions{});

  /// Drains the submission ring first in async mode: a completion callback
  /// must never run against a destroyed pool.
  ~BufferPool();

  /// Pins the page, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame of the page's shard is pinned or
  /// loading. Nothing is charged to IoStats on failure.
  Result<PageGuard> Fetch(PageId pid) EXCLUDES(disk_->mu_);

  /// Speculatively loads the page into its shard (unpinned, most recently
  /// used) so a subsequent Fetch is a hit, synchronously on the calling
  /// thread. Charges IoStats::prefetch_reads instead of a physical read
  /// and never moves the disk read head. A page already cached or loading
  /// is a benign no-op; a shard with no evictable frame skips the page,
  /// charges IoStats::prefetch_rejected, and still returns OK (readahead
  /// running too far ahead of the consumers is backpressure, not an
  /// error — the adaptive window narrows on the counter).
  Status Prefetch(PageId pid) EXCLUDES(disk_->mu_);

  /// Batch prefetch: publishes a kLoading frame per still-uncached page
  /// and submits the whole batch through the disk's submission ring in one
  /// SubmitBatch call (async mode), or falls back to a loop of synchronous
  /// Prefetch calls otherwise. Same skip/charge semantics as Prefetch per
  /// page; returns the first hard disk error (sync mode only — async
  /// completions resolve errors by freeing the frame).
  Status PrefetchBatch(const std::vector<PageId>& pids)
      EXCLUDES(disk_->mu_);

  /// Allocates a fresh zeroed page in `segment`, pins it, and returns the
  /// guard together with its id via `out_pid`. No physical read is charged
  /// (the page had no prior contents); the write is charged on eviction.
  Result<PageGuard> NewPage(SegmentId segment, PageId* out_pid)
      EXCLUDES(disk_->mu_);

  /// Writes back all dirty frames (keeps them cached). Visits shards one at
  /// a time in increasing index order; never holds two shard latches.
  Status FlushAll() EXCLUDES(disk_->mu_);

  /// Writes back dirty frames and empties the pool: the next Fetch of any
  /// page is a physical read. Fails if any page is still pinned or loading.
  /// Two shard-ordered passes (check, then flush+clear), one latch at a
  /// time; callers must be at a quiescent point, as with the monolithic
  /// pool.
  Status ColdReset() EXCLUDES(disk_->mu_);

  size_t capacity() const { return capacity_pages_; }
  size_t num_shards() const { return shards_.size(); }
  /// Which shard `pid` lives in (stable for the pool's lifetime).
  size_t shard_index(PageId pid) const {
    return PageIdHash{}(pid) & (shards_.size() - 1);
  }
  /// Frame count of shard `s` (they differ by at most one).
  size_t shard_capacity(size_t s) const;

  /// Cached-page count, summed shard by shard (one latch at a time). Exact
  /// only at quiescent points, like every cross-shard aggregate.
  size_t cached_pages() const EXCLUDES(disk_->mu_);

  DiskManager* disk() const { return disk_; }

  /// Resolves this pool's metric handles (per-shard hits / misses /
  /// loading-waits, pool-wide logical reads / prefetch hits, miss-read
  /// latency histogram) from `registry`, wires `trace` for miss and
  /// prefetch spans and `journal` for loading-wait / eviction events. Any
  /// argument may be null. Call once, at a quiescent point (Database's
  /// constructor does); publishing afterwards is relaxed-atomic or
  /// lock-free only and adds nothing to the unattached hot path.
  void AttachObservability(MetricsRegistry* registry, TraceCollector* trace,
                           EventJournal* journal = nullptr);

  /// The disk latch as this pool's annotations spell it. TSA matches
  /// capability *expressions*, so code that locks `disk()->latch()` under
  /// a different base object would not collide with the `disk_->mu_` in
  /// Fetch's EXCLUDES clause; locking through this accessor does (the
  /// negative-compile lock-order fixture relies on it).
  Mutex* disk_latch() const RETURN_CAPABILITY(disk_->mu_) {
    return disk_->latch();
  }

 private:
  friend class PageGuard;

  enum class FrameState : uint8_t {
    kFree,       // on the shard free list; pid meaningless
    kLoading,    // published in the page table; disk read in flight
    kReady,      // contents valid
    kLoadError,  // async load failed; load_status set, loader cleans up
  };

  struct Frame {
    PageId pid;
    std::unique_ptr<char[]> data;
    FrameState state = FrameState::kFree;
    // Outcome of a failed async demand load, parked here (state
    // kLoadError) until the loader — who still holds the pin — wakes,
    // frees the frame and propagates it to the Fetch caller.
    Status load_status;
    int32_t pin_count = 0;
    bool dirty = false;
    // Position in the shard lru when pin_count == 0; lru.end() otherwise.
    std::list<int32_t>::iterator lru_pos;
    bool in_lru = false;
    // Loaded by a kPrefetch read and not yet demanded: the first demand hit
    // charges IoStats::prefetch_hits and clears this (so one prefetched
    // load is one potential hit). Cleared whenever the frame is reclaimed.
    bool prefetched = false;
  };

  /// One latch domain. `disk` duplicates the pool's pointer so the
  /// ACQUIRED_BEFORE edge can be spelled per shard (TSA attributes resolve
  /// member expressions; Shard is a nested class of DiskManager's friend,
  /// so naming disk->mu_ here is well-formed).
  struct Shard {
    explicit Shard(DiskManager* d)
        : disk(d), mu(lock_rank::kBufferPoolShard) {}
    DiskManager* const disk;
    // Rank kBufferPoolShard < kDisk: the runtime mirror of the
    // ACQUIRED_BEFORE edge (enforced under DPCF_LOCK_RANK on any compiler;
    // the shared shard rank also aborts if two shard latches ever nest).
    mutable Mutex mu ACQUIRED_BEFORE(disk->mu_);
    /// Signaled whenever a kLoading frame resolves (to kReady or back to
    /// the free list on error); waiters re-check the page table.
    std::condition_variable_any cv;
    std::vector<Frame> frames GUARDED_BY(mu);
    std::vector<int32_t> free_frames GUARDED_BY(mu);
    std::list<int32_t> lru GUARDED_BY(mu);  // front = most recent
    std::unordered_map<PageId, int32_t, PageIdHash> table GUARDED_BY(mu);
    // Metric handles, null until AttachObservability. Set once at a
    // quiescent point; the Counter itself is a relaxed atomic, so no
    // GUARDED_BY (same contract as IoStats::AtomicCounter).
    Counter* m_hits = nullptr;
    Counter* m_misses = nullptr;
    Counter* m_loading_waits = nullptr;
  };

  /// Returns a usable frame index in `s`: a free frame, or the LRU victim
  /// (written back under the latch if dirty). -1 if every frame is pinned
  /// or loading.
  int32_t AcquireFrameLocked(Shard* s, Status* status) REQUIRES(s->mu);

  /// Writes back all dirty kReady frames of `s`.
  Status FlushShardLocked(Shard* s) REQUIRES(s->mu);

  void Unpin(uint32_t shard, int32_t frame);
  void MarkDirty(uint32_t shard, int32_t frame);

  static size_t PickShardCount(size_t capacity, size_t requested);

  DiskManager* disk_;
  size_t capacity_pages_;  // == sum of shard frame counts; ctor-immutable
  BufferPoolOptions options_;
  // Pool-wide observability handles; null until AttachObservability.
  Counter* m_logical_reads_ = nullptr;
  Counter* m_prefetch_hits_ = nullptr;
  LogHistogram* m_miss_read_us_ = nullptr;
  TraceCollector* trace_ = nullptr;
  EventJournal* journal_ = nullptr;
  // Immutable after the ctor (the Shard contents are latched, the vector
  // itself never changes).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dpcf
