// LRU buffer pool over the simulated disk.
//
// Every page access during query execution goes through Fetch(), which
// charges a logical read and, on a miss, a physical read; this is exactly the
// distinction the paper's DPC parameter drives ("each distinct page involves
// a new logical I/O and, if absent from the buffer pool, a physical I/O").
// ColdReset() empties the pool between measured runs to reproduce the
// paper's cold-cache methodology.
//
// Thread-safe: one latch guards the frame table, pin counts and the LRU
// list, and is held across the miss path (disk read into the frame) so two
// workers fetching the same absent page cannot both load it. Page *data*
// reads happen outside the latch, protected by the pin: a pinned frame is
// never a victim, so its bytes are stable while any PageGuard is alive.
// Morsel-parallel scan workers therefore share one pool directly.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dpcf {

class BufferPool;

/// RAII pin on a buffer-pool frame. Movable, not copyable; unpins on
/// destruction. data() is valid while the guard is alive.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame, char* data);
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  const char* data() const { return data_; }

  /// Grants write access and marks the frame dirty (written back to the
  /// disk manager on eviction or FlushAll()).
  char* mutable_data();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
  char* data_ = nullptr;
};

/// Fixed-capacity page cache with LRU replacement and pin counts.
class BufferPool {
 public:
  /// `capacity_pages` frames are preallocated eagerly.
  BufferPool(DiskManager* disk, size_t capacity_pages);

  /// Pins the page, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame is pinned.
  Result<PageGuard> Fetch(PageId pid);

  /// Allocates a fresh zeroed page in `segment`, pins it, and returns the
  /// guard together with its id via `out_pid`. No physical read is charged
  /// (the page had no prior contents); the write is charged on eviction.
  Result<PageGuard> NewPage(SegmentId segment, PageId* out_pid);

  /// Writes back all dirty frames (keeps them cached).
  Status FlushAll();

  /// Writes back dirty frames and empties the pool: the next Fetch of any
  /// page is a physical read. Fails if any page is still pinned.
  Status ColdReset();

  size_t capacity() const { return frames_.size(); }
  size_t cached_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return page_table_.size();
  }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId pid;
    std::unique_ptr<char[]> data;
    int32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0; lru_.end() otherwise.
    std::list<int32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Returns a usable frame index: a free frame, or the LRU victim
  /// (written back if dirty). -1 if everything is pinned. Requires mu_.
  int32_t AcquireFrame(Status* status);

  /// Writes back all dirty frames. Requires mu_.
  Status FlushAllLocked();

  void Unpin(int32_t frame);
  void MarkDirty(int32_t frame);

  DiskManager* disk_;
  mutable std::mutex mu_;  // guards all frame/table/LRU state below
  std::vector<Frame> frames_;
  std::vector<int32_t> free_frames_;
  std::list<int32_t> lru_;  // front = most recent
  std::unordered_map<PageId, int32_t, PageIdHash> page_table_;
};

}  // namespace dpcf
