#include "storage/io_stats.h"

#include "common/string_util.h"

namespace dpcf {

std::string IoStats::ToString() const {
  return StrFormat(
      "IoStats{seq=%lld rand=%lld writes=%lld prefetch=%lld "
      "prefetch_hits=%lld prefetch_rejected=%lld logical=%lld hits=%lld "
      "raw=%lld}",
      static_cast<long long>(physical_seq_reads),
      static_cast<long long>(physical_rand_reads),
      static_cast<long long>(physical_writes),
      static_cast<long long>(prefetch_reads),
      static_cast<long long>(prefetch_hits),
      static_cast<long long>(prefetch_rejected),
      static_cast<long long>(logical_reads),
      static_cast<long long>(buffer_hits),
      static_cast<long long>(raw_page_reads));
}

std::string CpuStats::ToString() const {
  return StrFormat(
      "CpuStats{rows=%lld pred_atoms=%lld monitor_hashes=%lld "
      "monitor_rows=%lld ht_ops=%lld}",
      static_cast<long long>(rows_processed),
      static_cast<long long>(predicate_atom_evals),
      static_cast<long long>(monitor_hash_ops),
      static_cast<long long>(monitor_row_ops),
      static_cast<long long>(hash_table_ops));
}

double SimulatedMillis(const IoStats& io, const CpuStats& cpu,
                       const SimCostParams& p) {
  double ms = 0.0;
  ms += static_cast<double>(io.physical_seq_reads) * p.seq_read_ms;
  ms += static_cast<double>(io.physical_rand_reads) * p.rand_read_ms;
  // Readahead streams pages in order ahead of the scan cursor, so a
  // prefetched page costs a sequential transfer even though it bypasses
  // the read-head classifier.
  ms += static_cast<double>(io.prefetch_reads) * p.seq_read_ms;
  ms += static_cast<double>(io.physical_writes) * p.write_ms;
  ms += static_cast<double>(cpu.rows_processed) * p.cpu_row_ms;
  ms += static_cast<double>(cpu.predicate_atom_evals) * p.cpu_pred_atom_ms;
  ms += static_cast<double>(cpu.monitor_hash_ops) * p.cpu_hash_ms;
  ms += static_cast<double>(cpu.monitor_row_ops) * p.cpu_monitor_row_ms;
  ms += static_cast<double>(cpu.hash_table_ops) * p.cpu_probe_ms;
  return ms;
}

}  // namespace dpcf
