// Page identity and constants for the simulated storage engine.
//
// The database is a set of segments (one per heap/clustered table or index);
// each segment is an array of fixed-size pages addressed by a PageNo. A
// PageId is the global (segment, page_no) pair. PageIds are the quantity the
// paper's monitors count: DPC(T, p) is the number of distinct data-segment
// PageIds of T containing a row satisfying p.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"

namespace dpcf {

using SegmentId = uint32_t;
using PageNo = uint32_t;

inline constexpr size_t kDefaultPageSize = 8192;
inline constexpr SegmentId kInvalidSegment = UINT32_MAX;
inline constexpr PageNo kInvalidPageNo = UINT32_MAX;

/// Global page address: (segment, page number within segment).
struct PageId {
  SegmentId segment = kInvalidSegment;
  PageNo page_no = kInvalidPageNo;

  bool valid() const { return segment != kInvalidSegment; }

  bool operator==(const PageId&) const = default;
  auto operator<=>(const PageId&) const = default;

  /// Packs into a single 64-bit value; used as hash input by the monitors.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(segment) << 32) | page_no;
  }

  std::string ToString() const {
    return std::to_string(segment) + ":" + std::to_string(page_no);
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return static_cast<size_t>(Mix64(id.Pack()));
  }
};

}  // namespace dpcf
