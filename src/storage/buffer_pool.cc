#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "obs/stall_tracker.h"
#include "obs/trace_collector.h"

namespace dpcf {

PageGuard::PageGuard(BufferPool* pool, uint32_t shard, int32_t frame,
                     char* data)
    : pool_(pool), shard_(shard), frame_(frame), data_(data) {}

PageGuard::PageGuard(PageGuard&& o) noexcept
    : pool_(o.pool_), shard_(o.shard_), frame_(o.frame_), data_(o.data_) {
  o.pool_ = nullptr;
  o.shard_ = 0;
  o.frame_ = -1;
  o.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    shard_ = o.shard_;
    frame_ = o.frame_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.shard_ = 0;
    o.frame_ = -1;
    o.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

char* PageGuard::mutable_data() {
  assert(valid());
  pool_->MarkDirty(shard_, frame_);
  return data_;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
    shard_ = 0;
    frame_ = -1;
    data_ = nullptr;
  }
}

size_t BufferPool::PickShardCount(size_t capacity, size_t requested) {
  // Auto default: one shard per 8 frames, capped at 8, so tiny pools (every
  // unit test with capacity <= 15) stay monolithic and large pools spread
  // contention. An explicit request is honored up to the capacity.
  size_t target = requested;
  if (target == 0) {
    constexpr size_t kFramesPerShard = 8;
    constexpr size_t kMaxAutoShards = 8;
    target = capacity / kFramesPerShard;
    if (target > kMaxAutoShards) target = kMaxAutoShards;
  }
  if (target > capacity) target = capacity;
  size_t shards = 1;
  while (shards * 2 <= target) shards *= 2;  // round down to a power of two
  return shards;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages,
                       BufferPoolOptions options)
    : disk_(disk), capacity_pages_(capacity_pages), options_(options) {
  assert(capacity_pages > 0);
  const size_t n = PickShardCount(capacity_pages, options.num_shards);
  shards_.reserve(n);
  const size_t base = capacity_pages / n;
  const size_t rem = capacity_pages % n;
  for (size_t si = 0; si < n; ++si) {
    auto shard = std::make_unique<Shard>(disk_);
    const size_t frames = base + (si < rem ? 1 : 0);
    MutexLock lock(&shard->mu);  // ctor-private; satisfies TSA, uncontended
    shard->frames.resize(frames);
    shard->free_frames.reserve(frames);
    for (size_t i = 0; i < frames; ++i) {
      shard->frames[i].data = std::make_unique<char[]>(disk_->page_size());
      shard->frames[i].lru_pos = shard->lru.end();
      shard->free_frames.push_back(static_cast<int32_t>(frames - 1 - i));
    }
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  if (options_.async_io && !options_.serialize_miss_io) {
    // Retire queued prefetches (their completions free the frames) and
    // wait out claimed ones, so no disk io-thread can call back into this
    // pool once the members start being destroyed.
    disk_->CancelPending();
    disk_->DrainSubmissions();
  }
}

void BufferPool::AttachObservability(MetricsRegistry* registry,
                                     TraceCollector* trace,
                                     EventJournal* journal) {
  trace_ = trace;
  journal_ = journal;
  if (registry == nullptr) return;
  m_logical_reads_ = registry->GetCounter(
      "buffer_pool_logical_reads_total",
      "Successful page requests (hits + completed miss loads)");
  m_prefetch_hits_ = registry->GetCounter(
      "buffer_pool_prefetch_hits_total",
      "Demand fetches served from a readahead-loaded frame");
  m_miss_read_us_ = registry->GetHistogram(
      "buffer_pool_miss_read_us",
      "Wall time of the disk read on a buffer-pool miss", 1.0, 2.0, 20);
  for (size_t si = 0; si < shards_.size(); ++si) {
    MetricLabels labels = {{"shard", StrFormat("%zu", si)}};
    Shard& sh = *shards_[si];
    sh.m_hits = registry->GetCounter("buffer_pool_hits_total",
                                     "Page requests served from the pool",
                                     labels);
    sh.m_misses = registry->GetCounter(
        "buffer_pool_misses_total", "Page requests that went to disk",
        labels);
    sh.m_loading_waits = registry->GetCounter(
        "buffer_pool_loading_waits_total",
        "Waits behind another fetcher's in-flight load", labels);
  }
}

size_t BufferPool::shard_capacity(size_t s) const {
  MutexLock lock(&shards_[s]->mu);
  return shards_[s]->frames.size();
}

int32_t BufferPool::AcquireFrameLocked(Shard* s, Status* status) {
  if (!s->free_frames.empty()) {
    int32_t f = s->free_frames.back();
    s->free_frames.pop_back();
    return f;
  }
  if (s->lru.empty()) {
    *status = Status::ResourceExhausted(
        "all frames of the page's buffer-pool shard are pinned or loading");
    return -1;
  }
  int32_t victim = s->lru.back();
  s->lru.pop_back();
  Frame& fr = s->frames[static_cast<size_t>(victim)];
  fr.in_lru = false;
  s->table.erase(fr.pid);
  if (journal_ != nullptr) {
    journal_->Record(JournalEvent::kEviction, fr.pid.page_no,
                     fr.dirty ? 1 : 0);
  }
  if (fr.dirty) {
    // Writeback stays under the shard latch: a concurrent miss of fr.pid
    // must not read the page from disk until these bytes have landed.
    Status st = disk_->WritePage(fr.pid, fr.data.get());
    if (!st.ok()) {
      fr.state = FrameState::kFree;
      s->free_frames.push_back(victim);  // contents lost, frame reusable
      *status = st;
      return -1;
    }
    fr.dirty = false;
  }
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId pid) {
  const uint32_t si = static_cast<uint32_t>(shard_index(pid));
  Shard& s = *shards_[si];
  IoStats* io = disk_->io_stats();
  s.mu.lock();
  for (;;) {
    auto it = s.table.find(pid);
    if (it != s.table.end()) {
      Frame& fr = s.frames[static_cast<size_t>(it->second)];
      if (fr.state != FrameState::kReady) {
        // Another fetcher is reading this page off disk (kLoading), or its
        // async load just failed (kLoadError) and the loader — who holds
        // the pin — is about to free the frame. Either way: wait (the
        // latch is released inside the wait) and re-check from the top; a
        // wake-up with the entry gone means the load failed or the frame
        // was evicted, in which case this fetch becomes the loader.
        if (s.m_loading_waits != nullptr) s.m_loading_waits->Increment();
        const bool wait_timed =
            journal_ != nullptr || CurrentStallSink() != nullptr;
        std::chrono::steady_clock::time_point wait_t0;
        if (wait_timed) wait_t0 = std::chrono::steady_clock::now();
        s.cv.wait(s.mu);
        if (wait_timed) {
          const int64_t waited_us = static_cast<int64_t>(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - wait_t0)
                  .count());
          ChargeStall(StallKind::kLoadingWait, waited_us);
          if (journal_ != nullptr) {
            journal_->Record(JournalEvent::kLoadingWait, pid.page_no,
                             static_cast<uint64_t>(waited_us));
          }
        }
        continue;
      }
      if (fr.in_lru) {
        s.lru.erase(fr.lru_pos);
        fr.in_lru = false;
        fr.lru_pos = s.lru.end();
      }
      ++fr.pin_count;
      ++io->logical_reads;
      ++io->buffer_hits;
      if (fr.prefetched) {
        // First demand hit of a readahead-loaded frame: that prefetch paid
        // off. Count it once and clear the flag.
        fr.prefetched = false;
        ++io->prefetch_hits;
        if (m_prefetch_hits_ != nullptr) m_prefetch_hits_->Increment();
      }
      if (s.m_hits != nullptr) s.m_hits->Increment();
      if (m_logical_reads_ != nullptr) m_logical_reads_->Increment();
      PageGuard guard(this, si, it->second, fr.data.get());
      s.mu.unlock();
      return guard;
    }
    // Miss: claim a frame and publish it as kLoading so concurrent
    // fetchers of the same page wait instead of duplicating the read.
    Status status = Status::OK();
    int32_t f = AcquireFrameLocked(&s, &status);
    if (f < 0) {
      s.mu.unlock();
      return status;
    }
    Frame& fr = s.frames[static_cast<size_t>(f)];
    fr.pid = pid;
    fr.state = FrameState::kLoading;
    fr.pin_count = 1;  // loading frames are never victims
    fr.dirty = false;
    fr.prefetched = false;
    s.table[pid] = f;
    char* dst = fr.data.get();
    if (s.m_misses != nullptr) s.m_misses->Increment();
    const bool traced = trace_ != nullptr && trace_->enabled();
    const bool timed = traced || m_miss_read_us_ != nullptr ||
                       CurrentStallSink() != nullptr;
    std::chrono::steady_clock::time_point read_t0;
    int64_t span_begin = 0;
    if (timed) {
      read_t0 = std::chrono::steady_clock::now();
      if (traced) span_begin = trace_->NowUs();
    }
    Status st;
    if (options_.serialize_miss_io) {
      // Legacy mode: the read happens under the latch, as in the
      // monolithic pool. Lock order shard -> disk either way.
      st = disk_->ReadPage(pid, dst);
    } else if (options_.async_io) {
      // Async mode: submit and sleep on the shard condvar; the completion
      // (on a disk io-thread, holding no latch) re-latches the shard,
      // resolves the frame state and wakes every waiter. The frame cannot
      // be reused meanwhile — it is pinned and kLoading — so capturing
      // the shard/frame indexes is safe.
      s.mu.unlock();
      disk_->SubmitRead(
          pid, dst, ReadClass::kDemand, [this, si, f](const Status& read) {
            Shard& sh = *shards_[si];
            {
              MutexLock relock(&sh.mu);
              Frame& loaded = sh.frames[static_cast<size_t>(f)];
              loaded.load_status = read;
              loaded.state = read.ok() ? FrameState::kReady
                                       : FrameState::kLoadError;
            }
            sh.cv.notify_all();
          });
      s.mu.lock();
      while (fr.state == FrameState::kLoading) s.cv.wait(s.mu);
      st = fr.state == FrameState::kReady ? Status::OK() : fr.load_status;
    } else {
      s.mu.unlock();
      st = disk_->ReadPage(pid, dst);
      s.mu.lock();
    }
    if (timed && st.ok()) {
      const double read_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - read_t0)
                                 .count();
      // The fetching thread was blocked for the whole read (sync) or from
      // submit to completion wake-up (async); either way it is this
      // query's I/O wait.
      ChargeStall(StallKind::kIoWait, static_cast<int64_t>(read_us));
      if (m_miss_read_us_ != nullptr) {
        m_miss_read_us_->Observe(read_us);
      }
      if (traced) {
        trace_->AddSpan("io", StrFormat("miss read %s",
                                        pid.ToString().c_str()),
                        span_begin);
      }
    }
    if (!st.ok()) {
      s.table.erase(pid);
      fr.state = FrameState::kFree;
      fr.pin_count = 0;
      s.free_frames.push_back(f);
      s.cv.notify_all();
      s.mu.unlock();
      return st;
    }
    fr.state = FrameState::kReady;
    // The physical read was charged inside ReadPage; charging logical here,
    // after the load succeeded, keeps logical == hits + physical exact even
    // when fetches fail (satisfying no-charge-on-failure).
    ++io->logical_reads;
    if (m_logical_reads_ != nullptr) m_logical_reads_->Increment();
    s.cv.notify_all();
    PageGuard guard(this, si, f, dst);
    s.mu.unlock();
    return guard;
  }
}

Status BufferPool::Prefetch(PageId pid) {
  const uint32_t si = static_cast<uint32_t>(shard_index(pid));
  Shard& s = *shards_[si];
  IoStats* io = disk_->io_stats();
  s.mu.lock();
  if (s.table.find(pid) != s.table.end()) {
    // Cached or already loading (demand fetchers wait on it themselves):
    // nothing to do.
    s.mu.unlock();
    return Status::OK();
  }
  Status status = Status::OK();
  int32_t f = AcquireFrameLocked(&s, &status);
  if (f < 0) {
    // A full shard just means readahead is running too far ahead of the
    // consumers; skipping the page is the correct backpressure. Counted so
    // the adaptive readahead window can narrow on it instead of the scan
    // silently losing its prefetcher.
    ++io->prefetch_rejected;
    s.mu.unlock();
    return Status::OK();
  }
  Frame& fr = s.frames[static_cast<size_t>(f)];
  fr.pid = pid;
  fr.state = FrameState::kLoading;
  fr.pin_count = 1;
  fr.dirty = false;
  fr.prefetched = false;
  s.table[pid] = f;
  char* dst = fr.data.get();
  const bool traced = trace_ != nullptr && trace_->enabled();
  const int64_t span_begin = traced ? trace_->NowUs() : 0;
  Status st;
  if (options_.serialize_miss_io) {
    st = disk_->ReadPage(pid, dst, ReadClass::kPrefetch);
  } else {
    s.mu.unlock();
    st = disk_->ReadPage(pid, dst, ReadClass::kPrefetch);
    s.mu.lock();
  }
  if (traced && st.ok()) {
    trace_->AddSpan("io", StrFormat("prefetch %s", pid.ToString().c_str()),
                    span_begin);
  }
  if (!st.ok()) {
    s.table.erase(pid);
    fr.state = FrameState::kFree;
    fr.pin_count = 0;
    s.free_frames.push_back(f);
    s.cv.notify_all();
    s.mu.unlock();
    return st;
  }
  fr.state = FrameState::kReady;
  fr.prefetched = true;
  // Unpin straight to the front of the LRU: most recently used, so the
  // window of prefetched-but-unconsumed pages survives until the scan
  // cursor arrives (unless the shard is under real pressure).
  fr.pin_count = 0;
  s.lru.push_front(f);
  fr.lru_pos = s.lru.begin();
  fr.in_lru = true;
  s.cv.notify_all();
  s.mu.unlock();
  return Status::OK();
}

Status BufferPool::PrefetchBatch(const std::vector<PageId>& pids) {
  if (!options_.async_io || options_.serialize_miss_io) {
    for (PageId pid : pids) {
      DPCF_RETURN_IF_ERROR(Prefetch(pid));
    }
    return Status::OK();
  }
  // Async: publish a kLoading frame per still-uncached page (one shard
  // latch at a time, never two), then hand the whole batch to the ring in
  // a single SubmitBatch. Completions run on disk io-threads and resolve
  // each frame to ready-unpinned-MRU — or free it again on error or
  // cancellation — with no thread ever waiting on a prefetched page.
  std::vector<ReadRequest> batch;
  batch.reserve(pids.size());
  IoStats* io = disk_->io_stats();
  for (PageId pid : pids) {
    const uint32_t si = static_cast<uint32_t>(shard_index(pid));
    Shard& s = *shards_[si];
    MutexLock lock(&s.mu);
    if (s.table.find(pid) != s.table.end()) continue;
    Status status = Status::OK();
    int32_t f = AcquireFrameLocked(&s, &status);
    if (f < 0) {
      // Same backpressure semantics as Prefetch: skip, count, carry on.
      ++io->prefetch_rejected;
      continue;
    }
    Frame& fr = s.frames[static_cast<size_t>(f)];
    fr.pid = pid;
    fr.state = FrameState::kLoading;
    fr.pin_count = 1;
    fr.dirty = false;
    fr.prefetched = false;
    s.table[pid] = f;
    batch.push_back(ReadRequest{
        pid, fr.data.get(), ReadClass::kPrefetch,
        [this, si, f](const Status& read) {
          Shard& sh = *shards_[si];
          {
            MutexLock relock(&sh.mu);
            Frame& loaded = sh.frames[static_cast<size_t>(f)];
            if (read.ok()) {
              // Ready, unpinned, most recently used: the window of
              // prefetched-but-unconsumed pages survives until the scan
              // cursor arrives (unless the shard is under real pressure).
              loaded.state = FrameState::kReady;
              loaded.prefetched = true;
              loaded.pin_count = 0;
              sh.lru.push_front(f);
              loaded.lru_pos = sh.lru.begin();
              loaded.in_lru = true;
            } else {
              // Disk error or CancelPending: nothing was read, nothing
              // was charged; give the frame back. Demand fetches of the
              // page will surface a persistent error themselves.
              sh.table.erase(loaded.pid);
              loaded.state = FrameState::kFree;
              loaded.pin_count = 0;
              sh.free_frames.push_back(f);
            }
          }
          sh.cv.notify_all();
        }});
  }
  disk_->SubmitBatch(std::move(batch));
  return Status::OK();
}

Result<PageGuard> BufferPool::NewPage(SegmentId segment, PageId* out_pid) {
  // Allocation is disk metadata only; it must happen before the shard can
  // be known (the shard is a function of the new page id).
  PageNo no = disk_->AllocatePage(segment);
  PageId pid{segment, no};
  const uint32_t si = static_cast<uint32_t>(shard_index(pid));
  Shard& s = *shards_[si];
  MutexLock lock(&s.mu);
  Status status = Status::OK();
  int32_t f = AcquireFrameLocked(&s, &status);
  if (f < 0) return status;
  Frame& fr = s.frames[static_cast<size_t>(f)];
  std::memset(fr.data.get(), 0, disk_->page_size());
  fr.pid = pid;
  fr.state = FrameState::kReady;
  fr.pin_count = 1;
  fr.dirty = true;
  fr.prefetched = false;
  s.table[pid] = f;
  *out_pid = pid;
  return PageGuard(this, si, f, fr.data.get());
}

Status BufferPool::FlushShardLocked(Shard* s) {
  for (auto& [pid, f] : s->table) {
    Frame& fr = s->frames[static_cast<size_t>(f)];
    if (fr.state == FrameState::kReady && fr.dirty) {
      DPCF_RETURN_IF_ERROR(disk_->WritePage(fr.pid, fr.data.get()));
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  // One shard latch at a time, in increasing shard-index order (the
  // documented aggregate order; also what keeps this deadlock-free against
  // any future code that might hold one shard latch).
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    DPCF_RETURN_IF_ERROR(FlushShardLocked(shard.get()));
  }
  return Status::OK();
}

Status BufferPool::ColdReset() {
  if (options_.async_io && !options_.serialize_miss_io) {
    // A speculative readahead backlog must not stall (or fail) the reset:
    // retire everything still queued — the Cancelled completions free
    // their kLoading frames without charging anything — and wait for the
    // claimed reads to finish resolving their frames.
    disk_->CancelPending();
    disk_->DrainSubmissions();
  }
  // Pass 1: verify quiescence, one shard at a time in index order. A pin or
  // in-flight load appearing *after* its shard was checked would be a caller
  // bug — ColdReset's contract requires a quiescent pool, as before.
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto& [pid, f] : shard->table) {
      const Frame& fr = shard->frames[static_cast<size_t>(f)];
      if (fr.pin_count > 0 || fr.state == FrameState::kLoading) {
        return Status::InvalidArgument(StrFormat(
            "ColdReset with pinned page %s", pid.ToString().c_str()));
      }
    }
  }
  // Pass 2: flush and clear, same order.
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    DPCF_RETURN_IF_ERROR(FlushShardLocked(shard.get()));
    for (auto& [pid, f] : shard->table) {
      Frame& fr = shard->frames[static_cast<size_t>(f)];
      fr.state = FrameState::kFree;
      fr.in_lru = false;
      fr.prefetched = false;
      fr.lru_pos = shard->lru.end();
      shard->free_frames.push_back(f);
    }
    shard->table.clear();
    shard->lru.clear();
  }
  disk_->ResetReadHead();
  return Status::OK();
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (auto& shard : shards_) {  // one latch at a time, index order
    MutexLock lock(&shard->mu);
    total += shard->table.size();
  }
  return total;
}

void BufferPool::Unpin(uint32_t shard, int32_t frame) {
  Shard& s = *shards_[shard];
  MutexLock lock(&s.mu);
  Frame& fr = s.frames[static_cast<size_t>(frame)];
  assert(fr.pin_count > 0);
  if (--fr.pin_count == 0) {
    s.lru.push_front(frame);
    fr.lru_pos = s.lru.begin();
    fr.in_lru = true;
  }
}

void BufferPool::MarkDirty(uint32_t shard, int32_t frame) {
  Shard& s = *shards_[shard];
  MutexLock lock(&s.mu);
  s.frames[static_cast<size_t>(frame)].dirty = true;
}

}  // namespace dpcf
