#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace dpcf {

PageGuard::PageGuard(BufferPool* pool, int32_t frame, char* data)
    : pool_(pool), frame_(frame), data_(data) {}

PageGuard::PageGuard(PageGuard&& o) noexcept
    : pool_(o.pool_), frame_(o.frame_), data_(o.data_) {
  o.pool_ = nullptr;
  o.frame_ = -1;
  o.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.frame_ = -1;
    o.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

char* PageGuard::mutable_data() {
  assert(valid());
  pool_->MarkDirty(frame_);
  return data_;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages) {
  assert(capacity_pages > 0);
  frames_.resize(capacity_pages);
  free_frames_.reserve(capacity_pages);
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
    frames_[i].lru_pos = lru_.end();
    free_frames_.push_back(static_cast<int32_t>(capacity_pages - 1 - i));
  }
}

int32_t BufferPool::AcquireFrame(Status* status) {
  if (!free_frames_.empty()) {
    int32_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    *status = Status::ResourceExhausted("all buffer-pool frames are pinned");
    return -1;
  }
  int32_t victim = lru_.back();
  lru_.pop_back();
  Frame& fr = frames_[victim];
  fr.in_lru = false;
  page_table_.erase(fr.pid);
  if (fr.dirty) {
    Status st = disk_->WritePage(fr.pid, fr.data.get());
    if (!st.ok()) {
      *status = st;
      return -1;
    }
    fr.dirty = false;
  }
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId pid) {
  MutexLock lock(&mu_);
  IoStats* io = disk_->io_stats();
  ++io->logical_reads;
  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    ++io->buffer_hits;
    Frame& fr = frames_[it->second];
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
      fr.lru_pos = lru_.end();
    }
    ++fr.pin_count;
    return PageGuard(this, it->second, fr.data.get());
  }
  // Miss: the disk read happens under the latch so no second worker can
  // race a duplicate load of the same page into another frame.
  Status status = Status::OK();
  int32_t f = AcquireFrame(&status);
  if (f < 0) return status;
  Frame& fr = frames_[f];
  Status st = disk_->ReadPage(pid, fr.data.get());
  if (!st.ok()) {
    free_frames_.push_back(f);
    return st;
  }
  fr.pid = pid;
  fr.pin_count = 1;
  fr.dirty = false;
  page_table_[pid] = f;
  return PageGuard(this, f, fr.data.get());
}

Result<PageGuard> BufferPool::NewPage(SegmentId segment, PageId* out_pid) {
  MutexLock lock(&mu_);
  Status status = Status::OK();
  int32_t f = AcquireFrame(&status);
  if (f < 0) return status;
  PageNo no = disk_->AllocatePage(segment);
  PageId pid{segment, no};
  Frame& fr = frames_[f];
  std::memset(fr.data.get(), 0, disk_->page_size());
  fr.pid = pid;
  fr.pin_count = 1;
  fr.dirty = true;
  page_table_[pid] = f;
  *out_pid = pid;
  return PageGuard(this, f, fr.data.get());
}

Status BufferPool::FlushAllLocked() {
  for (auto& [pid, f] : page_table_) {
    Frame& fr = frames_[f];
    if (fr.dirty) {
      DPCF_RETURN_IF_ERROR(disk_->WritePage(fr.pid, fr.data.get()));
      fr.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  return FlushAllLocked();
}

Status BufferPool::ColdReset() {
  MutexLock lock(&mu_);
  for (auto& [pid, f] : page_table_) {
    if (frames_[f].pin_count > 0) {
      return Status::InvalidArgument(StrFormat(
          "ColdReset with pinned page %s", pid.ToString().c_str()));
    }
  }
  DPCF_RETURN_IF_ERROR(FlushAllLocked());
  for (auto& [pid, f] : page_table_) {
    Frame& fr = frames_[f];
    fr.in_lru = false;
    fr.lru_pos = lru_.end();
    free_frames_.push_back(f);
  }
  page_table_.clear();
  lru_.clear();
  disk_->ResetReadHead();
  return Status::OK();
}

void BufferPool::Unpin(int32_t frame) {
  MutexLock lock(&mu_);
  Frame& fr = frames_[frame];
  assert(fr.pin_count > 0);
  if (--fr.pin_count == 0) {
    lru_.push_front(frame);
    fr.lru_pos = lru_.begin();
    fr.in_lru = true;
  }
}

void BufferPool::MarkDirty(int32_t frame) {
  MutexLock lock(&mu_);
  frames_[frame].dirty = true;
}

}  // namespace dpcf
