#include "storage/disk_manager.h"

#include <cstring>

#include "common/string_util.h"

namespace dpcf {

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {}

SegmentId DiskManager::CreateSegment(std::string name) {
  MutexLock lock(&mu_);
  segments_.push_back(Segment{std::move(name), {}});
  return static_cast<SegmentId>(segments_.size() - 1);
}

PageNo DiskManager::AllocatePage(SegmentId segment) {
  MutexLock lock(&mu_);
  Segment& seg = segments_.at(segment);
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  seg.pages.push_back(std::move(page));
  return static_cast<PageNo>(seg.pages.size() - 1);
}

uint32_t DiskManager::SegmentPageCount(SegmentId segment) const {
  MutexLock lock(&mu_);
  return static_cast<uint32_t>(segments_.at(segment).pages.size());
}

const std::string& DiskManager::SegmentName(SegmentId segment) const {
  MutexLock lock(&mu_);
  return segments_.at(segment).name;
}

bool DiskManager::ValidPage(PageId pid) const {
  return pid.segment < segments_.size() &&
         pid.page_no < segments_[pid.segment].pages.size();
}

Status DiskManager::ReadPage(PageId pid, char* out) {
  MutexLock lock(&mu_);
  if (!ValidPage(pid)) {
    return Status::OutOfRange(StrFormat("read of unknown page %s",
                                        pid.ToString().c_str()));
  }
  const bool sequential = last_read_.valid() &&
                          last_read_.segment == pid.segment &&
                          pid.page_no == last_read_.page_no + 1;
  if (sequential) {
    ++io_stats_.physical_seq_reads;
  } else {
    ++io_stats_.physical_rand_reads;
  }
  last_read_ = pid;
  std::memcpy(out, segments_[pid.segment].pages[pid.page_no].get(),
              page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId pid, const char* data) {
  MutexLock lock(&mu_);
  if (!ValidPage(pid)) {
    return Status::OutOfRange(StrFormat("write of unknown page %s",
                                        pid.ToString().c_str()));
  }
  ++io_stats_.physical_writes;
  std::memcpy(segments_[pid.segment].pages[pid.page_no].get(), data,
              page_size_);
  return Status::OK();
}

char* DiskManager::RawPage(PageId pid) {
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

const char* DiskManager::RawPage(PageId pid) const {
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

void DiskManager::ResetReadHead() {
  MutexLock lock(&mu_);
  last_read_ = PageId{};
}

}  // namespace dpcf
