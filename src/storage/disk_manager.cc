#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "obs/stall_tracker.h"
#include "obs/trace_collector.h"

namespace dpcf {

namespace {
int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

/// Retires one claimed submission at scope exit: decrements in_flight_
/// under the ring latch and wakes producers blocked on a full ring plus
/// DrainSubmissions waiters. RAII so the slot is retired even if the
/// completion callback returns early; constructed *before* the read and
/// destroyed *after* the callback, which is what makes DrainSubmissions'
/// "every callback has returned" guarantee hold.
class CompletionScope {
 public:
  explicit CompletionScope(DiskManager* disk) : disk_(disk) {}
  CompletionScope(const CompletionScope&) = delete;
  CompletionScope& operator=(const CompletionScope&) = delete;
  ~CompletionScope() {
    {
      MutexLock lock(&disk_->submit_mu_);
      --disk_->in_flight_;
      if (disk_->m_in_flight_ != nullptr) {
        disk_->m_in_flight_->Set(static_cast<double>(disk_->in_flight_));
      }
    }
    disk_->submit_cv_.notify_all();
  }

 private:
  DiskManager* const disk_;
};

DiskManager::DiskManager(size_t page_size)
    : DiskManager(DiskManagerOptions{page_size, 2, 256}) {}

DiskManager::DiskManager(const DiskManagerOptions& options)
    : page_size_(options.page_size),
      io_threads_(options.io_threads < 1 ? 1 : options.io_threads),
      queue_depth_(options.queue_depth < 1 ? 1 : options.queue_depth) {}

DiskManager::~DiskManager() {
  std::deque<ReadRequest> orphaned;
  {
    MutexLock lock(&submit_mu_);
    stop_workers_ = true;
    orphaned.swap(queue_);
  }
  submit_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers are gone; whatever was still waiting on the ring never ran.
  // Callers that care (the buffer pool, tests) drain or cancel first, so
  // these callbacks never reference already-destroyed state here.
  for (ReadRequest& req : orphaned) {
    if (req.on_complete) {
      req.on_complete(Status::Cancelled("disk manager destroyed"));
    }
  }
}

void DiskManager::AttachMetrics(MetricsRegistry* registry,
                                TraceCollector* trace,
                                EventJournal* journal) {
  trace_ = trace;
  journal_ = journal;
  ring_latency_observed_ = registry != nullptr || journal != nullptr;
  if (registry == nullptr) return;
  m_reads_seq_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "seq"}});
  m_reads_rand_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "rand"}});
  m_reads_prefetch_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "prefetch"}});
  m_writes_ = registry->GetCounter("disk_writes_total",
                                   "Physical page writes");
  m_latency_us_ = registry->GetGauge(
      "disk_read_latency_us", "Configured simulated per-read latency");
  m_latency_us_->Set(
      static_cast<double>(read_latency_us_.load(std::memory_order_relaxed)));
  m_submitted_ = registry->GetCounter(
      "disk_async_submitted_total",
      "Reads enqueued on the async submission ring");
  m_cancelled_ = registry->GetCounter(
      "disk_async_cancelled_total",
      "Submitted reads retired unread by CancelPending");
  m_queue_depth_ = registry->GetGauge(
      "disk_submission_queue_pages",
      "Pages waiting on the submission ring (unclaimed requests)");
  m_submit_to_complete_us_ = registry->GetHistogram(
      "disk_submit_to_complete_us",
      "Wall time from ring submission to completion-callback return",
      1.0, 2.0, 20);
  m_backpressure_stalls_ = registry->GetCounter(
      "disk_backpressure_stalls_total",
      "Producer waits on a full submission ring");
  m_in_flight_ = registry->GetGauge(
      "disk_in_flight_pages",
      "Claimed submissions a completion worker is currently servicing");
  const char* cls_names[2] = {"demand", "prefetch"};
  for (int c = 0; c < 2; ++c) {
    m_queue_wait_us_[c] = registry->GetHistogram(
        "disk_queue_wait_us",
        "Wall time a submission waited unclaimed on the ring, by class",
        1.0, 2.0, 20, {{"class", cls_names[c]}});
    m_service_time_us_[c] = registry->GetHistogram(
        "disk_service_time_us",
        "Wall time from worker claim to completion-callback return, "
        "by class",
        1.0, 2.0, 20, {{"class", cls_names[c]}});
  }
}

void DiskManager::set_read_latency_us(int64_t us) {
  read_latency_us_.store(us, std::memory_order_relaxed);
  if (m_latency_us_ != nullptr) m_latency_us_->Set(static_cast<double>(us));
}

SegmentId DiskManager::CreateSegment(std::string name) {
  MutexLock lock(&mu_);
  segments_.push_back(Segment{std::move(name), {}});
  return static_cast<SegmentId>(segments_.size() - 1);
}

PageNo DiskManager::AllocatePage(SegmentId segment) {
  MutexLock lock(&mu_);
  Segment& seg = segments_.at(segment);
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  seg.pages.push_back(std::move(page));
  return static_cast<PageNo>(seg.pages.size() - 1);
}

uint32_t DiskManager::SegmentPageCount(SegmentId segment) const {
  MutexLock lock(&mu_);
  return static_cast<uint32_t>(segments_.at(segment).pages.size());
}

const std::string& DiskManager::SegmentName(SegmentId segment) const {
  MutexLock lock(&mu_);
  return segments_.at(segment).name;
}

bool DiskManager::ValidPage(PageId pid) const {
  return pid.segment < segments_.size() &&
         pid.page_no < segments_[pid.segment].pages.size();
}

Status DiskManager::CopyPageImage(PageId pid, char* out, ReadClass cls) {
  const char* src = nullptr;
  {
    MutexLock lock(&mu_);
    if (!ValidPage(pid)) {
      return Status::OutOfRange(StrFormat("read of unknown page %s",
                                          pid.ToString().c_str()));
    }
    if (cls == ReadClass::kPrefetch) {
      // Speculative: charged separately and invisible to the read head, so
      // readahead cannot flip demand reads between seq and rand.
      ++io_stats_.prefetch_reads;
      if (m_reads_prefetch_ != nullptr) m_reads_prefetch_->Increment();
    } else {
      const bool sequential = last_read_.valid() &&
                              last_read_.segment == pid.segment &&
                              pid.page_no == last_read_.page_no + 1;
      if (sequential) {
        ++io_stats_.physical_seq_reads;
        if (m_reads_seq_ != nullptr) m_reads_seq_->Increment();
      } else {
        ++io_stats_.physical_rand_reads;
        if (m_reads_rand_ != nullptr) m_reads_rand_->Increment();
      }
      last_read_ = pid;
    }
    src = segments_[pid.segment].pages[pid.page_no].get();
  }
  // Transfer outside the latch: `src` is a stable heap allocation (pages are
  // never freed or reallocated), and the buffer pool orders conflicting
  // transfers of the same page through its shard latches (class comment).
  const int64_t lat = read_latency_us_.load(std::memory_order_relaxed);
  if (lat > 0) std::this_thread::sleep_for(std::chrono::microseconds(lat));
  std::memcpy(out, src, page_size_);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId pid, char* out, ReadClass cls) {
  return CopyPageImage(pid, out, cls);
}

DiskManager::SubmissionGuard::SubmissionGuard(DiskManager* disk)
    : disk_(disk) {
  disk_->submit_mu_.lock();
  disk_->EnsureWorkersLocked();
}

void DiskManager::SubmissionGuard::Add(ReadRequest req) {
  // Producer backpressure: never grow the ring past queue_depth. The wait
  // releases submit_mu_, so workers can keep claiming entries.
  if (disk_->queue_.size() >= disk_->queue_depth_ &&
      !disk_->stop_workers_) {
    // A timed stall: attributed to the submitting query's StallScope,
    // counted, and bracketed in the flight recorder.
    const bool timed = disk_->ring_latency_observed_ ||
                       CurrentStallSink() != nullptr;
    const int64_t wait_t0 = timed ? SteadyNowUs() : 0;
    if (disk_->m_backpressure_stalls_ != nullptr) {
      disk_->m_backpressure_stalls_->Increment();
    }
    if (disk_->journal_ != nullptr) {
      disk_->journal_->Record(JournalEvent::kBackpressureBegin,
                              disk_->queue_.size());
    }
    while (disk_->queue_.size() >= disk_->queue_depth_ &&
           !disk_->stop_workers_) {
      disk_->submit_cv_.wait(disk_->submit_mu_);
    }
    if (timed) {
      const int64_t waited_us = SteadyNowUs() - wait_t0;
      ChargeStall(StallKind::kBackpressureWait, waited_us);
      if (disk_->journal_ != nullptr) {
        disk_->journal_->Record(JournalEvent::kBackpressureEnd,
                                static_cast<uint64_t>(waited_us));
      }
    }
  }
  if (disk_->ring_latency_observed_) {
    req.submit_us = SteadyNowUs();
  }
  if (disk_->journal_ != nullptr) {
    disk_->journal_->Record(JournalEvent::kRingSubmit, req.pid.page_no,
                            req.cls == ReadClass::kPrefetch ? 1 : 0);
  }
  disk_->queue_.push_back(std::move(req));
  if (disk_->m_submitted_ != nullptr) disk_->m_submitted_->Increment();
  if (disk_->m_queue_depth_ != nullptr) {
    disk_->m_queue_depth_->Set(static_cast<double>(disk_->queue_.size()));
  }
  ++added_;
}

DiskManager::SubmissionGuard::~SubmissionGuard() {
  disk_->submit_mu_.unlock();
  if (added_ > 0) {
    disk_->submit_cv_.notify_all();
    if (disk_->trace_ != nullptr && disk_->trace_->enabled()) {
      disk_->trace_->AddInstant(
          "io", StrFormat("submit batch n=%zu", added_));
    }
  }
}

void DiskManager::SubmitRead(PageId pid, char* out, ReadClass cls,
                             ReadCompletion cb) {
  SubmissionGuard guard(this);
  guard.Add(ReadRequest{pid, out, cls, std::move(cb)});
}

void DiskManager::SubmitBatch(std::vector<ReadRequest> batch) {
  if (batch.empty()) return;
  SubmissionGuard guard(this);
  for (ReadRequest& req : batch) guard.Add(std::move(req));
}

void DiskManager::EnsureWorkersLocked() {
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(static_cast<size_t>(io_threads_));
  for (int i = 0; i < io_threads_; ++i) {
    workers_.emplace_back([this] { IoWorkerLoop(); });
  }
}

void DiskManager::IoWorkerLoop() {
  for (;;) {
    submit_mu_.lock();
    while (queue_.empty() && !stop_workers_) {
      submit_cv_.wait(submit_mu_);
    }
    if (queue_.empty()) {  // stop requested and nothing left to claim
      submit_mu_.unlock();
      return;
    }
    ReadRequest req = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    if (m_in_flight_ != nullptr) {
      m_in_flight_->Set(static_cast<double>(in_flight_));
    }
    submit_mu_.unlock();
    // A producer may be blocked on the full ring; the claim freed a slot.
    submit_cv_.notify_all();
    {
      CompletionScope done(this);
      const size_t cls_idx = req.cls == ReadClass::kPrefetch ? 1 : 0;
      // Claim timestamp: splits submit→complete into queue wait
      // (submit→dispatch) and service time (dispatch→complete).
      const int64_t dispatch_us = req.submit_us != 0 ? SteadyNowUs() : 0;
      if (req.submit_us != 0) {
        const int64_t queue_wait = dispatch_us - req.submit_us;
        if (m_queue_wait_us_[cls_idx] != nullptr) {
          m_queue_wait_us_[cls_idx]->Observe(
              static_cast<double>(queue_wait));
        }
        if (journal_ != nullptr) {
          journal_->Record(JournalEvent::kRingDispatch, req.pid.page_no,
                           static_cast<uint64_t>(queue_wait));
        }
      }
      const bool traced = trace_ != nullptr && trace_->enabled();
      const int64_t span_begin = traced ? trace_->NowUs() : 0;
      const Status st = CopyPageImage(req.pid, req.dst, req.cls);
      if (traced) {
        trace_->AddSpan(
            "io",
            StrFormat("async %s read %s",
                      req.cls == ReadClass::kPrefetch ? "prefetch"
                                                      : "demand",
                      req.pid.ToString().c_str()),
            span_begin);
      }
      if (req.on_complete) req.on_complete(st);
      if (req.submit_us != 0) {
        const int64_t complete_us = SteadyNowUs();
        const int64_t service = complete_us - dispatch_us;
        if (m_service_time_us_[cls_idx] != nullptr) {
          m_service_time_us_[cls_idx]->Observe(
              static_cast<double>(service));
        }
        if (m_submit_to_complete_us_ != nullptr) {
          m_submit_to_complete_us_->Observe(
              static_cast<double>(complete_us - req.submit_us));
        }
        if (journal_ != nullptr) {
          journal_->Record(JournalEvent::kRingComplete, req.pid.page_no,
                           static_cast<uint64_t>(service));
        }
      }
    }
  }
}

void DiskManager::CancelPending() {
  std::deque<ReadRequest> cancelled;
  {
    MutexLock lock(&submit_mu_);
    cancelled.swap(queue_);
    if (m_queue_depth_ != nullptr) m_queue_depth_->Set(0.0);
  }
  // Producers blocked on a full ring can proceed now.
  submit_cv_.notify_all();
  // Callbacks fire off-latch: they are allowed to take buffer-pool shard
  // latches (rank 100), which would invert against submit_mu_ (rank 250).
  for (ReadRequest& req : cancelled) {
    if (m_cancelled_ != nullptr) m_cancelled_->Increment();
    if (req.on_complete) {
      req.on_complete(
          Status::Cancelled("read retired from the submission ring"));
    }
  }
}

void DiskManager::DrainSubmissions() {
  submit_mu_.lock();
  while (!queue_.empty() || in_flight_ > 0) {
    submit_cv_.wait(submit_mu_);
  }
  submit_mu_.unlock();
}

size_t DiskManager::pending_submissions() const {
  MutexLock lock(&submit_mu_);
  return queue_.size() + in_flight_;
}

Status DiskManager::WritePage(PageId pid, const char* data) {
  char* dst = nullptr;
  {
    MutexLock lock(&mu_);
    if (!ValidPage(pid)) {
      return Status::OutOfRange(StrFormat("write of unknown page %s",
                                          pid.ToString().c_str()));
    }
    ++io_stats_.physical_writes;
    if (m_writes_ != nullptr) m_writes_->Increment();
    dst = segments_[pid.segment].pages[pid.page_no].get();
  }
  std::memcpy(dst, data, page_size_);
  return Status::OK();
}

char* DiskManager::RawPage(PageId pid) {
  ++io_stats_.raw_page_reads;  // atomic; no page access is unaccounted
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

const char* DiskManager::RawPage(PageId pid) const {
  ++io_stats_.raw_page_reads;
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

void DiskManager::ResetReadHead() {
  MutexLock lock(&mu_);
  last_read_ = PageId{};
}

}  // namespace dpcf
