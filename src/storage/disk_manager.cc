#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace dpcf {

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {}

void DiskManager::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  m_reads_seq_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "seq"}});
  m_reads_rand_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "rand"}});
  m_reads_prefetch_ = registry->GetCounter(
      "disk_reads_total", "Physical page reads by class",
      {{"class", "prefetch"}});
  m_writes_ = registry->GetCounter("disk_writes_total",
                                   "Physical page writes");
  m_latency_us_ = registry->GetGauge(
      "disk_read_latency_us", "Configured simulated per-read latency");
  m_latency_us_->Set(
      static_cast<double>(read_latency_us_.load(std::memory_order_relaxed)));
}

void DiskManager::set_read_latency_us(int64_t us) {
  read_latency_us_.store(us, std::memory_order_relaxed);
  if (m_latency_us_ != nullptr) m_latency_us_->Set(static_cast<double>(us));
}

SegmentId DiskManager::CreateSegment(std::string name) {
  MutexLock lock(&mu_);
  segments_.push_back(Segment{std::move(name), {}});
  return static_cast<SegmentId>(segments_.size() - 1);
}

PageNo DiskManager::AllocatePage(SegmentId segment) {
  MutexLock lock(&mu_);
  Segment& seg = segments_.at(segment);
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  seg.pages.push_back(std::move(page));
  return static_cast<PageNo>(seg.pages.size() - 1);
}

uint32_t DiskManager::SegmentPageCount(SegmentId segment) const {
  MutexLock lock(&mu_);
  return static_cast<uint32_t>(segments_.at(segment).pages.size());
}

const std::string& DiskManager::SegmentName(SegmentId segment) const {
  MutexLock lock(&mu_);
  return segments_.at(segment).name;
}

bool DiskManager::ValidPage(PageId pid) const {
  return pid.segment < segments_.size() &&
         pid.page_no < segments_[pid.segment].pages.size();
}

Status DiskManager::ReadPage(PageId pid, char* out, ReadClass cls) {
  const char* src = nullptr;
  {
    MutexLock lock(&mu_);
    if (!ValidPage(pid)) {
      return Status::OutOfRange(StrFormat("read of unknown page %s",
                                          pid.ToString().c_str()));
    }
    if (cls == ReadClass::kPrefetch) {
      // Speculative: charged separately and invisible to the read head, so
      // readahead cannot flip demand reads between seq and rand.
      ++io_stats_.prefetch_reads;
      if (m_reads_prefetch_ != nullptr) m_reads_prefetch_->Increment();
    } else {
      const bool sequential = last_read_.valid() &&
                              last_read_.segment == pid.segment &&
                              pid.page_no == last_read_.page_no + 1;
      if (sequential) {
        ++io_stats_.physical_seq_reads;
        if (m_reads_seq_ != nullptr) m_reads_seq_->Increment();
      } else {
        ++io_stats_.physical_rand_reads;
        if (m_reads_rand_ != nullptr) m_reads_rand_->Increment();
      }
      last_read_ = pid;
    }
    src = segments_[pid.segment].pages[pid.page_no].get();
  }
  // Transfer outside the latch: `src` is a stable heap allocation (pages are
  // never freed or reallocated), and the buffer pool orders conflicting
  // transfers of the same page through its shard latches (class comment).
  const int64_t lat = read_latency_us_.load(std::memory_order_relaxed);
  if (lat > 0) std::this_thread::sleep_for(std::chrono::microseconds(lat));
  std::memcpy(out, src, page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId pid, const char* data) {
  char* dst = nullptr;
  {
    MutexLock lock(&mu_);
    if (!ValidPage(pid)) {
      return Status::OutOfRange(StrFormat("write of unknown page %s",
                                          pid.ToString().c_str()));
    }
    ++io_stats_.physical_writes;
    if (m_writes_ != nullptr) m_writes_->Increment();
    dst = segments_[pid.segment].pages[pid.page_no].get();
  }
  std::memcpy(dst, data, page_size_);
  return Status::OK();
}

char* DiskManager::RawPage(PageId pid) {
  ++io_stats_.raw_page_reads;  // atomic; no page access is unaccounted
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

const char* DiskManager::RawPage(PageId pid) const {
  ++io_stats_.raw_page_reads;
  MutexLock lock(&mu_);
  return segments_.at(pid.segment).pages.at(pid.page_no).get();
}

void DiskManager::ResetReadHead() {
  MutexLock lock(&mu_);
  last_read_ = PageId{};
}

}  // namespace dpcf
