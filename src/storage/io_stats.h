// I/O accounting for the simulated disk.
//
// The paper evaluates plans by wall-clock time on a cold cache; our substrate
// replaces the physical disk with deterministic accounting. Every physical
// page read is classified as *sequential* (the page immediately following the
// previously read page of the same segment — a streaming scan) or *random*
// (anything else — a disk seek). Simulated elapsed time is derived from these
// counters by SimCostModel (storage/cost_params.h).

#pragma once

#include <cstdint>
#include <string>

namespace dpcf {

/// Counter block for the simulated disk + buffer pool. Plain data; reset
/// between measured runs.
struct IoStats {
  // Physical I/O (buffer-pool misses reaching the disk manager).
  int64_t physical_seq_reads = 0;
  int64_t physical_rand_reads = 0;
  int64_t physical_writes = 0;

  // Logical I/O (every buffer-pool page request, hit or miss).
  int64_t logical_reads = 0;
  int64_t buffer_hits = 0;

  int64_t physical_reads() const {
    return physical_seq_reads + physical_rand_reads;
  }

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& o) {
    physical_seq_reads += o.physical_seq_reads;
    physical_rand_reads += o.physical_rand_reads;
    physical_writes += o.physical_writes;
    logical_reads += o.logical_reads;
    buffer_hits += o.buffer_hits;
    return *this;
  }

  std::string ToString() const;
};

/// Tunable simulated device parameters (milliseconds per page / per op).
///
/// Defaults model a paper-era (2008) commodity drive behind a DBMS doing
/// read-ahead: sequential pages stream at ~100 MB/s (0.08 ms per 8 KiB page)
/// while a random page fetch costs a seek+rotation (~1 ms effective once the
/// engine's prefetching is accounted for). CPU work is charged per processed
/// row and per monitor operation so that monitoring overhead (paper Figs 7/9)
/// shows up in simulated time too.
struct SimCostParams {
  double seq_read_ms = 0.08;
  double rand_read_ms = 1.0;
  double write_ms = 0.08;
  double cpu_row_ms = 0.0002;        // per row pushed through an operator
  double cpu_pred_atom_ms = 0.00005; // per atomic predicate evaluation
  double cpu_hash_ms = 0.00004;      // per monitor/bitvector hash
  double cpu_probe_ms = 0.0002;      // per hash-table probe/insert
  /// Per-row flag bookkeeping of the grouped-page counters ("a single
  /// comparison for each row", paper III-B) — an order of magnitude
  /// cheaper than a hash.
  double cpu_monitor_row_ms = 0.00001;
};

/// CPU-side counters maintained by the execution engine (the exec module
/// increments them; they live here so SimulatedMillis can combine both).
struct CpuStats {
  int64_t rows_processed = 0;
  int64_t predicate_atom_evals = 0;
  int64_t monitor_hash_ops = 0;
  int64_t monitor_row_ops = 0;
  int64_t hash_table_ops = 0;

  void Reset() { *this = CpuStats(); }

  CpuStats& operator+=(const CpuStats& o) {
    rows_processed += o.rows_processed;
    predicate_atom_evals += o.predicate_atom_evals;
    monitor_hash_ops += o.monitor_hash_ops;
    monitor_row_ops += o.monitor_row_ops;
    hash_table_ops += o.hash_table_ops;
    return *this;
  }

  std::string ToString() const;
};

/// Deterministic simulated elapsed time for a run, in milliseconds.
double SimulatedMillis(const IoStats& io, const CpuStats& cpu,
                       const SimCostParams& params = SimCostParams());

}  // namespace dpcf
