// I/O accounting for the simulated disk.
//
// The paper evaluates plans by wall-clock time on a cold cache; our substrate
// replaces the physical disk with deterministic accounting. Every physical
// page read is classified as *sequential* (the page immediately following the
// previously read page of the same segment — a streaming scan) or *random*
// (anything else — a disk seek). Simulated elapsed time is derived from these
// counters by SimCostModel (storage/cost_params.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dpcf {

/// Relaxed atomic counter that still behaves like a plain int64 value:
/// copyable, assignable from/convertible to int64_t. Concurrent increments
/// from morsel-parallel workers are safe; cross-counter consistency is only
/// guaranteed at quiescent points (before/after a run), which is when the
/// executor snapshots them.
///
/// Thread-safety contract: this counter is its own synchronization — it
/// carries no GUARDED_BY and needs no latch (the dpcf-mutex-annotation
/// lint rule and clang TSA only police non-atomic shared state). Copy and
/// assignment are NOT atomic as a whole (load then store) and are reserved
/// for quiescent snapshots/Reset; the concurrent-safe operations are the
/// increments and the int64_t conversion.
class AtomicCounter {
 public:
  AtomicCounter(int64_t v = 0) : v_(v) {}
  AtomicCounter(const AtomicCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  AtomicCounter& operator=(const AtomicCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator=(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator int64_t() const { return v_.load(std::memory_order_relaxed); }

  AtomicCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator+=(int64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator-=(int64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<int64_t> v_;
};

// The simulated hot path charges I/O from every scan worker; a counter
// that silently degraded to a lock would serialize them all.
static_assert(std::atomic<int64_t>::is_always_lock_free,
              "AtomicCounter must be lock-free on this platform");

/// Counter block for the simulated disk + buffer pool. Counters are relaxed
/// atomics so concurrent scan workers can charge I/O without tearing; reset
/// between measured runs.
struct IoStats {
  // Physical I/O (buffer-pool misses reaching the disk manager).
  AtomicCounter physical_seq_reads;
  AtomicCounter physical_rand_reads;
  AtomicCounter physical_writes;

  // Speculative reads issued by scan readahead. Charged *instead of* a
  // physical read so a prefetched page that is never consumed does not
  // inflate the figures; when the scan later fetches it, that fetch is a
  // logical read + buffer hit. Invariant at quiescent points:
  //   logical_reads == buffer_hits + physical_reads().
  AtomicCounter prefetch_reads;

  // Demand fetches that found their frame resident *because* a kPrefetch
  // read loaded it (counted once per prefetched load, on first hit). The
  // prefetch hit rate prefetch_hits / prefetch_reads is the signal the
  // adaptive-readahead roadmap item scales the window from. Invariant at
  // quiescent points: prefetch_hits <= prefetch_reads.
  AtomicCounter prefetch_hits;

  // Prefetch requests the buffer pool dropped because the page's shard had
  // no evictable frame (readahead running too far ahead of the consumers).
  // Nothing was read, so nothing else is charged; the adaptive readahead
  // window treats a nonzero delta here as the signal to narrow.
  AtomicCounter prefetch_rejected;

  // Logical I/O: every *successful* buffer-pool page request, hit or miss.
  // Failed fetches (e.g. ResourceExhausted) charge nothing, which keeps the
  // invariant above exact rather than approximate under contention.
  AtomicCounter logical_reads;
  AtomicCounter buffer_hits;

  // Page images handed out by DiskManager::RawPage, the latch-cheap escape
  // hatch the offline paths (histogram/statistics builds, index builds,
  // workload generation) use to scan segments without disturbing the buffer
  // pool. Counted so no page access is invisible to the accounting
  // (dpcf-ast-charge-conservation polices this); charged no simulated time,
  // since these paths sit outside the measured query runs.
  AtomicCounter raw_page_reads;

  int64_t physical_reads() const {
    return physical_seq_reads + physical_rand_reads;
  }

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& o) {
    physical_seq_reads += o.physical_seq_reads;
    physical_rand_reads += o.physical_rand_reads;
    physical_writes += o.physical_writes;
    prefetch_reads += o.prefetch_reads;
    prefetch_hits += o.prefetch_hits;
    prefetch_rejected += o.prefetch_rejected;
    logical_reads += o.logical_reads;
    buffer_hits += o.buffer_hits;
    raw_page_reads += o.raw_page_reads;
    return *this;
  }

  /// Field-wise subtraction, for before/after deltas at quiescent points
  /// (the executor and the operator profiler both snapshot this way).
  IoStats& operator-=(const IoStats& o) {
    physical_seq_reads -= o.physical_seq_reads;
    physical_rand_reads -= o.physical_rand_reads;
    physical_writes -= o.physical_writes;
    prefetch_reads -= o.prefetch_reads;
    prefetch_hits -= o.prefetch_hits;
    prefetch_rejected -= o.prefetch_rejected;
    logical_reads -= o.logical_reads;
    buffer_hits -= o.buffer_hits;
    raw_page_reads -= o.raw_page_reads;
    return *this;
  }

  std::string ToString() const;
};

/// Tunable simulated device parameters (milliseconds per page / per op).
///
/// Defaults model a paper-era (2008) commodity drive behind a DBMS doing
/// read-ahead: sequential pages stream at ~100 MB/s (0.08 ms per 8 KiB page)
/// while a random page fetch costs a seek+rotation (~1 ms effective once the
/// engine's prefetching is accounted for). CPU work is charged per processed
/// row and per monitor operation so that monitoring overhead (paper Figs 7/9)
/// shows up in simulated time too.
struct SimCostParams {
  double seq_read_ms = 0.08;
  double rand_read_ms = 1.0;
  double write_ms = 0.08;
  double cpu_row_ms = 0.0002;        // per row pushed through an operator
  double cpu_pred_atom_ms = 0.00005; // per atomic predicate evaluation
  double cpu_hash_ms = 0.00004;      // per monitor/bitvector hash
  double cpu_probe_ms = 0.0002;      // per hash-table probe/insert
  /// Per-row flag bookkeeping of the grouped-page counters ("a single
  /// comparison for each row", paper III-B) — an order of magnitude
  /// cheaper than a hash.
  double cpu_monitor_row_ms = 0.00001;
};

/// CPU-side counters maintained by the execution engine (the exec module
/// increments them; they live here so SimulatedMillis can combine both).
///
/// Deliberately NOT atomic: these sit on the per-row hot path (several
/// increments per row), where shared atomics would serialize scan workers on
/// one cache line. Parallel operators give each worker a thread-local
/// CpuStats and merge field-wise (operator+=) at close — same totals, no
/// contention.
struct CpuStats {
  int64_t rows_processed = 0;
  int64_t predicate_atom_evals = 0;
  int64_t monitor_hash_ops = 0;
  int64_t monitor_row_ops = 0;
  int64_t hash_table_ops = 0;

  void Reset() { *this = CpuStats(); }

  CpuStats& operator+=(const CpuStats& o) {
    rows_processed += o.rows_processed;
    predicate_atom_evals += o.predicate_atom_evals;
    monitor_hash_ops += o.monitor_hash_ops;
    monitor_row_ops += o.monitor_row_ops;
    hash_table_ops += o.hash_table_ops;
    return *this;
  }

  CpuStats& operator-=(const CpuStats& o) {
    rows_processed -= o.rows_processed;
    predicate_atom_evals -= o.predicate_atom_evals;
    monitor_hash_ops -= o.monitor_hash_ops;
    monitor_row_ops -= o.monitor_row_ops;
    hash_table_ops -= o.hash_table_ops;
    return *this;
  }

  std::string ToString() const;
};

/// Deterministic simulated elapsed time for a run, in milliseconds.
double SimulatedMillis(const IoStats& io, const CpuStats& cpu,
                       const SimCostParams& params = SimCostParams());

}  // namespace dpcf
