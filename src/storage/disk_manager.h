// Simulated disk.
//
// Substitutes for the physical storage stack underneath the buffer pool: it
// holds every segment's pages in memory, and its only job besides byte
// storage is to *classify* each read as sequential or random, which is what
// the paper's evaluation ultimately measures (random fetches are what make a
// mis-costed Index Seek slow). A single read head is modelled: a read is
// sequential iff it targets the page immediately after the previous read in
// the same segment.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dpcf {

/// In-memory simulated disk with per-segment page arrays and I/O accounting.
///
/// Thread-safe: a single latch serializes page transfers and the read-head
/// classification (sequential vs random is inherently a property of the
/// global request order, so it must be decided under the latch), and the
/// IoStats counters are relaxed atomics. With morsel-parallel scans the
/// interleaving of workers means fewer reads classify as sequential than in
/// a serial scan — exactly as on real hardware with one arm.
class DiskManager {
 public:
  explicit DiskManager(size_t page_size = kDefaultPageSize);

  size_t page_size() const { return page_size_; }

  /// Creates an empty segment and returns its id.
  SegmentId CreateSegment(std::string name);

  /// Appends a zeroed page to the segment; returns its page number.
  /// Allocation is a metadata operation and is not charged as I/O.
  PageNo AllocatePage(SegmentId segment);

  /// Number of pages currently allocated in the segment.
  uint32_t SegmentPageCount(SegmentId segment) const;

  const std::string& SegmentName(SegmentId segment) const;

  /// Physical read of a page into `out` (page_size bytes). Charged to
  /// IoStats as sequential or random per the read-head model.
  Status ReadPage(PageId pid, char* out);

  /// Physical write of a page. Charged as a write.
  Status WritePage(PageId pid, const char* data);

  /// Direct pointer to page bytes, bypassing I/O accounting. For bulk
  /// loaders and tests only; query execution must go through the
  /// BufferPool so physical I/O is charged.
  char* RawPage(PageId pid);
  const char* RawPage(PageId pid) const;

  IoStats* io_stats() { return &io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

  /// Forgets the read-head position (e.g. between measured runs) so the
  /// first read of the next run is classified random, as on a cold device.
  void ResetReadHead();

 private:
  struct Segment {
    std::string name;
    std::vector<std::unique_ptr<char[]>> pages;
  };

  bool ValidPage(PageId pid) const;

  size_t page_size_;
  mutable std::mutex mu_;  // guards segments_ layout and last_read_
  std::vector<Segment> segments_;
  IoStats io_stats_;
  PageId last_read_;  // invalid when the head position is unknown
};

}  // namespace dpcf
