// Simulated disk.
//
// Substitutes for the physical storage stack underneath the buffer pool: it
// holds every segment's pages in memory, and its only job besides byte
// storage is to *classify* each read as sequential or random, which is what
// the paper's evaluation ultimately measures (random fetches are what make a
// mis-costed Index Seek slow). A single read head is modelled: a read is
// sequential iff it targets the page immediately after the previous read in
// the same segment.
//
// Two read paths share that classifier:
//  * ReadPage(): the synchronous path — classify + charge under the latch,
//    sleep the simulated latency and copy the bytes off-latch. The caller's
//    thread is blocked for the full device time.
//  * SubmitRead()/SubmitBatch(): the io_uring-style asynchronous path — the
//    request lands on a bounded submission ring (its own ranked latch,
//    lock_rank::kDiskSubmission) and a small pool of completion workers
//    (DiskManagerOptions::io_threads) performs the same classify/charge/
//    sleep/copy and then fires the completion callback off-latch. The
//    accounting is identical to the synchronous path because both funnel
//    through CopyPageImage(); only *whose thread* pays the latency differs.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dpcf {

/// How a read should be charged to IoStats. Demand reads go through the
/// read-head classifier (sequential vs random); prefetch reads are charged
/// to the separate prefetch_reads counter and do NOT move the read head, so
/// readahead cannot perturb the classification of the demand stream.
enum class ReadClass { kDemand, kPrefetch };

class Counter;          // obs/metrics_registry.h
class Gauge;            // obs/metrics_registry.h
class LogHistogram;     // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h
class TraceCollector;   // obs/trace_collector.h
class EventJournal;     // obs/event_journal.h
class CompletionScope;  // disk_manager.cc (friend below)

/// Invoked exactly once per submitted request, off every disk latch, with
/// the read's outcome: OK once the bytes are in the destination buffer, an
/// error status if the page was invalid, or Cancelled if CancelPending()
/// (or destruction) retired the request before a worker claimed it — in
/// which case the destination buffer was never written.
using ReadCompletion = std::function<void(const Status&)>;

/// One entry on the submission ring. `dst` must stay valid until the
/// completion fires (the buffer pool guarantees this with its kLoading
/// frame state: a loading frame is pinned and never a victim).
struct ReadRequest {
  PageId pid;
  char* dst = nullptr;
  ReadClass cls = ReadClass::kDemand;
  ReadCompletion on_complete;
  /// Set by the queue at enqueue time when latency observation is attached
  /// (metrics or journal); 0 means unobserved. The claiming worker stamps
  /// dispatch/complete itself, splitting submit→complete into queue wait
  /// (submit→dispatch) and service time (dispatch→complete). Internal —
  /// leave defaulted.
  int64_t submit_us = 0;
};

struct DiskManagerOptions {
  size_t page_size = kDefaultPageSize;
  /// Completion workers draining the submission ring. Each blocked worker
  /// represents one in-flight device operation, so this is the simulated
  /// device queue depth for latency overlap. Clamped to >= 1.
  int io_threads = 2;
  /// Bounded ring capacity: Add()/SubmitRead() block (releasing no latch
  /// the caller holds — producers must not submit under a shard latch)
  /// once this many requests are enqueued and unclaimed.
  size_t queue_depth = 256;
};

/// In-memory simulated disk with per-segment page arrays and I/O accounting.
///
/// Thread-safe: a single latch serializes segment metadata and the read-head
/// classification (sequential vs random is inherently a property of the
/// global request order, so it must be decided under the latch), and the
/// IoStats counters are relaxed atomics. The byte transfer itself happens
/// *outside* the latch: page buffers are stable heap allocations, and the
/// buffer pool orders conflicting transfers through its own shard latches
/// (a frame being filled is LOADING — unreachable by readers — and a dirty
/// victim is written back under the shard latch before the frame is
/// reused). With morsel-parallel scans the interleaving of workers means
/// fewer reads classify as sequential than in a serial scan — exactly as on
/// real hardware with one arm.
///
/// The submission ring has its own latch (submit_mu_, rank kDiskSubmission
/// = 250 > kDisk): a completion worker never holds the ring latch while it
/// performs the read (it pops, releases, then takes mu_ inside
/// CopyPageImage), and callbacks fire with no disk latch held so they may
/// take buffer-pool shard latches (rank 100) without inverting the rank
/// order on a fresh thread.
class DiskManager {
 public:
  explicit DiskManager(size_t page_size = kDefaultPageSize);
  explicit DiskManager(const DiskManagerOptions& options);
  ~DiskManager();

  size_t page_size() const { return page_size_; }
  int io_threads() const { return io_threads_; }

  /// Creates an empty segment and returns its id.
  SegmentId CreateSegment(std::string name) EXCLUDES(mu_);

  /// Appends a zeroed page to the segment; returns its page number.
  /// Allocation is a metadata operation and is not charged as I/O.
  PageNo AllocatePage(SegmentId segment) EXCLUDES(mu_);

  /// Number of pages currently allocated in the segment.
  uint32_t SegmentPageCount(SegmentId segment) const EXCLUDES(mu_);

  const std::string& SegmentName(SegmentId segment) const EXCLUDES(mu_);

  /// Physical read of a page into `out` (page_size bytes), synchronously on
  /// the calling thread. Demand reads are charged to IoStats as sequential
  /// or random per the read-head model; prefetch reads are charged to
  /// prefetch_reads only. The simulated device latency (if any) is slept
  /// outside the latch so concurrent reads overlap.
  Status ReadPage(PageId pid, char* out, ReadClass cls = ReadClass::kDemand)
      EXCLUDES(mu_);

  /// Enqueues one read on the submission ring; `cb` fires from a completion
  /// worker once the bytes are in `out` (or with the error). Blocks only
  /// while the ring is full. Prefer SubmitBatch/SubmissionGuard when
  /// enqueueing more than one request.
  void SubmitRead(PageId pid, char* out, ReadClass cls, ReadCompletion cb)
      EXCLUDES(submit_mu_, mu_);

  /// Enqueues a whole batch in one ring latch round-trip, preserving order
  /// (the ring is FIFO; with io_threads == 1 completions are FIFO too).
  void SubmitBatch(std::vector<ReadRequest> batch)
      EXCLUDES(submit_mu_, mu_);

  /// Retires every request still waiting on the ring (requests a worker
  /// has already claimed are not interrupted) and fires their callbacks
  /// with Status::Cancelled, off-latch, on the calling thread. Used by
  /// BufferPool::ColdReset so a quiescing pool does not wait out the
  /// simulated latency of a speculative readahead backlog.
  void CancelPending() EXCLUDES(submit_mu_, mu_);

  /// Blocks until the ring is empty and no claimed request is still being
  /// serviced — i.e. every completion callback submitted so far has
  /// returned. The pool drains before destruction and before ColdReset so
  /// no callback can touch a frame after the pool mutates it.
  void DrainSubmissions() EXCLUDES(submit_mu_, mu_);

  /// Waiting + claimed-but-incomplete request count (exact only at
  /// quiescent points; tests use it, the gauge mirrors the waiting part).
  size_t pending_submissions() const EXCLUDES(submit_mu_);

  /// Batches several Add() calls into a single acquisition of the ring
  /// latch; workers are woken once, at scope exit. Named-object RAII (the
  /// dpcf-ast-unnamed-raii rule rejects a discarded temporary, which would
  /// enqueue nothing and release the latch immediately).
  class SCOPED_CAPABILITY SubmissionGuard {
   public:
    explicit SubmissionGuard(DiskManager* disk) ACQUIRE(disk->submit_mu_);
    SubmissionGuard(const SubmissionGuard&) = delete;
    SubmissionGuard& operator=(const SubmissionGuard&) = delete;
    ~SubmissionGuard() RELEASE();

    /// Enqueues one request. Blocks (releasing the ring latch inside the
    /// wait) while the ring is at queue_depth. Runs under submit_mu_ (held
    /// for the guard's whole lifetime), but clang cannot equate the
    /// aliased capability `disk_->submit_mu_` with the mutex the
    /// constructor acquired at the call site, so the analysis is opted
    /// out here rather than annotated with an unprovable REQUIRES.
    void Add(ReadRequest req) NO_THREAD_SAFETY_ANALYSIS;

   private:
    DiskManager* const disk_;
    size_t added_ = 0;
  };

  /// Physical write of a page. Charged as a write.
  Status WritePage(PageId pid, const char* data) EXCLUDES(mu_);

  /// Direct pointer to page bytes, bypassing I/O accounting. For bulk
  /// loaders and tests only; query execution must go through the
  /// BufferPool so physical I/O is charged.
  char* RawPage(PageId pid) EXCLUDES(mu_);
  const char* RawPage(PageId pid) const EXCLUDES(mu_);

  IoStats* io_stats() { return &io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

  /// Forgets the read-head position (e.g. between measured runs) so the
  /// first read of the next run is classified random, as on a cold device.
  void ResetReadHead() EXCLUDES(mu_);

  /// Names this disk's latch in annotations of higher layers (the buffer
  /// pool declares its public API EXCLUDES this latch, which is what makes
  /// a disk-before-pool acquisition a compile error at the call site).
  Mutex* latch() const RETURN_CAPABILITY(mu_) { return &mu_; }

  /// The submission-ring latch, for rank assertions in tests.
  Mutex* submission_latch() const RETURN_CAPABILITY(submit_mu_) {
    return &submit_mu_;
  }

  /// Simulated per-read device latency, slept outside any latch so reads
  /// issued by different threads overlap (as on a disk with queue depth).
  /// Contention benches and tests use this to make miss-path latch holds
  /// measurable; 0 (the default) disables the sleep entirely.
  void set_read_latency_us(int64_t us);
  int64_t read_latency_us() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }

  /// Resolves this disk's metric handles (reads by class, writes, the
  /// latency-knob gauge, submission-ring depth/in-flight gauges, the
  /// per-class queue-wait / service-time / submit→complete latency
  /// histograms and the backpressure-stall counter) from `registry`,
  /// wires `trace` for async read spans and `journal` for ring events.
  /// Call once at a quiescent point (Database's constructor does); null
  /// detaches nothing and is ignored.
  void AttachMetrics(MetricsRegistry* registry,
                     TraceCollector* trace = nullptr,
                     EventJournal* journal = nullptr) EXCLUDES(mu_);

 private:
  friend class BufferPool;  // names mu_ in its lock-order annotations
  friend class SubmissionGuard;
  friend class CompletionScope;  // in_flight_ retirement (disk_manager.cc)

  struct Segment {
    std::string name;
    std::vector<std::unique_ptr<char[]>> pages;
  };

  bool ValidPage(PageId pid) const REQUIRES(mu_);

  /// The one read implementation both paths share: classify + charge under
  /// mu_, then sleep the simulated latency and memcpy off-latch. Exactly
  /// one page image leaves the disk per OK return (dpcf-ast-charge-
  /// conservation lists this as a page reader).
  Status CopyPageImage(PageId pid, char* out, ReadClass cls) EXCLUDES(mu_);

  /// Spawns the io_threads_ completion workers on first use, so purely
  /// synchronous workloads (every pre-async caller) never pay the threads.
  void EnsureWorkersLocked() REQUIRES(submit_mu_);

  /// Completion-worker body: pop under submit_mu_, release, read via
  /// CopyPageImage, fire the callback off-latch, retire the slot.
  void IoWorkerLoop();

  size_t page_size_;
  int io_threads_;
  size_t queue_depth_;
  // Rank kDisk: always innermost of the storage pair (pool shard -> disk).
  mutable Mutex mu_{lock_rank::kDisk};
  std::vector<Segment> segments_ GUARDED_BY(mu_);
  // Relaxed atomics, charged without the latch; mutable so the const
  // RawPage overload can still account its page hand-outs.
  mutable IoStats io_stats_;
  PageId last_read_ GUARDED_BY(mu_);  // invalid when head position unknown
  std::atomic<int64_t> read_latency_us_{0};  // its own synchronization

  // --- Submission ring (async path) ---------------------------------
  // Rank kDiskSubmission > kDisk: a worker that popped a request takes
  // mu_ only after releasing submit_mu_, and producers may submit while
  // holding nothing (or a shard latch, rank 100 < 250).
  mutable Mutex submit_mu_{lock_rank::kDiskSubmission};
  /// Signaled on enqueue (workers), dequeue (producers blocked on a full
  /// ring) and retirement (DrainSubmissions waiters).
  mutable std::condition_variable_any submit_cv_;
  std::deque<ReadRequest> queue_ GUARDED_BY(submit_mu_);
  size_t in_flight_ GUARDED_BY(submit_mu_) = 0;  // claimed, not yet retired
  bool stop_workers_ GUARDED_BY(submit_mu_) = false;
  bool workers_started_ GUARDED_BY(submit_mu_) = false;
  // Mutated only by EnsureWorkersLocked (under submit_mu_) and joined in
  // the destructor after the workers have been stopped; no concurrent
  // access in between, so no GUARDED_BY.
  std::vector<std::thread> workers_;

  // Metric handles, null until AttachMetrics (set once at a quiescent
  // point; the metrics themselves are relaxed atomics — no GUARDED_BY).
  Counter* m_reads_seq_ = nullptr;
  Counter* m_reads_rand_ = nullptr;
  Counter* m_reads_prefetch_ = nullptr;
  Counter* m_writes_ = nullptr;
  Gauge* m_latency_us_ = nullptr;
  Counter* m_submitted_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Counter* m_backpressure_stalls_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_in_flight_ = nullptr;
  LogHistogram* m_submit_to_complete_us_ = nullptr;
  // Indexed by ReadClass (0 = demand, 1 = prefetch).
  LogHistogram* m_queue_wait_us_[2] = {nullptr, nullptr};
  LogHistogram* m_service_time_us_[2] = {nullptr, nullptr};
  /// True once any ring-latency observer (histograms or journal) is
  /// attached: gates the submit/dispatch/complete clock reads.
  bool ring_latency_observed_ = false;
  TraceCollector* trace_ = nullptr;
  EventJournal* journal_ = nullptr;
};

}  // namespace dpcf
