// Simulated disk.
//
// Substitutes for the physical storage stack underneath the buffer pool: it
// holds every segment's pages in memory, and its only job besides byte
// storage is to *classify* each read as sequential or random, which is what
// the paper's evaluation ultimately measures (random fetches are what make a
// mis-costed Index Seek slow). A single read head is modelled: a read is
// sequential iff it targets the page immediately after the previous read in
// the same segment.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dpcf {

/// How a read should be charged to IoStats. Demand reads go through the
/// read-head classifier (sequential vs random); prefetch reads are charged
/// to the separate prefetch_reads counter and do NOT move the read head, so
/// readahead cannot perturb the classification of the demand stream.
enum class ReadClass { kDemand, kPrefetch };

class Counter;          // obs/metrics_registry.h
class Gauge;            // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h

/// In-memory simulated disk with per-segment page arrays and I/O accounting.
///
/// Thread-safe: a single latch serializes segment metadata and the read-head
/// classification (sequential vs random is inherently a property of the
/// global request order, so it must be decided under the latch), and the
/// IoStats counters are relaxed atomics. The byte transfer itself happens
/// *outside* the latch: page buffers are stable heap allocations, and the
/// buffer pool orders conflicting transfers through its own shard latches
/// (a frame being filled is LOADING — unreachable by readers — and a dirty
/// victim is written back under the shard latch before the frame is
/// reused). With morsel-parallel scans the interleaving of workers means
/// fewer reads classify as sequential than in a serial scan — exactly as on
/// real hardware with one arm.
class DiskManager {
 public:
  explicit DiskManager(size_t page_size = kDefaultPageSize);

  size_t page_size() const { return page_size_; }

  /// Creates an empty segment and returns its id.
  SegmentId CreateSegment(std::string name) EXCLUDES(mu_);

  /// Appends a zeroed page to the segment; returns its page number.
  /// Allocation is a metadata operation and is not charged as I/O.
  PageNo AllocatePage(SegmentId segment) EXCLUDES(mu_);

  /// Number of pages currently allocated in the segment.
  uint32_t SegmentPageCount(SegmentId segment) const EXCLUDES(mu_);

  const std::string& SegmentName(SegmentId segment) const EXCLUDES(mu_);

  /// Physical read of a page into `out` (page_size bytes). Demand reads are
  /// charged to IoStats as sequential or random per the read-head model;
  /// prefetch reads are charged to prefetch_reads only. The simulated device
  /// latency (if any) is slept outside the latch so concurrent reads overlap.
  Status ReadPage(PageId pid, char* out, ReadClass cls = ReadClass::kDemand)
      EXCLUDES(mu_);

  /// Physical write of a page. Charged as a write.
  Status WritePage(PageId pid, const char* data) EXCLUDES(mu_);

  /// Direct pointer to page bytes, bypassing I/O accounting. For bulk
  /// loaders and tests only; query execution must go through the
  /// BufferPool so physical I/O is charged.
  char* RawPage(PageId pid) EXCLUDES(mu_);
  const char* RawPage(PageId pid) const EXCLUDES(mu_);

  IoStats* io_stats() { return &io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

  /// Forgets the read-head position (e.g. between measured runs) so the
  /// first read of the next run is classified random, as on a cold device.
  void ResetReadHead() EXCLUDES(mu_);

  /// Names this disk's latch in annotations of higher layers (the buffer
  /// pool declares its public API EXCLUDES this latch, which is what makes
  /// a disk-before-pool acquisition a compile error at the call site).
  Mutex* latch() const RETURN_CAPABILITY(mu_) { return &mu_; }

  /// Simulated per-read device latency, slept outside any latch so reads
  /// issued by different threads overlap (as on a disk with queue depth).
  /// Contention benches and tests use this to make miss-path latch holds
  /// measurable; 0 (the default) disables the sleep entirely.
  void set_read_latency_us(int64_t us);
  int64_t read_latency_us() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }

  /// Resolves this disk's metric handles (reads by class, writes, the
  /// latency-knob gauge) from `registry`. Call once at a quiescent point
  /// (Database's constructor does); null detaches nothing and is ignored.
  void AttachMetrics(MetricsRegistry* registry) EXCLUDES(mu_);

 private:
  friend class BufferPool;  // names mu_ in its lock-order annotations

  struct Segment {
    std::string name;
    std::vector<std::unique_ptr<char[]>> pages;
  };

  bool ValidPage(PageId pid) const REQUIRES(mu_);

  size_t page_size_;
  // Rank kDisk: always innermost of the storage pair (pool shard -> disk).
  mutable Mutex mu_{lock_rank::kDisk};
  std::vector<Segment> segments_ GUARDED_BY(mu_);
  // Relaxed atomics, charged without the latch; mutable so the const
  // RawPage overload can still account its page hand-outs.
  mutable IoStats io_stats_;
  PageId last_read_ GUARDED_BY(mu_);  // invalid when head position unknown
  std::atomic<int64_t> read_latency_us_{0};  // its own synchronization
  // Metric handles, null until AttachMetrics (set once at a quiescent
  // point; the metrics themselves are relaxed atomics — no GUARDED_BY).
  Counter* m_reads_seq_ = nullptr;
  Counter* m_reads_rand_ = nullptr;
  Counter* m_reads_prefetch_ = nullptr;
  Counter* m_writes_ = nullptr;
  Gauge* m_latency_us_ = nullptr;
};

}  // namespace dpcf
