#include "storage/page.h"

// PageId is header-only; this translation unit exists so the build exposes a
// stable object for the module and future non-inline additions.
