// Clustering Ratio (paper Section V-B.2, Fig 10).
//
//   CR = (N - LB) / (UB - LB)
//
// where N is the true distinct page count of a predicate, LB = ceil(n/k)
// (perfect co-clustering) and UB = min(n, P) (every qualifying row on its
// own page). CR = 0 means the predicate column is fully correlated with the
// physical clustering; CR = 1 means maximally scattered. The paper measures
// a mean of 0.56 with std-dev 0.4 across real databases — evidence that no
// single analytical formula fits.

#pragma once

#include "common/status.h"
#include "exec/predicate.h"
#include "storage/disk_manager.h"
#include "table/table.h"

namespace dpcf {

struct ClusteringRatioResult {
  int64_t qualifying_rows = 0;
  int64_t actual_pages = 0;  // exact DPC(T, pred)
  int64_t lower_bound = 0;
  int64_t upper_bound = 0;
  /// In [0, 1]; 0 when the bounds coincide.
  double ratio = 0;
};

/// Exact, raw-walk computation (a diagnostic-time measurement, not charged
/// as query I/O).
Result<ClusteringRatioResult> ComputeClusteringRatio(DiskManager* disk,
                                                     const Table& table,
                                                     const Predicate& pred);

}  // namespace dpcf
