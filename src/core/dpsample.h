// Scan-side page-count monitoring: exact prefix counting and the DPSample
// Bernoulli page-sampling algorithm (paper Fig 4).
//
// A scan plan is given a set of *requested expressions* — the predicate
// expressions whose distinct page counts the optimizer would need to cost
// alternative index plans. The bundle classifies each request:
//
//  * a prefix of the pushed-down conjunction: satisfied-row knowledge falls
//    out of the scan's own short-circuit evaluation, so counting is exact
//    and free (one flag + one counter);
//  * anything else (non-prefix sub-expressions, other columns, derived
//    semi-join predicates from a bitvector filter): evaluated only on a
//    Bernoulli sample of pages — short-circuiting is "turned off" only for
//    rows on sampled pages, bounding the overhead. The estimator
//    PageCount/f is unbiased with Chernoff-style concentration.
//
// The Bernoulli draw is a *deterministic function of (page number, seed)*
// rather than a sequential RNG stream: whether a page is sampled must not
// depend on the order pages happen to be visited in, so a morsel-parallel
// scan (any page-to-worker assignment) samples exactly the same pages as
// the serial scan and merged estimates are bit-for-bit identical.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/bitvector_filter.h"
#include "core/grouped_page_counter.h"
#include "exec/predicate.h"
#include "exec/predicate_kernel.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dpcf {

/// One expression whose DPC should be monitored during a scan.
struct ScanExprRequest {
  /// Feedback-store key, e.g. "T: C3<250000" or "T: JOIN(T.C2=T1.C1)".
  std::string label;
  /// Conjunction of atoms on the scanned table (may be empty when the
  /// request is purely a bitvector semi-join predicate).
  Predicate expr;
  /// When >= 0, the request additionally demands that the value of column
  /// `bv_col` hashes into the bitvector filter registered in this
  /// ExecContext slot (Hash/Merge-join page counting, paper Fig 5).
  int bitvector_slot = -1;
  int bv_col = -1;
};

enum class ScanMonitorMode : uint8_t {
  kPrefixExact,  // free: derived from the scan's own evaluation
  kFullExact,    // every page inspected (sample fraction 1.0)
  kSampled,      // DPSample with f < 1
};

const char* ScanMonitorModeName(ScanMonitorMode mode);

/// Outcome of one monitored expression after the scan completes.
struct ScanExprResult {
  std::string label;
  std::string expr_text;
  ScanMonitorMode mode = ScanMonitorMode::kPrefixExact;
  double sample_fraction = 1.0;
  /// Estimated (exact when mode != kSampled) distinct page count.
  double dpc = 0;
  /// Estimated (exact when mode != kSampled) satisfying-row count.
  double cardinality = 0;
  int64_t pages_seen = 0;
  int64_t pages_sampled = 0;
};

/// Per-scan monitor state. Drive it in lockstep with the scan:
///   BeginPage(page_no) / OnRow(row, leading_true) per row / EndPage(),
/// then Finish() once the scan ends.
///
/// Bundles are *mergeable sketches*: a parallel scan gives every worker a
/// Clone() and folds the thread-local bundles back with MergeFrom() at
/// close. Because each page is processed by exactly one worker and the
/// sampling decision is a pure function of (page_no, seed), the merged
/// results are identical to one bundle driven serially over all pages.
class ScanMonitorBundle {
 public:
  /// `pushed` is the scan's own conjunction (used for prefix detection;
  /// the bundle keeps a copy), `sample_fraction` the DPSample f used for
  /// all non-prefix requests.
  ScanMonitorBundle(Predicate pushed, const Schema* schema,
                    double sample_fraction, uint64_t seed);

  Status AddRequest(ScanExprRequest request);

  size_t num_requests() const { return entries_.size(); }
  double sample_fraction() const { return sample_fraction_; }
  uint64_t seed() const { return seed_; }

  /// True if at least one request needs per-row evaluation on sampled
  /// pages (i.e. monitoring is not free for this scan).
  bool HasSampledRequests() const;

  /// A fresh bundle with the same configuration and requests but zeroed
  /// counters — one per scan worker.
  std::unique_ptr<ScanMonitorBundle> Clone() const;

  /// Folds `other` (same configuration, disjoint pages) into this bundle:
  /// GroupedPageCounters merge by summing disjoint page/row counts, the
  /// page tallies by addition. Fails if the bundles were configured
  /// differently or a page is still open in either.
  Status MergeFrom(const ScanMonitorBundle& other);

  /// `page_no`: the page about to be scanned; the Bernoulli sampling draw
  /// is Hash(page_no, seed) < f, independent of visit order.
  void BeginPage(CpuStats* cpu, PageNo page_no);
  /// `leading_true`: how many leading atoms of the pushed conjunction the
  /// scan's own (short-circuited) evaluation found TRUE for this row.
  /// `filter_slots` resolves bitvector slot references; entries may be
  /// null until the corresponding join build phase has run.
  void OnRow(const RowView& row, uint32_t leading_true, CpuStats* cpu,
             const std::vector<const BitvectorFilter*>& filter_slots);
  void EndPage();

  /// Batch form of OnRow for the vectorized scan: observes ALL rows of the
  /// current page at once, between BeginPage and EndPage. `leading` holds
  /// block->size() entries, leading[r] = leading-true atom count of the
  /// pushed conjunction for row r (the EvalBatch output). Counter state,
  /// CpuStats charges, and sampling behaviour are bit-for-bit identical to
  /// calling OnRow once per row in slot order: prefix-exact entries charge
  /// one monitor_row_op per row, sampled entries evaluate their compiled
  /// kernel densely (every atom on every row, charged) on sampled pages
  /// only, and bitvector entries charge one monitor_hash_op per row and
  /// probe the filter only for rows whose expression passed.
  void ObserveBatch(RowBlock* block, const uint32_t* leading, CpuStats* cpu,
                    const std::vector<const BitvectorFilter*>& filter_slots);

  std::vector<ScanExprResult> Finish() const;

 private:
  struct Entry {
    ScanExprRequest request;
    ScanMonitorMode mode;
    size_t prefix_len = 0;  // for kPrefixExact
    /// Batch comparators for the requested expression; compiled at
    /// AddRequest for non-prefix entries (prefix entries never evaluate).
    PredicateKernel kernel;
    GroupedPageCounter counter;
  };

  Predicate pushed_;
  const Schema* schema_;
  double sample_fraction_;
  uint64_t seed_;
  std::vector<Entry> entries_;
  /// Per-row pass bitmap reused across ObserveBatch calls (bundles are
  /// thread-local, so no synchronization is needed).
  std::vector<uint8_t> pass_scratch_;
  bool page_open_ = false;
  bool page_sampled_ = false;
  int64_t pages_seen_ = 0;
  int64_t pages_sampled_ = 0;
};

}  // namespace dpcf
