// FeedbackDriver: the paper's evaluation methodology as a reusable library
// component (Section V-B).
//
// For a query Q:
//   1. (optionally) inject *accurate cardinalities*, computed exactly, so
//      any plan change is attributable to page counts alone;
//   2. optimize → plan P; execute P on a cold cache → time T;
//   3. execute P again with monitoring on → actual DPC per relevant
//      expression (and the monitoring overhead);
//   4. feed the observed DPCs back as optimizer hints; re-optimize → P′;
//   5. execute P′ on a cold cache → time T′; report SpeedUp = (T − T′)/T.
//
// Times are simulated milliseconds from the deterministic device model;
// wall-clock times are recorded alongside for the overhead experiments.

#pragma once

#include <string>
#include <vector>

#include "core/feedback_store.h"
#include "core/monitor_manager.h"
#include "core/run_statistics.h"
#include "exec/executor.h"
#include "obs/drift_monitor.h"
#include "obs/estimation_error_tracker.h"
#include "optimizer/optimizer.h"

namespace dpcf {

struct FeedbackRunOptions {
  MonitorOptions monitor;
  /// Inject exact cardinalities before optimizing (paper methodology:
  /// isolates DPC effects from cardinality errors).
  bool inject_accurate_cardinalities = true;
  /// Additionally fold single-column-range observations into self-tuning
  /// DPC histograms so feedback generalizes to *different* bounds on the
  /// same column (paper Section II-C / VI extension).
  bool learn_dpc_histograms = true;
  SimCostParams cost_params;
  uint64_t exec_seed = 0x5eed;
  /// Thread OpProfiles through every run and render the monitored run as
  /// an annotated EXPLAIN ANALYZE plan (FeedbackOutcome::annotated_plan).
  /// Off by default: profiling snapshots IoStats around every operator
  /// call, which is measurable on the per-row Next path.
  bool profile_operators = false;
  /// Estimation-drift alerting thresholds (obs/drift_monitor.h): every
  /// diagnosed MonitorRecord is folded into per-(table, expression) EWMA
  /// q-error series and FeedbackOutcome::reoptimization_advised reports
  /// whether any series is in alert.
  DriftMonitorOptions drift;
};

/// Everything the methodology produces for one query.
struct FeedbackOutcome {
  std::string plan_before;
  std::string plan_after;
  bool plan_changed = false;

  RunStatistics baseline_run;   // P, unmonitored, cold cache
  RunStatistics monitored_run;  // P, monitored, cold cache
  RunStatistics improved_run;   // P′, unmonitored, cold cache

  double time_before_ms = 0;  // T
  double time_after_ms = 0;   // T′
  double speedup = 0;         // (T − T′) / T
  /// (T_monitored − T) / T in simulated time.
  double monitor_overhead = 0;

  /// Monitor observations with optimizer estimates attached.
  std::vector<MonitorRecord> feedback;

  /// EXPLAIN ANALYZE rendering of the monitored run — per-operator rows /
  /// time / I/O plus estimated vs actual DPC per monitored expression.
  /// Empty unless FeedbackRunOptions::profile_operators was set.
  std::string annotated_plan;

  /// The query's result (the COUNT value), from the baseline run; -1 when
  /// the query returned no row.
  int64_t count_result = -1;

  /// True when, after folding this query's feedback into the driver's
  /// DriftMonitor, at least one (table, expression) q-error series is in
  /// alert — the estimates have been persistently wrong enough that
  /// re-optimizing dependent plans is advised.
  bool reoptimization_advised = false;
};

/// Exact row count of a predicate by raw table walk (diagnostic-time).
int64_t ExactCardinality(DiskManager* disk, const Table& table,
                         const Predicate& pred);

struct ExactJoinCardinalities {
  int64_t join_rows = 0;  // |σ(outer) ⋈ σ(inner)|
  /// Inner rows matching some (filtered) outer key, ignoring the inner
  /// selection — the fetch stream of an INL join (paper Section IV).
  int64_t semi_join_rows = 0;
};
Result<ExactJoinCardinalities> ExactJoinCardinality(DiskManager* disk,
                                                    const JoinQuery& query);

class FeedbackDriver {
 public:
  FeedbackDriver(Database* db, StatisticsCatalog* stats,
                 FeedbackRunOptions options = {});

  Result<FeedbackOutcome> RunSingleTable(const SingleTableQuery& query);
  Result<FeedbackOutcome> RunJoin(const JoinQuery& query);

  /// Feedback accumulated across queries (reusable for similar queries).
  FeedbackStore* store() { return &store_; }
  OptimizerHints* hints() { return &hints_; }
  DpcHistogramCatalog* dpc_histograms() { return &dpc_histograms_; }
  /// Workload-level q-error aggregation: every diagnosed MonitorRecord is
  /// folded into per-(table, mechanism) histograms of DPC and cardinality
  /// error. Queryable any time; fig benches dump its Report().
  EstimationErrorTracker* error_tracker() { return &error_tracker_; }
  /// Per-(table, expression) EWMA q-error series with alerting; every
  /// diagnosed MonitorRecord is folded in after each run.
  DriftMonitor* drift_monitor() { return &drift_monitor_; }
  Database* db() const { return db_; }
  const FeedbackRunOptions& options() const { return options_; }

 private:
  Status InjectSelectionCardinalities(Table* table, const Predicate& pred);
  Status InjectJoinCardinalities(const JoinQuery& query);

  Result<RunStatistics> ExecuteSingle(const AccessPathPlan& path,
                                      const SingleTableQuery& query,
                                      bool monitored,
                                      std::vector<MonitoredExpr>* entries,
                                      int64_t* count_result = nullptr);
  Result<RunStatistics> ExecuteJoin(const JoinPlan& plan,
                                    const JoinQuery& query, bool monitored,
                                    std::vector<MonitoredExpr>* entries,
                                    int64_t* count_result = nullptr);

  void AttachEstimates(const Optimizer& opt,
                       const std::vector<MonitoredExpr>& entries,
                       const JoinQuery* join_query, RunStatistics* stats);

  /// Folds single-column-range monitor observations into the self-tuning
  /// DPC histograms.
  void LearnDpcHistograms(const std::vector<MonitoredExpr>& entries,
                          const RunStatistics& stats);

  Database* db_;
  StatisticsCatalog* stats_;
  FeedbackRunOptions options_;
  OptimizerHints hints_;
  FeedbackStore store_;
  DpcHistogramCatalog dpc_histograms_;
  EstimationErrorTracker error_tracker_;
  DriftMonitor drift_monitor_;
};

}  // namespace dpcf
