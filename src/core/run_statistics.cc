#include "core/run_statistics.h"

#include <cmath>

#include "common/string_util.h"

namespace dpcf {

double MonitorRecord::DpcErrorFactor() const {
  if (estimated_dpc < 0) return 0;
  double actual = std::max(actual_dpc, 1.0);
  double est = std::max(estimated_dpc, 1.0);
  return est >= actual ? est / actual : actual / est;
}

double MonitorRecord::CardinalityErrorFactor() const {
  if (estimated_cardinality < 0) return 0;
  double actual = std::max(actual_cardinality, 1.0);
  double est = std::max(estimated_cardinality, 1.0);
  return est >= actual ? est / actual : actual / est;
}

std::string RunStatistics::ToXml() const {
  std::string out;
  out += "<RunStatistics>\n";
  out += StrFormat("  <Plan rows=\"%lld\">%s</Plan>\n",
                   static_cast<long long>(rows_returned),
                   XmlEscape(plan_text).c_str());
  out += StrFormat(
      "  <Io logical=\"%lld\" physicalSeq=\"%lld\" physicalRand=\"%lld\" "
      "hits=\"%lld\"/>\n",
      static_cast<long long>(io.logical_reads),
      static_cast<long long>(io.physical_seq_reads),
      static_cast<long long>(io.physical_rand_reads),
      static_cast<long long>(io.buffer_hits));
  out += StrFormat(
      "  <Cpu rows=\"%lld\" predicateAtoms=\"%lld\" monitorHashes=\"%lld\" "
      "hashOps=\"%lld\"/>\n",
      static_cast<long long>(cpu.rows_processed),
      static_cast<long long>(cpu.predicate_atom_evals),
      static_cast<long long>(cpu.monitor_hash_ops),
      static_cast<long long>(cpu.hash_table_ops));
  out += StrFormat("  <SimulatedTime ms=\"%s\"/>\n",
                   FormatDouble(simulated_ms, 3).c_str());
  for (const MonitorRecord& m : monitors) {
    out += StrFormat(
        "  <PageCount table=\"%s\" expression=\"%s\" mechanism=\"%s\" "
        "actualDpc=\"%s\" actualCard=\"%s\" exact=\"%s\"",
        XmlEscape(m.table).c_str(), XmlEscape(m.expr_text).c_str(),
        XmlEscape(m.mechanism).c_str(), FormatDouble(m.actual_dpc, 2).c_str(),
        FormatDouble(m.actual_cardinality, 2).c_str(),
        m.exact ? "true" : "false");
    if (m.estimated_dpc >= 0) {
      out += StrFormat(" estimatedDpc=\"%s\"",
                       FormatDouble(m.estimated_dpc, 2).c_str());
    }
    if (m.estimated_cardinality >= 0) {
      out += StrFormat(" estimatedCard=\"%s\"",
                       FormatDouble(m.estimated_cardinality, 2).c_str());
    }
    out += "/>\n";
  }
  out += "</RunStatistics>\n";
  return out;
}

}  // namespace dpcf
