#include "core/clustering_ratio.h"

#include "optimizer/yao.h"

namespace dpcf {

Result<ClusteringRatioResult> ComputeClusteringRatio(DiskManager* disk,
                                                     const Table& table,
                                                     const Predicate& pred) {
  ClusteringRatioResult r;
  const HeapFile* file = table.file();
  const Schema* schema = &table.schema();
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = disk->RawPage(PageId{file->segment(), p});
    uint32_t n = HeapFile::PageRowCount(page);
    bool page_hit = false;
    for (uint16_t s = 0; s < n; ++s) {
      RowView row(file->RowInPage(page, s), schema);
      bool pass = true;
      for (const PredicateAtom& a : pred.atoms()) {
        if (!a.Eval(row)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++r.qualifying_rows;
        page_hit = true;
      }
    }
    if (page_hit) ++r.actual_pages;
  }
  r.lower_bound =
      PageCountLowerBound(table.rows_per_page(), r.qualifying_rows);
  r.upper_bound = PageCountUpperBound(table.page_count(), r.qualifying_rows);
  if (r.upper_bound > r.lower_bound) {
    r.ratio = static_cast<double>(r.actual_pages - r.lower_bound) /
              static_cast<double>(r.upper_bound - r.lower_bound);
  }
  return r;
}

}  // namespace dpcf
