#include "core/feedback_store.h"

namespace dpcf {

void FeedbackStore::Record(const MonitorRecord& record) {
  FeedbackEntry e;
  e.key = record.label;
  e.expr_text = record.expr_text;
  e.mechanism = record.mechanism;
  e.cardinality = record.actual_cardinality;
  e.dpc = record.actual_dpc;
  e.exact = record.exact;
  e.sequence = next_sequence_++;
  entries_[e.key] = std::move(e);
}

void FeedbackStore::RecordRun(const RunStatistics& stats) {
  for (const MonitorRecord& m : stats.monitors) Record(m);
}

std::optional<FeedbackEntry> FeedbackStore::Lookup(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void FeedbackStore::ApplyToHints(OptimizerHints* hints) const {
  for (const auto& [key, e] : entries_) {
    hints->SetDpc(key, e.dpc);
    if (e.exact) hints->SetCardinality(key, e.cardinality);
  }
}

std::vector<FeedbackEntry> FeedbackStore::Entries() const {
  std::vector<FeedbackEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(e);
  return out;
}

void FeedbackStore::Clear() {
  entries_.clear();
  next_sequence_ = 0;
}

}  // namespace dpcf
