#include "core/linear_counter.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dpcf {

LinearCounter::LinearCounter(uint32_t numbits, uint64_t seed) : seed_(seed) {
  numbits_ = std::max<uint32_t>(64, (numbits + 63) & ~63u);
  words_.assign(numbits_ / 64, 0);
}

uint32_t LinearCounter::BitsSet() const {
  uint32_t n = 0;
  for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
  return n;
}

bool LinearCounter::saturated() const { return BitsSet() == numbits_; }

double LinearCounter::Estimate() const {
  uint32_t set = BitsSet();
  uint32_t numzero = numbits_ - set;
  if (numzero == 0) {
    // Saturated bitmap: the true count exceeds what the map can resolve.
    return static_cast<double>(numbits_) *
           std::log(static_cast<double>(numbits_));
  }
  return static_cast<double>(numbits_) *
         -std::log(static_cast<double>(numzero) /
                   static_cast<double>(numbits_));
}

Status LinearCounter::MergeFrom(const LinearCounter& other) {
  if (numbits_ != other.numbits_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "LinearCounter merge requires identical numbits and seed");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::OK();
}

void LinearCounter::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

uint32_t RecommendedLinearCounterBits(int64_t expected_distinct) {
  // Whang et al. table: a load factor around 8-12 keeps the standard error
  // near 1%; we round to the next multiple of 64 with sane clamps.
  int64_t bits = std::max<int64_t>(1024, expected_distinct / 4);
  bits = std::min<int64_t>(bits, int64_t{1} << 24);
  return static_cast<uint32_t>((bits + 63) & ~int64_t{63});
}

}  // namespace dpcf
