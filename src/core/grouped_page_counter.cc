#include "core/grouped_page_counter.h"

// Header-only counter; TU kept so the module participates in the build.
