#include "core/distinct_sampler.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace dpcf {

ReservoirDistinctEstimator::ReservoirDistinctEstimator(uint32_t capacity,
                                                       uint64_t seed)
    : capacity_(std::max<uint32_t>(1, capacity)), rng_(seed) {
  sample_.reserve(capacity_);
}

void ReservoirDistinctEstimator::Add(uint64_t value) {
  ++rows_seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  // Vitter's Algorithm R: element i replaces a random slot w.p. k/i.
  uint64_t j = rng_.NextBounded(static_cast<uint64_t>(rows_seen_));
  if (j < capacity_) {
    sample_[static_cast<size_t>(j)] = value;
  }
}

double ReservoirDistinctEstimator::Estimate() const {
  if (sample_.empty()) return 0;
  std::map<uint64_t, int64_t> freq;
  for (uint64_t v : sample_) ++freq[v];
  int64_t f1 = 0;
  int64_t f_rest = 0;
  for (const auto& [v, c] : freq) {
    if (c == 1) {
      ++f1;
    } else {
      ++f_rest;
    }
  }
  if (rows_seen_ <= static_cast<int64_t>(capacity_)) {
    // The sample IS the stream: the count is exact.
    return static_cast<double>(f1 + f_rest);
  }
  const double scale = std::sqrt(static_cast<double>(rows_seen_) /
                                 static_cast<double>(sample_.size()));
  return scale * static_cast<double>(f1) + static_cast<double>(f_rest);
}

void ReservoirDistinctEstimator::Reset() {
  rows_seen_ = 0;
  sample_.clear();
}

}  // namespace dpcf
