#include "core/dpc_histogram.h"

#include <algorithm>

#include "optimizer/yao.h"

namespace dpcf {

void DpcHistogram::Observe(int64_t lo, int64_t hi, double dpc,
                           double rows) {
  if (hi < lo || rows <= 0) return;
  for (Observation& o : observations_) {
    if (o.lo == lo && o.hi == hi) {
      o.dpc = dpc;
      o.rows = rows;
      o.sequence = next_sequence_++;
      return;
    }
  }
  if (observations_.size() >= max_observations_) {
    auto stalest = std::min_element(
        observations_.begin(), observations_.end(),
        [](const Observation& a, const Observation& b) {
          return a.sequence < b.sequence;
        });
    observations_.erase(stalest);
  }
  observations_.push_back(
      Observation{lo, hi, dpc, rows, next_sequence_++});
}

const DpcHistogram::Observation* DpcHistogram::BestOverlap(
    int64_t lo, int64_t hi) const {
  const Observation* best = nullptr;
  double best_score = 0;
  for (const Observation& o : observations_) {
    const double olo = static_cast<double>(std::max(lo, o.lo));
    const double ohi = static_cast<double>(std::min(hi, o.hi));
    if (olo > ohi) continue;
    // Jaccard-style overlap: prefer observations whose range is close to
    // the queried one; break ties towards fresher facts.
    const double inter = ohi - olo + 1;
    const double uni = static_cast<double>(std::max(hi, o.hi)) -
                       static_cast<double>(std::min(lo, o.lo)) + 1;
    const double score = inter / uni;
    if (best == nullptr || score > best_score ||
        (score == best_score && o.sequence > best->sequence)) {
      best = &o;
      best_score = score;
    }
  }
  return best;
}

std::optional<double> DpcHistogram::DensityFor(int64_t lo,
                                               int64_t hi) const {
  const Observation* best = BestOverlap(lo, hi);
  if (best == nullptr || best->rows <= 0) return std::nullopt;
  return std::max(best->dpc, 1.0) / best->rows;
}

std::optional<double> DpcHistogram::Estimate(int64_t lo, int64_t hi,
                                             double est_rows) const {
  auto density = DensityFor(lo, hi);
  if (!density.has_value()) return std::nullopt;
  double est = est_rows * *density;
  // Clamp to the hard bounds: ceil(rows/m) <= DPC <= min(rows, P). An
  // estimated row count beyond the table's capacity can push the naive LB
  // above UB; the page count can still never exceed UB.
  const double ub = static_cast<double>(PageCountUpperBound(
      table_pages_, static_cast<int64_t>(est_rows)));
  const double lb = std::min(
      ub, static_cast<double>(PageCountLowerBound(
              rows_per_page_, static_cast<int64_t>(est_rows))));
  return std::clamp(est, lb, ub);
}

void DpcHistogramCatalog::Observe(const Table& table, int col, int64_t lo,
                                  int64_t hi, double dpc, double rows) {
  auto [it, inserted] = histograms_.try_emplace(
      std::make_pair(&table, col), table.page_count(),
      table.rows_per_page());
  it->second.Observe(lo, hi, dpc, rows);
}

const DpcHistogram* DpcHistogramCatalog::Get(const Table& table,
                                             int col) const {
  auto it = histograms_.find({&table, col});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::optional<double> DpcHistogramCatalog::Estimate(const Table& table,
                                                    int col, int64_t lo,
                                                    int64_t hi,
                                                    double est_rows) const {
  const DpcHistogram* h = Get(table, col);
  if (h == nullptr) return std::nullopt;
  return h->Estimate(lo, hi, est_rows);
}

}  // namespace dpcf
