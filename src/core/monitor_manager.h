// MonitorManager: decides WHICH expressions to monitor for a given plan and
// wires the corresponding mechanisms into the physical plan.
//
// Given a chosen plan, the relevant expressions are the ones the optimizer
// would need to cost the *alternative* plans (paper Section II-B):
//  * for every non-clustered index on a scanned table whose leading column
//    is constrained, the sargable sub-expression on that index's columns
//    (costing the alternative Index Seek);
//  * the full pushed conjunction (costing the current plan / intersections);
//  * for index plans, the seek expression and the full expression, counted
//    in the Fetch operator by linear counting;
//  * for joins, DPC(inner, join-pred): linear counting when the plan is
//    INL, bitvector filtering + DPSample when it is Hash or Merge.

#pragma once

#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/dpsample.h"
#include "exec/exec_context.h"
#include "optimizer/plan.h"
#include "table/catalog.h"

namespace dpcf {

struct MonitorOptions {
  bool enabled = true;
  /// DPSample f for non-prefix scan expressions.
  double scan_sample_fraction = 0.01;
  /// Floor on expected sampled pages: on small tables the fraction is
  /// raised to min_sampled_pages / page_count so estimates stay usable
  /// (f alone is tuned for the paper's million-page tables).
  int64_t min_sampled_pages = 96;
  /// Fetch-stream distinct counting: the paper's linear counting, or the
  /// reservoir+GEE alternative it names (compared in
  /// bench_ablation_estimators).
  DistinctCountMechanism fetch_mechanism =
      DistinctCountMechanism::kLinearCounting;
  uint32_t linear_counter_bits = 1 << 14;
  uint32_t reservoir_capacity = 1 << 10;
  uint32_t bitvector_bits = 1 << 20;
  /// Direct bit addressing is exact while the join-key domain fits in
  /// bitvector_bits (paper's exactness condition); kHashed for sparse
  /// domains.
  BitvectorMode bitvector_mode = BitvectorMode::kDirect;
  uint64_t seed = 0x5eed;
  /// Worker threads for full table scans (forwarded into
  /// PlanMonitorHooks::scan_threads; > 1 enables morsel parallelism on the
  /// single-table scan path). Monitor feedback is identical at any thread
  /// count — the bundles are mergeable sketches.
  int scan_threads = 1;
  /// Pages per morsel for the parallel dispatch.
  uint32_t morsel_pages = 32;
  /// Readahead window for parallel scans (forwarded into
  /// PlanMonitorHooks::prefetch_pages); 0 disables readahead. Readahead
  /// only changes *when* pages enter the buffer pool, never the monitor
  /// stream, so feedback stays bit-for-bit identical.
  uint32_t prefetch_pages = 0;
  /// Scale the readahead window per scan from the live prefetch hit /
  /// rejection counters (forwarded into
  /// PlanMonitorHooks::adaptive_readahead; exec/readahead.h). Off freezes
  /// the window at prefetch_pages. Feedback is unaffected either way.
  bool adaptive_readahead = true;
  /// Vectorized predicate kernels on full table scans (forwarded into
  /// PlanMonitorHooks::vectorized_scan; DESIGN.md section 12). Off = the
  /// row-at-a-time oracle path. Either way the tuples, CpuStats, and
  /// monitor feedback are bit-for-bit identical; only wall-clock differs.
  bool vectorized_scan = true;
};

/// What a monitor label refers to — kept alongside the hooks so the
/// diagnosis layer can recompute the optimizer's estimate for the same
/// expression and show estimated vs actual.
struct MonitoredExpr {
  std::string label;  // == feedback/hint key
  Table* table = nullptr;
  Predicate expr;     // selection expression (empty for pure join preds)
  bool is_join = false;
  /// For join expressions: the join query columns.
  int outer_col = -1;
  int inner_col = -1;
  Table* outer_table = nullptr;
};

/// Hooks plus the catalog of what they measure.
struct InstrumentedHooks {
  PlanMonitorHooks hooks;
  std::vector<MonitoredExpr> entries;
};

class MonitorManager {
 public:
  /// Resolves the monitor_* counters from db->metrics() (no-op handles
  /// when the Database was built with observability.metrics = false).
  explicit MonitorManager(Database* db, MonitorOptions options = {});

  const MonitorOptions& options() const { return options_; }

  /// Monitoring hooks for a single-table plan. Const and thread-safe:
  /// one manager may serve concurrent sessions (counter publication is
  /// relaxed-atomic).
  Result<InstrumentedHooks> ForSingleTable(const AccessPathPlan& path,
                                           const SingleTableQuery& query)
      const;

  /// Monitoring hooks for a join plan. Allocates the bitvector slot in
  /// `ctx` when the method needs one.
  Result<InstrumentedHooks> ForJoin(const JoinPlan& plan,
                                    const JoinQuery& query,
                                    ExecContext* ctx) const;

  /// Scan requests for the selection expressions relevant on `table`
  /// (one per usable non-clustered index, plus the full conjunction).
  void SelectionRequests(Table* table, const Predicate& pred,
                         std::vector<ScanExprRequest>* requests,
                         std::vector<MonitoredExpr>* entries) const;

 private:
  void RecordInstrumentation(const InstrumentedHooks& out,
                             bool is_join) const;

  Database* db_;
  MonitorOptions options_;
  // Registry counter handles; null when metrics publication is off.
  Counter* m_single_table_plans_ = nullptr;
  Counter* m_join_plans_ = nullptr;
  Counter* m_scan_expressions_ = nullptr;
  Counter* m_fetch_counters_ = nullptr;
  Counter* m_bitvector_filters_ = nullptr;
};

}  // namespace dpcf
