#include "core/pid_monitor.h"

#include "common/string_util.h"

namespace dpcf {

const char* DistinctCountMechanismName(DistinctCountMechanism m) {
  switch (m) {
    case DistinctCountMechanism::kLinearCounting:
      return "linear-counting";
    case DistinctCountMechanism::kReservoirSampling:
      return "reservoir+gee";
  }
  return "?";
}

MonitorRecord PidStreamMonitor::MakeRecord(const std::string& table) const {
  MonitorRecord rec;
  rec.table = table;
  rec.label = request_.label;
  rec.expr_text = request_.label;
  if (request_.mechanism == DistinctCountMechanism::kLinearCounting) {
    rec.mechanism = StrFormat("linear-counting(%ub)", counter_.numbits());
  } else {
    rec.mechanism =
        StrFormat("reservoir+gee(%u)", reservoir_.capacity());
  }
  rec.actual_dpc = Estimate();
  rec.actual_cardinality = static_cast<double>(rows_);
  rec.exact = false;
  return rec;
}

}  // namespace dpcf
