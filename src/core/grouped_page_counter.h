// Exact page counting under the grouped-page-access property (paper III-B).
//
// In a scan plan all rows of a page are processed consecutively and the page
// is never revisited, so DPC(T, p) needs no duplicate elimination: keep one
// counter, and per page one flag recording whether any row satisfied p.

#pragma once

#include <cstdint>

namespace dpcf {

/// One counter + one per-page flag. Drive it page by page:
///   BeginPage(); { OnRowSatisfies() for each satisfying row } EndPage();
class GroupedPageCounter {
 public:
  void BeginPage() { page_flag_ = false; }

  void OnRowSatisfies() {
    page_flag_ = true;
    ++rows_satisfying_;
  }

  /// Batch form: `n` rows of the current page satisfy p. Equivalent to n
  /// OnRowSatisfies() calls (n == 0 leaves the page flag untouched) — the
  /// fold point of the vectorized scan's per-page monitor feed.
  void OnBatchSatisfies(int64_t n) {
    if (n > 0) page_flag_ = true;
    rows_satisfying_ += n;
  }

  void EndPage() {
    ++pages_seen_;
    if (page_flag_) ++pages_satisfying_;
    page_flag_ = false;
  }

  /// Exact DPC(T, p) over the pages processed so far.
  int64_t pages_satisfying() const { return pages_satisfying_; }
  int64_t rows_satisfying() const { return rows_satisfying_; }
  int64_t pages_seen() const { return pages_seen_; }
  bool current_page_flag() const { return page_flag_; }

  /// Folds a counter that processed a *disjoint* set of pages into this
  /// one. Under the grouped-page-access property each page is processed by
  /// exactly one worker, so per-worker counts add without duplicate
  /// elimination — the merged totals equal a single counter driven over
  /// the union of the pages. Both counters must be between pages (no open
  /// BeginPage).
  void MergeFrom(const GroupedPageCounter& o) {
    pages_satisfying_ += o.pages_satisfying_;
    rows_satisfying_ += o.rows_satisfying_;
    pages_seen_ += o.pages_seen_;
  }

  void Reset() { *this = GroupedPageCounter(); }

 private:
  bool page_flag_ = false;
  int64_t pages_satisfying_ = 0;
  int64_t rows_satisfying_ = 0;
  int64_t pages_seen_ = 0;
};

}  // namespace dpcf
