// Probabilistic distinct counting over PIDs (paper Fig 3).
//
// Linear ("bitmap") counting of Whang, Vander-Zanden & Taylor: hash each PID
// into a bitmap and estimate the number of distinct PIDs from the fraction
// of bits left unset:   n̂ = numbits · (−ln(numzero / numbits)).
// This runs inside the Fetch operator of Index Seek / Index Intersection /
// INL-join plans, where the grouped-page-access property does not hold and
// exact counting would require full duplicate elimination. The estimator is
// the maximum-likelihood estimator and needs well under one bit per page for
// high accuracy.

#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace dpcf {

/// Fixed-size bitmap distinct-value estimator.
class LinearCounter {
 public:
  /// `numbits` is rounded up to a multiple of 64 (>= 64). `seed` picks the
  /// hash function, making independent counters pairwise independent.
  explicit LinearCounter(uint32_t numbits, uint64_t seed = 0);

  /// Hashes `value` (a packed PID) and sets its bit. One hash op.
  void Add(uint64_t value) {
    uint64_t h = Mix64Seeded(value, seed_) % numbits_;
    words_[h >> 6] |= (1ULL << (h & 63));
  }

  /// numbits × −ln(numzero / numbits). When the bitmap saturates (numzero
  /// == 0) the estimate is a lower bound, reported as numbits·ln(numbits).
  double Estimate() const;

  bool saturated() const;
  uint32_t numbits() const { return numbits_; }
  uint32_t BitsSet() const;
  uint64_t seed() const { return seed_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Folds `other` into this counter by bitwise OR of the bitmaps. Linear
  /// counting is a union-closed sketch: hash(v) sets the same bit no matter
  /// which counter observed v, so OR(A, B) is exactly the bitmap of A ∪ B
  /// and the merged Estimate() equals a single counter fed both streams.
  /// Requires identical geometry (numbits) and hash seed.
  Status MergeFrom(const LinearCounter& other);

  void Reset();

 private:
  uint32_t numbits_;
  uint64_t seed_;
  std::vector<uint64_t> words_;
};

/// Recommended bitmap size for an expected number of distinct pages: load
/// factor <= ~8 distinct values per bit keeps relative error small while
/// spending well under one bit per page (paper Section III-A). Returns a
/// multiple of 64 between 1Ki and 16Mi bits.
uint32_t RecommendedLinearCounterBits(int64_t expected_distinct);

}  // namespace dpcf
