// Sampling-based distinct-value estimation over PID streams.
//
// Paper Section III-A names the alternative to probabilistic counting:
// "generate a random sample of the rows that are fetched using reservoir
// sampling [19] and apply distinct value estimators [4]", and defers the
// empirical comparison to future work. This implements that alternative —
// Vitter's Algorithm R over the fetched PIDs plus the GEE estimator of
// Charikar, Chaudhuri, Motwani & Narasayya —
//   D̂ = sqrt(N / r) · f1 + Σ_{j>=2} f_j
// (f_j = number of sample values occurring exactly j times) — so the
// bench/bench_ablation_estimators harness can run the comparison the paper
// left open.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace dpcf {

/// Reservoir sample + GEE distinct estimate over a stream of 64-bit values.
class ReservoirDistinctEstimator {
 public:
  explicit ReservoirDistinctEstimator(uint32_t capacity, uint64_t seed = 0);

  /// Processes one stream element (one fetched row's PID).
  void Add(uint64_t value);

  /// GEE estimate of the number of distinct values in the stream seen so
  /// far. Exact while the stream still fits in the reservoir.
  double Estimate() const;

  int64_t rows_seen() const { return rows_seen_; }
  uint32_t capacity() const { return capacity_; }
  size_t sample_size() const { return sample_.size(); }
  size_t MemoryBytes() const { return capacity_ * sizeof(uint64_t); }

  void Reset();

 private:
  uint32_t capacity_;
  Rng rng_;
  int64_t rows_seen_ = 0;
  std::vector<uint64_t> sample_;
};

}  // namespace dpcf
