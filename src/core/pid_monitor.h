// Distinct-page counting over rid/fetch streams (index plans, INL joins),
// where the grouped-page-access property does not hold.
//
// Two interchangeable mechanisms (paper Section III-A):
//  * linear probabilistic counting (the paper's choice — maximum-likelihood,
//    guaranteed accuracy, one hash per fetched row);
//  * reservoir sampling + the GEE distinct-value estimator (the alternative
//    the paper names and defers comparing; see core/distinct_sampler.h).
// PidStreamMonitor hides the choice behind one Add/MakeRecord interface so
// Fetch and INL-join operators host either.

#pragma once

#include <cstdint>
#include <string>

#include "core/distinct_sampler.h"
#include "core/linear_counter.h"
#include "core/run_statistics.h"
#include "storage/io_stats.h"

namespace dpcf {

enum class DistinctCountMechanism : uint8_t {
  kLinearCounting,
  kReservoirSampling,
};

const char* DistinctCountMechanismName(DistinctCountMechanism m);

/// A page-count monitor attached to a Fetch / INL-join operator.
struct FetchMonitorRequest {
  std::string label;
  /// False: count every fetched row (rows satisfying the seek/join
  /// predicate). True: only rows that also pass the residual conjunction.
  bool passing_residual_only = false;
  DistinctCountMechanism mechanism = DistinctCountMechanism::kLinearCounting;
  uint32_t numbits = 8192;           // linear counting bitmap
  uint32_t reservoir_capacity = 1024;  // reservoir sample slots
  uint64_t seed = 0;
};

/// Stateful monitor over one PID stream.
class PidStreamMonitor {
 public:
  explicit PidStreamMonitor(FetchMonitorRequest request)
      : request_(std::move(request)),
        counter_(request_.numbits, request_.seed),
        reservoir_(request_.reservoir_capacity, request_.seed) {}

  const FetchMonitorRequest& request() const { return request_; }

  /// Feeds one fetched row's packed PID, charging the mechanism's per-row
  /// cost (a hash for linear counting; reservoir bookkeeping otherwise).
  void Add(uint64_t pid, CpuStats* cpu) {
    ++rows_;
    if (request_.mechanism == DistinctCountMechanism::kLinearCounting) {
      ++cpu->monitor_hash_ops;
      counter_.Add(pid);
    } else {
      ++cpu->monitor_row_ops;
      reservoir_.Add(pid);
    }
  }

  double Estimate() const {
    return request_.mechanism == DistinctCountMechanism::kLinearCounting
               ? counter_.Estimate()
               : reservoir_.Estimate();
  }

  int64_t rows() const { return rows_; }

  /// The statistics-xml record for this monitor (valid any time).
  MonitorRecord MakeRecord(const std::string& table) const;

 private:
  FetchMonitorRequest request_;
  LinearCounter counter_;
  ReservoirDistinctEstimator reservoir_;
  int64_t rows_ = 0;
};

}  // namespace dpcf
