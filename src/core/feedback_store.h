// FeedbackStore: the (expression, cardinality, distinct page count) cache
// (paper Section II-C, after the LEO-style framework of [17]).
//
// Monitored executions deposit their observations here, keyed by the same
// canonical expression strings the optimizer uses for hint lookup, so
// feedback gathered from one query benefits future queries with the same
// (sub-)expressions: ApplyToHints() turns the store's contents into
// optimizer injections.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/run_statistics.h"
#include "optimizer/cardinality.h"

namespace dpcf {

struct FeedbackEntry {
  std::string key;
  std::string expr_text;
  std::string mechanism;
  double cardinality = 0;
  double dpc = 0;
  bool exact = false;
  /// Monotonic sequence number of the recording run (freshest wins).
  int64_t sequence = 0;
};

class FeedbackStore {
 public:
  /// Records one observation; a newer observation for the same key
  /// replaces the older one.
  void Record(const MonitorRecord& record);

  /// Records every monitor observation of a run.
  void RecordRun(const RunStatistics& stats);

  std::optional<FeedbackEntry> Lookup(const std::string& key) const;

  /// Injects every stored DPC (and, for exact observations, cardinality)
  /// into `hints`.
  void ApplyToHints(OptimizerHints* hints) const;

  size_t size() const { return entries_.size(); }
  std::vector<FeedbackEntry> Entries() const;
  void Clear();

 private:
  std::map<std::string, FeedbackEntry> entries_;
  int64_t next_sequence_ = 0;
};

}  // namespace dpcf
