// Self-tuning distinct-page-count histograms (the paper's Section II-C /
// VI direction: "feedback gathered can also be potentially used to refine
// histograms for page counts similar to prior work on self-tuning
// histograms [1][16]").
//
// A DpcHistogram accumulates (value-range → observed DPC, observed rows)
// facts for one (table, column) from monitored executions and answers DPC
// queries for *other* ranges on the same column — so feedback from
// "C2 < 1000" improves the costing of "C2 < 2500" without re-monitoring.
//
// The paper's caution applies: page counts are NOT additive across buckets
// (two ranges can share pages), so instead of summing buckets we learn the
// column's *page density* (distinct pages per qualifying row, a direct
// measure of clustering: 1/rows_per_page when fully co-clustered, 1.0 when
// fully scattered) from the best-overlapping observation and clamp every
// estimate to the hard [LB, UB] bounds.

#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace dpcf {

/// Page-count knowledge for one (table, column).
class DpcHistogram {
 public:
  DpcHistogram(int64_t table_pages, int64_t rows_per_page,
               size_t max_observations = 64)
      : table_pages_(table_pages),
        rows_per_page_(rows_per_page),
        max_observations_(max_observations) {}

  struct Observation {
    int64_t lo = 0;
    int64_t hi = 0;
    double dpc = 0;
    double rows = 0;
    int64_t sequence = 0;
  };

  /// Records a monitored fact: DPC(col in [lo, hi]) was `dpc` over `rows`
  /// qualifying rows. Replaces an identical-range observation; evicts the
  /// stalest one when full.
  void Observe(int64_t lo, int64_t hi, double dpc, double rows);

  /// DPC estimate for [lo, hi] expected to hold `est_rows` rows, derived
  /// from the best-overlapping observation's page density. nullopt when
  /// nothing overlaps (caller falls back to the analytical model).
  std::optional<double> Estimate(int64_t lo, int64_t hi,
                                 double est_rows) const;

  /// Pages-per-qualifying-row learned from the best-overlapping
  /// observation (for diagnostics); nullopt when no overlap.
  std::optional<double> DensityFor(int64_t lo, int64_t hi) const;

  size_t size() const { return observations_.size(); }
  const std::vector<Observation>& observations() const {
    return observations_;
  }

 private:
  const Observation* BestOverlap(int64_t lo, int64_t hi) const;

  int64_t table_pages_;
  int64_t rows_per_page_;
  size_t max_observations_;
  int64_t next_sequence_ = 0;
  std::vector<Observation> observations_;
};

/// DpcHistogram per (table, column). Owned by the feedback layer; read by
/// the optimizer as a fallback between exact hints and the Yao formula.
class DpcHistogramCatalog {
 public:
  /// Records a fact, creating the histogram on first touch.
  void Observe(const Table& table, int col, int64_t lo, int64_t hi,
               double dpc, double rows);

  const DpcHistogram* Get(const Table& table, int col) const;

  std::optional<double> Estimate(const Table& table, int col, int64_t lo,
                                 int64_t hi, double est_rows) const;

  size_t size() const { return histograms_.size(); }
  void Clear() { histograms_.clear(); }

 private:
  std::map<std::pair<const Table*, int>, DpcHistogram> histograms_;
};

}  // namespace dpcf
