#include "core/feedback_driver.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/op_profile.h"

namespace dpcf {

FeedbackDriver::FeedbackDriver(Database* db, StatisticsCatalog* stats,
                               FeedbackRunOptions options)
    : db_(db),
      stats_(stats),
      options_(options),
      drift_monitor_(options.drift) {
  drift_monitor_.AttachObservability(
      db_->options().observability.metrics ? db_->metrics() : nullptr,
      db_->journal());
}

int64_t ExactCardinality(DiskManager* disk, const Table& table,
                         const Predicate& pred) {
  int64_t count = 0;
  const HeapFile* file = table.file();
  const Schema* schema = &table.schema();
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = disk->RawPage(PageId{file->segment(), p});
    uint32_t n = HeapFile::PageRowCount(page);
    for (uint16_t s = 0; s < n; ++s) {
      RowView row(file->RowInPage(page, s), schema);
      bool pass = true;
      for (const PredicateAtom& a : pred.atoms()) {
        if (!a.Eval(row)) {
          pass = false;
          break;
        }
      }
      if (pass) ++count;
    }
  }
  return count;
}

Result<ExactJoinCardinalities> ExactJoinCardinality(DiskManager* disk,
                                                    const JoinQuery& query) {
  ExactJoinCardinalities out;
  // Multiset of filtered outer keys.
  std::unordered_map<int64_t, int64_t> outer_keys;
  {
    const Table& t = *query.outer_table;
    const HeapFile* file = t.file();
    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = disk->RawPage(PageId{file->segment(), p});
      uint32_t n = HeapFile::PageRowCount(page);
      for (uint16_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, s), &t.schema());
        bool pass = true;
        for (const PredicateAtom& a : query.outer_pred.atoms()) {
          if (!a.Eval(row)) {
            pass = false;
            break;
          }
        }
        if (pass) {
          ++outer_keys[row.GetInt64(static_cast<size_t>(query.outer_col))];
        }
      }
    }
  }
  {
    const Table& t = *query.inner_table;
    const HeapFile* file = t.file();
    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = disk->RawPage(PageId{file->segment(), p});
      uint32_t n = HeapFile::PageRowCount(page);
      for (uint16_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, s), &t.schema());
        auto it = outer_keys.find(
            row.GetInt64(static_cast<size_t>(query.inner_col)));
        if (it == outer_keys.end()) continue;
        ++out.semi_join_rows;
        bool pass = true;
        for (const PredicateAtom& a : query.inner_pred.atoms()) {
          if (!a.Eval(row)) {
            pass = false;
            break;
          }
        }
        if (pass) out.join_rows += it->second;
      }
    }
  }
  return out;
}

Status FeedbackDriver::InjectSelectionCardinalities(Table* table,
                                                    const Predicate& pred) {
  if (pred.empty()) return Status::OK();
  DiskManager* disk = db_->disk();
  // Full conjunction…
  hints_.SetCardinality(
      SelPredKey(*table, pred),
      static_cast<double>(ExactCardinality(disk, *table, pred)));
  // …and the sargable expression of every index the optimizer could seek.
  for (Index* index : db_->catalog().IndexesForTable(table)) {
    if (auto range = BuildIndexRange(pred, index)) {
      std::string key = SelPredKey(*table, range->sargable);
      if (!hints_.Cardinality(key).has_value()) {
        hints_.SetCardinality(
            key, static_cast<double>(
                     ExactCardinality(disk, *table, range->sargable)));
      }
    }
  }
  // Pairwise sargable combinations (index intersections).
  std::vector<Predicate> sargables;
  for (Index* index : db_->catalog().IndexesForTable(table)) {
    if (index->is_clustered_key()) continue;
    if (auto range = BuildIndexRange(pred, index)) {
      sargables.push_back(range->sargable);
    }
  }
  for (size_t i = 0; i < sargables.size(); ++i) {
    for (size_t j = i + 1; j < sargables.size(); ++j) {
      Predicate combined = sargables[i];
      for (const PredicateAtom& a : sargables[j].atoms()) combined.Add(a);
      std::string key = SelPredKey(*table, combined);
      if (!hints_.Cardinality(key).has_value()) {
        hints_.SetCardinality(
            key, static_cast<double>(
                     ExactCardinality(disk, *table, combined)));
      }
    }
  }
  return Status::OK();
}

Status FeedbackDriver::InjectJoinCardinalities(const JoinQuery& query) {
  DPCF_RETURN_IF_ERROR(
      InjectSelectionCardinalities(query.outer_table, query.outer_pred));
  DPCF_RETURN_IF_ERROR(
      InjectSelectionCardinalities(query.inner_table, query.inner_pred));
  DPCF_ASSIGN_OR_RETURN(ExactJoinCardinalities exact,
                        ExactJoinCardinality(db_->disk(), query));
  hints_.SetCardinality(
      JoinPredKey(*query.outer_table, query.outer_col, *query.inner_table,
                  query.inner_col),
      static_cast<double>(exact.join_rows));
  return Status::OK();
}

namespace {
void ExtractCount(const RunResult& result, int64_t* count_result) {
  if (count_result == nullptr) return;
  *count_result = result.output.empty() || result.output[0].empty()
                      ? -1
                      : result.output[0][0].AsInt64();
}

// Process-wide query-id sequence for trace-span tagging: concurrent
// sessions (multiple drivers on one Database) must never share an id. Ids
// only label trace output — feedback never reads them — so a process-global
// counter does not compromise feedback determinism.
std::atomic<uint64_t> g_next_query_id{1};

void AttachObservability(ExecContext* ctx, Database* db,
                         const FeedbackRunOptions& options) {
  ctx->set_trace(db->trace());
  ctx->set_profiling(options.profile_operators);
  ctx->set_query_id(g_next_query_id.fetch_add(1, std::memory_order_relaxed));
  if (db->options().observability.metrics) ctx->set_metrics(db->metrics());
  ctx->set_journal(db->journal());
}
}  // namespace

Result<RunStatistics> FeedbackDriver::ExecuteSingle(
    const AccessPathPlan& path, const SingleTableQuery& query,
    bool monitored, std::vector<MonitoredExpr>* entries,
    int64_t* count_result) {
  DPCF_RETURN_IF_ERROR(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool(), options_.exec_seed);
  AttachObservability(&ctx, db_, options_);
  PlanMonitorHooks hooks;
  hooks.scan_sample_fraction = options_.monitor.scan_sample_fraction;
  hooks.seed = options_.monitor.seed;
  hooks.vectorized_scan = options_.monitor.vectorized_scan;
  if (monitored) {
    MonitorManager mm(db_, options_.monitor);
    DPCF_ASSIGN_OR_RETURN(InstrumentedHooks ih,
                          mm.ForSingleTable(path, query));
    hooks = std::move(ih.hooks);
    if (entries != nullptr) *entries = std::move(ih.entries);
  }
  DPCF_ASSIGN_OR_RETURN(OperatorPtr root,
                        BuildSingleTableExec(path, query, hooks));
  DPCF_ASSIGN_OR_RETURN(RunResult result,
                        ExecutePlan(root.get(), &ctx, options_.cost_params));
  ExtractCount(result, count_result);
  return result.stats;
}

Result<RunStatistics> FeedbackDriver::ExecuteJoin(
    const JoinPlan& plan, const JoinQuery& query, bool monitored,
    std::vector<MonitoredExpr>* entries, int64_t* count_result) {
  DPCF_RETURN_IF_ERROR(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool(), options_.exec_seed);
  AttachObservability(&ctx, db_, options_);
  PlanMonitorHooks hooks;
  hooks.scan_sample_fraction = options_.monitor.scan_sample_fraction;
  hooks.seed = options_.monitor.seed;
  hooks.vectorized_scan = options_.monitor.vectorized_scan;
  if (monitored) {
    MonitorManager mm(db_, options_.monitor);
    DPCF_ASSIGN_OR_RETURN(InstrumentedHooks ih,
                          mm.ForJoin(plan, query, &ctx));
    hooks = std::move(ih.hooks);
    if (entries != nullptr) *entries = std::move(ih.entries);
  }
  DPCF_ASSIGN_OR_RETURN(OperatorPtr root,
                        BuildJoinExec(plan, query, hooks));
  DPCF_ASSIGN_OR_RETURN(RunResult result,
                        ExecutePlan(root.get(), &ctx, options_.cost_params));
  ExtractCount(result, count_result);
  return result.stats;
}

void FeedbackDriver::AttachEstimates(
    const Optimizer& opt, const std::vector<MonitoredExpr>& entries,
    const JoinQuery* join_query, RunStatistics* stats) {
  for (MonitorRecord& rec : stats->monitors) {
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&rec](const MonitoredExpr& e) {
                             return e.label == rec.label;
                           });
    if (it == entries.end()) continue;
    if (it->is_join && join_query != nullptr) {
      double outer_rows = opt.cardinality().EstimateRows(
          *join_query->outer_table, join_query->outer_pred);
      // Join predicate only — the inner selection is not part of the
      // monitored expression (paper Section IV).
      double semi_est = opt.cardinality().EstimateJoinRows(
          *join_query->outer_table, outer_rows, join_query->outer_col,
          *join_query->inner_table,
          static_cast<double>(join_query->inner_table->row_count()),
          join_query->inner_col);
      semi_est = std::min(
          semi_est,
          static_cast<double>(join_query->inner_table->row_count()));
      rec.estimated_cardinality = semi_est;
      rec.estimated_dpc =
          opt.EstimateJoinDpc(*join_query, semi_est, nullptr);
    } else {
      double est_rows = opt.cardinality().EstimateRows(*it->table, it->expr);
      rec.estimated_cardinality = est_rows;
      rec.estimated_dpc =
          opt.EstimateDpc(*it->table, it->expr, est_rows, nullptr);
    }
  }
}

void FeedbackDriver::LearnDpcHistograms(
    const std::vector<MonitoredExpr>& entries, const RunStatistics& stats) {
  for (const MonitorRecord& rec : stats.monitors) {
    for (const MonitoredExpr& e : entries) {
      if (e.label != rec.label || e.is_join || e.expr.empty()) continue;
      const int col = e.expr.atoms()[0].col();
      auto range = ExtractColumnRange(e.expr, col);
      if (!range.has_value() || range->atoms.size() != e.expr.size()) {
        continue;  // not a pure single-column range
      }
      if (rec.actual_cardinality <= 0) continue;
      dpc_histograms_.Observe(*e.table, col, range->lo, range->hi,
                              rec.actual_dpc, rec.actual_cardinality);
    }
  }
}

Result<FeedbackOutcome> FeedbackDriver::RunSingleTable(
    const SingleTableQuery& query) {
  FeedbackOutcome out;
  if (options_.inject_accurate_cardinalities) {
    DPCF_RETURN_IF_ERROR(
        InjectSelectionCardinalities(query.table, query.pred));
  }
  Optimizer opt(db_, stats_, &hints_, options_.cost_params,
                options_.learn_dpc_histograms ? &dpc_histograms_ : nullptr);

  DPCF_ASSIGN_OR_RETURN(AccessPathPlan before,
                        opt.OptimizeSingleTable(query));
  out.plan_before = before.Describe();

  DPCF_ASSIGN_OR_RETURN(out.baseline_run,
                        ExecuteSingle(before, query, false, nullptr,
                                      &out.count_result));
  std::vector<MonitoredExpr> entries;
  DPCF_ASSIGN_OR_RETURN(out.monitored_run,
                        ExecuteSingle(before, query, true, &entries));
  AttachEstimates(opt, entries, nullptr, &out.monitored_run);
  out.feedback = out.monitored_run.monitors;
  error_tracker_.RecordAll(out.feedback);
  out.reoptimization_advised = drift_monitor_.ObserveAll(out.feedback);
  if (out.monitored_run.profile != nullptr) {
    out.annotated_plan = RenderAnnotatedPlan(
        *out.monitored_run.profile, out.feedback, options_.cost_params);
  }

  store_.RecordRun(out.monitored_run);
  store_.ApplyToHints(&hints_);
  if (options_.learn_dpc_histograms) {
    LearnDpcHistograms(entries, out.monitored_run);
  }

  DPCF_ASSIGN_OR_RETURN(AccessPathPlan after,
                        opt.OptimizeSingleTable(query));
  out.plan_after = after.Describe();
  out.plan_changed = after.Signature() != before.Signature();

  DPCF_ASSIGN_OR_RETURN(out.improved_run,
                        ExecuteSingle(after, query, false, nullptr));

  out.time_before_ms = out.baseline_run.simulated_ms;
  out.time_after_ms = out.improved_run.simulated_ms;
  if (out.time_before_ms > 0) {
    out.speedup =
        (out.time_before_ms - out.time_after_ms) / out.time_before_ms;
    out.monitor_overhead =
        (out.monitored_run.simulated_ms - out.time_before_ms) /
        out.time_before_ms;
  }
  return out;
}

Result<FeedbackOutcome> FeedbackDriver::RunJoin(const JoinQuery& query) {
  FeedbackOutcome out;
  if (options_.inject_accurate_cardinalities) {
    DPCF_RETURN_IF_ERROR(InjectJoinCardinalities(query));
  }
  Optimizer opt(db_, stats_, &hints_, options_.cost_params,
                options_.learn_dpc_histograms ? &dpc_histograms_ : nullptr);

  DPCF_ASSIGN_OR_RETURN(JoinPlan before, opt.OptimizeJoin(query));
  out.plan_before = before.Describe();

  DPCF_ASSIGN_OR_RETURN(out.baseline_run,
                        ExecuteJoin(before, query, false, nullptr,
                                    &out.count_result));
  std::vector<MonitoredExpr> entries;
  DPCF_ASSIGN_OR_RETURN(out.monitored_run,
                        ExecuteJoin(before, query, true, &entries));
  AttachEstimates(opt, entries, &query, &out.monitored_run);
  out.feedback = out.monitored_run.monitors;
  error_tracker_.RecordAll(out.feedback);
  out.reoptimization_advised = drift_monitor_.ObserveAll(out.feedback);
  if (out.monitored_run.profile != nullptr) {
    out.annotated_plan = RenderAnnotatedPlan(
        *out.monitored_run.profile, out.feedback, options_.cost_params);
  }

  store_.RecordRun(out.monitored_run);
  store_.ApplyToHints(&hints_);
  if (options_.learn_dpc_histograms) {
    LearnDpcHistograms(entries, out.monitored_run);
  }

  DPCF_ASSIGN_OR_RETURN(JoinPlan after, opt.OptimizeJoin(query));
  out.plan_after = after.Describe();
  out.plan_changed = after.Signature() != before.Signature();

  DPCF_ASSIGN_OR_RETURN(out.improved_run,
                        ExecuteJoin(after, query, false, nullptr));

  out.time_before_ms = out.baseline_run.simulated_ms;
  out.time_after_ms = out.improved_run.simulated_ms;
  if (out.time_before_ms > 0) {
    out.speedup =
        (out.time_before_ms - out.time_after_ms) / out.time_before_ms;
    out.monitor_overhead =
        (out.monitored_run.simulated_ms - out.time_before_ms) /
        out.time_before_ms;
  }
  return out;
}

}  // namespace dpcf
