#include "core/bitvector_filter.h"

#include <algorithm>
#include <bit>

namespace dpcf {

BitvectorFilter::BitvectorFilter(uint32_t numbits, uint64_t seed,
                                 BitvectorMode mode, int64_t base)
    : seed_(seed), mode_(mode), base_(base) {
  numbits_ = std::max<uint32_t>(64, (numbits + 63) & ~63u);
  words_.assign(numbits_ / 64, 0);
}

uint32_t BitvectorFilter::BitsSet() const {
  uint32_t n = 0;
  for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
  return n;
}

void BitvectorFilter::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
  keys_added_ = 0;
}

}  // namespace dpcf
