// Bit vector filters for join page counting (paper Section IV, Fig 5).
//
// During the build phase of a Hash Join (or while consuming the outer of a
// Merge Join), the join-column value of every outer row is hashed into this
// bitmap. The probe-side table scan then uses MayContain() as a *derived
// semi-join predicate*: a probe row whose bit is set belongs to a page that
// an Index-Nested-Loops join would have fetched. With at least as many bits
// as outer distinct values the page count is exact; with fewer bits,
// collisions can only overestimate (no false negatives).

#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace dpcf {

/// Bit addressing scheme.
///
/// kDirect maps a key to bit (key − base) mod numbits: when the key domain
/// has at most `numbits` values this is collision-free, which is exactly
/// the paper's exactness condition ("at least as many bits as distinct
/// values of the outer join column ⇒ no false positives"); with fewer bits
/// the modulo folds the domain and the page count can only be
/// overestimated. kHashed uses a seeded 64-bit mix for sparse or unknown
/// domains.
enum class BitvectorMode : uint8_t { kDirect, kHashed };

/// Single-probe membership bitmap over int64 join keys.
class BitvectorFilter {
 public:
  explicit BitvectorFilter(uint32_t numbits, uint64_t seed = 0,
                           BitvectorMode mode = BitvectorMode::kDirect,
                           int64_t base = 0);

  uint64_t BitFor(int64_t key) const {
    if (mode_ == BitvectorMode::kDirect) {
      return static_cast<uint64_t>(key - base_) % numbits_;
    }
    return Mix64Seeded(static_cast<uint64_t>(key), seed_) % numbits_;
  }

  void AddKey(int64_t key) {
    uint64_t h = BitFor(key);
    words_[h >> 6] |= (1ULL << (h & 63));
  }

  bool MayContain(int64_t key) const {
    uint64_t h = BitFor(key);
    return (words_[h >> 6] >> (h & 63)) & 1;
  }

  uint32_t numbits() const { return numbits_; }
  BitvectorMode mode() const { return mode_; }
  uint32_t BitsSet() const;
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }
  int64_t keys_added() const { return keys_added_; }

  /// AddKey + counter, for callers that track how many keys were inserted.
  void AddKeyCounted(int64_t key) {
    AddKey(key);
    ++keys_added_;
  }

  void Reset();

 private:
  uint32_t numbits_;
  uint64_t seed_;
  BitvectorMode mode_;
  int64_t base_;
  int64_t keys_added_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dpcf
