#include "core/dpsample.h"

#include <cassert>

#include "common/hash.h"

namespace dpcf {

const char* ScanMonitorModeName(ScanMonitorMode mode) {
  switch (mode) {
    case ScanMonitorMode::kPrefixExact:
      return "prefix-exact";
    case ScanMonitorMode::kFullExact:
      return "full-exact";
    case ScanMonitorMode::kSampled:
      return "dpsample";
  }
  return "?";
}

ScanMonitorBundle::ScanMonitorBundle(Predicate pushed, const Schema* schema,
                                     double sample_fraction, uint64_t seed)
    : pushed_(std::move(pushed)),
      schema_(schema),
      sample_fraction_(sample_fraction),
      seed_(seed) {
  assert(sample_fraction_ > 0.0 && sample_fraction_ <= 1.0);
}

Status ScanMonitorBundle::AddRequest(ScanExprRequest request) {
  Entry e;
  e.mode = ScanMonitorMode::kSampled;
  if (request.bitvector_slot < 0 && request.expr.IsPrefixOf(pushed_)) {
    // Free exact counting: the scan's own evaluation already tells us
    // whether the first prefix_len atoms held.
    e.mode = ScanMonitorMode::kPrefixExact;
    e.prefix_len = request.expr.size();
  } else if (sample_fraction_ >= 1.0) {
    e.mode = ScanMonitorMode::kFullExact;
  }
  if (request.bitvector_slot >= 0 && request.bv_col < 0) {
    return Status::InvalidArgument(
        "bitvector request needs the probe column (bv_col)");
  }
  if (e.mode != ScanMonitorMode::kPrefixExact) {
    e.kernel = PredicateKernel(request.expr, schema_);
  }
  e.request = std::move(request);
  entries_.push_back(std::move(e));
  return Status::OK();
}

bool ScanMonitorBundle::HasSampledRequests() const {
  for (const Entry& e : entries_) {
    if (e.mode != ScanMonitorMode::kPrefixExact) return true;
  }
  return false;
}

std::unique_ptr<ScanMonitorBundle> ScanMonitorBundle::Clone() const {
  auto clone = std::make_unique<ScanMonitorBundle>(pushed_, schema_,
                                                   sample_fraction_, seed_);
  for (const Entry& e : entries_) {
    Status st = clone->AddRequest(e.request);
    assert(st.ok() && "requests were already validated");
    (void)st;
  }
  return clone;
}

Status ScanMonitorBundle::MergeFrom(const ScanMonitorBundle& other) {
  if (entries_.size() != other.entries_.size() ||
      sample_fraction_ != other.sample_fraction_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "bundle merge requires identically configured bundles");
  }
  if (page_open_ || other.page_open_) {
    return Status::InvalidArgument("bundle merge with a page still open");
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& o = other.entries_[i];
    if (entries_[i].mode != o.mode ||
        entries_[i].request.label != o.request.label) {
      return Status::InvalidArgument(
          "bundle merge with mismatched request entries");
    }
    // GroupedPageCounter::MergeFrom returns void (same-name Status
    // methods exist on the bundles, hence the suppression).
    entries_[i].counter.MergeFrom(o.counter);  // NOLINT(dpcf-discarded-status)
  }
  pages_seen_ += other.pages_seen_;
  pages_sampled_ += other.pages_sampled_;
  return Status::OK();
}

void ScanMonitorBundle::BeginPage(CpuStats* cpu, PageNo page_no) {
  (void)cpu;
  ++pages_seen_;
  page_open_ = true;
  // One Bernoulli draw per page, shared by all non-prefix requests — the
  // analog of turning short-circuiting off for the whole sampled page. The
  // draw hashes the page number (53-bit uniform, as Rng::NextDouble) so
  // the sampled set is a function of the seed alone, not the visit order.
  page_sampled_ =
      sample_fraction_ >= 1.0 ||
      static_cast<double>(Mix64Seeded(page_no, seed_) >> 11) * 0x1.0p-53 <
          sample_fraction_;
  if (page_sampled_) ++pages_sampled_;
  for (Entry& e : entries_) e.counter.BeginPage();
}

void ScanMonitorBundle::OnRow(
    const RowView& row, uint32_t leading_true, CpuStats* cpu,
    const std::vector<const BitvectorFilter*>& filter_slots) {
  for (Entry& e : entries_) {
    if (e.mode == ScanMonitorMode::kPrefixExact) {
      // One comparison per row (paper III-B) — charged as cheap monitor
      // bookkeeping.
      ++cpu->monitor_row_ops;
      if (leading_true >= e.prefix_len) e.counter.OnRowSatisfies();
      continue;
    }
    if (!page_sampled_) continue;
    // Short-circuiting is off for this row: evaluate the full requested
    // expression and charge every atom.
    bool pass = e.request.expr.EvalNoShortCircuit(row, cpu);
    if (e.request.bitvector_slot >= 0) {
      const BitvectorFilter* filter =
          static_cast<size_t>(e.request.bitvector_slot) < filter_slots.size()
              ? filter_slots[static_cast<size_t>(e.request.bitvector_slot)]
              : nullptr;
      ++cpu->monitor_hash_ops;
      pass = pass && filter != nullptr &&
             filter->MayContain(
                 row.GetInt64(static_cast<size_t>(e.request.bv_col)));
    }
    if (pass) e.counter.OnRowSatisfies();
  }
}

void ScanMonitorBundle::ObserveBatch(
    RowBlock* block, const uint32_t* leading, CpuStats* cpu,
    const std::vector<const BitvectorFilter*>& filter_slots) {
  const uint32_t n = block->size();
  for (Entry& e : entries_) {
    if (e.mode == ScanMonitorMode::kPrefixExact) {
      // One comparison per row, exactly like the per-row path.
      cpu->monitor_row_ops += n;
      const uint32_t plen = static_cast<uint32_t>(e.prefix_len);
      int64_t sat = 0;
      for (uint32_t r = 0; r < n; ++r) sat += leading[r] >= plen;
      e.counter.OnBatchSatisfies(sat);
      continue;
    }
    if (!page_sampled_) continue;
    // Short-circuiting is off for the sampled page: the compiled kernel
    // evaluates every atom on every row and charges atoms x rows, matching
    // EvalNoShortCircuit per row.
    pass_scratch_.resize(n);
    uint8_t* pass = pass_scratch_.data();
    e.kernel.EvalBatchDense(block, cpu, pass);
    if (e.request.bitvector_slot >= 0) {
      const BitvectorFilter* filter =
          static_cast<size_t>(e.request.bitvector_slot) < filter_slots.size()
              ? filter_slots[static_cast<size_t>(e.request.bitvector_slot)]
              : nullptr;
      cpu->monitor_hash_ops += n;
      const size_t bv_col = static_cast<size_t>(e.request.bv_col);
      for (uint32_t r = 0; r < n; ++r) {
        // The probe only happens for rows whose expression passed (the
        // serial path's && short-circuit); MayContain is pure, so probing
        // row-by-row here is observationally identical.
        if (pass[r]) {
          pass[r] = filter != nullptr &&
                    filter->MayContain(
                        RowView(block->row(r), schema_).GetInt64(bv_col));
        }
      }
    }
    int64_t sat = 0;
    for (uint32_t r = 0; r < n; ++r) sat += pass[r];
    e.counter.OnBatchSatisfies(sat);
  }
}

void ScanMonitorBundle::EndPage() {
  for (Entry& e : entries_) {
    if (e.mode == ScanMonitorMode::kPrefixExact || page_sampled_) {
      e.counter.EndPage();
    } else {
      // Unsampled page: discard the flag without counting the page as
      // inspected (the estimator divides by the sampled fraction).
      e.counter.BeginPage();
    }
  }
  page_sampled_ = false;
  page_open_ = false;
}

std::vector<ScanExprResult> ScanMonitorBundle::Finish() const {
  std::vector<ScanExprResult> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ScanExprResult r;
    r.label = e.request.label;
    r.expr_text = e.request.expr.ToString(*schema_);
    if (e.request.bitvector_slot >= 0) {
      std::string bv = "bitvector(" +
                       schema_->column(static_cast<size_t>(e.request.bv_col))
                           .name +
                       ")";
      r.expr_text = r.expr_text == "TRUE" ? bv : r.expr_text + " AND " + bv;
    }
    r.mode = e.mode;
    r.pages_seen = pages_seen_;
    if (e.mode == ScanMonitorMode::kPrefixExact) {
      r.sample_fraction = 1.0;
      r.pages_sampled = pages_seen_;
      r.dpc = static_cast<double>(e.counter.pages_satisfying());
      r.cardinality = static_cast<double>(e.counter.rows_satisfying());
    } else {
      r.sample_fraction = sample_fraction_;
      r.pages_sampled = pages_sampled_;
      // DPSample step 7: PageCount / f (unbiased under Bernoulli page
      // sampling). The same scaling applies to the satisfying-row count.
      double f_effective = sample_fraction_ >= 1.0 ? 1.0 : sample_fraction_;
      r.dpc = static_cast<double>(e.counter.pages_satisfying()) / f_effective;
      r.cardinality =
          static_cast<double>(e.counter.rows_satisfying()) / f_effective;
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dpcf
