#include "core/monitor_manager.h"

#include <algorithm>

#include "optimizer/cardinality.h"

namespace dpcf {

MonitorManager::MonitorManager(Database* db, MonitorOptions options)
    : db_(db), options_(options) {
  if (db_ == nullptr || !db_->options().observability.metrics) return;
  MetricsRegistry* registry = db_->metrics();
  m_single_table_plans_ = registry->GetCounter(
      "monitor_single_table_plans_total",
      "Single-table plans instrumented with page-count monitors");
  m_join_plans_ = registry->GetCounter(
      "monitor_join_plans_total",
      "Join plans instrumented with page-count monitors");
  m_scan_expressions_ = registry->GetCounter(
      "monitor_scan_expressions_total",
      "Scan expressions wired with grouped-page or DPSample counters");
  m_fetch_counters_ = registry->GetCounter(
      "monitor_fetch_counters_total",
      "PID-stream distinct counters wired into fetch operators");
  m_bitvector_filters_ = registry->GetCounter(
      "monitor_bitvector_filters_total",
      "Bitvector filters registered for probe-side join monitoring");
}

namespace {
/// The configured fraction, raised so at least min_sampled_pages pages are
/// expected to be sampled on small tables.
double EffectiveFraction(const MonitorOptions& options, const Table& table) {
  double f = options.scan_sample_fraction;
  if (options.min_sampled_pages > 0 && table.page_count() > 0) {
    f = std::max(f, static_cast<double>(options.min_sampled_pages) /
                        static_cast<double>(table.page_count()));
  }
  return std::min(1.0, f);
}
}  // namespace

void MonitorManager::SelectionRequests(
    Table* table, const Predicate& pred,
    std::vector<ScanExprRequest>* requests,
    std::vector<MonitoredExpr>* entries) const {
  if (pred.empty()) return;
  auto add = [&](const Predicate& expr) {
    std::string label = SelPredKey(*table, expr);
    bool dup = std::any_of(
        requests->begin(), requests->end(),
        [&label](const ScanExprRequest& r) { return r.label == label; });
    if (dup) return;
    ScanExprRequest req;
    req.label = label;
    req.expr = expr;
    requests->push_back(req);
    entries->push_back(MonitoredExpr{label, table, expr, false, -1, -1,
                                     nullptr});
  };
  // One expression per index whose leading column the predicate constrains
  // (what an Index Seek on that index would fetch)…
  for (Index* index : db_->catalog().IndexesForTable(table)) {
    if (index->is_clustered_key()) continue;
    if (auto range = BuildIndexRange(pred, index)) {
      add(range->sargable);
    }
  }
  // …plus the full conjunction (free when it is the pushed predicate).
  add(pred);
}

Result<InstrumentedHooks> MonitorManager::ForSingleTable(
    const AccessPathPlan& path, const SingleTableQuery& query) const {
  InstrumentedHooks out;
  out.hooks.scan_sample_fraction = EffectiveFraction(options_, *query.table);
  out.hooks.inner_scan_sample_fraction = out.hooks.scan_sample_fraction;
  out.hooks.seed = options_.seed;
  out.hooks.scan_threads = options_.scan_threads;
  out.hooks.morsel_pages = options_.morsel_pages;
  out.hooks.prefetch_pages = options_.prefetch_pages;
  out.hooks.adaptive_readahead = options_.adaptive_readahead;
  out.hooks.vectorized_scan = options_.vectorized_scan;
  if (!options_.enabled) return out;

  switch (path.kind) {
    case AccessKind::kTableScan:
    case AccessKind::kClusteredRange:
      SelectionRequests(query.table, query.pred,
                        &out.hooks.outer_scan_requests, &out.entries);
      break;
    case AccessKind::kIndexSeek:
    case AccessKind::kIndexIntersection: {
      // The fetch stream carries rows satisfying the seek expression; the
      // residual-qualified stream carries the full expression.
      Predicate seek_expr;
      for (const IndexRange& r : path.ranges) {
        for (const PredicateAtom& a : r.sargable.atoms()) {
          seek_expr.Add(a);
        }
      }
      FetchMonitorRequest seek_req;
      seek_req.label = SelPredKey(*query.table, seek_expr);
      seek_req.passing_residual_only = false;
      seek_req.mechanism = options_.fetch_mechanism;
      seek_req.numbits = options_.linear_counter_bits;
      seek_req.reservoir_capacity = options_.reservoir_capacity;
      seek_req.seed = options_.seed;
      out.hooks.fetch_requests.push_back(seek_req);
      out.entries.push_back(MonitoredExpr{seek_req.label, query.table,
                                          seek_expr, false, -1, -1,
                                          nullptr});
      if (!path.residual.empty()) {
        FetchMonitorRequest full_req;
        full_req.label = SelPredKey(*query.table, query.pred);
        full_req.passing_residual_only = true;
        full_req.mechanism = options_.fetch_mechanism;
        full_req.numbits = options_.linear_counter_bits;
        full_req.reservoir_capacity = options_.reservoir_capacity;
        full_req.seed = options_.seed + 1;
        out.hooks.fetch_requests.push_back(full_req);
        out.entries.push_back(MonitoredExpr{full_req.label, query.table,
                                            query.pred, false, -1, -1,
                                            nullptr});
      }
      break;
    }
    case AccessKind::kCoveringScan:
      // Leaf-only scan: base-table PIDs are never touched, nothing to
      // monitor (Section II-B's limitation).
      break;
  }
  RecordInstrumentation(out, /*is_join=*/false);
  return out;
}

Result<InstrumentedHooks> MonitorManager::ForJoin(const JoinPlan& plan,
                                                  const JoinQuery& query,
                                                  ExecContext* ctx) const {
  InstrumentedHooks out;
  out.hooks.scan_sample_fraction =
      EffectiveFraction(options_, *query.outer_table);
  out.hooks.inner_scan_sample_fraction =
      EffectiveFraction(options_, *query.inner_table);
  out.hooks.seed = options_.seed;
  out.hooks.vectorized_scan = options_.vectorized_scan;
  if (!options_.enabled) return out;

  const std::string join_label =
      JoinPredKey(*query.outer_table, query.outer_col, *query.inner_table,
                  query.inner_col);
  MonitoredExpr join_entry;
  join_entry.label = join_label;
  join_entry.table = query.inner_table;
  join_entry.is_join = true;
  join_entry.outer_col = query.outer_col;
  join_entry.inner_col = query.inner_col;
  join_entry.outer_table = query.outer_table;

  // Selection expressions on the outer side's scan (if it is a scan).
  if (plan.outer_path.kind == AccessKind::kTableScan ||
      plan.outer_path.kind == AccessKind::kClusteredRange) {
    SelectionRequests(query.outer_table, query.outer_pred,
                      &out.hooks.outer_scan_requests, &out.entries);
  }

  switch (plan.method) {
    case JoinMethod::kIndexNestedLoops: {
      FetchMonitorRequest req;
      req.label = join_label;
      req.passing_residual_only = false;
      req.mechanism = options_.fetch_mechanism;
      req.numbits = options_.linear_counter_bits;
      req.reservoir_capacity = options_.reservoir_capacity;
      req.seed = options_.seed;
      out.hooks.fetch_requests.push_back(req);
      out.entries.push_back(join_entry);
      break;
    }
    case JoinMethod::kHashJoin:
    case JoinMethod::kMergeJoin: {
      const bool scan_probe =
          plan.inner_path.kind == AccessKind::kTableScan ||
          plan.inner_path.kind == AccessKind::kClusteredRange;
      if (scan_probe) {
        SelectionRequests(query.inner_table, query.inner_pred,
                          &out.hooks.inner_scan_requests, &out.entries);
      }
      // A merge join whose inner side sorts drains the inner scan before
      // any outer key is hashed — the filter cannot be used there.
      const bool filter_usable =
          scan_probe && (plan.method == JoinMethod::kHashJoin ||
                         !plan.sort_inner);
      if (filter_usable) {
        BitvectorSpec spec;
        spec.slot = ctx->AllocateFilterSlot();
        spec.numbits = options_.bitvector_bits;
        spec.seed = options_.seed;
        spec.mode = options_.bitvector_mode;
        out.hooks.bitvector = spec;
        ScanExprRequest req;
        req.label = join_label;
        req.bitvector_slot = spec.slot;
        req.bv_col = query.inner_col;
        out.hooks.inner_scan_requests.push_back(req);
        out.entries.push_back(join_entry);
      }
      break;
    }
  }
  RecordInstrumentation(out, /*is_join=*/true);
  return out;
}

void MonitorManager::RecordInstrumentation(const InstrumentedHooks& out,
                                           bool is_join) const {
  if (m_single_table_plans_ == nullptr) return;  // metrics publication off
  if (is_join) {
    m_join_plans_->Increment();
  } else {
    m_single_table_plans_->Increment();
  }
  m_scan_expressions_->Increment(
      static_cast<int64_t>(out.hooks.outer_scan_requests.size() +
                           out.hooks.inner_scan_requests.size()));
  m_fetch_counters_->Increment(
      static_cast<int64_t>(out.hooks.fetch_requests.size()));
  if (out.hooks.bitvector.has_value()) m_bitvector_filters_->Increment();
}

}  // namespace dpcf
