// Run statistics: the library's analog of SQL Server's "statistics xml"
// mode (paper Section II-C / V-A).
//
// After a monitored execution, every page-count monitor contributes one
// MonitorRecord with the *actual* distinct page count (and satisfying-row
// cardinality) it observed, tagged with the mechanism that produced it. The
// FeedbackDriver later pairs these with the optimizer's *estimated* values
// so a DBA (or the injection interface) can diagnose estimation errors.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"

namespace dpcf {

struct OpProfileNode;  // obs/op_profile.h

/// One (expression → page count) observation from a monitor.
struct MonitorRecord {
  std::string table;      // table whose pages were counted
  std::string label;      // canonical feedback key for the expression
  std::string expr_text;  // human-readable expression
  std::string mechanism;  // "prefix-exact", "dpsample(f=0.01)",
                          // "linear-counting(8192b)", "bitvector+dpsample"…
  double actual_dpc = 0;
  double actual_cardinality = 0;
  bool exact = false;

  /// Filled in by the diagnosis layer when an optimizer estimate exists.
  double estimated_dpc = -1;
  double estimated_cardinality = -1;

  /// estimated/actual DPC ratio error (q-error, >= 1), or 0 when no
  /// estimate is attached. Both sides are clamped to >= 1 page so empty
  /// results cannot produce infinite factors.
  double DpcErrorFactor() const;

  /// Same symmetric ratio error for the cardinality estimate; 0 when no
  /// estimate is attached.
  double CardinalityErrorFactor() const;
};

/// Everything measured about one execution of one plan.
struct RunStatistics {
  std::string plan_text;
  int64_t rows_returned = 0;
  IoStats io;
  CpuStats cpu;
  double simulated_ms = 0;
  /// Wall-clock of the in-process execution; used for the overhead
  /// experiments (Figs 7 and 9) alongside simulated time.
  double wall_ms = 0;
  std::vector<MonitorRecord> monitors;

  /// Per-operator profile tree, captured by the executor when
  /// ExecContext::profiling() is on (null otherwise). Shared so
  /// RunStatistics stays cheaply copyable; render with
  /// RenderAnnotatedPlan (obs/op_profile.h).
  std::shared_ptr<const OpProfileNode> profile;

  /// XML-ish rendering in the spirit of SQL Server's statistics xml output.
  std::string ToXml() const;
};

}  // namespace dpcf
