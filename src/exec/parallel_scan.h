// Morsel-parallel heap/clustered scan. The table's page range is cut into
// fixed-size morsels dispatched from an atomic work queue (MorselQueue);
// N workers each scan their claimed morsels with a thread-local
// ScanMonitorBundle clone and thread-local CpuStats, and the per-worker
// state is folded back (MergeFrom / operator+=) when the scan completes.
//
// Equivalence guarantees relative to TableScanOp on the same table:
//  * identical output tuples in identical order — matches are buffered per
//    morsel and drained in morsel order, which is page order;
//  * bit-for-bit identical monitor feedback — each page is processed by
//    exactly one worker, GroupedPageCounter merges by summing disjoint
//    page/row counts, and the DPSample Bernoulli draw is a pure function
//    of (page_no, seed), so the sampled page set cannot depend on the
//    page-to-worker assignment.

#pragma once

#include <memory>
#include <vector>

#include "core/dpsample.h"
#include "exec/operator.h"
#include "obs/stall_tracker.h"
#include "table/catalog.h"

namespace dpcf {

struct ParallelScanOptions {
  /// Worker threads; <= 1 degenerates to an inline serial scan (no thread
  /// is spawned).
  int num_threads = 1;
  /// Pages per morsel. Small enough to balance load across workers, large
  /// enough that queue traffic is negligible next to page work.
  uint32_t morsel_pages = 32;
  /// Initial readahead window: a dedicated prefetch thread keeps up to
  /// this many pages ahead of the scan cursor resident in the buffer pool
  /// (clamped to half the pool so prefetch can never evict pages the scan
  /// still needs), submitting morsel-sized batches through
  /// BufferPool::PrefetchBatch. Prefetched pages are charged to
  /// IoStats::prefetch_reads, not physical reads, and readahead never
  /// touches monitors, so feedback stays bit-for-bit identical to the
  /// serial scan. 0 disables readahead.
  uint32_t prefetch_pages = 0;
  /// Evaluate predicates with the vectorized PredicateKernel per page and
  /// feed monitors via ObserveBatch (DESIGN.md section 12). Off = the
  /// row-at-a-time oracle loop. Both paths produce identical tuples,
  /// CpuStats, and monitor feedback.
  bool vectorized = true;
  /// Let AdaptiveReadaheadController widen/narrow the window per scan from
  /// the live prefetch hit/rejection counters (exec/readahead.h);
  /// prefetch_pages seeds the initial window. Off freezes the window at
  /// prefetch_pages — the historical static knob. Either way the merged
  /// monitor feedback is unaffected.
  bool adaptive_readahead = true;
};

/// Per-worker tallies, exposed after the scan for load-balance reporting
/// and simulated-time critical-path accounting in benchmarks.
struct ParallelWorkerStats {
  CpuStats cpu;
  /// Blocked time this worker spent in the storage layer (demand-miss I/O
  /// wait, submission-ring backpressure, waiting behind another thread's
  /// kLoading frame), charged through the worker's StallScope.
  StallStats stall;
  int64_t pages_scanned = 0;
  int64_t morsels = 0;
  int64_t tuples = 0;
};

/// Parallel counterpart of TableScanOp. Open() runs the whole scan to
/// completion across the worker pool (a scan is a pipeline breaker here;
/// the Volcano surface stays single-threaded), Next() drains the buffered
/// result in serial page order.
class ParallelTableScanOp : public Operator {
 public:
  ParallelTableScanOp(Table* table, Predicate pushed,
                      std::vector<int> projection,
                      std::unique_ptr<ScanMonitorBundle> monitors,
                      ParallelScanOptions options);

  std::string Describe() const override;
  void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const override;

  const ScanMonitorBundle* monitors() const { return monitors_.get(); }
  const std::vector<ParallelWorkerStats>& worker_stats() const {
    return worker_stats_;
  }

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  Table* table_;
  Predicate pushed_;
  std::vector<int> projection_;
  std::unique_ptr<ScanMonitorBundle> monitors_;
  ParallelScanOptions options_;

  /// Matches buffered per morsel; drained in morsel order so the output
  /// sequence is identical to the serial scan's.
  std::vector<std::vector<Tuple>> morsel_out_;
  std::vector<ParallelWorkerStats> worker_stats_;
  size_t drain_morsel_ = 0;
  size_t drain_row_ = 0;
};

}  // namespace dpcf
