#include "exec/predicate.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace dpcf {

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
template <typename T>
bool Apply(CmpOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}
}  // namespace

PredicateAtom PredicateAtom::Int64(int col, CmpOp op, int64_t operand) {
  PredicateAtom a;
  a.col_ = col;
  a.op_ = op;
  a.is_string_ = false;
  a.int_operand_ = operand;
  return a;
}

PredicateAtom PredicateAtom::String(int col, CmpOp op, std::string operand,
                                    uint32_t width) {
  assert(operand.size() <= width);
  PredicateAtom a;
  a.col_ = col;
  a.op_ = op;
  a.is_string_ = true;
  operand.resize(width, ' ');
  a.str_operand_ = std::move(operand);
  return a;
}

bool PredicateAtom::EvalInt(int64_t value) const {
  assert(!is_string_);
  return Apply(op_, value, int_operand_);
}

bool PredicateAtom::Eval(const RowView& row) const {
  if (!is_string_) {
    return Apply(op_, row.GetInt64(static_cast<size_t>(col_)), int_operand_);
  }
  std::string_view v = row.GetString(static_cast<size_t>(col_));
  return Apply(op_, v, std::string_view(str_operand_));
}

std::string PredicateAtom::ToString(const Schema& schema) const {
  const std::string& name = schema.column(static_cast<size_t>(col_)).name;
  if (!is_string_) {
    return StrFormat("%s%s%lld", name.c_str(), CmpOpSymbol(op_),
                     static_cast<long long>(int_operand_));
  }
  std::string trimmed = str_operand_;
  size_t end = trimmed.find_last_not_of(' ');
  trimmed.erase(end == std::string::npos ? 0 : end + 1);
  return StrFormat("%s%s'%s'", name.c_str(), CmpOpSymbol(op_),
                   trimmed.c_str());
}

bool PredicateAtom::SameAs(const PredicateAtom& other) const {
  return col_ == other.col_ && op_ == other.op_ &&
         is_string_ == other.is_string_ &&
         (is_string_ ? str_operand_ == other.str_operand_
                     : int_operand_ == other.int_operand_);
}

uint32_t Predicate::EvalLeading(const RowView& row, CpuStats* cpu) const {
  uint32_t passed = 0;
  for (const PredicateAtom& a : atoms_) {
    ++cpu->predicate_atom_evals;
    if (!a.Eval(row)) break;
    ++passed;
  }
  return passed;
}

bool Predicate::EvalNoShortCircuit(const RowView& row, CpuStats* cpu) const {
  bool pass = true;
  for (const PredicateAtom& a : atoms_) {
    ++cpu->predicate_atom_evals;
    pass &= a.Eval(row);
  }
  return pass;
}

bool Predicate::IsPrefixOf(const Predicate& pushed) const {
  if (atoms_.size() > pushed.atoms_.size()) return false;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (!atoms_[i].SameAs(pushed.atoms_[i])) return false;
  }
  return true;
}

Predicate Predicate::Prefix(size_t n) const {
  assert(n <= atoms_.size());
  return Predicate(
      std::vector<PredicateAtom>(atoms_.begin(), atoms_.begin() + n));
}

std::string Predicate::ToString(const Schema& schema) const {
  if (atoms_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const PredicateAtom& a : atoms_) parts.push_back(a.ToString(schema));
  return Join(parts, " AND ");
}

std::string Predicate::CanonicalKey(const Schema& schema) const {
  if (atoms_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const PredicateAtom& a : atoms_) parts.push_back(a.ToString(schema));
  std::sort(parts.begin(), parts.end());
  return Join(parts, " AND ");
}

}  // namespace dpcf
