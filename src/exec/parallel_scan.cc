#include "exec/parallel_scan.h"

#include <atomic>
#include <condition_variable>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "common/thread_annotations.h"
#include "exec/executor.h"
#include "exec/predicate_kernel.h"
#include "exec/readahead.h"
#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "obs/stall_tracker.h"
#include "obs/trace_collector.h"

namespace dpcf {

namespace {
void MaterializeProjection(const RowView& row,
                           const std::vector<int>& projection, Tuple* out) {
  out->clear();
  out->reserve(projection.size());
  for (int col : projection) {
    out->push_back(row.GetValue(static_cast<size_t>(col)));
  }
}

/// Shared cursor between the scan workers and the readahead thread. The
/// prefetcher walks pages in order and sleeps whenever it is `window` pages
/// ahead of the slowest published consumption point; workers bump
/// pages_consumed per finished morsel (coarse on purpose — one latch
/// round-trip per morsel, not per page).
struct ReadaheadState {
  // Highest rank: a leaf latch — nothing else is ever acquired while it
  // is held (workers and prefetcher lock it only to bump/read the
  // cursor, never across a pool or disk call).
  Mutex mu{lock_rank::kScanReadahead};
  std::condition_variable_any cv;
  int64_t pages_consumed GUARDED_BY(mu) = 0;
  bool stop GUARDED_BY(mu) = false;
};
}  // namespace

ParallelTableScanOp::ParallelTableScanOp(
    Table* table, Predicate pushed, std::vector<int> projection,
    std::unique_ptr<ScanMonitorBundle> monitors, ParallelScanOptions options)
    : table_(table),
      pushed_(std::move(pushed)),
      projection_(std::move(projection)),
      monitors_(std::move(monitors)),
      options_(options) {
  if (options_.num_threads < 1) options_.num_threads = 1;
  if (options_.morsel_pages < 1) options_.morsel_pages = 1;
}

Status ParallelTableScanOp::OpenImpl(ExecContext* ctx) {
  const HeapFile* file = table_->file();
  const Schema* schema = &table_->schema();
  const uint32_t num_atoms = static_cast<uint32_t>(pushed_.size());
  const int num_workers = options_.num_threads;
  // One compiled kernel shared by every worker: EvalBatch is const and
  // stateless (each worker brings its own RowBlock and selection vectors).
  const PredicateKernel kernel(pushed_, schema);
  LogHistogram* const batch_rows_hist =
      options_.vectorized && ctx->metrics() != nullptr
          ? ctx->metrics()->GetHistogram(
                "dpcf_scan_batch_rows",
                "rows per vectorized predicate batch (one batch per page)",
                1.0, 2.0, 12)
          : nullptr;

  MorselQueue queue(file->page_count(), options_.morsel_pages);
  morsel_out_.assign(queue.num_morsels(), {});
  worker_stats_.assign(static_cast<size_t>(num_workers),
                       ParallelWorkerStats{});
  drain_morsel_ = 0;
  drain_row_ = 0;

  // Thread-local monitor clones; worker 0 reuses the operator's own bundle
  // so the serial (1-thread) path involves no copy at all.
  std::vector<std::unique_ptr<ScanMonitorBundle>> worker_bundles(
      static_cast<size_t>(num_workers));
  if (monitors_ != nullptr) {
    for (int w = 1; w < num_workers; ++w) {
      worker_bundles[static_cast<size_t>(w)] = monitors_->Clone();
    }
  }

  // Morsel readahead: a dedicated prefetch thread walks the pages in scan
  // order and keeps up to `window` of them resident ahead of the workers,
  // overlapping (simulated) I/O with predicate evaluation and monitor
  // updates. The window is clamped to half the pool so prefetch pressure
  // can never evict pages the scan is still consuming.
  // Non-driver threads (morsel workers, the readahead thread) exist only
  // inside this region; cpu_stats() asserts no region is live.
  ExecContext::WorkerRegion worker_region(ctx);
  TraceCollector* const tc = ctx->trace();
  EventJournal* const journal = ctx->journal();
  if (journal != nullptr && monitors_ != nullptr) {
    journal->Record(JournalEvent::kMonitorBuild,
                    static_cast<uint64_t>(num_workers));
  }

  ReadaheadState ra;
  std::thread ra_thread;
  std::unique_ptr<AdaptiveReadaheadController> ra_controller;
  const SegmentId segment = file->segment();
  const PageNo total_pages = file->page_count();
  int64_t window = static_cast<int64_t>(options_.prefetch_pages);
  const int64_t half_pool = static_cast<int64_t>(ctx->pool()->capacity() / 2);
  if (window > half_pool) window = half_pool;
  // Resolved unconditionally so the series exists (and reads 0) even for
  // scans with readahead off or a static window — dashboards never see a
  // dead series just because adaptive_readahead is false.
  Gauge* const window_gauge =
      ctx->metrics() != nullptr
          ? ctx->metrics()->GetGauge(
                "scan_readahead_window_pages",
                "Current readahead window of the last scan (static or "
                "adaptive)")
          : nullptr;
  if (window_gauge != nullptr && (window <= 0 || total_pages == 0)) {
    window_gauge->Set(0);
  }
  if (window > 0 && total_pages > 0) {
    BufferPool* pool = ctx->pool();
    AdaptiveReadaheadConfig ra_cfg;
    ra_cfg.initial_window = window;
    ra_cfg.max_window = half_pool;
    ra_cfg.adaptive = options_.adaptive_readahead;
    ra_controller = std::make_unique<AdaptiveReadaheadController>(
        ra_cfg, pool->disk()->io_stats(), window_gauge, journal);
    // Prime the initial window before any worker starts, so the
    // prefetch-vs-demand split of the scan's first pages does not depend
    // on how quickly the first worker gets going: those pages are always
    // charged as prefetch_reads on a cold cache. (In async mode priming
    // submits one batch; a worker demanding one of these pages before its
    // completion lands simply waits behind the kLoading frame.)
    const PageNo primed =
        total_pages < static_cast<PageNo>(window)
            ? total_pages
            : static_cast<PageNo>(window);
    std::vector<PageId> prime_batch;
    prime_batch.reserve(static_cast<size_t>(primed));
    for (PageNo p = 0; p < primed; ++p) {
      prime_batch.push_back(PageId{segment, p});
    }
    if (!pool->PrefetchBatch(prime_batch).ok()) {
      // Backpressure is OK-by-contract, so this is a hard disk error;
      // keep going — demand fetches will surface it with context.
    }
    const uint64_t query_id = ctx->query_id();
    AdaptiveReadaheadController* const controller = ra_controller.get();
    const int64_t batch_pages =
        static_cast<int64_t>(options_.morsel_pages);
    ra_thread = std::thread([&ra, ctx, pool, controller, segment,
                             total_pages, primed, query_id, batch_pages] {
      TraceCollector::QueryIdScope qid_scope(query_id);
      // Backpressure inside PrefetchBatch (submission ring full) is blocked
      // time of this thread; fold it into the context like a worker's.
      StallStats stall;
      {
        StallScope stall_scope(&stall);
        PageNo next = primed;
        std::vector<PageId> batch;
        while (next < total_pages) {
          ra.mu.lock();
          while (!ra.stop && static_cast<int64_t>(next) >=
                                 ra.pages_consumed + controller->window()) {
            ra.cv.wait(ra.mu);
          }
          const bool stop_requested = ra.stop;
          const int64_t consumed = ra.pages_consumed;
          ra.mu.unlock();
          if (stop_requested) break;
          // Submit up to one morsel's worth in a single batch, staying
          // inside the (possibly just-narrowed) window.
          int64_t limit = consumed + controller->window();
          if (limit > static_cast<int64_t>(total_pages)) {
            limit = static_cast<int64_t>(total_pages);
          }
          int64_t end = static_cast<int64_t>(next) + batch_pages;
          if (end > limit) end = limit;
          if (end <= static_cast<int64_t>(next)) continue;
          batch.clear();
          for (PageNo p = next; p < static_cast<PageNo>(end); ++p) {
            batch.push_back(PageId{segment, p});
          }
          Status st = pool->PrefetchBatch(batch);
          if (!st.ok()) break;  // demand fetches will surface disk errors
          next = static_cast<PageNo>(end);
          // Feedback: react to the hit/rejection deltas this batch exposed.
          controller->Update();
        }
      }
      ctx->MergeStall(stall);
    });
  }
  ReadaheadState* ra_ptr = ra_thread.joinable() ? &ra : nullptr;

  std::atomic<bool> stop{false};
  Status status = RunOnWorkers(num_workers, [&](int w) -> Status {
    // Query-id tagging is thread-local; each worker re-opens the scope so
    // its morsel spans (and any buffer-pool miss spans beneath them) carry
    // the same qid as the driver's.
    TraceCollector::QueryIdScope qid_scope(ctx->query_id());
    ParallelWorkerStats& ws = worker_stats_[static_cast<size_t>(w)];
    // Blocked time in the storage layer (miss waits, ring backpressure,
    // kLoading waits) lands in this worker's tally; folded in below next
    // to the CPU tally. On the 1-thread path this shadows the driver's
    // executor-installed scope for the duration of the scan, which is
    // exactly right: the time still reaches the context via MergeStall.
    StallScope stall_scope(&ws.stall);
    CpuStats* cpu = &ws.cpu;
    ScanMonitorBundle* bundle =
        monitors_ == nullptr
            ? nullptr
            : (w == 0 ? monitors_.get()
                      : worker_bundles[static_cast<size_t>(w)].get());
    // Worker-local vectorized-path state, reused across pages.
    RowBlock block(schema);
    std::vector<uint32_t> sel;
    std::vector<uint32_t> leading_vec;
    uint32_t morsel;
    PageNo begin, end;
    while (queue.Next(&morsel, &begin, &end)) {
      if (stop.load(std::memory_order_relaxed)) return Status::OK();
      const bool traced = tc != nullptr && tc->enabled();
      const int64_t span_begin = traced ? tc->NowUs() : 0;
      ++ws.morsels;
      std::vector<Tuple>& out = morsel_out_[morsel];
      for (PageNo p = begin; p < end; ++p) {
        auto guard = ctx->pool()->Fetch(PageId{file->segment(), p});
        if (!guard.ok()) {
          stop.store(true, std::memory_order_relaxed);
          return guard.status();
        }
        PageGuard page = std::move(guard).value();
        const uint32_t rows_in_page = HeapFile::PageRowCount(page.data());
        ++ws.pages_scanned;
        if (bundle != nullptr) bundle->BeginPage(cpu, p);
        if (options_.vectorized) {
          block.Reset(HeapFile::PageRows(page.data()), rows_in_page);
          sel.resize(rows_in_page);
          cpu->rows_processed += rows_in_page;
          uint32_t* leading_out = nullptr;
          if (bundle != nullptr) {
            leading_vec.resize(rows_in_page);
            leading_out = leading_vec.data();
          }
          const uint32_t m =
              kernel.EvalBatch(&block, cpu, sel.data(), leading_out);
          if (bundle != nullptr) {
            bundle->ObserveBatch(&block, leading_out, cpu,
                                 ctx->filter_slots());
          }
          for (uint32_t i = 0; i < m; ++i) {
            RowView row(block.row(sel[i]), schema);
            out.emplace_back();
            MaterializeProjection(row, projection_, &out.back());
            ++ws.tuples;
          }
          if (batch_rows_hist != nullptr) {
            batch_rows_hist->Observe(static_cast<double>(rows_in_page));
          }
        } else {
          // oracle: row-at-a-time reference loop for the property sweep.
          for (uint32_t r = 0; r < rows_in_page; ++r) {
            RowView row(
                file->RowInPage(page.data(), static_cast<uint16_t>(r)),
                schema);
            ++cpu->rows_processed;
            uint32_t leading = pushed_.EvalLeading(row, cpu);
            if (bundle != nullptr) {
              bundle->OnRow(row, leading, cpu, ctx->filter_slots());
            }
            if (leading == num_atoms) {
              out.emplace_back();
              MaterializeProjection(row, projection_, &out.back());
              ++ws.tuples;
            }
          }
        }
        if (bundle != nullptr) bundle->EndPage();
      }
      if (ra_ptr != nullptr) {
        ra_ptr->mu.lock();
        ra_ptr->pages_consumed += static_cast<int64_t>(end - begin);
        ra_ptr->mu.unlock();
        ra_ptr->cv.notify_all();
      }
      if (traced) {
        tc->AddSpan("scan", StrFormat("morsel %u", morsel), span_begin,
                    {{"worker", StrFormat("%d", w)},
                     {"pages", StrFormat("%u", end - begin)}});
      }
    }
    // Each worker folds its CPU tally into the context as it finishes;
    // MergeCpu latches, so workers may race each other here but never
    // corrupt the totals. (The per-worker copy stays in worker_stats_ for
    // load-balance reporting.)
    ctx->MergeCpu(ws.cpu);
    ctx->MergeStall(ws.stall);
    return Status::OK();
  });
  // Retire the prefetcher before error propagation: a joinable thread must
  // never reach ra's end of scope.
  if (ra_thread.joinable()) {
    ra.mu.lock();
    ra.stop = true;
    ra.mu.unlock();
    ra.cv.notify_all();
    ra_thread.join();
  }
  DPCF_RETURN_IF_ERROR(status);

  // Fold the monitor bundles back into the operator's own. The workers
  // have joined: no concurrency here, and merge order is fixed (by worker
  // index) so feedback stays bit-for-bit deterministic.
  if (monitors_ != nullptr) {
    ScopedSpan merge_span(tc, "monitor", "monitor merge");
    for (int w = 1; w < num_workers; ++w) {
      DPCF_RETURN_IF_ERROR(
          monitors_->MergeFrom(*worker_bundles[static_cast<size_t>(w)]));
    }
    if (journal != nullptr) {
      journal->Record(JournalEvent::kMonitorMerge,
                      static_cast<uint64_t>(num_workers - 1));
    }
  }
  return Status::OK();
}

Result<bool> ParallelTableScanOp::NextImpl(ExecContext* ctx,
                                             Tuple* out) {
  (void)ctx;
  while (drain_morsel_ < morsel_out_.size()) {
    std::vector<Tuple>& bucket = morsel_out_[drain_morsel_];
    if (drain_row_ < bucket.size()) {
      *out = std::move(bucket[drain_row_]);
      ++drain_row_;
      return true;
    }
    // Free each bucket as soon as it is drained to bound peak memory.
    bucket.clear();
    bucket.shrink_to_fit();
    ++drain_morsel_;
    drain_row_ = 0;
  }
  return false;
}

Status ParallelTableScanOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  morsel_out_.clear();
  drain_morsel_ = 0;
  drain_row_ = 0;
  return Status::OK();
}

std::string ParallelTableScanOp::Describe() const {
  std::string prefetch =
      options_.prefetch_pages > 0
          ? StrFormat(", prefetch=%u%s", options_.prefetch_pages,
                      options_.adaptive_readahead ? "+adaptive" : "")
          : std::string();
  return StrFormat("Parallel%s(%s, %s, threads=%d%s)",
                   table_->organization() == TableOrganization::kClustered
                       ? "ClusteredIndexScan"
                       : "TableScan",
                   table_->name().c_str(),
                   pushed_.ToString(table_->schema()).c_str(),
                   options_.num_threads, prefetch.c_str());
}

void ParallelTableScanOp::CollectOwnMonitorRecords(
    std::vector<MonitorRecord>* out) const {
  if (monitors_ == nullptr) return;
  for (const ScanExprResult& r : monitors_->Finish()) {
    MonitorRecord rec;
    rec.table = table_->name();
    rec.label = r.label;
    rec.expr_text = r.expr_text;
    rec.mechanism =
        r.mode == ScanMonitorMode::kSampled
            ? StrFormat("dpsample(f=%s)",
                        FormatDouble(r.sample_fraction, 4).c_str())
            : ScanMonitorModeName(r.mode);
    rec.actual_dpc = r.dpc;
    rec.actual_cardinality = r.cardinality;
    rec.exact = r.mode != ScanMonitorMode::kSampled;
    out->push_back(std::move(rec));
  }
}

}  // namespace dpcf
