// Index plans: Index Seek, Index Intersection, and the Fetch operator.
//
// Index plans do not have the grouped-page-access property (Fig 2): the rid
// stream coming out of an index revisits pages in arbitrary order, so DPC
// monitoring in the Fetch operator uses probabilistic (linear) counting over
// the PIDs of fetched rows (paper Section III-A, Fig 3).

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/pid_monitor.h"
#include "exec/operator.h"
#include "exec/predicate.h"
#include "index/secondary_index.h"
#include "table/catalog.h"

namespace dpcf {

/// Produces a stream of rids to fetch — the output of index lookup
/// machinery, below the tuple-operator level.
class RidSource {
 public:
  virtual ~RidSource() = default;
  virtual Status Open(ExecContext* ctx) = 0;
  /// False at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Rid* rid) = 0;
  virtual Status Close(ExecContext* ctx) = 0;
  virtual std::string Describe() const = 0;
};

/// B+-tree range lookup [lo, hi] emitting rids in key order. Entries are
/// pulled a leaf run at a time (BtreeIterator::NextRun) instead of one
/// Next() per rid — same entries, same order, same page fetches, but the
/// leaf is decoded in one tight loop rather than once per emitted rid.
class IndexSeekSource : public RidSource {
 public:
  IndexSeekSource(Index* index, BtreeKey lo, BtreeKey hi);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Rid* rid) override;
  Status Close(ExecContext* ctx) override;
  std::string Describe() const override;

  Index* index() const { return index_; }

 private:
  Index* index_;
  BtreeKey lo_;
  BtreeKey hi_;
  BtreeIterator it_;
  std::vector<BtreeEntry> run_;  // buffered current leaf run (<= one leaf)
  size_t run_pos_ = 0;
  bool done_ = false;
};

/// Intersects the rid sets of two (or more) index seeks; emits the common
/// rids in rid order, as a RID-intersection plan would.
class IndexIntersectionSource : public RidSource {
 public:
  explicit IndexIntersectionSource(
      std::vector<std::unique_ptr<IndexSeekSource>> inputs);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Rid* rid) override;
  Status Close(ExecContext* ctx) override;
  std::string Describe() const override;

 private:
  std::vector<std::unique_ptr<IndexSeekSource>> inputs_;
  std::vector<uint64_t> rids_;
  size_t pos_ = 0;
};

/// Looks up each rid in the base table, applies the residual conjunction,
/// and emits projected tuples. Hosts the PID-stream page-count monitors
/// (FetchMonitorRequest / PidStreamMonitor, core/pid_monitor.h).
class FetchOp : public Operator {
 public:
  FetchOp(Table* table, std::unique_ptr<RidSource> source,
          Predicate residual, std::vector<int> projection,
          std::vector<FetchMonitorRequest> monitor_requests = {});

  std::string Describe() const override;
  void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  Table* table_;
  std::unique_ptr<RidSource> source_;
  Predicate residual_;
  std::vector<int> projection_;
  std::vector<PidStreamMonitor> monitors_;
};

}  // namespace dpcf
