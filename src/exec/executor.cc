#include "exec/executor.h"

#include <chrono>
#include <thread>

#include "obs/stall_tracker.h"
#include "obs/trace_collector.h"

namespace dpcf {

Status RunOnWorkers(int num_threads,
                    const std::function<Status(int)>& worker) {
  if (num_threads <= 1) return worker(0);
  std::vector<Status> statuses(static_cast<size_t>(num_threads),
                               Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    threads.emplace_back(
        [w, &worker, &statuses] { statuses[static_cast<size_t>(w)] = worker(w); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

namespace {
void DescribeRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    DescribeRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string DescribeTree(const Operator& root) {
  std::string out;
  DescribeRec(root, 0, &out);
  return out;
}

OpProfileNode CaptureProfileTree(const Operator& root) {
  OpProfileNode node;
  node.describe = root.Describe();
  node.profile = root.profile();
  root.CollectOwnMonitorRecords(&node.records);
  std::vector<const Operator*> children = root.children();
  node.children.reserve(children.size());
  for (const Operator* child : children) {
    node.children.push_back(CaptureProfileTree(*child));
  }
  return node;
}

Result<RunResult> ExecutePlan(Operator* root, ExecContext* ctx,
                              const SimCostParams& params) {
  RunResult result;
  DiskManager* disk = ctx->pool()->disk();
  const IoStats io_before = *disk->io_stats();
  const CpuStats cpu_before = ctx->cpu_stats();

  // Monotonic endpoints for RunStatistics::wall_ms — wall-time *reporting*
  // (the paper's measured-run methodology), never feedback state, which is
  // why steady_clock is also the one clock the regex lint permits here.
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  auto t0 = std::chrono::steady_clock::now();
  {
    // Every span recorded from the driver thread during this plan carries
    // the context's query id (worker threads open their own scopes).
    TraceCollector::QueryIdScope qid_scope(ctx->query_id());
    // Driver-thread storage stalls (demand-miss I/O wait, submission-ring
    // backpressure, loading-frame waits) land in the context's driver
    // tally; workers install their own scopes over thread-local tallies.
    StallScope stall_scope(ctx->stall());
    ScopedSpan span(ctx->trace(), "exec", "execute_plan");
    DPCF_RETURN_IF_ERROR(root->Open(ctx));
    Tuple t;
    while (true) {
      auto more = root->Next(ctx, &t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      result.output.push_back(std::move(t));
    }
    DPCF_RETURN_IF_ERROR(root->Close(ctx));
  }
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  auto t1 = std::chrono::steady_clock::now();

  RunStatistics& stats = result.stats;
  stats.plan_text = DescribeTree(*root);
  stats.rows_returned = static_cast<int64_t>(result.output.size());

  stats.io = *disk->io_stats();
  stats.io -= io_before;
  stats.cpu = ctx->cpu_stats();
  stats.cpu -= cpu_before;

  stats.simulated_ms = SimulatedMillis(stats.io, stats.cpu, params);
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  root->CollectMonitorRecords(&stats.monitors);
  if (ctx->profiling()) {
    stats.profile =
        std::make_shared<const OpProfileNode>(CaptureProfileTree(*root));
  }
  return result;
}

}  // namespace dpcf
