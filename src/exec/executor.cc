#include "exec/executor.h"

#include <chrono>
#include <thread>

namespace dpcf {

Status RunOnWorkers(int num_threads,
                    const std::function<Status(int)>& worker) {
  if (num_threads <= 1) return worker(0);
  std::vector<Status> statuses(static_cast<size_t>(num_threads),
                               Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    threads.emplace_back(
        [w, &worker, &statuses] { statuses[static_cast<size_t>(w)] = worker(w); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

namespace {
void DescribeRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.Describe());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    DescribeRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string DescribeTree(const Operator& root) {
  std::string out;
  DescribeRec(root, 0, &out);
  return out;
}

Result<RunResult> ExecutePlan(Operator* root, ExecContext* ctx,
                              const SimCostParams& params) {
  RunResult result;
  DiskManager* disk = ctx->pool()->disk();
  const IoStats io_before = *disk->io_stats();
  const CpuStats cpu_before = ctx->cpu_stats();

  auto t0 = std::chrono::steady_clock::now();
  DPCF_RETURN_IF_ERROR(root->Open(ctx));
  Tuple t;
  while (true) {
    auto more = root->Next(ctx, &t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    result.output.push_back(std::move(t));
  }
  DPCF_RETURN_IF_ERROR(root->Close(ctx));
  auto t1 = std::chrono::steady_clock::now();

  RunStatistics& stats = result.stats;
  stats.plan_text = DescribeTree(*root);
  stats.rows_returned = static_cast<int64_t>(result.output.size());

  const IoStats& io_after = *disk->io_stats();
  stats.io.physical_seq_reads =
      io_after.physical_seq_reads - io_before.physical_seq_reads;
  stats.io.physical_rand_reads =
      io_after.physical_rand_reads - io_before.physical_rand_reads;
  stats.io.physical_writes = io_after.physical_writes - io_before.physical_writes;
  stats.io.prefetch_reads = io_after.prefetch_reads - io_before.prefetch_reads;
  stats.io.logical_reads = io_after.logical_reads - io_before.logical_reads;
  stats.io.buffer_hits = io_after.buffer_hits - io_before.buffer_hits;

  const CpuStats cpu_after = ctx->cpu_stats();
  stats.cpu.rows_processed =
      cpu_after.rows_processed - cpu_before.rows_processed;
  stats.cpu.predicate_atom_evals =
      cpu_after.predicate_atom_evals - cpu_before.predicate_atom_evals;
  stats.cpu.monitor_hash_ops =
      cpu_after.monitor_hash_ops - cpu_before.monitor_hash_ops;
  stats.cpu.monitor_row_ops =
      cpu_after.monitor_row_ops - cpu_before.monitor_row_ops;
  stats.cpu.hash_table_ops =
      cpu_after.hash_table_ops - cpu_before.hash_table_ops;

  stats.simulated_ms = SimulatedMillis(stats.io, stats.cpu, params);
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  root->CollectMonitorRecords(&stats.monitors);
  return result;
}

}  // namespace dpcf
