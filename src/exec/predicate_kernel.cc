#include "exec/predicate_kernel.h"

#include <cassert>
#include <cstring>
#include <type_traits>
#include <utility>

namespace dpcf {

namespace {

template <CmpOp Op, typename T>
inline bool ApplyOp(const T& lhs, const T& rhs) {
  if constexpr (Op == CmpOp::kEq) {
    return lhs == rhs;
  } else if constexpr (Op == CmpOp::kNe) {
    return lhs != rhs;
  } else if constexpr (Op == CmpOp::kLt) {
    return lhs < rhs;
  } else if constexpr (Op == CmpOp::kLe) {
    return lhs <= rhs;
  } else if constexpr (Op == CmpOp::kGt) {
    return lhs > rhs;
  } else {
    return lhs >= rhs;
  }
}

/// Runtime CmpOp -> compile-time template parameter, so every comparator
/// below is a branch-free tight loop with the op baked in.
template <typename F>
inline auto DispatchOp(CmpOp op, F&& f) {
  switch (op) {
    case CmpOp::kEq:
      return f(std::integral_constant<CmpOp, CmpOp::kEq>{});
    case CmpOp::kNe:
      return f(std::integral_constant<CmpOp, CmpOp::kNe>{});
    case CmpOp::kLt:
      return f(std::integral_constant<CmpOp, CmpOp::kLt>{});
    case CmpOp::kLe:
      return f(std::integral_constant<CmpOp, CmpOp::kLe>{});
    case CmpOp::kGt:
      return f(std::integral_constant<CmpOp, CmpOp::kGt>{});
    case CmpOp::kGe:
      return f(std::integral_constant<CmpOp, CmpOp::kGe>{});
  }
  return f(std::integral_constant<CmpOp, CmpOp::kEq>{});  // unreachable
}

/// Unaligned strided INT64 load straight from the page bytes (rows are not
/// 8-byte multiples, so column values have no alignment guarantee).
inline int64_t LoadInt64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// The comparators read column values directly from the page at
// (row base + offset) instead of gathering them into a temporary array
// first: every value is used exactly once per atom, so a gather pass only
// adds a store+reload per row — and for later atoms it would touch all n
// rows when only the |sel| survivors matter.

// First atom: runs over the full batch, seeding the selection vector and
// the leading counts (no separate init pass). Compaction is branch-light —
// the candidate row index is written unconditionally and the write cursor
// advances only on a hit. `WithLeading` is false on unmonitored scans: no
// one reads leading[], so the kernel skips the per-row store entirely.
template <CmpOp Op, bool WithLeading>
uint32_t FilterInt64First(const RowBlock& block, size_t offset,
                          int64_t operand, uint32_t n, uint32_t* sel,
                          uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const bool hit = ApplyOp<Op>(LoadInt64(block.row(r) + offset), operand);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

// Later atoms: run only over the current selection vector.
template <CmpOp Op, bool WithLeading>
uint32_t FilterInt64Next(const RowBlock& block, size_t offset,
                         int64_t operand, uint32_t* sel, uint32_t m,
                         uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const bool hit = ApplyOp<Op>(LoadInt64(block.row(r) + offset), operand);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

// CHAR atoms: fixed-width memcmp against the page bytes in place (both
// sides are space-padded to `width`, so lexicographic order on the padded
// bytes equals the string_view comparison the row path does).
template <CmpOp Op, bool WithLeading>
uint32_t FilterStringFirst(const RowBlock& block, size_t offset,
                           uint32_t width, const char* operand, uint32_t n,
                           uint32_t* sel, uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const bool hit = ApplyOp<Op>(c, 0);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op, bool WithLeading>
uint32_t FilterStringNext(const RowBlock& block, size_t offset,
                          uint32_t width, const char* operand, uint32_t* sel,
                          uint32_t m, uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const bool hit = ApplyOp<Op>(c, 0);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

// Dense (no-short-circuit) passes: the first atom writes the pass bitmap
// outright (no memset), later atoms AND into it.
template <CmpOp Op>
void DenseInt64(const RowBlock& block, size_t offset, int64_t operand,
                uint32_t n, uint8_t* pass, bool first) {
  for (uint32_t r = 0; r < n; ++r) {
    const uint8_t hit = static_cast<uint8_t>(
        ApplyOp<Op>(LoadInt64(block.row(r) + offset), operand));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

template <CmpOp Op>
void DenseString(const RowBlock& block, size_t offset, uint32_t width,
                 const char* operand, uint32_t n, uint8_t* pass,
                 bool first) {
  for (uint32_t r = 0; r < n; ++r) {
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const uint8_t hit = static_cast<uint8_t>(ApplyOp<Op>(c, 0));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

}  // namespace

PredicateKernel::PredicateKernel(const Predicate& pred, const Schema* schema) {
  atoms_.reserve(pred.size());
  for (const PredicateAtom& a : pred.atoms()) {
    Atom k;
    k.op = a.op();
    k.is_string = a.is_string();
    k.col = static_cast<size_t>(a.col());
    k.offset = schema->offset(k.col);
    if (k.is_string) {
      k.width = schema->column(k.col).size;
      k.str_operand = a.string_operand();  // already padded to width
      assert(k.str_operand.size() == k.width);
    } else {
      k.int_operand = a.int_operand();
    }
    atoms_.push_back(std::move(k));
  }
}

uint32_t PredicateKernel::EvalBatch(RowBlock* block, CpuStats* cpu,
                                    uint32_t* sel, uint32_t* leading) const {
  const uint32_t n = block->size();
  if (atoms_.empty()) {
    // TRUE kernel: every row survives with zero leading atoms.
    for (uint32_t r = 0; r < n; ++r) {
      sel[r] = r;
      if (leading != nullptr) leading[r] = 0;
    }
    return n;
  }
  uint32_t m = n;
  bool first = true;
  for (const Atom& a : atoms_) {
    if (m == 0) break;  // selection vector emptied: short-circuit
    cpu->predicate_atom_evals += m;
    m = DispatchOp(a.op, [&](auto op_tag) -> uint32_t {
      constexpr CmpOp Op = decltype(op_tag)::value;
      if (leading != nullptr) {
        if (!a.is_string) {
          return first ? FilterInt64First<Op, true>(*block, a.offset,
                                                    a.int_operand, n, sel,
                                                    leading)
                       : FilterInt64Next<Op, true>(*block, a.offset,
                                                   a.int_operand, sel, m,
                                                   leading);
        }
        return first ? FilterStringFirst<Op, true>(*block, a.offset, a.width,
                                                   a.str_operand.data(), n,
                                                   sel, leading)
                     : FilterStringNext<Op, true>(*block, a.offset, a.width,
                                                  a.str_operand.data(), sel,
                                                  m, leading);
      }
      if (!a.is_string) {
        return first ? FilterInt64First<Op, false>(*block, a.offset,
                                                   a.int_operand, n, sel,
                                                   nullptr)
                     : FilterInt64Next<Op, false>(*block, a.offset,
                                                  a.int_operand, sel, m,
                                                  nullptr);
      }
      return first ? FilterStringFirst<Op, false>(*block, a.offset, a.width,
                                                  a.str_operand.data(), n,
                                                  sel, nullptr)
                   : FilterStringNext<Op, false>(*block, a.offset, a.width,
                                                 a.str_operand.data(), sel,
                                                 m, nullptr);
    });
    first = false;
  }
  return m;
}

void PredicateKernel::EvalBatchDense(RowBlock* block, CpuStats* cpu,
                                     uint8_t* pass) const {
  const uint32_t n = block->size();
  if (atoms_.empty()) {
    std::memset(pass, 1, n);
    return;
  }
  bool first = true;
  for (const Atom& a : atoms_) {
    cpu->predicate_atom_evals += n;
    DispatchOp(a.op, [&](auto op_tag) {
      constexpr CmpOp Op = decltype(op_tag)::value;
      if (!a.is_string) {
        DenseInt64<Op>(*block, a.offset, a.int_operand, n, pass, first);
      } else {
        DenseString<Op>(*block, a.offset, a.width, a.str_operand.data(), n,
                        pass, first);
      }
    });
    first = false;
  }
}

}  // namespace dpcf
