#include "exec/predicate_kernel.h"

#include <cassert>
#include <cstring>
#include <type_traits>
#include <utility>

#include "exec/simd.h"

namespace dpcf {

namespace {

// INT64 atoms run on the dispatched SIMD table (exec/simd.h) — scalar,
// AVX2 or NEON, all bit-for-bit identical. CHAR atoms stay on the scalar
// memcmp loops below: fixed-width byte compares don't gather and the
// workloads' string atoms are rare, so there is nothing to win.

template <CmpOp Op>
inline bool ApplyCmp(int lhs, int rhs) {
  if constexpr (Op == CmpOp::kEq) {
    return lhs == rhs;
  } else if constexpr (Op == CmpOp::kNe) {
    return lhs != rhs;
  } else if constexpr (Op == CmpOp::kLt) {
    return lhs < rhs;
  } else if constexpr (Op == CmpOp::kLe) {
    return lhs <= rhs;
  } else if constexpr (Op == CmpOp::kGt) {
    return lhs > rhs;
  } else {
    return lhs >= rhs;
  }
}

/// Runtime CmpOp -> compile-time template parameter, so every comparator
/// below is a branch-free tight loop with the op baked in.
template <typename F>
inline auto DispatchOp(CmpOp op, F&& f) {
  switch (op) {
    case CmpOp::kEq:
      return f(std::integral_constant<CmpOp, CmpOp::kEq>{});
    case CmpOp::kNe:
      return f(std::integral_constant<CmpOp, CmpOp::kNe>{});
    case CmpOp::kLt:
      return f(std::integral_constant<CmpOp, CmpOp::kLt>{});
    case CmpOp::kLe:
      return f(std::integral_constant<CmpOp, CmpOp::kLe>{});
    case CmpOp::kGt:
      return f(std::integral_constant<CmpOp, CmpOp::kGt>{});
    case CmpOp::kGe:
      return f(std::integral_constant<CmpOp, CmpOp::kGe>{});
  }
  return f(std::integral_constant<CmpOp, CmpOp::kEq>{});  // unreachable
}

// CHAR atoms: fixed-width memcmp against the page bytes in place (both
// sides are space-padded to `width`, so lexicographic order on the padded
// bytes equals the string_view comparison the row path does).
template <CmpOp Op, bool WithLeading>
uint32_t FilterStringFirst(const RowBlock& block, size_t offset,
                           uint32_t width, const char* operand, uint32_t n,
                           uint32_t* sel, uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const bool hit = ApplyCmp<Op>(c, 0);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op, bool WithLeading>
uint32_t FilterStringNext(const RowBlock& block, size_t offset,
                          uint32_t width, const char* operand, uint32_t* sel,
                          uint32_t m, uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const bool hit = ApplyCmp<Op>(c, 0);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op>
void DenseString(const RowBlock& block, size_t offset, uint32_t width,
                 const char* operand, uint32_t n, uint8_t* pass,
                 bool first) {
  for (uint32_t r = 0; r < n; ++r) {
    const int c = std::memcmp(block.row(r) + offset, operand, width);
    const uint8_t hit = static_cast<uint8_t>(ApplyCmp<Op>(c, 0));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

}  // namespace

PredicateKernel::PredicateKernel(const Predicate& pred, const Schema* schema) {
  atoms_.reserve(pred.size());
  for (const PredicateAtom& a : pred.atoms()) {
    Atom k;
    k.op = a.op();
    k.is_string = a.is_string();
    k.col = static_cast<size_t>(a.col());
    k.offset = schema->offset(k.col);
    if (k.is_string) {
      k.width = schema->column(k.col).size;
      k.str_operand = a.string_operand();  // already padded to width
      assert(k.str_operand.size() == k.width);
    } else {
      k.int_operand = a.int_operand();
    }
    atoms_.push_back(std::move(k));
  }
}

uint32_t PredicateKernel::EvalBatch(RowBlock* block, CpuStats* cpu,
                                    uint32_t* sel, uint32_t* leading) const {
  const uint32_t n = block->size();
  if (atoms_.empty()) {
    // TRUE kernel: every row survives with zero leading atoms.
    for (uint32_t r = 0; r < n; ++r) {
      sel[r] = r;
      if (leading != nullptr) leading[r] = 0;
    }
    return n;
  }
  const char* rows = block->rows_base();
  const uint32_t stride = block->row_stride();
  const size_t wl = leading != nullptr ? 1 : 0;
  uint32_t m = n;
  bool first = true;
  for (const Atom& a : atoms_) {
    if (m == 0) break;  // selection vector emptied: short-circuit
    cpu->predicate_atom_evals += m;
    if (!a.is_string) {
      const size_t op = static_cast<size_t>(a.op);
      m = first ? simd_->int64_filter_first[op][wl](rows, stride, a.offset,
                                                    a.int_operand, n, sel,
                                                    leading)
                : simd_->int64_filter_next[op][wl](rows, stride, a.offset,
                                                   a.int_operand, sel, m,
                                                   leading);
    } else {
      m = DispatchOp(a.op, [&](auto op_tag) -> uint32_t {
        constexpr CmpOp Op = decltype(op_tag)::value;
        if (leading != nullptr) {
          return first ? FilterStringFirst<Op, true>(*block, a.offset,
                                                     a.width,
                                                     a.str_operand.data(), n,
                                                     sel, leading)
                       : FilterStringNext<Op, true>(*block, a.offset, a.width,
                                                    a.str_operand.data(), sel,
                                                    m, leading);
        }
        return first ? FilterStringFirst<Op, false>(*block, a.offset, a.width,
                                                    a.str_operand.data(), n,
                                                    sel, nullptr)
                     : FilterStringNext<Op, false>(*block, a.offset, a.width,
                                                   a.str_operand.data(), sel,
                                                   m, nullptr);
      });
    }
    first = false;
  }
  return m;
}

void PredicateKernel::EvalBatchDense(RowBlock* block, CpuStats* cpu,
                                     uint8_t* pass) const {
  const uint32_t n = block->size();
  if (atoms_.empty()) {
    std::memset(pass, 1, n);
    return;
  }
  if (n == 0) return;  // keep null rows_base out of the kernels
  const char* rows = block->rows_base();
  const uint32_t stride = block->row_stride();
  bool first = true;
  for (const Atom& a : atoms_) {
    cpu->predicate_atom_evals += n;
    if (!a.is_string) {
      simd_->int64_dense[static_cast<size_t>(a.op)](rows, stride, a.offset,
                                                    a.int_operand, n, pass,
                                                    first);
    } else {
      DispatchOp(a.op, [&](auto op_tag) {
        constexpr CmpOp Op = decltype(op_tag)::value;
        DenseString<Op>(*block, a.offset, a.width, a.str_operand.data(), n,
                        pass, first);
      });
    }
    first = false;
  }
}

}  // namespace dpcf
