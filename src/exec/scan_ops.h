// Scan plans: heap / clustered-index scan, clustered range scan, and
// covering-index scan. These are the storage-engine operators with the
// grouped-page-access property (paper Fig 2), so their page-count monitoring
// is exact (prefix expressions) or DPSample-based (everything else).

#pragma once

#include <memory>

#include "core/dpsample.h"
#include "exec/operator.h"
#include "exec/predicate_kernel.h"
#include "exec/simd.h"
#include "index/secondary_index.h"
#include "table/catalog.h"

namespace dpcf {

class LogHistogram;  // obs/metrics_registry.h

/// Full sequential scan of a heap or clustered table with a pushed-down,
/// short-circuited conjunction and optional page-count monitoring.
///
/// Two equivalent evaluation paths (DESIGN.md section 12):
///  * vectorized (default): per page, a PredicateKernel evaluates the
///    conjunction over a selection vector and the monitors ingest the whole
///    page at once via ObserveBatch;
///  * row-at-a-time (`vectorized = false`): the original EvalLeading/OnRow
///    loop, kept as the oracle the property sweep compares against.
/// Both produce identical tuples, CpuStats, and monitor feedback.
class TableScanOp : public Operator {
 public:
  TableScanOp(Table* table, Predicate pushed, std::vector<int> projection,
              std::unique_ptr<ScanMonitorBundle> monitors = nullptr,
              bool vectorized = true);

  std::string Describe() const override;
  void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const override;

  const ScanMonitorBundle* monitors() const { return monitors_.get(); }
  bool vectorized() const { return vectorized_; }

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  Result<bool> NextRowAtATime(ExecContext* ctx, Tuple* out);
  Result<bool> NextVectorized(ExecContext* ctx, Tuple* out);

  Table* table_;
  Predicate pushed_;
  std::vector<int> projection_;
  std::unique_ptr<ScanMonitorBundle> monitors_;
  bool vectorized_;

  PageGuard guard_;
  PageNo page_idx_ = 0;
  uint32_t row_idx_ = 0;
  uint32_t rows_in_page_ = 0;
  bool page_open_ = false;
  bool done_ = false;

  // Vectorized-path state: the compiled kernel, the per-page block view,
  // and the current page's survivors (sel_[sel_pos_..sel_count_)).
  PredicateKernel kernel_;
  RowBlock block_;
  std::vector<uint32_t> sel_;
  std::vector<uint32_t> leading_;
  uint32_t sel_pos_ = 0;
  uint32_t sel_count_ = 0;
  LogHistogram* batch_rows_hist_ = nullptr;  // resolved at Open, may be null
};

/// Range scan of a clustered table: seeks the clustered-key index for the
/// first data page of [lo, hi] on the clustering column and scans data pages
/// sequentially until the key range is exhausted. The pushed conjunction
/// must include the range atoms (boundary pages carry out-of-range rows).
///
/// Like TableScanOp it has two equivalent paths. The vectorized one treats
/// each data page as a key-ordered clustering-leaf run: the page's rows are
/// bound to a RowBlock *truncated at the first out-of-range key* (found by
/// the SIMD run-cutoff primitive, uncharged — the row path's key peek is
/// uncharged too), then evaluated/observed as one batch. The sorted-key
/// early exit therefore fires at the same row, and monitored feedback,
/// DPSample draws, charges and tuples are bit-for-bit identical to the
/// row-at-a-time oracle (tests/simd_dispatch_test.cc proves it).
class ClusteredRangeScanOp : public Operator {
 public:
  ClusteredRangeScanOp(Table* table, Index* cluster_index, int64_t lo,
                       int64_t hi, Predicate pushed,
                       std::vector<int> projection,
                       std::unique_ptr<ScanMonitorBundle> monitors = nullptr,
                       bool vectorized = true);

  std::string Describe() const override;
  void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const override;

  bool vectorized() const { return vectorized_; }

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  Result<bool> NextRowAtATime(ExecContext* ctx, Tuple* out);
  Result<bool> NextVectorized(ExecContext* ctx, Tuple* out);

  Table* table_;
  Index* cluster_index_;
  int64_t lo_;
  int64_t hi_;
  int cluster_col_;
  Predicate pushed_;
  std::vector<int> projection_;
  std::unique_ptr<ScanMonitorBundle> monitors_;
  bool vectorized_;

  PageGuard guard_;
  PageNo page_idx_ = 0;
  uint32_t row_idx_ = 0;
  uint32_t rows_in_page_ = 0;
  bool page_open_ = false;
  bool done_ = false;

  // Vectorized-path state (see TableScanOp): current page's leaf run bound
  // to block_, survivors in sel_[sel_pos_..sel_count_). truncated_ means
  // the run hit the range's upper bound and the scan ends with this page.
  PredicateKernel kernel_;
  const SimdOps* simd_;
  RowBlock block_;
  std::vector<uint32_t> sel_;
  std::vector<uint32_t> leading_;
  uint32_t sel_pos_ = 0;
  uint32_t sel_count_ = 0;
  bool truncated_ = false;
  LogHistogram* batch_rows_hist_ = nullptr;  // resolved at Open, may be null
};

/// Scan of index leaf pages for queries whose referenced columns are all
/// index key columns. Emits projected key columns; atoms must reference key
/// columns only. Cannot observe base-table page counts (it never touches
/// the table), which is why the paper's monitors target the other plans.
class CoveringIndexScanOp : public Operator {
 public:
  /// `projection` and predicate atoms use *table* column indexes, which
  /// must appear in index->key_cols().
  CoveringIndexScanOp(Index* index, Predicate pushed,
                      std::vector<int> projection);

  std::string Describe() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  /// Evaluates the pushed atoms against the current index entry.
  bool EvalEntry(const BtreeKey& key, CpuStats* cpu) const;

  Index* index_;
  Predicate pushed_;
  std::vector<int> projection_;
  BtreeIterator it_;
  bool done_ = false;
};

}  // namespace dpcf
