// NEON kernels for the SIMD layer (aarch64 builds only). Same contract as
// simd_avx2.cc: outputs bit-for-bit identical to the scalar kernels, raw
// intrinsics confined to this TU. NEON has no gather, so the two int64
// lanes are assembled with unaligned scalar loads — the win comes from the
// paired compare + mask extraction, which is enough to keep the dispatch
// story uniform across ISAs rather than a large speedup.

#include "exec/simd.h"

#include <cstdint>

#include "exec/simd_scalar.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <type_traits>

namespace dpcf {
namespace simd_internal {
namespace {

/// Loads rows r and r+1 of the strided column into a 2-lane vector.
inline int64x2_t Load2(const char* rows, uint32_t stride, size_t offset,
                       uint32_t r) {
  int64x2_t v = vdupq_n_s64(LoadInt64(RowPtr(rows, stride, r) + offset));
  return vsetq_lane_s64(LoadInt64(RowPtr(rows, stride, r + 1) + offset), v, 1);
}

/// 2-bit lane mask for the comparison (bit j set iff lane j satisfies Op).
template <CmpOp Op>
inline uint32_t Mask2(int64x2_t v, int64x2_t operand) {
  uint64x2_t m;
  bool invert = false;
  if constexpr (Op == CmpOp::kEq) {
    m = vceqq_s64(v, operand);
  } else if constexpr (Op == CmpOp::kNe) {
    m = vceqq_s64(v, operand);
    invert = true;
  } else if constexpr (Op == CmpOp::kGt) {
    m = vcgtq_s64(v, operand);
  } else if constexpr (Op == CmpOp::kLe) {
    m = vcgtq_s64(v, operand);
    invert = true;
  } else if constexpr (Op == CmpOp::kLt) {
    m = vcgtq_s64(operand, v);
  } else {  // kGe
    m = vcgtq_s64(operand, v);
    invert = true;
  }
  const uint32_t bits =
      static_cast<uint32_t>(vgetq_lane_u64(m, 0) & 1u) |
      (static_cast<uint32_t>(vgetq_lane_u64(m, 1) & 1u) << 1);
  return invert ? (bits ^ 0x3u) : bits;
}

template <CmpOp Op, bool WithLeading>
uint32_t NeonFilterFirst(const char* rows, uint32_t stride, size_t offset,
                         int64_t operand, uint32_t n, uint32_t* sel,
                         uint32_t* leading) {
  const int64x2_t opv = vdupq_n_s64(operand);
  uint32_t out = 0;
  uint32_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const uint32_t bits = Mask2<Op>(Load2(rows, stride, offset, r), opv);
    sel[out] = r;
    out += bits & 1u;
    sel[out] = r + 1;
    out += (bits >> 1) & 1u;
    if constexpr (WithLeading) {
      leading[r] = bits & 1u;
      leading[r + 1] = (bits >> 1) & 1u;
    }
  }
  for (; r < n; ++r) {
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op, bool WithLeading>
uint32_t NeonFilterNext(const char* rows, uint32_t stride, size_t offset,
                        int64_t operand, uint32_t* sel, uint32_t m,
                        uint32_t* leading) {
  const int64x2_t opv = vdupq_n_s64(operand);
  uint32_t out = 0;
  uint32_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const uint32_t r0 = sel[i];
    const uint32_t r1 = sel[i + 1];
    int64x2_t v = vdupq_n_s64(LoadInt64(RowPtr(rows, stride, r0) + offset));
    v = vsetq_lane_s64(LoadInt64(RowPtr(rows, stride, r1) + offset), v, 1);
    const uint32_t bits = Mask2<Op>(v, opv);
    if constexpr (WithLeading) {
      leading[r0] += bits & 1u;
      leading[r1] += (bits >> 1) & 1u;
    }
    sel[out] = r0;
    out += bits & 1u;
    sel[out] = r1;
    out += (bits >> 1) & 1u;
  }
  for (; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op>
void NeonDense(const char* rows, uint32_t stride, size_t offset,
               int64_t operand, uint32_t n, uint8_t* pass, bool first) {
  const int64x2_t opv = vdupq_n_s64(operand);
  uint32_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const uint32_t bits = Mask2<Op>(Load2(rows, stride, offset, r), opv);
    const uint8_t h0 = static_cast<uint8_t>(bits & 1u);
    const uint8_t h1 = static_cast<uint8_t>((bits >> 1) & 1u);
    pass[r] = first ? h0 : (pass[r] & h0);
    pass[r + 1] = first ? h1 : (pass[r + 1] & h1);
  }
  for (; r < n; ++r) {
    const uint8_t hit = static_cast<uint8_t>(
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

uint32_t NeonLeadingLe(const char* rows, uint32_t stride, size_t offset,
                       int64_t bound, uint32_t n) {
  const int64x2_t boundv = vdupq_n_s64(bound);
  uint32_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const uint32_t le = Mask2<CmpOp::kLe>(Load2(rows, stride, offset, r),
                                          boundv);
    if (le != 0x3u) return r + (le & 1u);
  }
  return r + ScalarLeadingLe(RowPtr(rows, stride, r), stride, offset, bound,
                             n - r);
}

SimdOps BuildNeonOps() {
  SimdOps t;
  FillScalarOps(&t);
  auto fill = [&t](auto op_tag) {
    constexpr CmpOp Op = decltype(op_tag)::value;
    constexpr size_t kOp = static_cast<size_t>(Op);
    t.int64_filter_first[kOp][0] = &NeonFilterFirst<Op, false>;
    t.int64_filter_first[kOp][1] = &NeonFilterFirst<Op, true>;
    t.int64_filter_next[kOp][0] = &NeonFilterNext<Op, false>;
    t.int64_filter_next[kOp][1] = &NeonFilterNext<Op, true>;
    t.int64_dense[kOp] = &NeonDense<Op>;
  };
  fill(std::integral_constant<CmpOp, CmpOp::kEq>{});
  fill(std::integral_constant<CmpOp, CmpOp::kNe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGe>{});
  t.int64_leading_le = &NeonLeadingLe;
  t.isa = SimdIsa::kNeon;
  return t;
}

}  // namespace

const SimdOps* GetNeonSimdOps() {
  static const SimdOps table = BuildNeonOps();
  return &table;
}

}  // namespace simd_internal
}  // namespace dpcf

#else  // not an aarch64 build

namespace dpcf {
namespace simd_internal {

const SimdOps* GetNeonSimdOps() { return nullptr; }

}  // namespace simd_internal
}  // namespace dpcf

#endif
