#include "exec/rel_ops.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpcf {

SortOp::SortOp(OperatorPtr child, int key_idx)
    : child_(std::move(child)), key_idx_(key_idx) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  DPCF_RETURN_IF_ERROR(child_->Open(ctx));
  Tuple t;
  while (true) {
    auto more = child_->Next(ctx, &t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    rows_.push_back(std::move(t));
  }
  DPCF_RETURN_IF_ERROR(child_->Close(ctx));
  // Charge ~n log n comparisons as generic CPU row work.
  ctx->cpu()->rows_processed += static_cast<int64_t>(rows_.size());
  size_t idx = static_cast<size_t>(key_idx_);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [idx](const Tuple& a, const Tuple& b) {
                     return a[idx].AsInt64() < b[idx].AsInt64();
                   });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(ExecContext* ctx, Tuple* out) {
  (void)ctx;
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Status SortOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  rows_.clear();
  return Status::OK();
}

std::string SortOp::Describe() const {
  return StrFormat("Sort(key=#%d)", key_idx_);
}


std::vector<const Operator*> SortOp::children() const {
  return {child_.get()};
}

AggregateCountOp::AggregateCountOp(OperatorPtr child)
    : child_(std::move(child)) {}

Status AggregateCountOp::OpenImpl(ExecContext* ctx) {
  count_ = 0;
  emitted_ = false;
  return child_->Open(ctx);
}

Result<bool> AggregateCountOp::NextImpl(ExecContext* ctx, Tuple* out) {
  if (emitted_) return false;
  Tuple t;
  while (true) {
    auto more = child_->Next(ctx, &t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    ++count_;
  }
  emitted_ = true;
  out->clear();
  out->push_back(Value::Int64(count_));
  return true;
}

Status AggregateCountOp::CloseImpl(ExecContext* ctx) {
  return child_->Close(ctx);
}

std::string AggregateCountOp::Describe() const { return "Aggregate(COUNT)"; }


std::vector<const Operator*> AggregateCountOp::children() const {
  return {child_.get()};
}

bool TupleAtom::Eval(const Tuple& t) const {
  const Value& v = t[static_cast<size_t>(idx)];
  int c = v.Compare(operand);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

TupleFilterOp::TupleFilterOp(OperatorPtr child, std::vector<TupleAtom> atoms)
    : child_(std::move(child)), atoms_(std::move(atoms)) {}

Status TupleFilterOp::OpenImpl(ExecContext* ctx) { return child_->Open(ctx); }

Result<bool> TupleFilterOp::NextImpl(ExecContext* ctx, Tuple* out) {
  while (true) {
    auto more = child_->Next(ctx, out);
    if (!more.ok()) return more.status();
    if (!*more) return false;
    bool pass = true;
    for (const TupleAtom& a : atoms_) {
      ++ctx->cpu()->predicate_atom_evals;
      if (!a.Eval(*out)) {
        pass = false;
        break;
      }
    }
    if (pass) return true;
  }
}

Status TupleFilterOp::CloseImpl(ExecContext* ctx) { return child_->Close(ctx); }

std::string TupleFilterOp::Describe() const {
  return StrFormat("Filter(%zu atoms)", atoms_.size());
}


std::vector<const Operator*> TupleFilterOp::children() const {
  return {child_.get()};
}

}  // namespace dpcf
