#include "exec/scan_ops.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace dpcf {

namespace {
void MaterializeProjection(const RowView& row,
                           const std::vector<int>& projection, Tuple* out) {
  out->clear();
  out->reserve(projection.size());
  for (int col : projection) {
    out->push_back(row.GetValue(static_cast<size_t>(col)));
  }
}
}  // namespace

TableScanOp::TableScanOp(Table* table, Predicate pushed,
                         std::vector<int> projection,
                         std::unique_ptr<ScanMonitorBundle> monitors,
                         bool vectorized)
    : table_(table),
      pushed_(std::move(pushed)),
      projection_(std::move(projection)),
      monitors_(std::move(monitors)),
      vectorized_(vectorized),
      kernel_(pushed_, &table->schema()),
      block_(&table->schema()) {}

Status TableScanOp::OpenImpl(ExecContext* ctx) {
  page_idx_ = 0;
  row_idx_ = 0;
  rows_in_page_ = 0;
  page_open_ = false;
  done_ = false;
  sel_pos_ = 0;
  sel_count_ = 0;
  batch_rows_hist_ =
      vectorized_ && ctx->metrics() != nullptr
          ? ctx->metrics()->GetHistogram(
                "dpcf_scan_batch_rows",
                "rows per vectorized predicate batch (one batch per page)",
                1.0, 2.0, 12)
          : nullptr;
  return Status::OK();
}

Result<bool> TableScanOp::NextImpl(ExecContext* ctx, Tuple* out) {
  return vectorized_ ? NextVectorized(ctx, out) : NextRowAtATime(ctx, out);
}

Result<bool> TableScanOp::NextRowAtATime(ExecContext* ctx, Tuple* out) {
  if (done_) return false;
  const HeapFile* file = table_->file();
  const Schema* schema = &table_->schema();
  CpuStats* cpu = ctx->cpu();
  const uint32_t num_atoms = static_cast<uint32_t>(pushed_.size());
  while (true) {
    if (!page_open_) {
      if (page_idx_ >= file->page_count()) {
        done_ = true;
        return false;
      }
      auto guard = ctx->pool()->Fetch(PageId{file->segment(), page_idx_});
      if (!guard.ok()) return guard.status();
      guard_ = std::move(guard).value();
      rows_in_page_ = HeapFile::PageRowCount(guard_.data());
      row_idx_ = 0;
      page_open_ = true;
      if (monitors_ != nullptr) monitors_->BeginPage(cpu, page_idx_);
    }
    // oracle: the row-at-a-time reference path the vectorized kernel is
    // verified against.
    while (row_idx_ < rows_in_page_) {
      RowView row(file->RowInPage(guard_.data(),
                                  static_cast<uint16_t>(row_idx_)),
                  schema);
      ++row_idx_;
      ++cpu->rows_processed;
      uint32_t leading = pushed_.EvalLeading(row, cpu);
      if (monitors_ != nullptr) {
        monitors_->OnRow(row, leading, cpu, ctx->filter_slots());
      }
      if (leading == num_atoms) {
        MaterializeProjection(row, projection_, out);
        return true;
      }
    }
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
    ++page_idx_;
  }
}

Result<bool> TableScanOp::NextVectorized(ExecContext* ctx, Tuple* out) {
  if (done_) return false;
  const HeapFile* file = table_->file();
  const Schema* schema = &table_->schema();
  CpuStats* cpu = ctx->cpu();
  while (true) {
    if (!page_open_) {
      if (page_idx_ >= file->page_count()) {
        done_ = true;
        return false;
      }
      auto guard = ctx->pool()->Fetch(PageId{file->segment(), page_idx_});
      if (!guard.ok()) return guard.status();
      guard_ = std::move(guard).value();
      rows_in_page_ = HeapFile::PageRowCount(guard_.data());
      page_open_ = true;
      if (monitors_ != nullptr) monitors_->BeginPage(cpu, page_idx_);
      // The whole page is evaluated and observed up front; survivors are
      // then emitted one Next() at a time from the selection vector.
      block_.Reset(HeapFile::PageRows(guard_.data()), rows_in_page_);
      sel_.resize(rows_in_page_);
      cpu->rows_processed += rows_in_page_;
      uint32_t* leading_out = nullptr;
      if (monitors_ != nullptr) {
        leading_.resize(rows_in_page_);
        leading_out = leading_.data();
      }
      sel_count_ = kernel_.EvalBatch(&block_, cpu, sel_.data(), leading_out);
      sel_pos_ = 0;
      if (monitors_ != nullptr) {
        monitors_->ObserveBatch(&block_, leading_out, cpu,
                                ctx->filter_slots());
      }
      if (batch_rows_hist_ != nullptr) {
        batch_rows_hist_->Observe(static_cast<double>(rows_in_page_));
      }
    }
    if (sel_pos_ < sel_count_) {
      RowView row(block_.row(sel_[sel_pos_]), schema);
      ++sel_pos_;
      MaterializeProjection(row, projection_, out);
      return true;
    }
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
    ++page_idx_;
  }
}

Status TableScanOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  // A drained scan already closed its last page; an abandoned one has not.
  if (page_open_) {
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
  }
  return Status::OK();
}

std::string TableScanOp::Describe() const {
  return StrFormat("%s(%s, %s)",
                   table_->organization() == TableOrganization::kClustered
                       ? "ClusteredIndexScan"
                       : "TableScan",
                   table_->name().c_str(),
                   pushed_.ToString(table_->schema()).c_str());
}

void TableScanOp::CollectOwnMonitorRecords(
    std::vector<MonitorRecord>* out) const {
  if (monitors_ == nullptr) return;
  for (const ScanExprResult& r : monitors_->Finish()) {
    MonitorRecord rec;
    rec.table = table_->name();
    rec.label = r.label;
    rec.expr_text = r.expr_text;
    rec.mechanism =
        r.mode == ScanMonitorMode::kSampled
            ? StrFormat("dpsample(f=%s)",
                        FormatDouble(r.sample_fraction, 4).c_str())
            : ScanMonitorModeName(r.mode);
    rec.actual_dpc = r.dpc;
    rec.actual_cardinality = r.cardinality;
    rec.exact = r.mode != ScanMonitorMode::kSampled;
    out->push_back(std::move(rec));
  }
}

ClusteredRangeScanOp::ClusteredRangeScanOp(
    Table* table, Index* cluster_index, int64_t lo, int64_t hi,
    Predicate pushed, std::vector<int> projection,
    std::unique_ptr<ScanMonitorBundle> monitors, bool vectorized)
    : table_(table),
      cluster_index_(cluster_index),
      lo_(lo),
      hi_(hi),
      cluster_col_(table->cluster_key_col()),
      pushed_(std::move(pushed)),
      projection_(std::move(projection)),
      monitors_(std::move(monitors)),
      vectorized_(vectorized),
      kernel_(pushed_, &table->schema()),
      simd_(&ActiveSimdOps()),
      block_(&table->schema()) {
  assert(cluster_col_ >= 0 && "range scan requires a clustered table");
}

Status ClusteredRangeScanOp::OpenImpl(ExecContext* ctx) {
  row_idx_ = 0;
  rows_in_page_ = 0;
  page_open_ = false;
  done_ = false;
  sel_pos_ = 0;
  sel_count_ = 0;
  truncated_ = false;
  batch_rows_hist_ =
      vectorized_ && ctx->metrics() != nullptr
          ? ctx->metrics()->GetHistogram(
                "dpcf_scan_batch_rows",
                "rows per vectorized predicate batch (one batch per page)",
                1.0, 2.0, 12)
          : nullptr;
  // Locate the first data page holding a key >= lo via the clustered-key
  // index (charges the descent I/O, like a real clustered seek).
  DPCF_ASSIGN_OR_RETURN(BtreeIterator it,
                        cluster_index_->tree()->SeekFirst(BtreeKey::Min(lo_)));
  if (!it.Valid() || it.key().k1 > hi_) {
    done_ = true;
    return Status::OK();
  }
  page_idx_ = Rid::Unpack(it.aux()).page_no;
  return Status::OK();
}

Result<bool> ClusteredRangeScanOp::NextImpl(ExecContext* ctx, Tuple* out) {
  return vectorized_ ? NextVectorized(ctx, out) : NextRowAtATime(ctx, out);
}

Result<bool> ClusteredRangeScanOp::NextRowAtATime(ExecContext* ctx,
                                                  Tuple* out) {
  if (done_) return false;
  const HeapFile* file = table_->file();
  const Schema* schema = &table_->schema();
  CpuStats* cpu = ctx->cpu();
  const uint32_t num_atoms = static_cast<uint32_t>(pushed_.size());
  while (true) {
    if (!page_open_) {
      if (page_idx_ >= file->page_count()) {
        done_ = true;
        return false;
      }
      auto guard = ctx->pool()->Fetch(PageId{file->segment(), page_idx_});
      if (!guard.ok()) return guard.status();
      guard_ = std::move(guard).value();
      rows_in_page_ = HeapFile::PageRowCount(guard_.data());
      row_idx_ = 0;
      page_open_ = true;
      if (monitors_ != nullptr) monitors_->BeginPage(cpu, page_idx_);
    }
    // oracle: stays row-at-a-time — the sorted-key early exit below can
    // stop mid-page, and batch-observing the page up front would feed the
    // monitors rows the serial semantics never evaluates.
    while (row_idx_ < rows_in_page_) {
      RowView row(file->RowInPage(guard_.data(),
                                  static_cast<uint16_t>(row_idx_)),
                  schema);
      // Keys are sorted: past hi means the range (and the scan) is done.
      if (row.GetInt64(static_cast<size_t>(cluster_col_)) > hi_) {
        if (monitors_ != nullptr) monitors_->EndPage();
        guard_.Release();
        page_open_ = false;
        done_ = true;
        return false;
      }
      ++row_idx_;
      ++cpu->rows_processed;
      uint32_t leading = pushed_.EvalLeading(row, cpu);
      if (monitors_ != nullptr) {
        monitors_->OnRow(row, leading, cpu, ctx->filter_slots());
      }
      if (leading == num_atoms) {
        MaterializeProjection(row, projection_, out);
        return true;
      }
    }
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
    ++page_idx_;
  }
}

Result<bool> ClusteredRangeScanOp::NextVectorized(ExecContext* ctx,
                                                  Tuple* out) {
  if (done_) return false;
  const HeapFile* file = table_->file();
  const Schema* schema = &table_->schema();
  CpuStats* cpu = ctx->cpu();
  const size_t key_offset = schema->offset(static_cast<size_t>(cluster_col_));
  while (true) {
    if (!page_open_) {
      if (page_idx_ >= file->page_count()) {
        done_ = true;
        return false;
      }
      auto guard = ctx->pool()->Fetch(PageId{file->segment(), page_idx_});
      if (!guard.ok()) return guard.status();
      guard_ = std::move(guard).value();
      rows_in_page_ = HeapFile::PageRowCount(guard_.data());
      page_open_ = true;
      if (monitors_ != nullptr) monitors_->BeginPage(cpu, page_idx_);
      // Leaf-run adapter: a clustered data page *is* a key-ordered run of
      // the clustering leaf level, so binding the RowBlock truncated at
      // the first key past hi turns the sorted-key early exit into a
      // batch-size decision. The cutoff probe is uncharged, exactly like
      // the row path's key peek, and rows at/after the cutoff are never
      // evaluated or observed — same as the serial semantics.
      const char* rows = HeapFile::PageRows(guard_.data());
      const uint32_t run = simd_->int64_leading_le(
          rows, block_.row_stride(), key_offset, hi_, rows_in_page_);
      truncated_ = run < rows_in_page_;
      block_.Reset(rows, run);
      sel_.resize(run);
      cpu->rows_processed += run;
      uint32_t* leading_out = nullptr;
      if (monitors_ != nullptr) {
        leading_.resize(run);
        leading_out = leading_.data();
      }
      sel_count_ = kernel_.EvalBatch(&block_, cpu, sel_.data(), leading_out);
      sel_pos_ = 0;
      if (monitors_ != nullptr) {
        monitors_->ObserveBatch(&block_, leading_out, cpu,
                                ctx->filter_slots());
      }
      if (batch_rows_hist_ != nullptr) {
        batch_rows_hist_->Observe(static_cast<double>(run));
      }
    }
    if (sel_pos_ < sel_count_) {
      RowView row(block_.row(sel_[sel_pos_]), schema);
      ++sel_pos_;
      MaterializeProjection(row, projection_, out);
      return true;
    }
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
    if (truncated_) {
      // The run stopped at an out-of-range key: sorted order says no later
      // page can hold in-range rows.
      done_ = true;
      return false;
    }
    ++page_idx_;
  }
}

Status ClusteredRangeScanOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  if (page_open_) {
    if (monitors_ != nullptr) monitors_->EndPage();
    guard_.Release();
    page_open_ = false;
  }
  return Status::OK();
}

std::string ClusteredRangeScanOp::Describe() const {
  return StrFormat("ClusteredRangeScan(%s, %s in [%lld,%lld], %s)",
                   table_->name().c_str(),
                   table_->schema().column(
                       static_cast<size_t>(cluster_col_)).name.c_str(),
                   static_cast<long long>(lo_), static_cast<long long>(hi_),
                   pushed_.ToString(table_->schema()).c_str());
}

void ClusteredRangeScanOp::CollectOwnMonitorRecords(
    std::vector<MonitorRecord>* out) const {
  if (monitors_ == nullptr) return;
  for (const ScanExprResult& r : monitors_->Finish()) {
    MonitorRecord rec;
    rec.table = table_->name();
    rec.label = r.label;
    rec.expr_text = r.expr_text;
    rec.mechanism =
        r.mode == ScanMonitorMode::kSampled
            ? StrFormat("dpsample(f=%s)",
                        FormatDouble(r.sample_fraction, 4).c_str())
            : ScanMonitorModeName(r.mode);
    rec.actual_dpc = r.dpc;
    rec.actual_cardinality = r.cardinality;
    rec.exact = r.mode != ScanMonitorMode::kSampled;
    out->push_back(std::move(rec));
  }
}

CoveringIndexScanOp::CoveringIndexScanOp(Index* index, Predicate pushed,
                                         std::vector<int> projection)
    : index_(index),
      pushed_(std::move(pushed)),
      projection_(std::move(projection)) {
#ifndef NDEBUG
  for (const PredicateAtom& a : pushed_.atoms()) {
    assert(index_->Covers({a.col()}) && "atom column not covered");
    assert(!a.is_string());
  }
  for (int c : projection_) assert(index_->Covers({c}));
#endif
}

Status CoveringIndexScanOp::OpenImpl(ExecContext* ctx) {
  (void)ctx;
  done_ = false;
  DPCF_ASSIGN_OR_RETURN(it_, index_->tree()->Begin());
  return Status::OK();
}

bool CoveringIndexScanOp::EvalEntry(const BtreeKey& key,
                                    CpuStats* cpu) const {
  for (const PredicateAtom& a : pushed_.atoms()) {
    ++cpu->predicate_atom_evals;
    int64_t v = a.col() == index_->key_cols()[0] ? key.k1 : key.k2;
    if (!a.EvalInt(v)) return false;
  }
  return true;
}

Result<bool> CoveringIndexScanOp::NextImpl(ExecContext* ctx, Tuple* out) {
  if (done_) return false;
  CpuStats* cpu = ctx->cpu();
  while (it_.Valid()) {
    BtreeKey key = it_.key();
    ++cpu->rows_processed;
    bool pass = EvalEntry(key, cpu);
    DPCF_RETURN_IF_ERROR(it_.Next());
    if (pass) {
      out->clear();
      out->reserve(projection_.size());
      for (int col : projection_) {
        out->push_back(Value::Int64(
            col == index_->key_cols()[0] ? key.k1 : key.k2));
      }
      return true;
    }
  }
  done_ = true;
  return false;
}

Status CoveringIndexScanOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  it_ = BtreeIterator();
  return Status::OK();
}

std::string CoveringIndexScanOp::Describe() const {
  return StrFormat("CoveringIndexScan(%s, %s)", index_->name().c_str(),
                   pushed_.ToString(index_->table()->schema()).c_str());
}

}  // namespace dpcf
