#include "exec/readahead.h"

#include "obs/event_journal.h"
#include "obs/metrics_registry.h"

namespace dpcf {

AdaptiveReadaheadController::AdaptiveReadaheadController(
    const AdaptiveReadaheadConfig& config, const IoStats* io,
    Gauge* window_gauge, EventJournal* journal)
    : config_(config),
      io_(io),
      window_gauge_(window_gauge),
      journal_(journal),
      window_(config.initial_window),
      seen_reads_(io->prefetch_reads),
      seen_hits_(io->prefetch_hits),
      seen_rejected_(io->prefetch_rejected) {
  if (config_.min_window < 1) config_.min_window = 1;
  if (config_.min_window > config_.initial_window) {
    config_.min_window = config_.initial_window;
  }
  if (config_.max_window < config_.initial_window) {
    config_.max_window = config_.initial_window;
  }
  Publish(config_.initial_window);
}

void AdaptiveReadaheadController::Publish(int64_t w) {
  const int64_t old = window_.load(std::memory_order_relaxed);
  window_.store(w, std::memory_order_relaxed);
  if (window_gauge_ != nullptr) {
    window_gauge_->Set(static_cast<double>(w));
  }
  if (journal_ != nullptr && w != old) {
    journal_->Record(JournalEvent::kReadaheadResize,
                     static_cast<uint64_t>(w), static_cast<uint64_t>(old));
  }
}

void AdaptiveReadaheadController::Update() {
  if (!config_.adaptive) return;
  // Quiescent-enough snapshots: these counters are relaxed atomics shared
  // with the scan workers, so a delta can miss an in-flight increment; it
  // is then observed by the next Update. The law only needs trends.
  const int64_t reads = io_->prefetch_reads;
  const int64_t hits = io_->prefetch_hits;
  const int64_t rejected = io_->prefetch_rejected;
  const int64_t d_reads = reads - seen_reads_;
  const int64_t d_hits = hits - seen_hits_;
  const int64_t d_rejected = rejected - seen_rejected_;
  seen_reads_ = reads;
  seen_hits_ = hits;
  seen_rejected_ = rejected;

  const int64_t w = window_.load(std::memory_order_relaxed);
  if (d_rejected > 0) {
    // The pool dropped submissions: the window outran the evictable frames
    // of some shard. Back off before racing further ahead.
    const int64_t narrowed = w / 2 < config_.min_window
                                 ? config_.min_window
                                 : w / 2;
    if (narrowed != w) ++narrowings_;
    Publish(narrowed);
    return;
  }
  if (d_reads <= 0) return;  // no new signal this quantum
  if (4 * d_hits >= 3 * d_reads) {
    // Nearly everything staged is being consumed: the scan is I/O bound
    // and a wider window covers more of the device latency.
    const int64_t widened = 2 * w > config_.max_window ? config_.max_window
                                                       : 2 * w;
    if (widened != w) ++widenings_;
    Publish(widened);
    return;
  }
  if (4 * d_hits < d_reads && d_reads >= w) {
    // A full window of speculative reads went mostly unconsumed: narrow
    // so eviction churn stops wasting simulated device time.
    const int64_t narrowed = w / 2 < config_.min_window
                                 ? config_.min_window
                                 : w / 2;
    if (narrowed != w) ++narrowings_;
    Publish(narrowed);
  }
}

}  // namespace dpcf
