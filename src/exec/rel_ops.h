// Relational-engine operators: Sort, COUNT aggregation, tuple-level filter.
// These run above the storage engine and never see PIDs.

#pragma once

#include <optional>

#include "exec/operator.h"
#include "exec/predicate.h"

namespace dpcf {

/// Blocking sort on one INT64 tuple position, ascending. Used to feed
/// Merge Join (and is the case where the prebuilt bitvector applies: the
/// first Next() implies the child was fully consumed).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, int key_idx);

  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  OperatorPtr child_;
  int key_idx_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// COUNT(*) over the child: emits a single 1-column tuple.
class AggregateCountOp : public Operator {
 public:
  explicit AggregateCountOp(OperatorPtr child);

  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  OperatorPtr child_;
  int64_t count_ = 0;
  bool emitted_ = false;
};

/// One comparison against a tuple position (not raw row bytes) — residual
/// filtering in the relational engine.
struct TupleAtom {
  int idx = 0;
  CmpOp op = CmpOp::kEq;
  Value operand;

  bool Eval(const Tuple& t) const;
};

/// Conjunctive filter over materialized tuples.
class TupleFilterOp : public Operator {
 public:
  TupleFilterOp(OperatorPtr child, std::vector<TupleAtom> atoms);

  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  OperatorPtr child_;
  std::vector<TupleAtom> atoms_;
};

}  // namespace dpcf
