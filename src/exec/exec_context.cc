#include "exec/exec_context.h"

#include "common/string_util.h"

namespace dpcf {

Status ExecContext::SetFilter(int slot,
                              std::unique_ptr<BitvectorFilter> filter) {
  if (slot < 0 || static_cast<size_t>(slot) >= filter_slots_.size()) {
    return Status::InvalidArgument(StrFormat("bad filter slot %d", slot));
  }
  filter_slots_[static_cast<size_t>(slot)] = filter.get();
  owned_filters_.push_back(std::move(filter));
  return Status::OK();
}

BitvectorFilter* ExecContext::MutableFilter(int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= filter_slots_.size()) {
    return nullptr;
  }
  return const_cast<BitvectorFilter*>(
      filter_slots_[static_cast<size_t>(slot)]);
}

}  // namespace dpcf
