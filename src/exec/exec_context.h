// Execution context: the runtime state shared by the operators of one plan,
// and the RE/SE communication boundary.
//
// PageIds exist only below this boundary (scan / fetch operators); the
// relational-engine operators (joins, aggregates) never see them. The one
// sanctioned channel between the layers is the *filter slot table*: a
// relational-engine join registers a BitvectorFilter in a pre-allocated slot
// (the paper's SE→RE "callback" in reverse), and a storage-engine scan's
// monitor bundle probes it as a derived semi-join predicate (Fig 5).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/bitvector_filter.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace dpcf {

/// Per-execution mutable state. Create one per plan run.
class ExecContext {
 public:
  explicit ExecContext(BufferPool* pool, uint64_t seed = 0x5eed)
      : pool_(pool), seed_(seed) {}

  BufferPool* pool() const { return pool_; }

  /// Driver-thread tally. Single-threaded Volcano operators increment
  /// through this pointer on the per-row hot path; parallel workers must
  /// NOT touch it — they keep a thread-local CpuStats and fold it in via
  /// MergeCpu().
  CpuStats* cpu() { return &cpu_; }

  /// Folds a worker's thread-local tally into the context. Safe to call
  /// concurrently from scan workers as each finishes.
  void MergeCpu(const CpuStats& delta) EXCLUDES(merged_cpu_mu_) {
    MutexLock lock(&merged_cpu_mu_);
    merged_cpu_ += delta;
  }

  /// Snapshot of driver-thread + merged worker CPU counters. Call at
  /// quiescent points (before/after a run); the driver part is unlatched.
  CpuStats cpu_stats() const EXCLUDES(merged_cpu_mu_) {
    CpuStats total = cpu_;
    MutexLock lock(&merged_cpu_mu_);
    total += merged_cpu_;
    return total;
  }

  uint64_t seed() const { return seed_; }

  /// Reserves a slot a join will later fill with its bitvector filter.
  /// Called at plan-construction time so scans can reference the slot.
  int AllocateFilterSlot() {
    filter_slots_.push_back(nullptr);
    return static_cast<int>(filter_slots_.size() - 1);
  }

  /// Registers `filter` (ownership transferred) into `slot`. The filter
  /// becomes visible to scan monitors immediately — including the
  /// partial-filter Merge Join variant, where bits keep being added while
  /// the probe side is already scanning.
  Status SetFilter(int slot, std::unique_ptr<BitvectorFilter> filter);

  /// Mutable access for joins that grow a registered filter incrementally.
  BitvectorFilter* MutableFilter(int slot);

  const std::vector<const BitvectorFilter*>& filter_slots() const {
    return filter_slots_;
  }

 private:
  BufferPool* pool_;
  uint64_t seed_;
  CpuStats cpu_;  // driver thread only
  mutable Mutex merged_cpu_mu_;
  CpuStats merged_cpu_ GUARDED_BY(merged_cpu_mu_);
  std::vector<const BitvectorFilter*> filter_slots_;
  std::vector<std::unique_ptr<BitvectorFilter>> owned_filters_;
};

}  // namespace dpcf
