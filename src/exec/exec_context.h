// Execution context: the runtime state shared by the operators of one plan,
// and the RE/SE communication boundary.
//
// PageIds exist only below this boundary (scan / fetch operators); the
// relational-engine operators (joins, aggregates) never see them. The one
// sanctioned channel between the layers is the *filter slot table*: a
// relational-engine join registers a BitvectorFilter in a pre-allocated slot
// (the paper's SE→RE "callback" in reverse), and a storage-engine scan's
// monitor bundle probes it as a derived semi-join predicate (Fig 5).

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/bitvector_filter.h"
#include "obs/stall_tracker.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace dpcf {

class TraceCollector;   // obs/trace_collector.h
class MetricsRegistry;  // obs/metrics_registry.h
class EventJournal;     // obs/event_journal.h

/// Per-execution mutable state. Create one per plan run.
class ExecContext {
 public:
  explicit ExecContext(BufferPool* pool, uint64_t seed = 0x5eed)
      : pool_(pool), seed_(seed) {}

  BufferPool* pool() const { return pool_; }

  /// Driver-thread tally. Single-threaded Volcano operators increment
  /// through this pointer on the per-row hot path; parallel workers must
  /// NOT touch it — they keep a thread-local CpuStats and fold it in via
  /// MergeCpu().
  CpuStats* cpu() { return &cpu_; }

  /// Folds a worker's thread-local tally into the context. Safe to call
  /// concurrently from scan workers as each finishes.
  void MergeCpu(const CpuStats& delta) EXCLUDES(merged_cpu_mu_) {
    MutexLock lock(&merged_cpu_mu_);
    merged_cpu_ += delta;
  }

  /// Snapshot of driver-thread + merged worker CPU counters. The driver
  /// part is read unlatched, so this must only run at quiescent points —
  /// no WorkerRegion live (workers joined, their tallies folded in via
  /// MergeCpu). The contract is enforced with a debug-build assertion, not
  /// a comment: parallel operators hold a WorkerRegion for exactly the
  /// window in which non-driver threads run.
  CpuStats cpu_stats() const EXCLUDES(merged_cpu_mu_) {
    assert(active_workers_.load(std::memory_order_acquire) == 0 &&
           "cpu_stats() called while scan workers are live");
    CpuStats total = cpu_;
    MutexLock lock(&merged_cpu_mu_);
    total += merged_cpu_;
    return total;
  }

  /// Driver-thread stall tally: the executor installs a StallScope over it
  /// for the run, so storage-layer blocking on the driver thread lands
  /// here. Parallel workers fold their own tallies in via MergeStall().
  StallStats* stall() { return &stall_; }

  /// Folds a worker's thread-local stall tally into the context. Safe to
  /// call concurrently from scan workers as each finishes.
  void MergeStall(const StallStats& delta) EXCLUDES(merged_cpu_mu_) {
    MutexLock lock(&merged_cpu_mu_);
    merged_stall_ += delta;
  }

  /// Snapshot of driver + merged worker stalls; same quiescent-point
  /// contract as cpu_stats().
  StallStats stall_stats() const EXCLUDES(merged_cpu_mu_) {
    assert(active_workers_.load(std::memory_order_acquire) == 0 &&
           "stall_stats() called while scan workers are live");
    StallStats total = stall_;
    MutexLock lock(&merged_cpu_mu_);
    total += merged_stall_;
    return total;
  }

  /// RAII marker for the window in which non-driver worker threads exist
  /// (morsel workers, the readahead thread). cpu_stats() asserts that no
  /// region is live.
  class WorkerRegion {
   public:
    explicit WorkerRegion(ExecContext* ctx) : ctx_(ctx) {
      ctx_->active_workers_.fetch_add(1, std::memory_order_acq_rel);
    }
    WorkerRegion(const WorkerRegion&) = delete;
    WorkerRegion& operator=(const WorkerRegion&) = delete;
    ~WorkerRegion() {
      ctx_->active_workers_.fetch_sub(1, std::memory_order_acq_rel);
    }

   private:
    ExecContext* ctx_;
  };

  int active_worker_regions() const {
    return active_workers_.load(std::memory_order_acquire);
  }

  /// Per-operator profiling (obs/op_profile.h). Off by default; the
  /// Operator wrappers snapshot IoStats/CpuStats around every call when on.
  bool profiling() const { return profiling_; }
  void set_profiling(bool on) { profiling_ = on; }

  /// Trace collector for span emission, or null. The operators and the
  /// parallel scan check trace()->enabled() before reading any clock.
  TraceCollector* trace() const { return trace_; }
  void set_trace(TraceCollector* trace) { trace_ = trace; }

  /// Metrics registry for engine metrics emitted from operators (e.g. the
  /// scan_batch_rows histogram), or null when metrics are off. Operators
  /// resolve their handles once at Open.
  MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Flight-recorder journal for exec-layer events (readahead resizes,
  /// monitor build/merge), or null. Storage-layer events are journaled by
  /// the pool/disk directly; this pointer only feeds the exec sites.
  EventJournal* journal() const { return journal_; }
  void set_journal(EventJournal* journal) { journal_ = journal; }

  /// Query id stamped on every trace span emitted while this context's
  /// plan runs, so concurrent sessions can untangle their events in one
  /// trace file. 0 means "unassigned" (spans carry no qid argument).
  uint64_t query_id() const { return query_id_; }
  void set_query_id(uint64_t qid) { query_id_ = qid; }

  uint64_t seed() const { return seed_; }

  /// Reserves a slot a join will later fill with its bitvector filter.
  /// Called at plan-construction time so scans can reference the slot.
  int AllocateFilterSlot() {
    filter_slots_.push_back(nullptr);
    return static_cast<int>(filter_slots_.size() - 1);
  }

  /// Registers `filter` (ownership transferred) into `slot`. The filter
  /// becomes visible to scan monitors immediately — including the
  /// partial-filter Merge Join variant, where bits keep being added while
  /// the probe side is already scanning.
  Status SetFilter(int slot, std::unique_ptr<BitvectorFilter> filter);

  /// Mutable access for joins that grow a registered filter incrementally.
  BitvectorFilter* MutableFilter(int slot);

  const std::vector<const BitvectorFilter*>& filter_slots() const {
    return filter_slots_;
  }

 private:
  BufferPool* pool_;
  uint64_t seed_;
  CpuStats cpu_;      // driver thread only
  StallStats stall_;  // driver thread only (via the executor's StallScope)
  // Leaf rank: MergeCpu/MergeStall hold no other latch and call out to
  // nothing.
  mutable Mutex merged_cpu_mu_{lock_rank::kExecMergedCpu};
  CpuStats merged_cpu_ GUARDED_BY(merged_cpu_mu_);
  StallStats merged_stall_ GUARDED_BY(merged_cpu_mu_);
  // Count of live WorkerRegions; its own synchronization (like
  // AtomicCounter, no GUARDED_BY needed).
  std::atomic<int> active_workers_{0};
  bool profiling_ = false;
  TraceCollector* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  EventJournal* journal_ = nullptr;
  uint64_t query_id_ = 0;
  std::vector<const BitvectorFilter*> filter_slots_;
  std::vector<std::unique_ptr<BitvectorFilter>> owned_filters_;
};

}  // namespace dpcf
