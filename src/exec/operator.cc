#include "exec/operator.h"

#include <chrono>

#include "obs/trace_collector.h"
#include "storage/disk_manager.h"

namespace dpcf {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point t0) {
  // Monotonic wall time feeding OpProfile only — reporting, never feedback
  // state; the regex lint allows steady_clock in src/exec for the same
  // reason (rules/nondeterminism.py).
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

IoStats SnapshotIo(ExecContext* ctx) {
  return *ctx->pool()->disk()->io_stats();
}

}  // namespace

Status Operator::Open(ExecContext* ctx) {
  if (!ctx->profiling()) {
    if (ctx->trace() != nullptr) {
      ScopedSpan span(ctx->trace(), "op", "open " + Describe());
      return OpenImpl(ctx);
    }
    return OpenImpl(ctx);
  }
  // Profiled path. A fresh Open starts a fresh profile — the same plan can
  // be executed repeatedly (cold-cache methodology) without bleed-over.
  profile_ = OpProfile{};
  const IoStats io_before = SnapshotIo(ctx);
  const CpuStats cpu_before = ctx->cpu_stats();
  const StallStats stall_before = ctx->stall_stats();
  // Wall-time profiling timestamp (OpProfile::open_wall_ms), not feedback.
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  const auto t0 = SteadyClock::now();
  Status st;
  {
    ScopedSpan span(ctx->trace(), "op", "open " + Describe());
    st = OpenImpl(ctx);
  }
  profile_.open_wall_ms += MsSince(t0);
  ++profile_.open_calls;
  profile_.io = SnapshotIo(ctx);
  profile_.io -= io_before;
  // Workers (if any) were joined inside OpenImpl, so the quiescent-point
  // contract of cpu_stats() holds here.
  profile_.cpu = ctx->cpu_stats();
  profile_.cpu -= cpu_before;
  profile_.stall = ctx->stall_stats();
  profile_.stall -= stall_before;
  return st;
}

Result<bool> Operator::Next(ExecContext* ctx, Tuple* out) {
  if (!ctx->profiling()) return NextImpl(ctx, out);
  const IoStats io_before = SnapshotIo(ctx);
  const CpuStats cpu_before = ctx->cpu_stats();
  const StallStats stall_before = ctx->stall_stats();
  // Wall-time profiling timestamp (OpProfile::next_wall_ms), not feedback.
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  const auto t0 = SteadyClock::now();
  Result<bool> more = NextImpl(ctx, out);
  profile_.next_wall_ms += MsSince(t0);
  ++profile_.next_calls;
  if (more.ok() && *more) ++profile_.rows;
  IoStats io_delta = SnapshotIo(ctx);
  io_delta -= io_before;
  profile_.io += io_delta;
  CpuStats cpu_delta = ctx->cpu_stats();
  cpu_delta -= cpu_before;
  profile_.cpu += cpu_delta;
  StallStats stall_delta = ctx->stall_stats();
  stall_delta -= stall_before;
  profile_.stall += stall_delta;
  return more;
}

Status Operator::Close(ExecContext* ctx) {
  if (!ctx->profiling()) {
    if (ctx->trace() != nullptr) {
      ScopedSpan span(ctx->trace(), "op", "close " + Describe());
      return CloseImpl(ctx);
    }
    return CloseImpl(ctx);
  }
  const IoStats io_before = SnapshotIo(ctx);
  const CpuStats cpu_before = ctx->cpu_stats();
  const StallStats stall_before = ctx->stall_stats();
  // Wall-time profiling timestamp (OpProfile::close_wall_ms), not feedback.
  // NOLINTNEXTLINE(dpcf-ast-nondeterminism)
  const auto t0 = SteadyClock::now();
  Status st;
  {
    ScopedSpan span(ctx->trace(), "op", "close " + Describe());
    st = CloseImpl(ctx);
  }
  profile_.close_wall_ms += MsSince(t0);
  ++profile_.close_calls;
  IoStats io_delta = SnapshotIo(ctx);
  io_delta -= io_before;
  profile_.io += io_delta;
  CpuStats cpu_delta = ctx->cpu_stats();
  cpu_delta -= cpu_before;
  profile_.cpu += cpu_delta;
  StallStats stall_delta = ctx->stall_stats();
  stall_delta -= stall_before;
  profile_.stall += stall_delta;
  return st;
}

void Operator::CollectMonitorRecords(std::vector<MonitorRecord>* out) const {
  // Children first, then own records: this reproduces the record order the
  // pre-refactor per-operator overrides emitted (build before probe, outer
  // before inner, child before INL fetch monitors), which the feedback
  // determinism tests rely on.
  for (const Operator* child : children()) {
    child->CollectMonitorRecords(out);
  }
  CollectOwnMonitorRecords(out);
}

}  // namespace dpcf
