// Scalar reference kernels for the SIMD layer — internal to the
// src/exec/simd* translation units.
//
// These templates are the semantic oracle: every vector implementation
// must match their outputs exactly, and they double as the tail loops the
// vector TUs fall back to for the last (width-1) rows of a batch. They are
// header-only so each ISA TU instantiates its own copies under its own
// compile flags (the AVX2 TU's tails get compiled with -mavx2, which is
// fine — these loops carry no intrinsics).

#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "exec/predicate.h"
#include "exec/simd.h"

namespace dpcf {
namespace simd_internal {

template <CmpOp Op>
inline bool ApplyOpInt64(int64_t lhs, int64_t rhs) {
  if constexpr (Op == CmpOp::kEq) {
    return lhs == rhs;
  } else if constexpr (Op == CmpOp::kNe) {
    return lhs != rhs;
  } else if constexpr (Op == CmpOp::kLt) {
    return lhs < rhs;
  } else if constexpr (Op == CmpOp::kLe) {
    return lhs <= rhs;
  } else if constexpr (Op == CmpOp::kGt) {
    return lhs > rhs;
  } else {
    return lhs >= rhs;
  }
}

/// Unaligned strided INT64 load straight from the page bytes (rows are
/// not 8-byte multiples, so column values have no alignment guarantee).
inline int64_t LoadInt64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline const char* RowPtr(const char* rows, uint32_t stride, uint32_t r) {
  return rows + static_cast<size_t>(r) * stride;
}

// The comparators read column values directly from the page at
// (row base + offset) instead of gathering them into a temporary array
// first: every value is used exactly once per atom, so a gather pass only
// adds a store+reload per row — and for later atoms it would touch all n
// rows when only the |sel| survivors matter.

// First atom: runs over the full batch, seeding the selection vector and
// the leading counts (no separate init pass). Compaction is branch-light —
// the candidate row index is written unconditionally and the write cursor
// advances only on a hit. `WithLeading` is false on unmonitored scans: no
// one reads leading[], so the kernel skips the per-row store entirely.
template <CmpOp Op, bool WithLeading>
uint32_t ScalarFilterFirst(const char* rows, uint32_t stride, size_t offset,
                           int64_t operand, uint32_t n, uint32_t* sel,
                           uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

// Later atoms: run only over the current selection vector.
template <CmpOp Op, bool WithLeading>
uint32_t ScalarFilterNext(const char* rows, uint32_t stride, size_t offset,
                          int64_t operand, uint32_t* sel, uint32_t m,
                          uint32_t* leading) {
  uint32_t out = 0;
  for (uint32_t i = 0; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

// Dense (no-short-circuit) pass: the first atom writes the pass bitmap
// outright (no memset), later atoms AND into it.
template <CmpOp Op>
void ScalarDense(const char* rows, uint32_t stride, size_t offset,
                 int64_t operand, uint32_t n, uint8_t* pass, bool first) {
  for (uint32_t r = 0; r < n; ++r) {
    const uint8_t hit = static_cast<uint8_t>(
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

/// First index whose value exceeds `bound` (rows sorted ascending).
inline uint32_t ScalarLeadingLe(const char* rows, uint32_t stride,
                                size_t offset, int64_t bound, uint32_t n) {
  for (uint32_t r = 0; r < n; ++r) {
    if (LoadInt64(RowPtr(rows, stride, r) + offset) > bound) return r;
  }
  return n;
}

/// Fills every table slot with the scalar kernels. Vector TUs call this
/// first, then overwrite the entries they accelerate — any op they skip
/// keeps the (already correct) scalar loop.
inline void FillScalarOps(SimdOps* t) {
  auto fill = [t](auto op_tag) {
    constexpr CmpOp Op = decltype(op_tag)::value;
    constexpr size_t kOp = static_cast<size_t>(Op);
    t->int64_filter_first[kOp][0] = &ScalarFilterFirst<Op, false>;
    t->int64_filter_first[kOp][1] = &ScalarFilterFirst<Op, true>;
    t->int64_filter_next[kOp][0] = &ScalarFilterNext<Op, false>;
    t->int64_filter_next[kOp][1] = &ScalarFilterNext<Op, true>;
    t->int64_dense[kOp] = &ScalarDense<Op>;
  };
  fill(std::integral_constant<CmpOp, CmpOp::kEq>{});
  fill(std::integral_constant<CmpOp, CmpOp::kNe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGe>{});
  t->int64_leading_le = &ScalarLeadingLe;
}

}  // namespace simd_internal
}  // namespace dpcf
