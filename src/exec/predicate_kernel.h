// Vectorized predicate evaluation over the rows of one heap page
// (DESIGN.md section 12).
//
// A PredicateKernel compiles a Predicate into per-atom batch comparators
// that run over a RowBlock with a *selection vector*: atom k is evaluated
// only for the rows that survived atoms 0..k-1, and the conjunction
// short-circuits as soon as the selection vector empties. That makes the
// work — and therefore CpuStats::predicate_atom_evals — identical to the
// row-at-a-time short-circuit loop, row for row and atom for atom, which
// is what keeps the fig7/fig9 overhead accounting and SimulatedMillis
// comparable across the two paths. The per-row `leading` output reproduces
// Predicate::EvalLeading exactly, so batch-fed monitors see the same
// prefix-truth information as the serial scan.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/predicate.h"
#include "exec/simd.h"
#include "storage/io_stats.h"
#include "table/row_codec.h"

namespace dpcf {

/// A Predicate compiled for batch evaluation. Self-contained (owns operand
/// copies and column offsets), cheap to copy, and stateless across calls —
/// one kernel can serve every page of a scan and be shared by value across
/// worker bundles.
class PredicateKernel {
 public:
  /// An empty kernel evaluates TRUE for every row (zero atoms).
  PredicateKernel() = default;
  PredicateKernel(const Predicate& pred, const Schema* schema);

  /// The SIMD table this kernel's INT64 comparators run on — snapshotted
  /// from ActiveSimdOps() at construction, so a process-wide ISA override
  /// (SetActiveSimd / DPCF_SIMD) applies to kernels built afterwards.
  SimdIsa simd_isa() const { return simd_->isa; }

  size_t num_atoms() const { return atoms_.size(); }

  /// Short-circuit selection-vector evaluation of all rows in `block`.
  ///
  /// `sel` and `leading` must hold block->size() elements. On return,
  /// sel[0..ret) are the surviving row indices in ascending order and
  /// leading[r] is the number of leading atoms that evaluated TRUE for row
  /// r under short-circuiting (== Predicate::EvalLeading for that row).
  /// `leading` may be nullptr when no monitor consumes it (an unmonitored
  /// scan): the kernel then skips the per-row leading stores, which is
  /// measurably cheaper on bandwidth-bound scans. Charges
  /// cpu->predicate_atom_evals exactly like the serial loop: one eval per
  /// atom per row still in the selection vector when that atom runs.
  uint32_t EvalBatch(RowBlock* block, CpuStats* cpu, uint32_t* sel,
                     uint32_t* leading) const;

  /// Evaluation with short-circuiting turned OFF: every atom is evaluated
  /// on every row and charged (atoms × rows), mirroring
  /// Predicate::EvalNoShortCircuit — the cost monitors pay on sampled
  /// pages. `pass` must hold block->size() elements; pass[r] ends up 1 iff
  /// row r satisfies the whole conjunction.
  void EvalBatchDense(RowBlock* block, CpuStats* cpu, uint8_t* pass) const;

 private:
  struct Atom {
    CmpOp op = CmpOp::kEq;
    bool is_string = false;
    size_t col = 0;
    size_t offset = 0;        // byte offset of the column within a row
    uint32_t width = 0;       // CHAR width (string atoms only)
    int64_t int_operand = 0;
    std::string str_operand;  // padded to `width`, like PredicateAtom
  };
  std::vector<Atom> atoms_;
  // Never null; the default is whatever dispatch resolved for the process.
  const SimdOps* simd_ = &ActiveSimdOps();
};

}  // namespace dpcf
