// Plan driver: runs an operator tree to completion and gathers the
// statistics-xml-style run report.

#pragma once

#include <vector>

#include "core/run_statistics.h"
#include "exec/operator.h"

namespace dpcf {

/// Output of one full execution.
struct RunResult {
  std::vector<Tuple> output;
  RunStatistics stats;
};

/// Drives `root` open → drain → close. I/O is reported as the delta of the
/// disk manager's counters across the run; simulated time uses `params`.
/// The caller decides cache state (Database::ColdCache() beforehand for the
/// paper's cold-cache runs).
Result<RunResult> ExecutePlan(Operator* root, ExecContext* ctx,
                              const SimCostParams& params = SimCostParams());

/// Renders an operator tree one line per operator, children indented.
std::string DescribeTree(const Operator& root);

}  // namespace dpcf
