// Plan driver: runs an operator tree to completion and gathers the
// statistics-xml-style run report. Also home of the morsel-parallel
// execution primitives (work queue + worker pool) used by the parallel
// scan operators.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/run_statistics.h"
#include "exec/operator.h"
#include "storage/page.h"

namespace dpcf {

/// Morsel dispatch over a contiguous page range: the range [0, total_pages)
/// is cut into fixed-size morsels handed out from an atomic cursor, so
/// workers self-schedule and a slow worker never stalls the others (the
/// morsel-driven scheme of Leis et al., scoped to one scan).
class MorselQueue {
 public:
  MorselQueue(PageNo total_pages, uint32_t morsel_pages)
      : total_pages_(total_pages),
        morsel_pages_(std::max<uint32_t>(1, morsel_pages)),
        num_morsels_((total_pages + morsel_pages_ - 1) / morsel_pages_) {}

  /// Claims the next morsel: its index and half-open page interval.
  /// Returns false once the range is exhausted.
  bool Next(uint32_t* morsel, PageNo* begin, PageNo* end) {
    uint32_t m = next_.fetch_add(1, std::memory_order_relaxed);
    if (m >= num_morsels_) return false;
    *morsel = m;
    *begin = static_cast<PageNo>(m) * morsel_pages_;
    *end = std::min<PageNo>(total_pages_, *begin + morsel_pages_);
    return true;
  }

  uint32_t num_morsels() const { return num_morsels_; }
  uint32_t morsel_pages() const { return morsel_pages_; }

 private:
  PageNo total_pages_;
  uint32_t morsel_pages_;
  uint32_t num_morsels_;
  std::atomic<uint32_t> next_{0};
};

/// Runs `worker(worker_index)` on `num_threads` OS threads, joins them all,
/// and returns the first non-OK status (by worker index). num_threads <= 1
/// runs inline on the calling thread — the serial path spawns nothing.
Status RunOnWorkers(int num_threads,
                    const std::function<Status(int)>& worker);

/// Output of one full execution.
struct RunResult {
  std::vector<Tuple> output;
  RunStatistics stats;
};

/// Drives `root` open → drain → close. I/O is reported as the delta of the
/// disk manager's counters across the run; simulated time uses `params`.
/// The caller decides cache state (Database::ColdCache() beforehand for the
/// paper's cold-cache runs). With ctx->profiling() on, the returned stats
/// carry a CaptureProfileTree snapshot in stats.profile.
Result<RunResult> ExecutePlan(Operator* root, ExecContext* ctx,
                              const SimCostParams& params = SimCostParams());

/// Snapshots the per-operator profiles and own monitor records of a plan
/// tree (valid after Close) into an OpProfileNode tree for EXPLAIN ANALYZE
/// rendering (obs/op_profile.h).
OpProfileNode CaptureProfileTree(const Operator& root);

/// Renders an operator tree one line per operator, children indented.
std::string DescribeTree(const Operator& root);

}  // namespace dpcf
