// Adaptive readahead window for morsel-parallel scans.
//
// The static `prefetch_pages` knob picks one window for every table, pool
// size and thread count; the right value is workload-dependent and the
// signal needed to pick it is already measured: IoStats::prefetch_hits /
// prefetch_reads says whether speculative reads are being consumed, and
// prefetch_rejected says the window outran the pool shard it was filling.
// This controller closes that loop per scan — the same
// execution-feedback idea the paper applies to page-count estimates,
// applied to the I/O layer itself.
//
// Control law (Update(), evaluated by the readahead thread after each
// submitted batch, integer arithmetic only — no clocks, no randomness, so
// the dpcf-{ast-,}nondeterminism rules stay clean in src/exec):
//   * any prefetch_rejected delta  -> halve the window (backpressure:
//     the pool is dropping our submissions, racing further ahead only
//     wastes ring slots);
//   * hit ratio >= 3/4 of the reads delta -> double the window (the scan
//     is consuming everything we stage; stage more to cover more latency);
//   * hit ratio < 1/4 with at least a window's worth of reads observed
//     -> halve (we are reading pages the scan does not reach in time).
// The window is clamped to [min_window, max_window]; max_window is half
// the buffer pool so prefetch can never evict pages the scan still needs.
//
// Monitors never see any of this: the window only shifts pages between the
// prefetch and demand read classes, and ScanMonitorBundle feedback is a
// pure function of (page sequence, seed) — so merged MonitorRecords stay
// bit-for-bit identical across window settings, adaptive or static
// (asserted by tests/async_disk_test.cc).

#pragma once

#include <atomic>
#include <cstdint>

#include "storage/io_stats.h"

namespace dpcf {

class Gauge;         // obs/metrics_registry.h
class EventJournal;  // obs/event_journal.h

struct AdaptiveReadaheadConfig {
  /// Starting window, pages (the plumbed prefetch_pages knob, already
  /// clamped to half the pool by the scan).
  int64_t initial_window = 0;
  /// Floor: narrowing below this would make readahead pointless overhead.
  int64_t min_window = 4;
  /// Ceiling: half the buffer pool (the scan clamps it).
  int64_t max_window = 0;
  /// False freezes the window at initial_window (the pre-adaptive static
  /// behavior); Update() becomes a no-op.
  bool adaptive = true;
};

/// Owned by one scan; Update() is called only from that scan's readahead
/// thread. window() is an atomic read so the wait predicate (and tests)
/// may read it from other threads.
class AdaptiveReadaheadController {
 public:
  /// `io` must outlive the controller (it is the disk's IoStats block).
  /// `window_gauge` may be null; when set it mirrors the current window.
  /// `journal` may be null; when set every window *change* (not the
  /// initial publish) records a kReadaheadResize event.
  AdaptiveReadaheadController(const AdaptiveReadaheadConfig& config,
                              const IoStats* io, Gauge* window_gauge,
                              EventJournal* journal = nullptr);

  int64_t window() const {
    return window_.load(std::memory_order_relaxed);
  }

  /// Applies the control law to the counter deltas since the previous
  /// Update (or construction). Readahead-thread only.
  void Update();

  /// Times the window was widened / narrowed (tests and bench reporting).
  int64_t widenings() const { return widenings_; }
  int64_t narrowings() const { return narrowings_; }

 private:
  void Publish(int64_t w);

  AdaptiveReadaheadConfig config_;
  const IoStats* io_;
  Gauge* window_gauge_;
  EventJournal* journal_;
  std::atomic<int64_t> window_;
  // Counter snapshots at the previous Update; readahead-thread only.
  int64_t seen_reads_ = 0;
  int64_t seen_hits_ = 0;
  int64_t seen_rejected_ = 0;
  int64_t widenings_ = 0;
  int64_t narrowings_ = 0;
};

}  // namespace dpcf
