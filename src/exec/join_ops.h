// Join methods: Hash Join, Merge Join, Index Nested Loops Join.
//
// The DPC parameter relevant to a join is DPC(inner, join-pred) — the pages
// of the inner an INL join would fetch (paper Section IV). Each join method
// obtains it differently while executing:
//  * INL join: the inner fetches are an index-plan rid stream, so a linear
//    counter over fetched PIDs applies directly;
//  * Hash Join: the build phase materializes a BitvectorFilter over the
//    outer join keys and registers it in an ExecContext slot; the
//    probe-side *scan* then counts pages via the derived semi-join
//    predicate (Fig 5) — PIDs never cross into the relational engine;
//  * Merge Join: same bitvector idea, prebuilt when the outer child is a
//    blocking Sort, or grown incrementally ("partial bitvector") when both
//    inputs arrive clustered on the join column.

#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/pid_monitor.h"
#include "exec/index_ops.h"
#include "exec/operator.h"
#include "index/secondary_index.h"

namespace dpcf {

/// How a join publishes its bitvector filter for probe-side monitoring.
struct BitvectorSpec {
  int slot = -1;  // ExecContext slot pre-allocated at plan build time
  uint32_t numbits = 1 << 20;
  uint64_t seed = 0;
  /// Direct addressing is exact when the key domain fits in numbits
  /// (paper Section IV); hashed handles sparse domains.
  BitvectorMode mode = BitvectorMode::kDirect;
  int64_t base = 0;
};

/// In-memory hash join; build side is drained at Open. Output tuples are
/// the probe tuple followed by the build tuple.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr build, int build_key_idx, OperatorPtr probe,
             int probe_key_idx,
             std::optional<BitvectorSpec> filter_spec = std::nullopt);

  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  OperatorPtr build_;
  int build_key_idx_;
  OperatorPtr probe_;
  int probe_key_idx_;
  std::optional<BitvectorSpec> filter_spec_;

  std::unordered_map<int64_t, std::vector<Tuple>> table_;
  Tuple probe_tuple_;
  const std::vector<Tuple>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

enum class MergeBitvectorMode {
  kNone,
  /// Outer child is blocking (Sort): drain it at Open, filter is complete
  /// before the inner produces its first row.
  kPrebuilt,
  /// Both inputs stream in join-key order: bits are added as outer rows
  /// are consumed; the partial filter is correct because Merge Join only
  /// advances the inner past keys the outer has already passed.
  kPartial,
};

/// Merge join over inputs sorted ascending on their join keys.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr outer, int outer_key_idx, OperatorPtr inner,
              int inner_key_idx,
              MergeBitvectorMode bv_mode = MergeBitvectorMode::kNone,
              std::optional<BitvectorSpec> filter_spec = std::nullopt);

  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  /// Pulls the next outer tuple (from the prebuilt buffer or the child),
  /// adding its key to the partial filter when in kPartial mode.
  Result<bool> AdvanceOuter(ExecContext* ctx);
  Result<bool> AdvanceInner(ExecContext* ctx);

  OperatorPtr outer_;
  int outer_key_idx_;
  OperatorPtr inner_;
  int inner_key_idx_;
  MergeBitvectorMode bv_mode_;
  std::optional<BitvectorSpec> filter_spec_;

  std::vector<Tuple> outer_buf_;  // kPrebuilt only
  size_t outer_pos_ = 0;
  Tuple outer_tuple_;
  bool outer_valid_ = false;
  Tuple inner_tuple_;
  bool inner_valid_ = false;

  // The buffered equal-key run is the OUTER one: the outer side is always
  // advanced past a key group before the inner reads beyond it, so in
  // kPartial mode the bitvector already contains the next outer key when
  // the inner scan's monitor probes it (paper Section IV's partial-filter
  // correctness argument).
  std::vector<Tuple> outer_group_;
  int64_t group_key_ = 0;
  bool group_active_ = false;
  size_t group_pos_ = 0;
};

/// Index Nested Loops join: for each outer tuple, seek the inner index on
/// the join key and fetch matching rows. Output tuples are the outer tuple
/// followed by the projected inner columns. The fetch stream hosts linear
/// counters for DPC(inner, join-pred).
class IndexNestedLoopsJoinOp : public Operator {
 public:
  IndexNestedLoopsJoinOp(OperatorPtr outer, int outer_key_idx,
                         Table* inner_table, Index* inner_index,
                         Predicate inner_residual,
                         std::vector<int> inner_projection,
                         std::vector<FetchMonitorRequest> monitor_requests =
                             {});

  std::string Describe() const override;
  void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const override;
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Tuple* out) override;
  Status CloseImpl(ExecContext* ctx) override;

 private:
  OperatorPtr outer_;
  int outer_key_idx_;
  Table* inner_table_;
  Index* inner_index_;
  Predicate inner_residual_;
  std::vector<int> inner_projection_;
  std::vector<PidStreamMonitor> monitors_;

  Tuple outer_tuple_;
  bool outer_valid_ = false;
  int64_t current_key_ = 0;
  BtreeIterator inner_it_;
};

}  // namespace dpcf
