#include "exec/join_ops.h"

#include <cassert>

#include "common/string_util.h"

namespace dpcf {

namespace {
Tuple Concat(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}
}  // namespace

HashJoinOp::HashJoinOp(OperatorPtr build, int build_key_idx,
                       OperatorPtr probe, int probe_key_idx,
                       std::optional<BitvectorSpec> filter_spec)
    : build_(std::move(build)),
      build_key_idx_(build_key_idx),
      probe_(std::move(probe)),
      probe_key_idx_(probe_key_idx),
      filter_spec_(filter_spec) {}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  table_.clear();
  bucket_ = nullptr;
  bucket_pos_ = 0;

  // Build phase: drain the build child. The bitvector filter is computed
  // here (one hash per build row) and registered with the context BEFORE
  // the probe side opens — the probe scan's monitor sees a complete filter.
  std::unique_ptr<BitvectorFilter> filter;
  if (filter_spec_.has_value()) {
    filter = std::make_unique<BitvectorFilter>(
        filter_spec_->numbits, filter_spec_->seed, filter_spec_->mode,
        filter_spec_->base);
  }
  DPCF_RETURN_IF_ERROR(build_->Open(ctx));
  Tuple t;
  while (true) {
    auto more = build_->Next(ctx, &t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    int64_t key = t[static_cast<size_t>(build_key_idx_)].AsInt64();
    ++ctx->cpu()->hash_table_ops;
    if (filter != nullptr) {
      ++ctx->cpu()->monitor_hash_ops;
      filter->AddKeyCounted(key);
    }
    table_[key].push_back(t);
  }
  DPCF_RETURN_IF_ERROR(build_->Close(ctx));
  if (filter != nullptr) {
    DPCF_RETURN_IF_ERROR(ctx->SetFilter(filter_spec_->slot,
                                        std::move(filter)));
  }
  return probe_->Open(ctx);
}

Result<bool> HashJoinOp::NextImpl(ExecContext* ctx, Tuple* out) {
  while (true) {
    if (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
      *out = Concat(probe_tuple_, (*bucket_)[bucket_pos_++]);
      return true;
    }
    bucket_ = nullptr;
    auto more = probe_->Next(ctx, &probe_tuple_);
    if (!more.ok()) return more.status();
    if (!*more) return false;
    ++ctx->cpu()->hash_table_ops;
    auto it = table_.find(
        probe_tuple_[static_cast<size_t>(probe_key_idx_)].AsInt64());
    if (it != table_.end()) {
      bucket_ = &it->second;
      bucket_pos_ = 0;
    }
  }
}

Status HashJoinOp::CloseImpl(ExecContext* ctx) {
  table_.clear();
  return probe_->Close(ctx);
}

std::string HashJoinOp::Describe() const {
  return StrFormat("HashJoin(%s)", filter_spec_.has_value()
                                       ? "with bitvector filter"
                                       : "no filter");
}


std::vector<const Operator*> HashJoinOp::children() const {
  return {build_.get(), probe_.get()};
}

MergeJoinOp::MergeJoinOp(OperatorPtr outer, int outer_key_idx,
                         OperatorPtr inner, int inner_key_idx,
                         MergeBitvectorMode bv_mode,
                         std::optional<BitvectorSpec> filter_spec)
    : outer_(std::move(outer)),
      outer_key_idx_(outer_key_idx),
      inner_(std::move(inner)),
      inner_key_idx_(inner_key_idx),
      bv_mode_(bv_mode),
      filter_spec_(filter_spec) {
  assert(bv_mode_ == MergeBitvectorMode::kNone || filter_spec_.has_value());
}

Status MergeJoinOp::OpenImpl(ExecContext* ctx) {
  outer_buf_.clear();
  outer_pos_ = 0;
  outer_valid_ = inner_valid_ = false;
  group_active_ = false;
  outer_group_.clear();

  DPCF_RETURN_IF_ERROR(outer_->Open(ctx));
  if (bv_mode_ == MergeBitvectorMode::kPrebuilt) {
    // The outer child is blocking (e.g. a Sort): its first GetNext already
    // implies full consumption of its input. Drain it here, building the
    // complete filter before the inner side produces anything.
    auto filter = std::make_unique<BitvectorFilter>(
        filter_spec_->numbits, filter_spec_->seed, filter_spec_->mode,
        filter_spec_->base);
    Tuple t;
    while (true) {
      auto more = outer_->Next(ctx, &t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      ++ctx->cpu()->monitor_hash_ops;
      filter->AddKeyCounted(
          t[static_cast<size_t>(outer_key_idx_)].AsInt64());
      outer_buf_.push_back(std::move(t));
    }
    DPCF_RETURN_IF_ERROR(outer_->Close(ctx));
    DPCF_RETURN_IF_ERROR(ctx->SetFilter(filter_spec_->slot,
                                        std::move(filter)));
  } else if (bv_mode_ == MergeBitvectorMode::kPartial) {
    // Register an empty filter immediately; AdvanceOuter grows it.
    DPCF_RETURN_IF_ERROR(ctx->SetFilter(
        filter_spec_->slot,
        std::make_unique<BitvectorFilter>(filter_spec_->numbits,
                                          filter_spec_->seed,
                                          filter_spec_->mode,
                                          filter_spec_->base)));
  }
  DPCF_RETURN_IF_ERROR(inner_->Open(ctx));

  DPCF_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter(ctx));
  DPCF_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner(ctx));
  return Status::OK();
}

Result<bool> MergeJoinOp::AdvanceOuter(ExecContext* ctx) {
  if (bv_mode_ == MergeBitvectorMode::kPrebuilt) {
    if (outer_pos_ >= outer_buf_.size()) return false;
    outer_tuple_ = outer_buf_[outer_pos_++];
    return true;
  }
  auto more = outer_->Next(ctx, &outer_tuple_);
  if (!more.ok()) return more.status();
  if (!*more) return false;
  if (bv_mode_ == MergeBitvectorMode::kPartial) {
    BitvectorFilter* filter = ctx->MutableFilter(filter_spec_->slot);
    ++ctx->cpu()->monitor_hash_ops;
    filter->AddKeyCounted(
        outer_tuple_[static_cast<size_t>(outer_key_idx_)].AsInt64());
  }
  return true;
}

Result<bool> MergeJoinOp::AdvanceInner(ExecContext* ctx) {
  auto more = inner_->Next(ctx, &inner_tuple_);
  if (!more.ok()) return more.status();
  return *more;
}

Result<bool> MergeJoinOp::NextImpl(ExecContext* ctx, Tuple* out) {
  while (true) {
    // Emit pending (outer-run × inner-row) pairs first.
    if (group_active_) {
      bool inner_matches =
          inner_valid_ &&
          inner_tuple_[static_cast<size_t>(inner_key_idx_)].AsInt64() ==
              group_key_;
      if (inner_matches && group_pos_ < outer_group_.size()) {
        *out = Concat(outer_group_[group_pos_++], inner_tuple_);
        return true;
      }
      if (inner_matches) {
        // This inner row paired with the whole outer run; next inner row.
        DPCF_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner(ctx));
        group_pos_ = 0;
        continue;
      }
      group_active_ = false;
      outer_group_.clear();
    }
    if (!outer_valid_ || !inner_valid_) return false;
    int64_t ok = outer_tuple_[static_cast<size_t>(outer_key_idx_)].AsInt64();
    int64_t ik = inner_tuple_[static_cast<size_t>(inner_key_idx_)].AsInt64();
    if (ok < ik) {
      DPCF_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter(ctx));
    } else if (ok > ik) {
      DPCF_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner(ctx));
    } else {
      // Keys match: buffer the full OUTER run for this key (and move the
      // outer past it) before touching further inner rows — see the
      // header comment on partial-filter correctness.
      group_key_ = ok;
      outer_group_.clear();
      outer_group_.push_back(outer_tuple_);
      while (true) {
        DPCF_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter(ctx));
        if (!outer_valid_ ||
            outer_tuple_[static_cast<size_t>(outer_key_idx_)].AsInt64() !=
                group_key_) {
          break;
        }
        outer_group_.push_back(outer_tuple_);
      }
      group_active_ = true;
      group_pos_ = 0;
    }
  }
}

Status MergeJoinOp::CloseImpl(ExecContext* ctx) {
  Status s1 = Status::OK();
  if (bv_mode_ != MergeBitvectorMode::kPrebuilt) {
    s1 = outer_->Close(ctx);
  }
  Status s2 = inner_->Close(ctx);
  DPCF_RETURN_IF_ERROR(s1);
  return s2;
}

std::string MergeJoinOp::Describe() const {
  const char* mode = bv_mode_ == MergeBitvectorMode::kNone
                         ? "no filter"
                         : (bv_mode_ == MergeBitvectorMode::kPrebuilt
                                ? "prebuilt bitvector"
                                : "partial bitvector");
  return StrFormat("MergeJoin(%s)", mode);
}


std::vector<const Operator*> MergeJoinOp::children() const {
  return {outer_.get(), inner_.get()};
}

IndexNestedLoopsJoinOp::IndexNestedLoopsJoinOp(
    OperatorPtr outer, int outer_key_idx, Table* inner_table,
    Index* inner_index, Predicate inner_residual,
    std::vector<int> inner_projection,
    std::vector<FetchMonitorRequest> monitor_requests)
    : outer_(std::move(outer)),
      outer_key_idx_(outer_key_idx),
      inner_table_(inner_table),
      inner_index_(inner_index),
      inner_residual_(std::move(inner_residual)),
      inner_projection_(std::move(inner_projection)) {
  monitors_.reserve(monitor_requests.size());
  for (FetchMonitorRequest& req : monitor_requests) {
    monitors_.emplace_back(std::move(req));
  }
}

Status IndexNestedLoopsJoinOp::OpenImpl(ExecContext* ctx) {
  outer_valid_ = false;
  inner_it_ = BtreeIterator();
  return outer_->Open(ctx);
}

Result<bool> IndexNestedLoopsJoinOp::NextImpl(ExecContext* ctx, Tuple* out) {
  CpuStats* cpu = ctx->cpu();
  while (true) {
    // Drain the current inner index run.
    while (outer_valid_ && inner_it_.Valid() &&
           inner_it_.key().k1 == current_key_) {
      Rid rid = Rid::Unpack(inner_it_.aux());
      DPCF_RETURN_IF_ERROR(inner_it_.Next());

      const char* row_bytes = nullptr;
      auto guard = inner_table_->file()->FetchRow(rid, &row_bytes);
      if (!guard.ok()) return guard.status();
      RowView row(row_bytes, &inner_table_->schema());
      ++cpu->rows_processed;

      // Every fetched inner row satisfies the join predicate, exactly the
      // rows an INL costing needs: feed the PID-stream monitors.
      const uint64_t pid =
          PageId{inner_table_->segment(), rid.page_no}.Pack();
      for (PidStreamMonitor& m : monitors_) {
        if (!m.request().passing_residual_only) m.Add(pid, cpu);
      }
      if (!inner_residual_.Eval(row, cpu)) continue;
      for (PidStreamMonitor& m : monitors_) {
        if (m.request().passing_residual_only) m.Add(pid, cpu);
      }
      Tuple inner_t;
      inner_t.reserve(inner_projection_.size());
      for (int col : inner_projection_) {
        inner_t.push_back(row.GetValue(static_cast<size_t>(col)));
      }
      *out = Concat(outer_tuple_, inner_t);
      return true;
    }
    // Pull the next outer row and reposition the inner index.
    auto more = outer_->Next(ctx, &outer_tuple_);
    if (!more.ok()) return more.status();
    if (!*more) {
      outer_valid_ = false;
      return false;
    }
    outer_valid_ = true;
    current_key_ =
        outer_tuple_[static_cast<size_t>(outer_key_idx_)].AsInt64();
    auto it = inner_index_->tree()->SeekFirst(BtreeKey::Min(current_key_));
    if (!it.ok()) return it.status();
    inner_it_ = std::move(it).value();
  }
}

Status IndexNestedLoopsJoinOp::CloseImpl(ExecContext* ctx) {
  inner_it_ = BtreeIterator();
  return outer_->Close(ctx);
}

std::string IndexNestedLoopsJoinOp::Describe() const {
  return StrFormat("IndexNestedLoopsJoin(inner=%s via %s, residual=%s)",
                   inner_table_->name().c_str(),
                   inner_index_->name().c_str(),
                   inner_residual_.ToString(inner_table_->schema()).c_str());
}

void IndexNestedLoopsJoinOp::CollectOwnMonitorRecords(
    std::vector<MonitorRecord>* out) const {
  for (const PidStreamMonitor& m : monitors_) {
    out->push_back(m.MakeRecord(inner_table_->name()));
  }
}

std::vector<const Operator*> IndexNestedLoopsJoinOp::children() const {
  return {outer_.get()};
}

}  // namespace dpcf
