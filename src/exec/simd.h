// Portable SIMD layer for the predicate hot path (DESIGN.md section 16).
//
// The engine evaluates INT64 comparison atoms over strided, unaligned rows
// read in place from buffer-pool pages. This header defines the kernel ABI
// those comparators are written against — a per-process table of function
// pointers (SimdOps) with one entry per (CmpOp, leading-tracked?) pair —
// plus the runtime dispatch that picks an implementation:
//
//   - kScalar: portable loops, bit-for-bit the charging oracle.
//   - kAvx2:   4-wide manual strided loads + movemask selection, compiled
//              into its own translation unit with -mavx2 (the only TU
//              allowed to use raw intrinsics; the dpcf-simd-intrinsics
//              lint enforces it).
//   - kNeon:   2-wide aarch64 lanes, compiled only on ARM builds.
//
// Dispatch runs once per process: the env override DPCF_SIMD=avx2|neon|
// scalar wins if that ISA is available (falling back to scalar with a
// stderr note if not), otherwise the best ISA the CPU supports is chosen
// via runtime feature detection. Tests pin an ISA with SetActiveSimd().
//
// Every implementation must produce *identical* outputs to kScalar —
// selection vectors, leading[] counts, pass[] bitmaps and return values —
// because CpuStats charging and monitor feedback are derived from them and
// must not depend on the host CPU (see tests/simd_dispatch_test.cc).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dpcf {

enum class SimdIsa : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lowercase name ("scalar", "avx2", "neon") — the DPCF_SIMD env
/// spelling and the `isa` label on the dpcf_simd_dispatch_info gauge.
const char* SimdIsaName(SimdIsa isa);

/// Kernel table. All row pointers address page bytes in place: `rows` is
/// the first row, subsequent rows follow at `stride` bytes, and the INT64
/// column lives at `offset` within each row (unaligned; implementations
/// must use unaligned loads). Indexed by static_cast<size_t>(CmpOp) and,
/// for the filter entries, by whether leading[] is tracked.
struct SimdOps {
  /// First atom of a conjunction: scans rows [0, n), writes surviving row
  /// indices (ascending) to sel, returns the survivor count. When
  /// WithLeading, also writes leading[r] = hit (0/1) for every row.
  using FilterFirstFn = uint32_t (*)(const char* rows, uint32_t stride,
                                     size_t offset, int64_t operand,
                                     uint32_t n, uint32_t* sel,
                                     uint32_t* leading);

  /// Later atom: compacts the existing selection vector sel[0..m) in
  /// place, returns the new count. When WithLeading, adds the hit (0/1)
  /// into leading[r] for every row still in the vector.
  using FilterNextFn = uint32_t (*)(const char* rows, uint32_t stride,
                                    size_t offset, int64_t operand,
                                    uint32_t* sel, uint32_t m,
                                    uint32_t* leading);

  /// Dense (no-short-circuit) atom over rows [0, n): pass[r] = hit when
  /// `first`, pass[r] &= hit otherwise.
  using DenseFn = void (*)(const char* rows, uint32_t stride, size_t offset,
                           int64_t operand, uint32_t n, uint8_t* pass,
                           bool first);

  /// Sorted-key run cutoff: returns the index of the first row whose INT64
  /// value at `offset` exceeds `bound` (n if none). Rows must be sorted
  /// ascending on that column — used by the clustered scan to truncate a
  /// leaf-ordered batch at the range's upper bound.
  using LeadingLeFn = uint32_t (*)(const char* rows, uint32_t stride,
                                   size_t offset, int64_t bound, uint32_t n);

  FilterFirstFn int64_filter_first[6][2];  // [CmpOp][with_leading]
  FilterNextFn int64_filter_next[6][2];    // [CmpOp][with_leading]
  DenseFn int64_dense[6];                  // [CmpOp]
  LeadingLeFn int64_leading_le;
  SimdIsa isa = SimdIsa::kScalar;
};

/// The process-wide active table. Resolved on first use (env override,
/// then CPU detection); a PredicateKernel snapshots the pointer at
/// construction, so SetActiveSimd() affects kernels built afterwards.
const SimdOps& ActiveSimdOps();
SimdIsa ActiveSimdIsa();

/// True if `isa` can run on this build + CPU.
bool SimdIsaAvailable(SimdIsa isa);

/// Every ISA available here, kScalar first — what the dispatch sweep in
/// tests iterates over.
std::vector<SimdIsa> AvailableSimdIsas();

/// Pins the active table (test hook / explicit override). Fails with
/// InvalidArgument if the ISA is not available on this build + CPU.
Status SetActiveSimd(SimdIsa isa);

/// Pure resolution policy, separated for testability: maps a DPCF_SIMD
/// value (nullptr/empty = unset) to the ISA dispatch would pick. An unset
/// or unavailable request resolves to the best available ISA (scalar when
/// the request named a specific unavailable one).
SimdIsa ChooseSimdIsa(const char* env_value);

namespace simd_internal {
/// Per-ISA table getters, defined one per translation unit. They return
/// nullptr when the ISA is compiled out or the CPU lacks the feature.
const SimdOps* GetScalarSimdOps();
const SimdOps* GetAvx2SimdOps();
const SimdOps* GetNeonSimdOps();
}  // namespace simd_internal

}  // namespace dpcf
