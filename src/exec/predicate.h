// Predicates: ordered conjunctions of atomic comparisons, evaluated with
// genuine short-circuiting inside the storage engine.
//
// Short-circuiting is load-bearing for the paper: a scan evaluates the
// pushed-down conjunction left-to-right and stops at the first failing atom,
// so a monitor asking for the page count of a *non-prefix* sub-expression
// cannot reuse the scan's own evaluation (Example 3) and must pay for extra
// evaluations — which is what DPSample bounds. Every atom evaluation is
// charged to CpuStats::predicate_atom_evals so the Fig 7/9 overhead
// experiments measure real work.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"
#include "table/row_codec.h"
#include "table/schema.h"

namespace dpcf {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpSymbol(CmpOp op);

/// One comparison `column <op> constant`. For CHAR columns the operand is
/// space-padded to the column width at construction so evaluation is a raw
/// memcmp against the page bytes.
class PredicateAtom {
 public:
  static PredicateAtom Int64(int col, CmpOp op, int64_t operand);
  /// `width` must be the column's declared CHAR width.
  static PredicateAtom String(int col, CmpOp op, std::string operand,
                              uint32_t width);

  int col() const { return col_; }
  CmpOp op() const { return op_; }
  bool is_string() const { return is_string_; }
  int64_t int_operand() const { return int_operand_; }
  const std::string& string_operand() const { return str_operand_; }

  /// Evaluates against raw row bytes. Does NOT charge stats; callers charge
  /// via Predicate / monitor code paths.
  bool Eval(const RowView& row) const;

  /// Evaluates the comparison against an already-extracted INT64 column
  /// value (covering-index scans read values from index entries, not rows).
  bool EvalInt(int64_t value) const;

  std::string ToString(const Schema& schema) const;

  /// True if `other` tests the same column with the same op and operand.
  bool SameAs(const PredicateAtom& other) const;

 private:
  PredicateAtom() = default;

  int col_ = -1;
  CmpOp op_ = CmpOp::kEq;
  bool is_string_ = false;
  int64_t int_operand_ = 0;
  std::string str_operand_;  // padded to column width
};

/// Ordered conjunction of atoms. The order is the evaluation order, exactly
/// like a predicate list compiled into a scan operator.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<PredicateAtom> atoms)
      : atoms_(std::move(atoms)) {}

  const std::vector<PredicateAtom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }
  void Add(PredicateAtom atom) { atoms_.push_back(std::move(atom)); }

  /// Short-circuit evaluation. Returns the number of leading atoms that
  /// evaluated TRUE (== size() means the row passes); charges one atom
  /// evaluation per atom actually evaluated.
  uint32_t EvalLeading(const RowView& row, CpuStats* cpu) const;

  /// Row passes the whole conjunction (short-circuit, charged).
  bool Eval(const RowView& row, CpuStats* cpu) const {
    return EvalLeading(row, cpu) == atoms_.size();
  }

  /// Evaluation with short-circuiting turned OFF: every atom is evaluated
  /// and charged. This is what monitors pay on sampled pages when the
  /// requested expression is not a prefix (paper Section III-B).
  bool EvalNoShortCircuit(const RowView& row, CpuStats* cpu) const;

  /// True if this conjunction is a prefix of `pushed` (same atoms, same
  /// order) — the case where page counting is free (paper: "no need to
  /// turn off predicate short-circuiting for any prefix").
  bool IsPrefixOf(const Predicate& pushed) const;

  /// The conjunction of the first n atoms.
  Predicate Prefix(size_t n) const;

  /// "C2<500000 AND C3=7"; empty predicate renders as "TRUE".
  std::string ToString(const Schema& schema) const;

  /// Order-insensitive key for the feedback store: atoms rendered and
  /// sorted, joined with " AND ".
  std::string CanonicalKey(const Schema& schema) const;

 private:
  std::vector<PredicateAtom> atoms_;
};

}  // namespace dpcf
