#include "exec/index_ops.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace dpcf {

IndexSeekSource::IndexSeekSource(Index* index, BtreeKey lo, BtreeKey hi)
    : index_(index), lo_(lo), hi_(hi) {}

Status IndexSeekSource::Open(ExecContext* ctx) {
  (void)ctx;
  done_ = false;
  run_.clear();
  run_pos_ = 0;
  DPCF_ASSIGN_OR_RETURN(it_, index_->tree()->SeekFirst(lo_));
  return Status::OK();
}

Result<bool> IndexSeekSource::Next(ExecContext* ctx, Rid* rid) {
  (void)ctx;
  if (done_) return false;
  if (run_pos_ >= run_.size()) {
    if (!it_.Valid()) {
      done_ = true;
      return false;
    }
    DPCF_RETURN_IF_ERROR(it_.NextRun(hi_, &run_));
    run_pos_ = 0;
    if (run_.empty()) {
      // The iterator stands on an entry past hi: range exhausted.
      done_ = true;
      return false;
    }
  }
  *rid = Rid::Unpack(run_[run_pos_].aux);
  ++run_pos_;
  return true;
}

Status IndexSeekSource::Close(ExecContext* ctx) {
  (void)ctx;
  it_ = BtreeIterator();
  run_.clear();
  run_pos_ = 0;
  return Status::OK();
}

std::string IndexSeekSource::Describe() const {
  return StrFormat("IndexSeek(%s, [%s..%s])", index_->name().c_str(),
                   lo_.ToString().c_str(), hi_.ToString().c_str());
}

IndexIntersectionSource::IndexIntersectionSource(
    std::vector<std::unique_ptr<IndexSeekSource>> inputs)
    : inputs_(std::move(inputs)) {
  assert(inputs_.size() >= 2);
}

Status IndexIntersectionSource::Open(ExecContext* ctx) {
  rids_.clear();
  pos_ = 0;
  // Drain each seek into a sorted rid set, then intersect pairwise. The
  // per-rid work is charged like hash/accumulator operations.
  std::vector<uint64_t> acc;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    std::vector<uint64_t> cur;
    DPCF_RETURN_IF_ERROR(inputs_[i]->Open(ctx));
    Rid rid;
    while (true) {
      auto more = inputs_[i]->Next(ctx, &rid);
      if (!more.ok()) return more.status();
      if (!*more) break;
      cur.push_back(rid.Pack());
      ++ctx->cpu()->hash_table_ops;
    }
    DPCF_RETURN_IF_ERROR(inputs_[i]->Close(ctx));
    std::sort(cur.begin(), cur.end());
    if (i == 0) {
      acc = std::move(cur);
    } else {
      std::vector<uint64_t> merged;
      std::set_intersection(acc.begin(), acc.end(), cur.begin(), cur.end(),
                            std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  rids_ = std::move(acc);
  return Status::OK();
}

Result<bool> IndexIntersectionSource::Next(ExecContext* ctx, Rid* rid) {
  (void)ctx;
  if (pos_ >= rids_.size()) return false;
  *rid = Rid::Unpack(rids_[pos_++]);
  return true;
}

Status IndexIntersectionSource::Close(ExecContext* ctx) {
  (void)ctx;
  rids_.clear();
  return Status::OK();
}

std::string IndexIntersectionSource::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(inputs_.size());
  for (const auto& in : inputs_) parts.push_back(in->Describe());
  return "IndexIntersection(" + Join(parts, ", ") + ")";
}

FetchOp::FetchOp(Table* table, std::unique_ptr<RidSource> source,
                 Predicate residual, std::vector<int> projection,
                 std::vector<FetchMonitorRequest> monitor_requests)
    : table_(table),
      source_(std::move(source)),
      residual_(std::move(residual)),
      projection_(std::move(projection)) {
  monitors_.reserve(monitor_requests.size());
  for (FetchMonitorRequest& req : monitor_requests) {
    monitors_.emplace_back(std::move(req));
  }
}

Status FetchOp::OpenImpl(ExecContext* ctx) { return source_->Open(ctx); }

Result<bool> FetchOp::NextImpl(ExecContext* ctx, Tuple* out) {
  CpuStats* cpu = ctx->cpu();
  Rid rid;
  while (true) {
    auto more = source_->Next(ctx, &rid);
    if (!more.ok()) return more.status();
    if (!*more) return false;

    const char* row_bytes = nullptr;
    auto guard = table_->file()->FetchRow(rid, &row_bytes);
    if (!guard.ok()) return guard.status();
    RowView row(row_bytes, &table_->schema());
    ++cpu->rows_processed;

    const uint64_t pid =
        PageId{table_->segment(), rid.page_no}.Pack();
    for (PidStreamMonitor& m : monitors_) {
      if (!m.request().passing_residual_only) m.Add(pid, cpu);
    }
    if (!residual_.Eval(row, cpu)) continue;
    for (PidStreamMonitor& m : monitors_) {
      if (m.request().passing_residual_only) m.Add(pid, cpu);
    }
    out->clear();
    out->reserve(projection_.size());
    for (int col : projection_) {
      out->push_back(row.GetValue(static_cast<size_t>(col)));
    }
    return true;
  }
}

Status FetchOp::CloseImpl(ExecContext* ctx) { return source_->Close(ctx); }

std::string FetchOp::Describe() const {
  return StrFormat("Fetch(%s, residual=%s) <- %s", table_->name().c_str(),
                   residual_.ToString(table_->schema()).c_str(),
                   source_->Describe().c_str());
}

void FetchOp::CollectOwnMonitorRecords(std::vector<MonitorRecord>* out) const {
  for (const PidStreamMonitor& m : monitors_) {
    out->push_back(m.MakeRecord(table_->name()));
  }
}

}  // namespace dpcf
