#include "exec/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/simd_scalar.h"

namespace dpcf {

namespace simd_internal {

const SimdOps* GetScalarSimdOps() {
  static const SimdOps table = [] {
    SimdOps t;
    FillScalarOps(&t);
    t.isa = SimdIsa::kScalar;
    return t;
  }();
  return &table;
}

}  // namespace simd_internal

namespace {

const SimdOps* TableFor(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return simd_internal::GetScalarSimdOps();
    case SimdIsa::kAvx2:
      return simd_internal::GetAvx2SimdOps();
    case SimdIsa::kNeon:
      return simd_internal::GetNeonSimdOps();
  }
  return nullptr;
}

/// Best ISA the CPU + build supports; scalar is always last resort.
SimdIsa BestAvailable() {
  if (SimdIsaAvailable(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (SimdIsaAvailable(SimdIsa::kNeon)) return SimdIsa::kNeon;
  return SimdIsa::kScalar;
}

/// Parses a DPCF_SIMD spelling; returns false for anything unrecognized.
bool ParseIsaName(const char* s, SimdIsa* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = SimdIsa::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = SimdIsa::kAvx2;
    return true;
  }
  if (std::strcmp(s, "neon") == 0) {
    *out = SimdIsa::kNeon;
    return true;
  }
  return false;
}

// The active table, published once. Plain pointer store/load: every table
// is immutable and function-local-static, so a racing first use at worst
// resolves twice to the same answer.
std::atomic<const SimdOps*> g_active{nullptr};

const SimdOps* Resolve() {
  const SimdIsa isa = ChooseSimdIsa(std::getenv("DPCF_SIMD"));
  return TableFor(isa);
}

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdIsaAvailable(SimdIsa isa) { return TableFor(isa) != nullptr; }

std::vector<SimdIsa> AvailableSimdIsas() {
  std::vector<SimdIsa> out;
  for (SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    if (SimdIsaAvailable(isa)) out.push_back(isa);
  }
  return out;
}

SimdIsa ChooseSimdIsa(const char* env_value) {
  if (env_value != nullptr && env_value[0] != '\0') {
    SimdIsa requested;
    if (!ParseIsaName(env_value, &requested)) {
      std::fprintf(stderr,
                   "dpcf: unrecognized DPCF_SIMD=\"%s\" "
                   "(want avx2|neon|scalar); using %s\n",
                   env_value, SimdIsaName(BestAvailable()));
      return BestAvailable();
    }
    if (SimdIsaAvailable(requested)) return requested;
    std::fprintf(stderr,
                 "dpcf: DPCF_SIMD=%s not available on this build/CPU; "
                 "falling back to scalar\n",
                 env_value);
    return SimdIsa::kScalar;
  }
  return BestAvailable();
}

const SimdOps& ActiveSimdOps() {
  const SimdOps* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = Resolve();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

SimdIsa ActiveSimdIsa() { return ActiveSimdOps().isa; }

Status SetActiveSimd(SimdIsa isa) {
  const SimdOps* t = TableFor(isa);
  if (t == nullptr) {
    return Status::InvalidArgument(std::string("SIMD ISA not available: ") +
                                   SimdIsaName(isa));
  }
  g_active.store(t, std::memory_order_release);
  return Status::OK();
}

}  // namespace dpcf
