// AVX2 kernels for the SIMD layer — the only translation unit in the tree
// allowed to use x86 intrinsics (enforced by the dpcf-simd-intrinsics
// lint). Compiled with -mavx2 via set_source_files_properties; every other
// TU stays on the baseline ISA so the binary still runs on CPUs without
// AVX2 (runtime dispatch simply skips this table there).
//
// Shape of every kernel: four unaligned 8-byte loads assemble the INT64
// column of rows r..r+3 into a vector (measured ~2x faster here than
// vpgatherqq, whose per-element cost on current cores is no better than
// scalar loads), a compare + movemask turns the lanes into a 4-bit
// selection mask, and small LUTs expand the mask into compressed selection
// stores / leading values / pass bytes. Outputs are bit-for-bit identical
// to the scalar kernels in simd_scalar.h: same survivors in the same
// order, same leading counts, same return values — comparisons on int64
// are exact, so lane width changes nothing observable.

#include "exec/simd.h"

#include <cstdint>

#include "exec/simd_scalar.h"

#if defined(DPCF_SIMD_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <type_traits>

namespace dpcf {
namespace simd_internal {
namespace {

// LUT[mask] = the lane indices whose mask bit is set, compacted to the
// front (ascending). Trailing entries are padding: the 4-wide store that
// uses them is unconditional, but the write cursor only advances by
// popcount(mask), so padding lanes are overwritten by the next iteration
// or ignored by the caller.
alignas(16) constexpr uint32_t kCompressIdx[16][4] = {
    {0, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0},
    {2, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}, {0, 1, 2, 0},
    {3, 0, 0, 0}, {0, 3, 0, 0}, {1, 3, 0, 0}, {0, 1, 3, 0},
    {2, 3, 0, 0}, {0, 2, 3, 0}, {1, 2, 3, 0}, {0, 1, 2, 3},
};

// Byte-shuffle control for compacting four 32-bit lanes of an __m128i by
// mask (same layout as kCompressIdx, expressed for _mm_shuffle_epi8).
alignas(16) constexpr uint8_t kCompressBytes[16][16] = {
#define DPCF_LANE(i) 4 * (i), 4 * (i) + 1, 4 * (i) + 2, 4 * (i) + 3
    {DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(1), DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(1), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(2), DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(2), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(1), DPCF_LANE(2), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(1), DPCF_LANE(2), DPCF_LANE(0)},
    {DPCF_LANE(3), DPCF_LANE(0), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(3), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(1), DPCF_LANE(3), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(1), DPCF_LANE(3), DPCF_LANE(0)},
    {DPCF_LANE(2), DPCF_LANE(3), DPCF_LANE(0), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(2), DPCF_LANE(3), DPCF_LANE(0)},
    {DPCF_LANE(1), DPCF_LANE(2), DPCF_LANE(3), DPCF_LANE(0)},
    {DPCF_LANE(0), DPCF_LANE(1), DPCF_LANE(2), DPCF_LANE(3)},
#undef DPCF_LANE
};

// LUT[mask] = four uint32 0/1 leading values, lane order.
alignas(16) constexpr uint32_t kMaskLanes[16][4] = {
    {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0},
    {0, 0, 1, 0}, {1, 0, 1, 0}, {0, 1, 1, 0}, {1, 1, 1, 0},
    {0, 0, 0, 1}, {1, 0, 0, 1}, {0, 1, 0, 1}, {1, 1, 0, 1},
    {0, 0, 1, 1}, {1, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1},
};

// LUT[mask] = four pass *bytes* packed little-endian (lane 0 in the low
// byte), for a single 4-byte store into the dense pass bitmap.
constexpr uint32_t kPassBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

/// Compare four int64 lanes against the broadcast operand, returning the
/// lane mask. AVX2 only has EQ and signed GT on epi64; the other four ops
/// are the complement or the swapped-operand form of those.
template <CmpOp Op>
inline uint32_t Mask4(__m256i v, __m256i operand) {
  __m256i m;
  bool invert = false;
  if constexpr (Op == CmpOp::kEq) {
    m = _mm256_cmpeq_epi64(v, operand);
  } else if constexpr (Op == CmpOp::kNe) {
    m = _mm256_cmpeq_epi64(v, operand);
    invert = true;
  } else if constexpr (Op == CmpOp::kGt) {
    m = _mm256_cmpgt_epi64(v, operand);
  } else if constexpr (Op == CmpOp::kLe) {
    m = _mm256_cmpgt_epi64(v, operand);
    invert = true;
  } else if constexpr (Op == CmpOp::kLt) {
    m = _mm256_cmpgt_epi64(operand, v);
  } else {  // kGe
    m = _mm256_cmpgt_epi64(operand, v);
    invert = true;
  }
  const uint32_t bits =
      static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
  return invert ? (bits ^ 0xFu) : bits;
}

/// Assemble 4 INT64 column values from 4 row pointers. movq tolerates any
/// alignment, so the values are read straight off the page bytes.
inline __m256i Load4(const char* p0, const char* p1, const char* p2,
                     const char* p3) {
  const __m128i a = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p0));
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p1));
  const __m128i c = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p2));
  const __m128i d = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p3));
  return _mm256_set_m128i(_mm_unpacklo_epi64(c, d), _mm_unpacklo_epi64(a, b));
}

/// Load4 for 4 consecutive rows starting at `p` (already column-adjusted).
inline __m256i Load4Strided(const char* p, size_t stride) {
  return Load4(p, p + stride, p + 2 * stride, p + 3 * stride);
}

template <CmpOp Op, bool WithLeading>
uint32_t Avx2FilterFirst(const char* rows, uint32_t stride, size_t offset,
                         int64_t operand, uint32_t n, uint32_t* sel,
                         uint32_t* leading) {
  const char* p = rows + offset;
  const __m256i opv = _mm256_set1_epi64x(operand);
  const size_t step = 4 * static_cast<size_t>(stride);
  uint32_t out = 0;
  uint32_t r = 0;
  // The 4-wide stores below are in-bounds without tail padding: sel gets
  // lanes [out, out+3] with out <= r <= n-4, and leading gets [r, r+3].
  for (; r + 4 <= n; r += 4, p += step) {
    const uint32_t bits = Mask4<Op>(Load4Strided(p, stride), opv);
    const __m128i lanes = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompressIdx[bits]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + out),
                     _mm_add_epi32(lanes, _mm_set1_epi32(static_cast<int>(r))));
    out += static_cast<uint32_t>(std::popcount(bits));
    if constexpr (WithLeading) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(leading + r),
                       _mm_load_si128(reinterpret_cast<const __m128i*>(
                           kMaskLanes[bits])));
    }
  }
  for (; r < n; ++r) {
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    sel[out] = r;
    if constexpr (WithLeading) leading[r] = hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op, bool WithLeading>
uint32_t Avx2FilterNext(const char* rows, uint32_t stride, size_t offset,
                        int64_t operand, uint32_t* sel, uint32_t m,
                        uint32_t* leading) {
  const char* base = rows + offset;
  const __m256i opv = _mm256_set1_epi64x(operand);
  uint32_t out = 0;
  uint32_t i = 0;
  // In-place compaction is safe 4 lanes at a time: the write cursor never
  // passes the read cursor (out <= i), and the 4 entries read this
  // iteration are consumed before the store lands on them.
  for (; i + 4 <= m; i += 4) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __m256i v =
        Load4(base + static_cast<size_t>(sel[i]) * stride,
              base + static_cast<size_t>(sel[i + 1]) * stride,
              base + static_cast<size_t>(sel[i + 2]) * stride,
              base + static_cast<size_t>(sel[i + 3]) * stride);
    const uint32_t bits = Mask4<Op>(v, opv);
    if constexpr (WithLeading) {
      alignas(16) uint32_t lane_rows[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(lane_rows), s);
      for (uint32_t j = 0; j < 4; ++j) {
        leading[lane_rows[j]] += (bits >> j) & 1u;
      }
    }
    const __m128i packed = _mm_shuffle_epi8(
        s, _mm_load_si128(
               reinterpret_cast<const __m128i*>(kCompressBytes[bits])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + out), packed);
    out += static_cast<uint32_t>(std::popcount(bits));
  }
  for (; i < m; ++i) {
    const uint32_t r = sel[i];
    sel[out] = r;
    const bool hit =
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand);
    if constexpr (WithLeading) leading[r] += hit;
    out += hit;
  }
  return out;
}

template <CmpOp Op>
void Avx2Dense(const char* rows, uint32_t stride, size_t offset,
               int64_t operand, uint32_t n, uint8_t* pass, bool first) {
  const char* p = rows + offset;
  const __m256i opv = _mm256_set1_epi64x(operand);
  const size_t step = 4 * static_cast<size_t>(stride);
  uint32_t r = 0;
  for (; r + 4 <= n; r += 4, p += step) {
    const uint32_t bits = Mask4<Op>(Load4Strided(p, stride), opv);
    uint32_t bytes = kPassBytes[bits];
    if (!first) {
      uint32_t cur;
      std::memcpy(&cur, pass + r, 4);
      bytes &= cur;
    }
    std::memcpy(pass + r, &bytes, 4);
  }
  for (; r < n; ++r) {
    const uint8_t hit = static_cast<uint8_t>(
        ApplyOpInt64<Op>(LoadInt64(RowPtr(rows, stride, r) + offset), operand));
    pass[r] = first ? hit : (pass[r] & hit);
  }
}

uint32_t Avx2LeadingLe(const char* rows, uint32_t stride, size_t offset,
                       int64_t bound, uint32_t n) {
  const char* p = rows + offset;
  const __m256i boundv = _mm256_set1_epi64x(bound);
  const size_t step = 4 * static_cast<size_t>(stride);
  uint32_t r = 0;
  for (; r + 4 <= n; r += 4, p += step) {
    const uint32_t le = Mask4<CmpOp::kLe>(Load4Strided(p, stride), boundv);
    if (le != 0xFu) {
      // Rows are sorted, so the cutoff is the first lane that fails <=.
      return r + static_cast<uint32_t>(std::countr_one(le));
    }
  }
  return r + ScalarLeadingLe(RowPtr(rows, stride, r), stride, offset, bound,
                             n - r);
}

SimdOps BuildAvx2Ops() {
  SimdOps t;
  FillScalarOps(&t);  // strings of any future non-INT64 slots stay scalar
  auto fill = [&t](auto op_tag) {
    constexpr CmpOp Op = decltype(op_tag)::value;
    constexpr size_t kOp = static_cast<size_t>(Op);
    t.int64_filter_first[kOp][0] = &Avx2FilterFirst<Op, false>;
    t.int64_filter_first[kOp][1] = &Avx2FilterFirst<Op, true>;
    t.int64_filter_next[kOp][0] = &Avx2FilterNext<Op, false>;
    t.int64_filter_next[kOp][1] = &Avx2FilterNext<Op, true>;
    t.int64_dense[kOp] = &Avx2Dense<Op>;
  };
  fill(std::integral_constant<CmpOp, CmpOp::kEq>{});
  fill(std::integral_constant<CmpOp, CmpOp::kNe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kLe>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGt>{});
  fill(std::integral_constant<CmpOp, CmpOp::kGe>{});
  t.int64_leading_le = &Avx2LeadingLe;
  t.isa = SimdIsa::kAvx2;
  return t;
}

}  // namespace

const SimdOps* GetAvx2SimdOps() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  static const SimdOps table = BuildAvx2Ops();
  return &table;
}

}  // namespace simd_internal
}  // namespace dpcf

#else  // AVX2 compiled out (non-x86, or -mavx2 leg disabled)

namespace dpcf {
namespace simd_internal {

const SimdOps* GetAvx2SimdOps() { return nullptr; }

}  // namespace simd_internal
}  // namespace dpcf

#endif
