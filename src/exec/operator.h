// Volcano-style operator interface.
//
// Operators emit materialized Tuples of their projected columns. Storage-
// engine operators (scans, fetch) are the only ones that touch pages and
// PIDs; relational-engine operators compose them. All fallible paths return
// Status / Result.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/run_statistics.h"
#include "exec/exec_context.h"
#include "table/value.h"

namespace dpcf {

class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next tuple into *out. Returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Tuple* out) = 0;

  virtual Status Close(ExecContext* ctx) = 0;

  /// One-line description for plan rendering, e.g.
  /// "TableScan(T, C3<250000)".
  virtual std::string Describe() const = 0;

  /// Appends this operator's page-count observations (valid after Close).
  /// Implementations must recurse into their children.
  virtual void CollectMonitorRecords(std::vector<MonitorRecord>* out) const {
    (void)out;
  }

  /// Child operators, for plan rendering.
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders an operator tree, one operator per line, indented.
std::string DescribeTree(const Operator& root);

}  // namespace dpcf
