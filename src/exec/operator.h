// Volcano-style operator interface.
//
// Operators emit materialized Tuples of their projected columns. Storage-
// engine operators (scans, fetch) are the only ones that touch pages and
// PIDs; relational-engine operators compose them. All fallible paths return
// Status / Result.
//
// The public Open/Next/Close entry points are NON-virtual wrappers around
// the protected OpenImpl/NextImpl/CloseImpl hooks: when the context has
// profiling enabled they accumulate an OpProfile (wall time, rows, and the
// inclusive IoStats/CpuStats delta of the call — children run inside their
// parent's calls, so a node's delta covers its subtree), and when tracing
// is enabled Open/Close record spans. With both off the wrapper is two
// predictable branches — the observability layer's cost is near zero
// unless it is asked for.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/run_statistics.h"
#include "exec/exec_context.h"
#include "obs/op_profile.h"
#include "table/value.h"

namespace dpcf {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Opens the subtree. Resets this operator's profile when profiling.
  Status Open(ExecContext* ctx);

  /// Produces the next tuple into *out. Returns false at end of stream.
  Result<bool> Next(ExecContext* ctx, Tuple* out);

  Status Close(ExecContext* ctx);

  /// One-line description for plan rendering, e.g.
  /// "TableScan(T, C3<250000)".
  virtual std::string Describe() const = 0;

  /// Appends the subtree's page-count observations (valid after Close):
  /// children first (in children() order), then this operator's own — the
  /// order the feedback determinism tests pin down.
  void CollectMonitorRecords(std::vector<MonitorRecord>* out) const;

  /// This operator's OWN observations only; the profile-tree capture uses
  /// it to attribute records to the operator that measured them.
  virtual void CollectOwnMonitorRecords(
      std::vector<MonitorRecord>* out) const {
    (void)out;
  }

  /// Child operators, for plan rendering.
  virtual std::vector<const Operator*> children() const { return {}; }

  /// Profile of the most recent profiled execution (zeros otherwise).
  const OpProfile& profile() const { return profile_; }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(ExecContext* ctx, Tuple* out) = 0;
  virtual Status CloseImpl(ExecContext* ctx) = 0;

 private:
  OpProfile profile_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders an operator tree, one operator per line, indented.
std::string DescribeTree(const Operator& root);

}  // namespace dpcf
