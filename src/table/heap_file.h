// Heap file: the on-"disk" row store for a table.
//
// A heap file is one segment of fixed-width data pages. Page layout:
//   [uint32 row_count][8-byte aligned rows...]
// Rows are appended in arrival order; a clustered table is simply a heap
// file whose rows were appended in clustering-key order by the TableBuilder,
// which is what gives scans the paper's *grouped page access* property and
// makes correlated predicates touch few distinct pages.

#pragma once

#include <cstdint>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "table/row_codec.h"
#include "table/schema.h"

namespace dpcf {

/// Row identifier within one table: (data page number, slot in page).
struct Rid {
  PageNo page_no = kInvalidPageNo;
  uint16_t slot = 0;

  bool valid() const { return page_no != kInvalidPageNo; }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_no) << 16) | slot;
  }
  static Rid Unpack(uint64_t packed) {
    return Rid{static_cast<PageNo>(packed >> 16),
               static_cast<uint16_t>(packed & 0xffff)};
  }

  bool operator==(const Rid&) const = default;
  auto operator<=>(const Rid&) const = default;

  std::string ToString() const {
    return std::to_string(page_no) + "." + std::to_string(slot);
  }
};

/// Fixed-width-row page store over one segment.
///
/// Appends keep the tail page pinned until the file is Sealed; reads go
/// through the buffer pool so physical I/O is charged to the run.
class HeapFile {
 public:
  HeapFile(BufferPool* pool, SegmentId segment, const Schema* schema);

  static constexpr uint32_t kHeaderSize = 8;

  /// Rows that fit in one page for this schema/page size.
  uint32_t rows_per_page() const { return rows_per_page_; }
  SegmentId segment() const { return segment_; }
  const Schema* schema() const { return schema_; }

  uint32_t page_count() const { return page_count_; }
  int64_t row_count() const { return row_count_; }

  /// Appends an encoded row (schema->row_size() bytes); returns its Rid.
  Result<Rid> AppendEncoded(const char* row);

  /// Encodes and appends a tuple.
  Result<Rid> Append(const Tuple& tuple);

  /// Unpins the tail page; call when loading is done.
  void Seal();

  /// Pins the page holding `rid` and returns the guard; `out_row` points at
  /// the row bytes (valid while the guard lives).
  Result<PageGuard> FetchRow(Rid rid, const char** out_row);

  /// Number of rows stored in the given (already fetched) page image.
  static uint32_t PageRowCount(const char* page_data);
  static void SetPageRowCount(char* page_data, uint32_t n);

  /// Pointer to slot `slot` in a fetched page image.
  const char* RowInPage(const char* page_data, uint16_t slot) const {
    return page_data + kHeaderSize +
           static_cast<size_t>(slot) * schema_->row_size();
  }

  /// Pointer to the first row of a fetched page image; rows follow at
  /// schema row_size() stride (feed for RowBlock::Reset).
  static const char* PageRows(const char* page_data) {
    return page_data + kHeaderSize;
  }

  BufferPool* buffer_pool() const { return pool_; }

 private:
  BufferPool* pool_;
  SegmentId segment_;
  const Schema* schema_;
  uint32_t rows_per_page_;
  uint32_t page_count_ = 0;
  int64_t row_count_ = 0;

  // Tail page being filled by Append.
  PageGuard tail_guard_;
  PageId tail_pid_;
  uint32_t tail_rows_ = 0;
};

}  // namespace dpcf
