// Table schemas with fixed-width row layout.
//
// Rows are fixed-width: INT64 columns take 8 bytes, CHAR(n) columns take n
// bytes (space-padded). Fixed-width layout keeps the storage-engine hot path
// (predicate evaluation on raw page bytes) branch-free and lets the paper's
// rows-per-page arithmetic (Table I, Example 1) hold exactly.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace dpcf {

/// One column definition. For kString, `size` is the fixed CHAR width.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  uint32_t size = 8;

  static Column Int64(std::string name) {
    return Column{std::move(name), ValueType::kInt64, 8};
  }
  static Column Char(std::string name, uint32_t width) {
    return Column{std::move(name), ValueType::kString, width};
  }
};

/// Immutable column layout: names, types, byte offsets and total row size.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column i within a row.
  uint32_t offset(size_t i) const { return offsets_[i]; }

  /// Total fixed row width in bytes.
  uint32_t row_size() const { return row_size_; }

  /// Index of the column with this name, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_size_ = 0;
};

}  // namespace dpcf
