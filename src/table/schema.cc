#include "table/schema.h"

#include "common/string_util.h"

namespace dpcf {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += c.size;
  }
  row_size_ = off;
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    if (c.type == ValueType::kInt64) {
      parts.push_back(c.name + " INT64");
    } else {
      parts.push_back(StrFormat("%s CHAR(%u)", c.name.c_str(), c.size));
    }
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace dpcf
