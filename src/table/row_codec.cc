#include "table/row_codec.h"

#include "common/string_util.h"

namespace dpcf {

Value RowView::GetValue(size_t col) const {
  const Column& c = schema_->column(col);
  if (c.type == ValueType::kInt64) return Value::Int64(GetInt64(col));
  std::string_view sv = GetString(col);
  // Trim the fixed-width space padding.
  size_t end = sv.find_last_not_of(' ');
  return Value::String(std::string(
      end == std::string_view::npos ? sv.substr(0, 0) : sv.substr(0, end + 1)));
}

Tuple RowView::Materialize(const std::vector<int>& projection) const {
  Tuple t;
  if (projection.empty()) {
    t.reserve(schema_->num_columns());
    for (size_t i = 0; i < schema_->num_columns(); ++i) {
      t.push_back(GetValue(i));
    }
  } else {
    t.reserve(projection.size());
    for (int col : projection) {
      t.push_back(GetValue(static_cast<size_t>(col)));
    }
  }
  return t;
}

Status RowCodec::Encode(const Tuple& tuple, char* out) const {
  if (tuple.size() != schema_->num_columns()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu != schema arity %zu", tuple.size(),
                  schema_->num_columns()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Column& c = schema_->column(i);
    const Value& v = tuple[i];
    if (v.type() != c.type) {
      return Status::InvalidArgument(
          StrFormat("column %s expects %s, got %s", c.name.c_str(),
                    ValueTypeName(c.type), ValueTypeName(v.type())));
    }
    char* dst = out + schema_->offset(i);
    if (c.type == ValueType::kInt64) {
      int64_t raw = v.AsInt64();
      std::memcpy(dst, &raw, sizeof(raw));
    } else {
      const std::string& s = v.AsString();
      if (s.size() > c.size) {
        return Status::InvalidArgument(
            StrFormat("value of length %zu exceeds CHAR(%u) column %s",
                      s.size(), c.size, c.name.c_str()));
      }
      std::memcpy(dst, s.data(), s.size());
      std::memset(dst + s.size(), ' ', c.size - s.size());
    }
  }
  return Status::OK();
}

Tuple RowCodec::Decode(const char* data) const {
  return RowView(data, schema_).Materialize();
}

}  // namespace dpcf
