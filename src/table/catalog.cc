#include "table/catalog.h"

#include <cstring>

#include "common/string_util.h"
#include "exec/simd.h"

namespace dpcf {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Status Catalog::AddIndex(std::unique_ptr<Index> index) {
  const std::string& name = index->name();
  if (indexes_.count(name) != 0) {
    return Status::AlreadyExists("index " + name);
  }
  indexes_[name] = std::move(index);
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Index* Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<Index*> Catalog::IndexesForTable(const Table* table) const {
  std::vector<Index*> out;
  for (const auto& [name, idx] : indexes_) {
    if (idx->table() == table) out.push_back(idx.get());
  }
  return out;
}

std::vector<Table*> Catalog::Tables() const {
  std::vector<Table*> out;
  for (const auto& [name, t] : tables_) out.push_back(t.get());
  return out;
}

std::vector<Index*> Catalog::Indexes() const {
  std::vector<Index*> out;
  for (const auto& [name, i] : indexes_) out.push_back(i.get());
  return out;
}

Database::Database(DatabaseOptions options)
    : options_(options),
      trace_(options.observability.tracing),
      journal_(options.observability.journal_events_per_thread),
      disk_(DiskManagerOptions{options.page_size, options.io_threads,
                               /*queue_depth=*/256}),
      pool_(&disk_, options.buffer_pool_pages,
            BufferPoolOptions{options.buffer_pool_shards,
                              /*serialize_miss_io=*/false,
                              options.async_io}) {
  MetricsRegistry* registry =
      options_.observability.metrics ? &metrics_ : nullptr;
  disk_.AttachMetrics(registry, &trace_, journal());
  pool_.AttachObservability(registry, &trace_, journal());
  if (registry != nullptr) {
    // Info gauge: constant 1, the label names the SIMD ISA the predicate
    // kernels dispatched to (exec/simd.h) — so a metrics scrape can tell
    // whether a perf regression line ran scalar or vectorized.
    registry
        ->GetGauge("dpcf_simd_dispatch_info",
                   "active SIMD ISA for predicate kernels (label isa)",
                   {{"isa", SimdIsaName(ActiveSimdIsa())}})
        ->Set(1.0);
  }
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema,
                                     TableOrganization organization,
                                     int cluster_key_col) {
  if (organization == TableOrganization::kClustered) {
    if (cluster_key_col < 0 ||
        cluster_key_col >= static_cast<int>(schema.num_columns())) {
      return Status::InvalidArgument(
          StrFormat("clustered table %s needs a valid clustering column",
                    name.c_str()));
    }
  } else {
    cluster_key_col = -1;
  }
  SegmentId segment = disk_.CreateSegment("table:" + name);
  auto table = std::make_unique<Table>(
      name, std::make_unique<Schema>(std::move(schema)), organization,
      cluster_key_col, &pool_, segment);
  Table* raw = table.get();
  DPCF_RETURN_IF_ERROR(catalog_.AddTable(std::move(table)));
  return raw;
}

Result<Index*> Database::CreateIndex(const std::string& name,
                                     const std::string& table_name,
                                     const std::vector<int>& key_cols,
                                     bool is_clustered_key) {
  Table* table = catalog_.GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  DPCF_ASSIGN_OR_RETURN(
      std::unique_ptr<Index> index,
      Index::Build(&pool_, table, name, key_cols, is_clustered_key));
  Index* raw = index.get();
  DPCF_RETURN_IF_ERROR(catalog_.AddIndex(std::move(index)));
  return raw;
}

Result<Index*> Database::CreateIndex(
    const std::string& name, const std::string& table_name,
    const std::vector<std::string>& key_col_names, bool is_clustered_key) {
  Table* table = catalog_.GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("table " + table_name);
  }
  std::vector<int> cols;
  for (const std::string& cn : key_col_names) {
    int c = table->schema().ColumnIndex(cn);
    if (c < 0) {
      return Status::NotFound(
          StrFormat("column %s in table %s", cn.c_str(),
                    table_name.c_str()));
    }
    cols.push_back(c);
  }
  return CreateIndex(name, table_name, cols, is_clustered_key);
}

Status Database::ColdCache() {
  DPCF_RETURN_IF_ERROR(pool_.ColdReset());
  disk_.io_stats()->Reset();
  return Status::OK();
}

Result<Rid> Database::InsertRow(const std::string& table_name,
                                const Tuple& row) {
  Table* table = catalog_.GetTable(table_name);
  if (table == nullptr) return Status::NotFound("table " + table_name);

  RowCodec codec(&table->schema());
  std::string encoded(table->schema().row_size(), '\0');
  DPCF_RETURN_IF_ERROR(codec.Encode(row, encoded.data()));
  RowView view(encoded.data(), &table->schema());

  if (table->organization() == TableOrganization::kClustered &&
      table->row_count() > 0) {
    // Load-ordered clustering: only appends in key order preserve the
    // physical sortedness range scans depend on.
    const char* last = nullptr;
    HeapFile* file = table->file();
    uint32_t last_page = file->page_count() - 1;
    auto guard = pool_.Fetch(PageId{table->segment(), last_page});
    if (!guard.ok()) return guard.status();
    uint32_t n = HeapFile::PageRowCount(guard->data());
    last = file->RowInPage(guard->data(), static_cast<uint16_t>(n - 1));
    RowView last_row(last, &table->schema());
    size_t key = static_cast<size_t>(table->cluster_key_col());
    if (view.GetInt64(key) < last_row.GetInt64(key)) {
      return Status::NotSupported(
          StrFormat("clustered table %s is load-ordered: insert key must "
                    "be >= current maximum",
                    table_name.c_str()));
    }
  }

  DPCF_ASSIGN_OR_RETURN(Rid rid, table->file()->AppendEncoded(encoded.data()));
  table->file()->Seal();
  for (Index* index : catalog_.IndexesForTable(table)) {
    DPCF_RETURN_IF_ERROR(index->InsertRow(view, rid));
  }
  return rid;
}

Status Database::UpdateRow(const std::string& table_name, Rid rid,
                           const Tuple& row) {
  Table* table = catalog_.GetTable(table_name);
  if (table == nullptr) return Status::NotFound("table " + table_name);

  RowCodec codec(&table->schema());
  std::string encoded(table->schema().row_size(), '\0');
  DPCF_RETURN_IF_ERROR(codec.Encode(row, encoded.data()));
  RowView new_view(encoded.data(), &table->schema());

  const char* old_bytes = nullptr;
  DPCF_ASSIGN_OR_RETURN(PageGuard guard,
                        table->file()->FetchRow(rid, &old_bytes));
  RowView old_view(old_bytes, &table->schema());
  if (table->cluster_key_col() >= 0) {
    size_t key = static_cast<size_t>(table->cluster_key_col());
    if (old_view.GetInt64(key) != new_view.GetInt64(key)) {
      return Status::NotSupported(
          "updates must preserve the clustering key");
    }
  }
  // Re-key indexes whose key columns changed.
  for (Index* index : catalog_.IndexesForTable(table)) {
    if (index->KeyForRow(old_view) == index->KeyForRow(new_view)) continue;
    DPCF_RETURN_IF_ERROR(index->DeleteRow(old_view, rid));
    DPCF_RETURN_IF_ERROR(index->InsertRow(new_view, rid));
  }
  // Overwrite in place (same fixed width). old_bytes points into the
  // pinned page; recover the mutable pointer via the guard.
  const char* page_base = guard.data();
  size_t offset = static_cast<size_t>(old_bytes - page_base);
  std::memcpy(guard.mutable_data() + offset, encoded.data(),
              table->schema().row_size());
  return Status::OK();
}

}  // namespace dpcf
