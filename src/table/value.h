// Typed values and tuples.
//
// The engine supports two column types: INT64 (ids, dates encoded as days,
// dictionary-encoded categorical columns) and fixed-width CHAR(n) strings
// (payload/padding columns). This matches what the paper's experiments
// exercise; NULLs are not modelled.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpcf {

enum class ValueType : uint8_t {
  kInt64 = 0,
  kString = 1,
};

const char* ValueTypeName(ValueType t);

/// A single typed value. Small and copyable; comparisons are only defined
/// between values of the same type.
class Value {
 public:
  Value() : type_(ValueType::kInt64), i_(0) {}
  static Value Int64(int64_t v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const { return type_; }
  int64_t AsInt64() const { return i_; }
  const std::string& AsString() const { return s_; }

  bool operator==(const Value& o) const;
  /// Three-way compare; asserts same type.
  int Compare(const Value& o) const;
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  std::string ToString() const;

 private:
  explicit Value(int64_t v) : type_(ValueType::kInt64), i_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), i_(0), s_(std::move(v)) {}

  ValueType type_;
  int64_t i_;
  std::string s_;
};

/// A materialized row: one Value per (projected) column.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& t);

}  // namespace dpcf
