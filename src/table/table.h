// Table metadata and bulk loading.
//
// A table is physically a heap file plus metadata. Clustered tables are heap
// files whose rows were appended in clustering-key order by the TableBuilder
// (Example 1 in the paper: whether Shipdate is correlated with the load order
// is exactly what determines the distinct page count of a predicate).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/heap_file.h"
#include "table/schema.h"

namespace dpcf {

enum class TableOrganization {
  kHeap,       // rows in arrival order
  kClustered,  // rows sorted by the clustering key column
};

/// Metadata + storage handle for one table. Created through
/// Database::CreateTable / TableBuilder; owned by the Catalog.
class Table {
 public:
  Table(std::string name, std::unique_ptr<Schema> schema,
        TableOrganization organization, int cluster_key_col,
        BufferPool* pool, SegmentId segment);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return *schema_; }
  TableOrganization organization() const { return organization_; }

  /// Clustering key column index; -1 for heaps.
  int cluster_key_col() const { return cluster_key_col_; }

  HeapFile* file() { return &file_; }
  const HeapFile* file() const { return &file_; }

  SegmentId segment() const { return file_.segment(); }
  uint32_t page_count() const { return file_.page_count(); }
  int64_t row_count() const { return file_.row_count(); }
  uint32_t rows_per_page() const { return file_.rows_per_page(); }

 private:
  std::string name_;
  std::unique_ptr<Schema> schema_;
  TableOrganization organization_;
  int cluster_key_col_;
  HeapFile file_;
};

/// Accumulates rows in memory, sorts them by the clustering key when the
/// table is clustered, and writes the heap file. Loading is a bulk
/// operation outside any measured run; callers reset I/O stats afterwards.
class TableBuilder {
 public:
  /// `table` must be freshly created and empty.
  explicit TableBuilder(Table* table);

  Status AddRow(const Tuple& tuple);

  /// Sorts (if clustered) and writes all buffered rows.
  Status Finish();

  int64_t buffered_rows() const { return buffered_rows_; }

 private:
  Table* table_;
  RowCodec codec_;
  uint32_t row_size_;
  std::vector<char> buffer_;
  int64_t buffered_rows_ = 0;
  bool finished_ = false;
};

}  // namespace dpcf
