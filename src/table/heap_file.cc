#include "table/heap_file.h"

#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace dpcf {

HeapFile::HeapFile(BufferPool* pool, SegmentId segment, const Schema* schema)
    : pool_(pool), segment_(segment), schema_(schema) {
  assert(schema_->row_size() > 0);
  size_t usable = pool_->disk()->page_size() - kHeaderSize;
  rows_per_page_ = static_cast<uint32_t>(usable / schema_->row_size());
  assert(rows_per_page_ > 0 && "row wider than a page");
  page_count_ = pool_->disk()->SegmentPageCount(segment_);
}

uint32_t HeapFile::PageRowCount(const char* page_data) {
  uint32_t n;
  std::memcpy(&n, page_data, sizeof(n));
  return n;
}

void HeapFile::SetPageRowCount(char* page_data, uint32_t n) {
  std::memcpy(page_data, &n, sizeof(n));
}

Result<Rid> HeapFile::AppendEncoded(const char* row) {
  if (!tail_guard_.valid() && page_count_ > 0) {
    // Re-open the last page (runtime inserts after a Seal): it may still
    // have free slots.
    auto guard = pool_->Fetch(PageId{segment_, page_count_ - 1});
    if (!guard.ok()) return guard.status();
    uint32_t used = PageRowCount(guard->data());
    if (used < rows_per_page_) {
      tail_guard_ = std::move(guard).value();
      tail_pid_ = PageId{segment_, page_count_ - 1};
      tail_rows_ = used;
    }
  }
  if (!tail_guard_.valid() || tail_rows_ == rows_per_page_) {
    tail_guard_.Release();
    auto guard = pool_->NewPage(segment_, &tail_pid_);
    if (!guard.ok()) return guard.status();
    tail_guard_ = std::move(guard).value();
    tail_rows_ = 0;
    ++page_count_;
  }
  char* page = tail_guard_.mutable_data();
  std::memcpy(page + kHeaderSize +
                  static_cast<size_t>(tail_rows_) * schema_->row_size(),
              row, schema_->row_size());
  SetPageRowCount(page, tail_rows_ + 1);
  Rid rid{tail_pid_.page_no, static_cast<uint16_t>(tail_rows_)};
  ++tail_rows_;
  ++row_count_;
  return rid;
}

Result<Rid> HeapFile::Append(const Tuple& tuple) {
  RowCodec codec(schema_);
  // Row width is bounded by the page size, so a stack-ish buffer is fine.
  std::string buf(schema_->row_size(), '\0');
  DPCF_RETURN_IF_ERROR(codec.Encode(tuple, buf.data()));
  return AppendEncoded(buf.data());
}

void HeapFile::Seal() { tail_guard_.Release(); }

Result<PageGuard> HeapFile::FetchRow(Rid rid, const char** out_row) {
  if (rid.page_no >= page_count_) {
    return Status::OutOfRange(
        StrFormat("rid %s beyond %u pages", rid.ToString().c_str(),
                  page_count_));
  }
  auto guard = pool_->Fetch(PageId{segment_, rid.page_no});
  if (!guard.ok()) return guard.status();
  const char* page = guard->data();
  if (rid.slot >= PageRowCount(page)) {
    return Status::OutOfRange(
        StrFormat("rid %s: slot beyond %u rows", rid.ToString().c_str(),
                  PageRowCount(page)));
  }
  *out_row = RowInPage(page, rid.slot);
  return std::move(guard).value();
}

}  // namespace dpcf
