// Catalog and Database facade.
//
// Database owns the simulated disk, the buffer pool and the catalog of
// tables and indexes, and is the entry point a library user touches first
// (see examples/quickstart.cc). ColdCache() reproduces the paper's
// cold-cache measurement setup between runs.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/secondary_index.h"
#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "obs/trace_collector.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "table/table.h"

namespace dpcf {

/// Name → object maps for tables and indexes. Owned by Database.
class Catalog {
 public:
  Status AddTable(std::unique_ptr<Table> table);
  Status AddIndex(std::unique_ptr<Index> index);

  Table* GetTable(const std::string& name) const;
  Index* GetIndex(const std::string& name) const;

  /// All indexes whose base table is `table`.
  std::vector<Index*> IndexesForTable(const Table* table) const;

  std::vector<Table*> Tables() const;
  std::vector<Index*> Indexes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<Index>> indexes_;
};

/// Observability toggles (DESIGN.md section 11). The registry and trace
/// collector objects always exist on the Database; these flags decide
/// whether the storage layer publishes into them.
struct ObservabilityOptions {
  /// Attach the storage layer (buffer pool, disk manager, monitor manager)
  /// to the metrics registry. On by default: publication is relaxed-atomic
  /// increments behind branch-predictable null checks.
  bool metrics = true;
  /// Start with trace-event recording enabled. Off by default — spans read
  /// a clock; flip at runtime with Database::trace()->set_enabled(true).
  bool tracing = false;
  /// Wire the flight-recorder event journal (obs/event_journal.h) into the
  /// storage layer. On by default: recording is a lock-free ring append,
  /// cheap enough to leave on in production (bench_obs_overhead gates it).
  bool journal = true;
  /// Per-thread journal ring capacity, in events.
  size_t journal_events_per_thread = 4096;
};

struct DatabaseOptions {
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_pages = 4096;
  /// Buffer-pool shards (see BufferPoolOptions::num_shards); 0 picks the
  /// capacity-scaled default.
  size_t buffer_pool_shards = 0;
  /// Route buffer-pool miss and readahead I/O through the disk manager's
  /// asynchronous submission ring (BufferPoolOptions::async_io). Off by
  /// default: the synchronous path is the established baseline the
  /// benches compare against.
  bool async_io = false;
  /// Completion workers for the submission ring — the simulated device
  /// queue depth (DiskManagerOptions::io_threads). Only matters with
  /// async_io.
  int io_threads = 2;
  /// Simulated device/CPU cost constants used when deriving run times.
  SimCostParams cost_params;
  ObservabilityOptions observability;
};

/// Top-level engine object: storage + catalog.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  /// Creates an empty table; load rows through a TableBuilder on the
  /// returned object. `cluster_key_col` is required iff clustered.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             TableOrganization organization,
                             int cluster_key_col = -1);

  /// Builds an index over an already-loaded table.
  Result<Index*> CreateIndex(const std::string& name,
                             const std::string& table_name,
                             const std::vector<int>& key_cols,
                             bool is_clustered_key = false);
  Result<Index*> CreateIndex(const std::string& name,
                             const std::string& table_name,
                             const std::vector<std::string>& key_col_names,
                             bool is_clustered_key = false);

  Table* GetTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }
  Index* GetIndex(const std::string& name) const {
    return catalog_.GetIndex(name);
  }
  const Catalog& catalog() const { return catalog_; }

  DiskManager* disk() { return &disk_; }
  BufferPool* buffer_pool() { return &pool_; }
  const DatabaseOptions& options() const { return options_; }

  /// Engine-wide metric store. Always present; the storage layer publishes
  /// into it when options.observability.metrics is on. Counters are
  /// cumulative for the Database's lifetime — ColdCache() zeroes IoStats
  /// but never the registry (Prometheus counters don't reset).
  MetricsRegistry* metrics() { return &metrics_; }

  /// Trace-event collector. Always present; recording follows
  /// options.observability.tracing and trace()->set_enabled().
  TraceCollector* trace() { return &trace_; }

  /// Flight-recorder journal, or null when options.observability.journal
  /// is off (callers treat a null journal as "don't record").
  EventJournal* journal() {
    return options_.observability.journal ? &journal_ : nullptr;
  }

  /// Empties the buffer pool and zeroes the I/O counters — the state in
  /// which the paper times every plan.
  Status ColdCache();

  /// Runtime DML: appends a row, maintaining every index on the table.
  /// Clustered tables are load-ordered (the physical order IS the
  /// clustering the paper studies), so the key must be >= the current
  /// maximum; arbitrary-position inserts are NotSupported.
  Result<Rid> InsertRow(const std::string& table_name, const Tuple& row);

  /// Overwrites the row at `rid` in place (fixed-width rows), updating
  /// index entries whose keys changed. A clustered table's key column
  /// must keep its value.
  Status UpdateRow(const std::string& table_name, Rid rid,
                   const Tuple& row);

  /// Writes all dirty buffer-pool pages back to the disk image so raw
  /// walkers (statistics build, diagnostics) observe DML effects.
  Status Checkpoint() { return pool_.FlushAll(); }

 private:
  DatabaseOptions options_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  // Declared before disk_/pool_ so it is destroyed after them: the disk's
  // io workers (joined in ~DiskManager) may record events to the end.
  EventJournal journal_;
  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

}  // namespace dpcf
