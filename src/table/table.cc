#include "table/table.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/string_util.h"

namespace dpcf {

Table::Table(std::string name, std::unique_ptr<Schema> schema,
             TableOrganization organization, int cluster_key_col,
             BufferPool* pool, SegmentId segment)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      organization_(organization),
      cluster_key_col_(cluster_key_col),
      file_(pool, segment, schema_.get()) {}

TableBuilder::TableBuilder(Table* table)
    : table_(table),
      codec_(&table->schema()),
      row_size_(table->schema().row_size()) {}

Status TableBuilder::AddRow(const Tuple& tuple) {
  if (finished_) return Status::InvalidArgument("builder already finished");
  size_t off = buffer_.size();
  buffer_.resize(off + row_size_);
  DPCF_RETURN_IF_ERROR(codec_.Encode(tuple, buffer_.data() + off));
  ++buffered_rows_;
  return Status::OK();
}

Status TableBuilder::Finish() {
  if (finished_) return Status::InvalidArgument("builder already finished");
  finished_ = true;

  std::vector<int64_t> order(static_cast<size_t>(buffered_rows_));
  std::iota(order.begin(), order.end(), 0);

  if (table_->organization() == TableOrganization::kClustered) {
    int key_col = table_->cluster_key_col();
    if (key_col < 0 ||
        key_col >= static_cast<int>(table_->schema().num_columns())) {
      return Status::InvalidArgument(
          StrFormat("invalid clustering column %d", key_col));
    }
    if (table_->schema().column(key_col).type != ValueType::kInt64) {
      return Status::NotSupported("clustering key must be INT64");
    }
    uint32_t key_off = table_->schema().offset(key_col);
    const char* base = buffer_.data();
    uint32_t rs = row_size_;
    std::stable_sort(order.begin(), order.end(),
                     [base, rs, key_off](int64_t a, int64_t b) {
                       int64_t ka, kb;
                       std::memcpy(&ka, base + a * rs + key_off, sizeof(ka));
                       std::memcpy(&kb, base + b * rs + key_off, sizeof(kb));
                       return ka < kb;
                     });
  }

  HeapFile* file = table_->file();
  for (int64_t idx : order) {
    auto rid = file->AppendEncoded(buffer_.data() + idx * row_size_);
    if (!rid.ok()) return rid.status();
  }
  file->Seal();
  buffer_.clear();
  buffer_.shrink_to_fit();
  // Push the loaded pages through to the disk image so raw walkers
  // (statistics build, index build, diagnostics) see the data.
  return file->buffer_pool()->FlushAll();
}

}  // namespace dpcf
