// Row (de)serialization and zero-copy row views.
//
// RowView reads column values directly from page bytes without materializing
// a Tuple — the storage-engine predicate evaluator and the page-count
// monitors run on RowViews; Tuples are only built for rows that survive the
// pushed-down predicates and cross into the relational engine.

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "table/schema.h"
#include "table/value.h"

namespace dpcf {

/// Zero-copy view of one encoded row. Valid only while the underlying page
/// stays pinned.
class RowView {
 public:
  RowView(const char* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  int64_t GetInt64(size_t col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  std::string_view GetString(size_t col) const {
    return std::string_view(data_ + schema_->offset(col),
                            schema_->column(col).size);
  }

  Value GetValue(size_t col) const;

  /// Materializes the named columns (all columns if `projection` is empty).
  Tuple Materialize(const std::vector<int>& projection = {}) const;

  const char* data() const { return data_; }
  const Schema* schema() const { return schema_; }

 private:
  const char* data_;
  const Schema* schema_;
};

/// Encodes/decodes Tuples to/from the fixed-width row format.
class RowCodec {
 public:
  explicit RowCodec(const Schema* schema) : schema_(schema) {}

  /// Writes the tuple into `out` (at least schema->row_size() bytes).
  /// Fails if arity or a value type mismatches; CHAR values longer than the
  /// declared width are rejected, shorter ones are space-padded.
  Status Encode(const Tuple& tuple, char* out) const;

  /// Full decode into a Tuple (strings are right-trimmed of padding).
  Tuple Decode(const char* data) const;

 private:
  const Schema* schema_;
};

}  // namespace dpcf
