// Row (de)serialization and zero-copy row views.
//
// RowView reads column values directly from page bytes without materializing
// a Tuple — the storage-engine predicate evaluator and the page-count
// monitors run on RowViews; Tuples are only built for rows that survive the
// pushed-down predicates and cross into the relational engine.

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "table/schema.h"
#include "table/value.h"

namespace dpcf {

/// Zero-copy view of one encoded row. Valid only while the underlying page
/// stays pinned.
class RowView {
 public:
  RowView(const char* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  int64_t GetInt64(size_t col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  std::string_view GetString(size_t col) const {
    return std::string_view(data_ + schema_->offset(col),
                            schema_->column(col).size);
  }

  Value GetValue(size_t col) const;

  /// Materializes the named columns (all columns if `projection` is empty).
  Tuple Materialize(const std::vector<int>& projection = {}) const;

  const char* data() const { return data_; }
  const Schema* schema() const { return schema_; }

 private:
  const char* data_;
  const Schema* schema_;
};

/// Column-at-a-time view of the rows of one heap page (the batch row
/// decoder behind the vectorized predicate kernels, DESIGN.md section 12).
///
/// Rebind it to a page image with Reset(), then ask for columns:
/// INT64 columns are gathered once into a contiguous array so downstream
/// comparators run tight, branch-predictable loops; CHAR columns are
/// fixed-width page bytes already and are read in place via row().
/// Columns are decoded lazily — a conjunct whose selection vector empties
/// before atom k never pays for atom k's column — and at most once per
/// page, no matter how many predicate atoms or monitor expressions touch
/// them. Valid only while the underlying page stays pinned, like RowView.
class RowBlock {
 public:
  explicit RowBlock(const Schema* schema)
      : schema_(schema), row_size_(schema->row_size()) {}

  /// Rebinds to a page image: `rows` points at the first row (page data +
  /// HeapFile::kHeaderSize), `n` rows follow at row_size() stride.
  void Reset(const char* rows, uint32_t n) {
    rows_ = rows;
    n_ = n;
  }

  uint32_t size() const { return n_; }
  const Schema* schema() const { return schema_; }

  /// Raw bytes of row r (== RowView data pointer for slot r). Column
  /// values are read in place at schema offsets — the kernel's strided
  /// comparators touch each value exactly once, so there is no gather
  /// step (see exec/predicate_kernel.cc).
  const char* row(uint32_t r) const {
    return rows_ + static_cast<size_t>(r) * row_size_;
  }

  /// Base pointer + stride of the bound page image, the form the SIMD
  /// comparators consume (see exec/simd.h): row r lives at
  /// rows_base() + r * row_stride().
  const char* rows_base() const { return rows_; }
  uint32_t row_stride() const { return row_size_; }

 private:
  const Schema* schema_;
  uint32_t row_size_;
  const char* rows_ = nullptr;
  uint32_t n_ = 0;
};

/// Encodes/decodes Tuples to/from the fixed-width row format.
class RowCodec {
 public:
  explicit RowCodec(const Schema* schema) : schema_(schema) {}

  /// Writes the tuple into `out` (at least schema->row_size() bytes).
  /// Fails if arity or a value type mismatches; CHAR values longer than the
  /// declared width are rejected, shorter ones are space-padded.
  Status Encode(const Tuple& tuple, char* out) const;

  /// Full decode into a Tuple (strings are right-trimmed of padding).
  Tuple Decode(const char* data) const;

 private:
  const Schema* schema_;
};

}  // namespace dpcf
