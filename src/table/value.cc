#include "table/value.h"

#include <cassert>

#include "common/string_util.h"

namespace dpcf {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::operator==(const Value& o) const {
  if (type_ != o.type_) return false;
  return type_ == ValueType::kInt64 ? i_ == o.i_ : s_ == o.s_;
}

int Value::Compare(const Value& o) const {
  assert(type_ == o.type_);
  if (type_ == ValueType::kInt64) {
    return i_ < o.i_ ? -1 : (i_ > o.i_ ? 1 : 0);
  }
  int c = s_.compare(o.s_);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToString() const {
  if (type_ == ValueType::kInt64) return std::to_string(i_);
  return "'" + s_ + "'";
}

std::string TupleToString(const Tuple& t) {
  std::vector<std::string> parts;
  parts.reserve(t.size());
  for (const Value& v : t) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace dpcf
