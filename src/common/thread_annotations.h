// Clang Thread Safety Analysis (TSA) vocabulary for the DPCF codebase.
//
// The morsel-parallel scan path (PR 1) established two concurrency
// contracts that used to live only in comments:
//   1. lock order: BufferPool::mu_ is acquired before DiskManager::mu_
//      (the pool's miss path reads from disk while holding its latch);
//   2. every latch-protected member names its latch.
// This header turns those comments into compiler-checked attributes: under
// clang, `-Wthread-safety -Werror=thread-safety` makes an unlatched access
// to a GUARDED_BY member or a pool/disk lock-order inversion a compile
// error (order checking needs `-Wthread-safety-beta`). Under other
// compilers the macros expand to nothing and the wrappers are plain
// std::mutex / std::lock_guard, so gcc builds are unaffected.
//
// Use dpcf::Mutex + dpcf::MutexLock instead of std::mutex for any new
// latch; the lint rule dpcf-mutex-annotation rejects raw std::mutex
// members in src/ (tools/lint/rules/mutex_annotation.py).
//
// PR 7 adds runtime lock-rank enforcement: each long-lived mutex carries a
// rank from dpcf::lock_rank, and -DDPCF_LOCK_RANK=ON builds keep a
// thread-local stack of held ranks that aborts the process on any
// non-increasing acquisition. This covers the compilers where TSA is a
// no-op (gcc, and therefore every sanitizer CI job).

#pragma once

#include <mutex>

#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
#include <cstdio>
#include <cstdlib>
#endif

#if defined(__clang__) && (!defined(SWIG))
#define DPCF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DPCF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares that a type is a lockable capability ("mutex" is the
// capability kind shown in diagnostics).
#define CAPABILITY(x) DPCF_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY DPCF_THREAD_ANNOTATION(scoped_lockable)

// Data members: readable/writable only while holding the named mutex.
#define GUARDED_BY(x) DPCF_THREAD_ANNOTATION(guarded_by(x))

// Pointer members: the *pointee* is protected by the named mutex.
#define PT_GUARDED_BY(x) DPCF_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must already hold (or must NOT hold) the mutex.
#define REQUIRES(...) \
  DPCF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DPCF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DPCF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions: acquire/release the mutex as a side effect (lock wrappers).
#define ACQUIRE(...) DPCF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DPCF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DPCF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DPCF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DPCF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Lock-ordering declarations: acquiring this mutex while holding one that
// is declared ACQUIRED_BEFORE it (or vice versa) is a compile error under
// -Wthread-safety-beta. This is how the pool -> disk order is encoded.
#define ACQUIRED_BEFORE(...) \
  DPCF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DPCF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Returns the capability itself from a getter (lets annotations on other
// classes name this object's mutex).
#define RETURN_CAPABILITY(x) DPCF_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (e.g. lock/unlock
// split across functions). Prefer restructuring over using this.
#define NO_THREAD_SAFETY_ANALYSIS \
  DPCF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dpcf {

/// Global lock-rank table: every long-lived dpcf::Mutex is assigned one of
/// these ranks, and (in DPCF_LOCK_RANK builds) a thread may only acquire a
/// ranked mutex whose rank is STRICTLY GREATER than every ranked mutex it
/// already holds. This is the ACQUIRED_BEFORE documentation turned into a
/// runtime invariant: clang TSA proves the pool->disk order at compile time
/// on clang builds, the rank stack aborts on inversion in every debug /
/// sanitizer run regardless of compiler. Strictness also enforces the
/// "never two shard latches at once" rule, since all shard latches share
/// one rank. The table (mirrored in DESIGN.md section 13):
namespace lock_rank {
inline constexpr int kUnranked = -1;          // exempt (tests, ad hoc)
inline constexpr int kBufferPoolShard = 100;  // BufferPool::Shard::mu
inline constexpr int kDisk = 200;             // DiskManager::mu_
inline constexpr int kDiskSubmission = 250;   // DiskManager::submit_mu_
inline constexpr int kExecMergedCpu = 300;    // ExecContext::merged_cpu_mu_
inline constexpr int kEstimationTracker = 310;  // EstimationErrorTracker::mu_
inline constexpr int kDriftMonitor = 315;     // DriftMonitor::mu_
inline constexpr int kMetricsRegistry = 320;  // MetricsRegistry::mu_
inline constexpr int kTraceCollector = 330;   // TraceCollector::mu_
inline constexpr int kEventJournal = 340;     // EventJournal::drain_mu_
inline constexpr int kScanReadahead = 400;    // parallel_scan ReadaheadState::mu
}  // namespace lock_rank

#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
namespace lock_rank_internal {

/// Per-thread stack of held ranked latches. Fixed depth: the deepest legal
/// chain today is shard -> disk (2); 16 leaves generous headroom for the
/// async-I/O roadmap without heap allocation on the lock path.
struct HeldStack {
  static constexpr int kMaxDepth = 16;
  const void* mu[kMaxDepth];
  int rank[kMaxDepth];
  int depth = 0;
};

inline HeldStack& Held() {
  static thread_local HeldStack stack;
  return stack;
}

/// Aborts if acquiring rank `r` would violate the strict ordering. Called
/// BEFORE blocking on the underlying mutex so an inversion aborts with a
/// diagnostic deterministically instead of deadlocking intermittently.
inline void CheckRank(const void* mu, int r) {
  if (r < 0) return;  // unranked mutexes opt out
  HeldStack& s = Held();
  for (int i = 0; i < s.depth; ++i) {
    if (s.rank[i] >= r) {
      std::fprintf(stderr,
                   "dpcf lock-rank violation: acquiring mutex %p of rank %d "
                   "while holding mutex %p of rank %d (acquisition order "
                   "must be strictly increasing; see the rank table in "
                   "common/thread_annotations.h)\n",
                   mu, r, s.mu[i], s.rank[i]);
      std::abort();
    }
  }
}

inline void PushRank(const void* mu, int r) {
  HeldStack& s = Held();
  if (s.depth < HeldStack::kMaxDepth) {
    s.mu[s.depth] = mu;
    s.rank[s.depth] = r;
    ++s.depth;
  }
  // Overflow (never seen in practice) silently stops tracking the excess;
  // the checker stays sound for the latches it did record.
}

inline void PopRank(const void* mu) {
  HeldStack& s = Held();
  // Scoped MutexLock makes this LIFO, but condition_variable_any unlocks
  // through the BasicLockable interface mid-scope, so erase by identity.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.mu[i] == mu) {
      for (int j = i; j + 1 < s.depth; ++j) {
        s.mu[j] = s.mu[j + 1];
        s.rank[j] = s.rank[j + 1];
      }
      --s.depth;
      return;
    }
  }
}

}  // namespace lock_rank_internal
#endif  // DPCF_LOCK_RANK

/// std::mutex wrapped as a TSA capability. Same cost, same semantics; the
/// additions are that clang tracks who holds it at compile time and, under
/// -DDPCF_LOCK_RANK=ON, the optional rank is enforced at runtime on every
/// acquisition (strictly-increasing order, abort on inversion).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Ranked mutex: see dpcf::lock_rank for the table. Rank checking is
  /// compiled in only under DPCF_LOCK_RANK; otherwise the rank is inert.
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
    lock_rank_internal::CheckRank(this, rank_);
#endif
    mu_.lock();
#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
    lock_rank_internal::PushRank(this, rank_);
#endif
  }
  void unlock() RELEASE() {
#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
    lock_rank_internal::PopRank(this);
#endif
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK
    // A try_lock that would invert the order is the same discipline bug
    // even though it cannot deadlock by itself; check before trying.
    lock_rank_internal::CheckRank(this, rank_);
    if (!mu_.try_lock()) return false;
    lock_rank_internal::PushRank(this, rank_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  int rank() const { return rank_; }

 private:
  // The single wrapped instance every other latch builds on. The rank is
  // stored unconditionally (4 bytes) so the layout does not depend on the
  // DPCF_LOCK_RANK flag.
  std::mutex mu_;  // NOLINT(dpcf-mutex-annotation)
  int rank_ = lock_rank::kUnranked;
};

/// RAII lock over dpcf::Mutex (std::lock_guard is not annotated, so the
/// analysis cannot see through it). Not movable: a MutexLock pins one
/// critical section to one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->unlock(); }

 private:
  Mutex* const mu_;
};

}  // namespace dpcf
