// Clang Thread Safety Analysis (TSA) vocabulary for the DPCF codebase.
//
// The morsel-parallel scan path (PR 1) established two concurrency
// contracts that used to live only in comments:
//   1. lock order: BufferPool::mu_ is acquired before DiskManager::mu_
//      (the pool's miss path reads from disk while holding its latch);
//   2. every latch-protected member names its latch.
// This header turns those comments into compiler-checked attributes: under
// clang, `-Wthread-safety -Werror=thread-safety` makes an unlatched access
// to a GUARDED_BY member or a pool/disk lock-order inversion a compile
// error (order checking needs `-Wthread-safety-beta`). Under other
// compilers the macros expand to nothing and the wrappers are plain
// std::mutex / std::lock_guard, so gcc builds are unaffected.
//
// Use dpcf::Mutex + dpcf::MutexLock instead of std::mutex for any new
// latch; the lint rule dpcf-mutex-annotation rejects raw std::mutex
// members in src/ (tools/lint/rules/mutex_annotation.py).

#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define DPCF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DPCF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares that a type is a lockable capability ("mutex" is the
// capability kind shown in diagnostics).
#define CAPABILITY(x) DPCF_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY DPCF_THREAD_ANNOTATION(scoped_lockable)

// Data members: readable/writable only while holding the named mutex.
#define GUARDED_BY(x) DPCF_THREAD_ANNOTATION(guarded_by(x))

// Pointer members: the *pointee* is protected by the named mutex.
#define PT_GUARDED_BY(x) DPCF_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must already hold (or must NOT hold) the mutex.
#define REQUIRES(...) \
  DPCF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DPCF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DPCF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions: acquire/release the mutex as a side effect (lock wrappers).
#define ACQUIRE(...) DPCF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DPCF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DPCF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DPCF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DPCF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Lock-ordering declarations: acquiring this mutex while holding one that
// is declared ACQUIRED_BEFORE it (or vice versa) is a compile error under
// -Wthread-safety-beta. This is how the pool -> disk order is encoded.
#define ACQUIRED_BEFORE(...) \
  DPCF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DPCF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Returns the capability itself from a getter (lets annotations on other
// classes name this object's mutex).
#define RETURN_CAPABILITY(x) DPCF_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (e.g. lock/unlock
// split across functions). Prefer restructuring over using this.
#define NO_THREAD_SAFETY_ANALYSIS \
  DPCF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dpcf {

/// std::mutex wrapped as a TSA capability. Same cost, same semantics; the
/// only addition is that clang now tracks who holds it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // The single wrapped instance every other latch builds on.
  std::mutex mu_;  // NOLINT(dpcf-mutex-annotation)
};

/// RAII lock over dpcf::Mutex (std::lock_guard is not annotated, so the
/// analysis cannot see through it). Not movable: a MutexLock pins one
/// critical section to one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->unlock(); }

 private:
  Mutex* const mu_;
};

}  // namespace dpcf
