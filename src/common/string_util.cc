#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dpcf {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  // Trim trailing zeros but keep at least one decimal digit.
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatCount(int64_t n) {
  std::string raw = std::to_string(n < 0 ? -n : n);
  std::string out;
  int c = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (c && c % 3 == 0) out += ',';
    out += *it;
    ++c;
  }
  if (n < 0) out += '-';
  return {out.rbegin(), out.rend()};
}

}  // namespace dpcf
