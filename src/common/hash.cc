#include "common/hash.h"

namespace dpcf {

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  // FNV-1a 64-bit, seeded by perturbing the offset basis.
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche so short strings still fill the high bits.
  return Mix64(h);
}

}  // namespace dpcf
