// Deterministic random-number utilities.
//
// All stochastic behaviour in the library (Bernoulli page sampling, workload
// generation, permutations, Zipf skew) flows through Xoshiro256** seeded
// explicitly, so every test and benchmark is reproducible bit-for-bit.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dpcf {

/// Xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

/// Fisher-Yates shuffle of v in place.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = rng->NextBounded(i);
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

/// Returns the identity permutation [0, n).
std::vector<int64_t> IdentityPermutation(int64_t n);

/// Returns a uniformly random permutation of [0, n).
std::vector<int64_t> RandomPermutation(int64_t n, Rng* rng);

/// Returns a permutation of [0, n) shuffled only within consecutive windows
/// of `window` elements. window=1 is the identity; window>=n is a full
/// shuffle. This is how the synthetic generator produces columns with
/// intermediate correlation to the clustering key (paper Section V-B.1).
std::vector<int64_t> WindowShuffledPermutation(int64_t n, int64_t window,
                                               Rng* rng);

/// Zipf(N, s) sampler over {1..n} using rejection-inversion (Hörmann), O(1)
/// per draw after O(1) setup. s=0 degenerates to uniform.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t Sample(Rng* rng);

  int64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  int64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace dpcf
