// 64-bit hashing primitives used by the page-count monitors.
//
// Monitors hash PIDs (LinearCounter) and join-key values (BitvectorFilter) on
// the storage-engine hot path, so the hash must be a handful of arithmetic
// instructions. We use the SplitMix64 finalizer (a strong 64-bit mixer) with
// an optional seed so that independent monitors are pairwise independent.

#pragma once

#include <cstdint>
#include <string_view>

namespace dpcf {

/// Mixes a 64-bit value into a well-distributed 64-bit hash (SplitMix64
/// finalizer). Bijective, so distinct inputs never collide before reduction.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded variant: different seeds give (empirically) independent hash
/// functions over the same key universe.
inline uint64_t Mix64Seeded(uint64_t x, uint64_t seed) {
  return Mix64(x ^ (seed * 0xff51afd7ed558ccdULL));
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// FNV-1a over bytes; used for hashing string values and canonical
/// expression keys (not on the per-row hot path for fixed-width columns).
uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0);

}  // namespace dpcf
