// Small string/formatting helpers shared by the library, the "statistics
// xml"-style reports and the benchmark harnesses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpcf {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Escapes a string for embedding in the XML-ish run reports.
std::string XmlEscape(const std::string& s);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Used by the observability exports
/// (trace_event / metrics JSON).
std::string JsonEscape(const std::string& s);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string FormatDouble(double v, int digits = 4);

/// Formats n with thousands separators ("1,234,567") for report output.
std::string FormatCount(int64_t n);

}  // namespace dpcf
