#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

#include "common/hash.h"

namespace dpcf {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding, as recommended by the xoshiro authors.
  uint64_t sm = seed;
  for (auto& s : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    s = Mix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

std::vector<int64_t> IdentityPermutation(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

std::vector<int64_t> RandomPermutation(int64_t n, Rng* rng) {
  auto v = IdentityPermutation(n);
  Shuffle(&v, rng);
  return v;
}

std::vector<int64_t> WindowShuffledPermutation(int64_t n, int64_t window,
                                               Rng* rng) {
  auto v = IdentityPermutation(n);
  if (window <= 1) return v;
  for (int64_t start = 0; start < n; start += window) {
    int64_t end = std::min(n, start + window);
    for (int64_t i = end - start; i > 1; --i) {
      int64_t j = static_cast<int64_t>(rng->NextBounded(i));
      std::swap(v[static_cast<size_t>(start + i - 1)],
                v[static_cast<size_t>(start + j)]);
    }
  }
  return v;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfDistribution::H(double x) const {
  // Integral of x^-s: (x^(1-s) - 1) / (1 - s); log(x) when s == 1.
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

int64_t ZipfDistribution::Sample(Rng* rng) {
  if (s_ <= 0.0) return rng->NextInt(1, n_);
  // Hörmann's rejection-inversion.
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (k - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

}  // namespace dpcf
