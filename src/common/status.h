// Status / Result error-handling primitives for the DPCF library.
//
// The library does not throw exceptions across its API boundary; fallible
// operations return a Status (or a Result<T> when they also produce a value),
// following the RocksDB / Arrow idiom.

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dpcf {

/// Coarse error taxonomy. Keep this small: callers branch on "ok or not"
/// almost everywhere; the code exists for tests and diagnostics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kResourceExhausted,
  kNotSupported,
  kInternal,
  kCancelled,
};

/// Returns a short human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// An OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
/// Prints "<file>:<line>: unexpected failure: <status>" and aborts.
[[noreturn]] void CheckOkFailed(const char* file, int line,
                                const Status& status);
}  // namespace internal

// Propagate a non-OK Status to the caller.
#define DPCF_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::dpcf::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

// Abort on a non-OK Status or Result. For callers with no error channel
// (bench/example main()s, test fixtures returning values): the
// dpcf-discarded-status lint rejects silently dropping the Status, and a
// setup failure would otherwise surface as nonsense measurements.
#define DPCF_CHECK_OK(expr)                                         \
  do {                                                              \
    const auto& _res = (expr);                                      \
    if (!_res.ok()) {                                               \
      ::dpcf::internal::CheckOkFailed(__FILE__, __LINE__,           \
                                      ::dpcf::internal::StatusOf(_res)); \
    }                                                               \
  } while (0)

// Evaluate a Result-returning expression; assign its value to `lhs` or
// propagate the error.
#define DPCF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define DPCF_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DPCF_ASSIGN_OR_RETURN_NAME(a, b) DPCF_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DPCF_ASSIGN_OR_RETURN(lhs, expr) \
  DPCF_ASSIGN_OR_RETURN_IMPL(            \
      DPCF_ASSIGN_OR_RETURN_NAME(_dpcf_result_, __LINE__), lhs, expr)

}  // namespace dpcf
