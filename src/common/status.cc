#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dpcf {

namespace internal {
void CheckOkFailed(const char* file, int line, const Status& status) {
  std::fprintf(stderr, "%s:%d: unexpected failure: %s\n", file, line,
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dpcf
