// TPC-H-like fact tables (Table I's "TPC-H (10GB), skew factor Z=1").
//
// Scaled-down lineitem/orders pair: lineitem is clustered by orderkey (load
// order), its three date columns follow order time with bounded noise —
// exactly the Example-1 correlation — and supplier/part keys are
// Zipf-skewed (Z = 1) uniform-random placements. orders is clustered by
// orderkey and carries the matching orderdate, for join experiments.

#pragma once

#include "common/status.h"
#include "table/catalog.h"

namespace dpcf {

struct TpchLikeOptions {
  int64_t lineitem_rows = 240'000;
  /// lineitems per order (average; actual 1..2*avg-1 uniform).
  int64_t lines_per_order = 4;
  uint64_t seed = 1992;
  bool build_indexes = true;
};

/// lineitem column positions.
enum TpchLineitemCol : int {
  kLOrderKey = 0,
  kLPartKey = 1,
  kLSuppKey = 2,
  kLShipDate = 3,
  kLCommitDate = 4,
  kLReceiptDate = 5,
  kLComment = 6,
};

struct TpchLikeTables {
  Table* lineitem = nullptr;
  Table* orders = nullptr;
};

/// Builds "lineitem" and "orders" plus indexes on the three lineitem date
/// columns ("lineitem_shipdate" etc.), the skew keys, and the clustered
/// keys.
Result<TpchLikeTables> BuildTpchLike(Database* db,
                                     const TpchLikeOptions& options);

}  // namespace dpcf
