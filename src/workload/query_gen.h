// Query generators for the paper's workloads.

#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "optimizer/plan.h"
#include "table/catalog.h"

namespace dpcf {

/// A generated query plus its provenance (for figure axes).
struct GeneratedSingleQuery {
  SingleTableQuery query;
  int column = -1;            // predicate column
  double target_selectivity = 0;
  std::string description;
};

struct GeneratedJoinQuery {
  JoinQuery query;
  int column = -1;            // the Ci join column
  double target_selectivity = 0;  // of the outer range predicate
  std::string description;
};

/// Fig 6 workload: `per_column` queries for each of C2..C5 on the synthetic
/// table, "Ci < v" with selectivity uniform in [min_sel, max_sel]
/// (paper: 25 each, 1%–10%). Values are exact because Ci is a permutation
/// of 1..N.
std::vector<GeneratedSingleQuery> GenerateSyntheticSingleTableQueries(
    Table* t, int per_column, double min_sel, double max_sel, uint64_t seed);

/// Fig 8 workload: "T1.C1 < val AND T1.Ci = T.Ci" joins, outer selectivity
/// uniform in [min_sel, max_sel] (paper: 40 queries, below the ~7%
/// crossover).
std::vector<GeneratedJoinQuery> GenerateSyntheticJoinQueries(
    Table* t, Table* t1, int count, double min_sel, double max_sel,
    uint64_t seed);

/// Fig 9 workload: one query with `num_atoms` conjuncts "Ci < v_i AND
/// C_pad_j < v_j…", each of selectivity `per_atom_sel`. The synthetic
/// table's columns are cycled; atoms beyond the column count repeat columns
/// with different bounds.
SingleTableQuery GenerateMultiPredicateQuery(Table* t, int num_atoms,
                                             double per_atom_sel,
                                             uint64_t seed);

/// Figs 10/11 workload: equality predicates on each predicate column of a
/// real-world dataset, values sampled from the data, keeping only
/// selectivities below `max_sel` (paper: 10%).
std::vector<GeneratedSingleQuery> GenerateRealWorldQueries(
    DiskManager* disk, Table* t, const std::vector<int>& predicate_cols,
    int per_column, double max_sel, uint64_t seed);

/// Range predicates "col >= lo AND col <= hi" with selectivity targeted
/// uniformly in [min_sel, max_sel]. Used for date columns, whose equality
/// selectivity at our scaled row counts falls below the contested
/// scan-vs-seek band (at the paper's 60M-row scale even one date value
/// spans thousands of pages).
std::vector<GeneratedSingleQuery> GenerateRealWorldRangeQueries(
    DiskManager* disk, Table* t, const std::vector<int>& predicate_cols,
    int per_column, double min_sel, double max_sel, uint64_t seed);

}  // namespace dpcf
