// Synthetic database of the paper's Section V-B.1.
//
// T(C1, C2, C3, C4, C5, padding): 100-byte rows, clustered on the identity
// column C1. C2..C5 are permutations of C1's values with decreasing
// correlation to the physical order:
//   C2 = C1 (fully correlated),
//   C3 = window-shuffled with a small window,
//   C4 = window-shuffled with a large window,
//   C5 = a uniformly random permutation (uncorrelated).
// Non-clustered indexes exist on C2..C5; T1 is a copy of T used as the
// outer of join queries. Row counts are scaled down from the paper's 100M
// (the correlation spectrum, not the absolute size, drives every result).

#pragma once

#include "common/status.h"
#include "table/catalog.h"

namespace dpcf {

struct SyntheticOptions {
  int64_t num_rows = 400'000;
  /// padding CHAR width; 60 makes the row exactly 100 bytes like the paper.
  uint32_t padding_width = 60;
  uint64_t seed = 42;
  /// Shuffle windows for C3/C4; 0 = default (num_rows/64, num_rows/16).
  int64_t window_c3 = 0;
  int64_t window_c4 = 0;
  /// Build non-clustered indexes on C2..C5 (and the clustered-key index).
  bool build_indexes = true;
};

/// Column positions in the synthetic schema.
enum SyntheticCol : int {
  kC1 = 0,
  kC2 = 1,
  kC3 = 2,
  kC4 = 3,
  kC5 = 4,
  kPadding = 5,
};

/// Builds table `name` (clustered on C1, values 1..num_rows) plus its
/// indexes named "<name>_c1" .. "<name>_c5".
Result<Table*> BuildSyntheticTable(Database* db, const std::string& name,
                                   const SyntheticOptions& options);

}  // namespace dpcf
