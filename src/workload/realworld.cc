#include "workload/realworld.h"

#include <algorithm>

#include "common/random.h"

namespace dpcf {

namespace {

// Column generators expressing different physical-clustering behaviours.
// `i` is the row's position in load (= clustering) order, `n` the row count.

/// Date-like: monotone in load order with bounded local noise — the
/// Example-1 "data loaded daily" case. CR near 0.
int64_t DateCorrelated(int64_t i, int64_t n, int64_t num_days,
                       int64_t noise, Rng* rng) {
  int64_t day = i * num_days / std::max<int64_t>(1, n);
  day += rng->NextInt(-noise, noise);
  return std::clamp<int64_t>(day, 0, num_days - 1);
}

/// Chunk-loaded categorical: the table was appended one group at a time
/// (per store / per vendor), each value occupying a few contiguous chunks.
/// CR low-to-medium depending on chunks per value.
std::vector<int64_t> ChunkedColumn(int64_t n, int64_t num_values,
                                   int64_t chunks_per_value, Rng* rng) {
  std::vector<int64_t> chunk_owner;
  for (int64_t v = 0; v < num_values; ++v) {
    for (int64_t c = 0; c < chunks_per_value; ++c) chunk_owner.push_back(v);
  }
  Shuffle(&chunk_owner, rng);
  std::vector<int64_t> out(static_cast<size_t>(n));
  int64_t num_chunks = static_cast<int64_t>(chunk_owner.size());
  for (int64_t i = 0; i < n; ++i) {
    int64_t chunk = i * num_chunks / std::max<int64_t>(1, n);
    out[static_cast<size_t>(i)] = chunk_owner[static_cast<size_t>(chunk)];
  }
  return out;
}

/// Uniform random in [0, domain). CR near 1.
int64_t UniformRandom(int64_t domain, Rng* rng) {
  return rng->NextInt(0, domain - 1);
}

struct DatasetSpec {
  std::string name;
  int64_t base_rows;
  uint32_t padding;  // tunes rows/page to Table I's shape
};

}  // namespace

Result<std::vector<DatasetInfo>> BuildRealWorldDatabases(
    Database* db, const RealWorldOptions& options) {
  std::vector<DatasetInfo> out;
  Rng rng(options.seed);

  auto finish_indexes = [&](const DatasetInfo& info) -> Status {
    if (!options.build_indexes) return Status::OK();
    DPCF_RETURN_IF_ERROR(db->CreateIndex(info.name + "_id", info.name,
                                         std::vector<int>{0},
                                         /*is_clustered_key=*/true)
                             .status());
    for (int col : info.predicate_cols) {
      const std::string& cn =
          info.table->schema().column(static_cast<size_t>(col)).name;
      DPCF_RETURN_IF_ERROR(db->CreateIndex(info.name + "_" + cn, info.name,
                                           std::vector<int>{col})
                               .status());
    }
    return Status::OK();
  };

  // ---- Book Retailer: orders loaded daily; ~27 rows/page (Table I). ----
  {
    const int64_t n = static_cast<int64_t>(216'000 * options.scale);
    Schema schema({Column::Int64("order_id"), Column::Int64("order_date"),
                   Column::Int64("customer_id"), Column::Int64("book_id"),
                   Column::Int64("store_id"), Column::Char("detail", 256)});
    DPCF_ASSIGN_OR_RETURN(Table * t,
                          db->CreateTable("book_retailer", schema,
                                          TableOrganization::kClustered, 0));
    std::vector<int64_t> store = ChunkedColumn(n, 40, 6, &rng);
    ZipfDistribution book_zipf(20'000, 1.0);
    TableBuilder b(t);
    const Value pad = Value::String("order");
    for (int64_t i = 0; i < n; ++i) {
      Tuple row{Value::Int64(i + 1),
                Value::Int64(DateCorrelated(i, n, 730, 2, &rng)),
                Value::Int64(UniformRandom(50'000, &rng)),
                Value::Int64(book_zipf.Sample(&rng)),
                Value::Int64(store[static_cast<size_t>(i)]),
                pad};
      DPCF_RETURN_IF_ERROR(b.AddRow(row));
    }
    DPCF_RETURN_IF_ERROR(b.Finish());
    DatasetInfo info{"book_retailer", t, {1, 2, 3, 4}};
    DPCF_RETURN_IF_ERROR(finish_indexes(info));
    out.push_back(std::move(info));
  }

  // ---- Yellow Pages: listings loaded per category; ~39 rows/page. ----
  {
    const int64_t n = static_cast<int64_t>(100'000 * options.scale);
    Schema schema({Column::Int64("listing_id"),
                   Column::Int64("category_id"), Column::Int64("zip"),
                   Column::Int64("phone"), Column::Char("blurb", 168)});
    DPCF_ASSIGN_OR_RETURN(Table * t,
                          db->CreateTable("yellow_pages", schema,
                                          TableOrganization::kClustered, 0));
    std::vector<int64_t> category = ChunkedColumn(n, 120, 2, &rng);
    // zip codes cluster regionally but not perfectly: medium window.
    Rng zrng(options.seed + 1);
    std::vector<int64_t> zip_perm =
        WindowShuffledPermutation(n, std::max<int64_t>(2, n / 20), &zrng);
    TableBuilder b(t);
    const Value pad = Value::String("listing");
    for (int64_t i = 0; i < n; ++i) {
      Tuple row{Value::Int64(i + 1),
                Value::Int64(category[static_cast<size_t>(i)]),
                Value::Int64(zip_perm[static_cast<size_t>(i)] * 500 / n),
                Value::Int64(UniformRandom(10'000'000, &rng)),
                pad};
      DPCF_RETURN_IF_ERROR(b.AddRow(row));
    }
    DPCF_RETURN_IF_ERROR(b.Finish());
    DatasetInfo info{"yellow_pages", t, {1, 2}};
    DPCF_RETURN_IF_ERROR(finish_indexes(info));
    out.push_back(std::move(info));
  }

  // ---- Voter data: registrations over time, per precinct; ~46/page. ----
  {
    const int64_t n = static_cast<int64_t>(160'000 * options.scale);
    Schema schema({Column::Int64("voter_id"), Column::Int64("precinct"),
                   Column::Int64("reg_date"), Column::Int64("age"),
                   Column::Char("name", 136)});
    DPCF_ASSIGN_OR_RETURN(Table * t,
                          db->CreateTable("voter", schema,
                                          TableOrganization::kClustered, 0));
    std::vector<int64_t> precinct = ChunkedColumn(n, 200, 4, &rng);
    TableBuilder b(t);
    const Value pad = Value::String("voter");
    for (int64_t i = 0; i < n; ++i) {
      Tuple row{Value::Int64(i + 1),
                Value::Int64(precinct[static_cast<size_t>(i)]),
                Value::Int64(DateCorrelated(i, n, 3650, 30, &rng)),
                Value::Int64(18 + UniformRandom(70, &rng)),
                pad};
      DPCF_RETURN_IF_ERROR(b.AddRow(row));
    }
    DPCF_RETURN_IF_ERROR(b.Finish());
    DatasetInfo info{"voter", t, {1, 2, 3}};
    DPCF_RETURN_IF_ERROR(finish_indexes(info));
    out.push_back(std::move(info));
  }

  // ---- Products: wide rows (~9/page), catalog loaded per supplier. ----
  {
    const int64_t n = static_cast<int64_t>(56'000 * options.scale);
    Schema schema({Column::Int64("product_id"),
                   Column::Int64("category_id"),
                   Column::Int64("supplier_id"),
                   Column::Int64("added_date"),
                   Column::Char("description", 864)});
    DPCF_ASSIGN_OR_RETURN(Table * t,
                          db->CreateTable("products", schema,
                                          TableOrganization::kClustered, 0));
    std::vector<int64_t> supplier = ChunkedColumn(n, 60, 3, &rng);
    ZipfDistribution cat_zipf(500, 1.0);
    TableBuilder b(t);
    const Value pad = Value::String("product");
    for (int64_t i = 0; i < n; ++i) {
      Tuple row{Value::Int64(i + 1),
                Value::Int64(cat_zipf.Sample(&rng)),
                Value::Int64(supplier[static_cast<size_t>(i)]),
                Value::Int64(DateCorrelated(i, n, 1460, 10, &rng)),
                pad};
      DPCF_RETURN_IF_ERROR(b.AddRow(row));
    }
    DPCF_RETURN_IF_ERROR(b.Finish());
    DatasetInfo info{"products", t, {1, 2, 3}};
    DPCF_RETURN_IF_ERROR(finish_indexes(info));
    out.push_back(std::move(info));
  }

  return out;
}

}  // namespace dpcf
