#include "workload/synthetic.h"

#include "common/random.h"

namespace dpcf {

Result<Table*> BuildSyntheticTable(Database* db, const std::string& name,
                                   const SyntheticOptions& options) {
  const int64_t n = options.num_rows;
  Schema schema({Column::Int64("C1"), Column::Int64("C2"),
                 Column::Int64("C3"), Column::Int64("C4"),
                 Column::Int64("C5"),
                 Column::Char("padding", options.padding_width)});
  DPCF_ASSIGN_OR_RETURN(
      Table * table,
      db->CreateTable(name, schema, TableOrganization::kClustered, kC1));

  Rng rng(options.seed);
  const int64_t w3 = options.window_c3 > 0 ? options.window_c3
                                           : std::max<int64_t>(2, n / 64);
  const int64_t w4 = options.window_c4 > 0 ? options.window_c4
                                           : std::max<int64_t>(2, n / 16);
  std::vector<int64_t> c3 = WindowShuffledPermutation(n, w3, &rng);
  std::vector<int64_t> c4 = WindowShuffledPermutation(n, w4, &rng);
  std::vector<int64_t> c5 = RandomPermutation(n, &rng);

  TableBuilder builder(table);
  const Value padding = Value::String("pad");
  for (int64_t i = 0; i < n; ++i) {
    Tuple row{Value::Int64(i + 1),
              Value::Int64(i + 1),  // C2 = C1
              Value::Int64(c3[static_cast<size_t>(i)] + 1),
              Value::Int64(c4[static_cast<size_t>(i)] + 1),
              Value::Int64(c5[static_cast<size_t>(i)] + 1),
              padding};
    DPCF_RETURN_IF_ERROR(builder.AddRow(row));
  }
  DPCF_RETURN_IF_ERROR(builder.Finish());

  if (options.build_indexes) {
    DPCF_RETURN_IF_ERROR(
        db->CreateIndex(name + "_c1", name, std::vector<int>{kC1},
                        /*is_clustered_key=*/true)
            .status());
    const int cols[] = {kC2, kC3, kC4, kC5};
    const char* suffix[] = {"_c2", "_c3", "_c4", "_c5"};
    for (int i = 0; i < 4; ++i) {
      DPCF_RETURN_IF_ERROR(
          db->CreateIndex(name + suffix[i], name,
                          std::vector<int>{cols[i]})
              .status());
    }
  }
  return table;
}

}  // namespace dpcf
