#include "workload/tpch_like.h"

#include <algorithm>

#include "common/random.h"

namespace dpcf {

Result<TpchLikeTables> BuildTpchLike(Database* db,
                                     const TpchLikeOptions& options) {
  TpchLikeTables out;
  Rng rng(options.seed);
  const int64_t n = options.lineitem_rows;
  const int64_t num_days = 2557;  // ~7 years, like TPC-H's date range

  Schema li_schema({Column::Int64("orderkey"), Column::Int64("partkey"),
                    Column::Int64("suppkey"), Column::Int64("shipdate"),
                    Column::Int64("commitdate"),
                    Column::Int64("receiptdate"),
                    Column::Char("comment", 96)});
  DPCF_ASSIGN_OR_RETURN(out.lineitem,
                        db->CreateTable("lineitem", li_schema,
                                        TableOrganization::kClustered,
                                        kLOrderKey));

  Schema ord_schema({Column::Int64("o_orderkey"),
                     Column::Int64("o_orderdate"),
                     Column::Int64("o_custkey"),
                     Column::Char("o_comment", 64)});
  DPCF_ASSIGN_OR_RETURN(out.orders,
                        db->CreateTable("orders", ord_schema,
                                        TableOrganization::kClustered, 0));

  ZipfDistribution part_zipf(std::max<int64_t>(1000, n / 8), 1.0);
  ZipfDistribution supp_zipf(std::max<int64_t>(100, n / 100), 1.0);

  TableBuilder li(out.lineitem);
  TableBuilder ord(out.orders);
  const Value li_pad = Value::String("lineitem");
  const Value ord_pad = Value::String("order");

  int64_t orderkey = 0;
  int64_t rows_emitted = 0;
  while (rows_emitted < n) {
    ++orderkey;
    // Order date advances with orderkey: the classic date/load correlation.
    int64_t orderdate =
        std::clamp<int64_t>(rows_emitted * num_days / n +
                                rng.NextInt(-3, 3),
                            0, num_days - 1);
    DPCF_RETURN_IF_ERROR(ord.AddRow(Tuple{
        Value::Int64(orderkey), Value::Int64(orderdate),
        Value::Int64(rng.NextInt(1, std::max<int64_t>(1, n / 10))),
        ord_pad}));
    int64_t lines = rng.NextInt(1, 2 * options.lines_per_order - 1);
    for (int64_t l = 0; l < lines && rows_emitted < n; ++l) {
      int64_t shipdate =
          std::clamp<int64_t>(orderdate + rng.NextInt(1, 121), 0,
                              num_days - 1);
      int64_t commitdate =
          std::clamp<int64_t>(orderdate + rng.NextInt(30, 90), 0,
                              num_days - 1);
      int64_t receiptdate =
          std::clamp<int64_t>(shipdate + rng.NextInt(1, 30), 0,
                              num_days - 1);
      DPCF_RETURN_IF_ERROR(li.AddRow(Tuple{
          Value::Int64(orderkey), Value::Int64(part_zipf.Sample(&rng)),
          Value::Int64(supp_zipf.Sample(&rng)), Value::Int64(shipdate),
          Value::Int64(commitdate), Value::Int64(receiptdate), li_pad}));
      ++rows_emitted;
    }
  }
  DPCF_RETURN_IF_ERROR(li.Finish());
  DPCF_RETURN_IF_ERROR(ord.Finish());

  if (options.build_indexes) {
    DPCF_RETURN_IF_ERROR(db->CreateIndex("lineitem_orderkey", "lineitem",
                                         std::vector<int>{kLOrderKey},
                                         /*is_clustered_key=*/true)
                             .status());
    DPCF_RETURN_IF_ERROR(db->CreateIndex("orders_orderkey", "orders",
                                         std::vector<int>{0},
                                         /*is_clustered_key=*/true)
                             .status());
    struct NamedCol {
      const char* name;
      int col;
    };
    const NamedCol cols[] = {{"lineitem_shipdate", kLShipDate},
                             {"lineitem_commitdate", kLCommitDate},
                             {"lineitem_receiptdate", kLReceiptDate},
                             {"lineitem_partkey", kLPartKey},
                             {"lineitem_suppkey", kLSuppKey}};
    for (const NamedCol& nc : cols) {
      DPCF_RETURN_IF_ERROR(db->CreateIndex(nc.name, "lineitem",
                                           std::vector<int>{nc.col})
                               .status());
    }
  }
  return out;
}

}  // namespace dpcf
