#include "workload/query_gen.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "workload/synthetic.h"

namespace dpcf {

std::vector<GeneratedSingleQuery> GenerateSyntheticSingleTableQueries(
    Table* t, int per_column, double min_sel, double max_sel,
    uint64_t seed) {
  Rng rng(seed);
  const int64_t n = t->row_count();
  std::vector<GeneratedSingleQuery> out;
  const int cols[] = {kC2, kC3, kC4, kC5};
  for (int col : cols) {
    for (int q = 0; q < per_column; ++q) {
      double sel = min_sel + rng.NextDouble() * (max_sel - min_sel);
      // Ci is a permutation of 1..n, so "Ci < v" selects exactly v-1 rows.
      int64_t v = std::max<int64_t>(2, static_cast<int64_t>(sel * n));
      GeneratedSingleQuery g;
      g.query.table = t;
      g.query.pred.Add(PredicateAtom::Int64(col, CmpOp::kLt, v));
      g.query.count_star = true;
      g.query.count_col = kPadding;  // COUNT(padding): defeats covering
      g.column = col;
      g.target_selectivity = sel;
      g.description = StrFormat(
          "SELECT COUNT(padding) FROM %s WHERE %s < %lld",
          t->name().c_str(),
          t->schema().column(static_cast<size_t>(col)).name.c_str(),
          static_cast<long long>(v));
      out.push_back(std::move(g));
    }
  }
  return out;
}

std::vector<GeneratedJoinQuery> GenerateSyntheticJoinQueries(
    Table* t, Table* t1, int count, double min_sel, double max_sel,
    uint64_t seed) {
  Rng rng(seed);
  const int64_t n = t1->row_count();
  std::vector<GeneratedJoinQuery> out;
  const int cols[] = {kC2, kC3, kC4, kC5};
  for (int q = 0; q < count; ++q) {
    int col = cols[q % 4];
    double sel = min_sel + rng.NextDouble() * (max_sel - min_sel);
    int64_t v = std::max<int64_t>(2, static_cast<int64_t>(sel * n));
    GeneratedJoinQuery g;
    g.query.outer_table = t1;
    g.query.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, v));
    g.query.outer_col = col;
    g.query.inner_table = t;
    g.query.inner_col = col;
    g.query.count_star = true;
    g.query.inner_count_col = kPadding;  // COUNT(T.padding)
    g.column = col;
    g.target_selectivity = sel;
    const std::string& cn =
        t->schema().column(static_cast<size_t>(col)).name;
    g.description = StrFormat(
        "SELECT COUNT(%s.padding) FROM %s JOIN %s ON %s.%s = %s.%s "
        "WHERE %s.C1 < %lld",
        t->name().c_str(), t1->name().c_str(), t->name().c_str(),
        t1->name().c_str(), cn.c_str(), t->name().c_str(), cn.c_str(),
        t1->name().c_str(), static_cast<long long>(v));
    out.push_back(std::move(g));
  }
  return out;
}

SingleTableQuery GenerateMultiPredicateQuery(Table* t, int num_atoms,
                                             double per_atom_sel,
                                             uint64_t seed) {
  Rng rng(seed);
  const int64_t n = t->row_count();
  SingleTableQuery q;
  q.table = t;
  q.count_star = true;
  q.count_col = kPadding;
  const int cols[] = {kC2, kC3, kC4, kC5};
  for (int a = 0; a < num_atoms; ++a) {
    int col = cols[a % 4];
    int round = a / 4;
    int64_t hi = std::max<int64_t>(
        3, static_cast<int64_t>(per_atom_sel * n));
    if (round == 0) {
      q.pred.Add(PredicateAtom::Int64(col, CmpOp::kLt, hi));
    } else {
      // Second atom on the same column forms a band (still a range, so
      // index-sargable together with the first atom).
      int64_t lo = std::max<int64_t>(1, hi * 3 / 10);
      q.pred.Add(PredicateAtom::Int64(col, CmpOp::kGe, lo));
    }
    (void)rng;
  }
  return q;
}

namespace {
std::map<int64_t, int64_t> ColumnFrequencies(DiskManager* disk,
                                             const Table& t, int col) {
  std::map<int64_t, int64_t> freq;
  const HeapFile* file = t.file();
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = disk->RawPage(PageId{file->segment(), p});
    uint32_t rows = HeapFile::PageRowCount(page);
    for (uint16_t s = 0; s < rows; ++s) {
      RowView row(file->RowInPage(page, s), &t.schema());
      ++freq[row.GetInt64(static_cast<size_t>(col))];
    }
  }
  return freq;
}
}  // namespace

std::vector<GeneratedSingleQuery> GenerateRealWorldQueries(
    DiskManager* disk, Table* t, const std::vector<int>& predicate_cols,
    int per_column, double max_sel, uint64_t seed) {
  Rng rng(seed);
  const int64_t n = t->row_count();
  std::vector<GeneratedSingleQuery> out;
  for (int col : predicate_cols) {
    std::map<int64_t, int64_t> freq = ColumnFrequencies(disk, *t, col);
    // Candidate values whose equality selectivity is within bounds (and
    // not vanishingly small — the paper shows selectivities up to 10%).
    std::vector<int64_t> candidates;
    for (const auto& [v, c] : freq) {
      double sel = static_cast<double>(c) / static_cast<double>(n);
      if (sel <= max_sel && sel >= max_sel / 400) candidates.push_back(v);
    }
    if (candidates.empty()) continue;
    Shuffle(&candidates, &rng);
    const std::string& cn =
        t->schema().column(static_cast<size_t>(col)).name;
    for (int q = 0;
         q < per_column && q < static_cast<int>(candidates.size()); ++q) {
      int64_t v = candidates[static_cast<size_t>(q)];
      GeneratedSingleQuery g;
      g.query.table = t;
      g.query.pred.Add(PredicateAtom::Int64(col, CmpOp::kEq, v));
      g.query.count_star = true;
      // Reference the payload column so no index covers the query.
      g.query.count_col =
          static_cast<int>(t->schema().num_columns()) - 1;
      g.column = col;
      g.target_selectivity =
          static_cast<double>(freq[v]) / static_cast<double>(n);
      g.description =
          StrFormat("SELECT COUNT(*) FROM %s WHERE %s = %lld",
                    t->name().c_str(), cn.c_str(),
                    static_cast<long long>(v));
      out.push_back(std::move(g));
    }
  }
  return out;
}

std::vector<GeneratedSingleQuery> GenerateRealWorldRangeQueries(
    DiskManager* disk, Table* t, const std::vector<int>& predicate_cols,
    int per_column, double min_sel, double max_sel, uint64_t seed) {
  Rng rng(seed);
  const int64_t n = t->row_count();
  std::vector<GeneratedSingleQuery> out;
  for (int col : predicate_cols) {
    std::map<int64_t, int64_t> freq = ColumnFrequencies(disk, *t, col);
    std::vector<std::pair<int64_t, int64_t>> sorted(freq.begin(),
                                                    freq.end());
    if (sorted.size() < 2) continue;
    const std::string& cn =
        t->schema().column(static_cast<size_t>(col)).name;
    for (int q = 0; q < per_column; ++q) {
      double target = min_sel + rng.NextDouble() * (max_sel - min_sel);
      int64_t want = static_cast<int64_t>(target * n);
      size_t start = rng.NextBounded(sorted.size());
      int64_t got = 0;
      size_t end = start;
      while (end < sorted.size() && got < want) {
        got += sorted[end].second;
        ++end;
      }
      if (got == 0) continue;
      int64_t lo = sorted[start].first;
      int64_t hi = sorted[end - 1].first;
      GeneratedSingleQuery g;
      g.query.table = t;
      g.query.pred.Add(PredicateAtom::Int64(col, CmpOp::kGe, lo));
      g.query.pred.Add(PredicateAtom::Int64(col, CmpOp::kLe, hi));
      g.query.count_star = true;
      g.query.count_col = static_cast<int>(t->schema().num_columns()) - 1;
      g.column = col;
      g.target_selectivity = static_cast<double>(got) / n;
      g.description = StrFormat(
          "SELECT COUNT(*) FROM %s WHERE %s >= %lld AND %s <= %lld",
          t->name().c_str(), cn.c_str(), static_cast<long long>(lo),
          cn.c_str(), static_cast<long long>(hi));
      out.push_back(std::move(g));
    }
  }
  return out;
}

}  // namespace dpcf
