// Surrogates for the paper's real-world databases (Table I): Book Retailer,
// Yellow Pages, Voter data, Products.
//
// The customer data is proprietary, so we synthesize tables that reproduce
// the *property the paper measures*: predicate columns spanning the whole
// clustering-ratio spectrum (Fig 10) — date-like columns correlated with the
// load order (CR ≈ 0), chunk-loaded categorical columns (low/medium CR,
// e.g. data loaded per vendor/store), Zipf-skewed and uniform random columns
// (CR ≈ 1) — while matching each dataset's rows-per-page shape from Table I
// at a scaled-down row count.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "table/catalog.h"

namespace dpcf {

/// One generated dataset with the columns meant to carry predicates.
struct DatasetInfo {
  std::string name;
  Table* table = nullptr;
  /// Columns to generate diagnostic predicates on (all INT64, indexed).
  std::vector<int> predicate_cols;
};

struct RealWorldOptions {
  /// Row-count scale relative to the built-in per-dataset defaults (which
  /// are themselves ~1/50 of Table I).
  double scale = 1.0;
  uint64_t seed = 2008;
  bool build_indexes = true;
};

/// Builds all four "real world" datasets into `db`. Indexes are created on
/// every predicate column, named "<table>_<column>".
Result<std::vector<DatasetInfo>> BuildRealWorldDatabases(
    Database* db, const RealWorldOptions& options);

}  // namespace dpcf
