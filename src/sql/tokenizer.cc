#include "sql/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace dpcf {

namespace {
const char* kKeywords[] = {"SELECT", "FROM", "JOIN", "ON",
                           "WHERE",  "AND",  "COUNT", "AS"};

bool IsKeywordWord(const std::string& upper) {
  return std::find(std::begin(kKeywords), std::end(kKeywords), upper) !=
         std::end(kKeywords);
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (IsKeywordWord(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
        ++j;
      }
      t.type = TokenType::kInteger;
      t.text = sql.substr(i, j - i);
      try {
        t.ival = std::stoll(t.text);
      } catch (...) {
        return Status::InvalidArgument(
            StrFormat("integer literal out of range at offset %zu", i));
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      while (j < n && sql[j] != '\'') {
        s += sql[j];
        ++j;
      }
      if (j >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      t.type = TokenType::kString;
      t.text = std::move(s);
      i = j + 1;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
          t.type = TokenType::kSymbol;
          t.text = two == "!=" ? "<>" : two;
          out.push_back(t);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),.*=<>";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
      t.type = TokenType::kSymbol;
      t.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace dpcf
