// Recursive-descent parser producing an unbound AST.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/predicate.h"  // CmpOp
#include "sql/tokenizer.h"

namespace dpcf {

/// One WHERE comparison, unbound: [table.]column <op> literal.
struct SqlAtom {
  std::string table;  // optional qualifier
  std::string column;
  CmpOp op = CmpOp::kEq;
  bool is_string = false;
  int64_t ival = 0;
  std::string sval;
};

/// A column reference in the select list or join condition.
struct SqlColumnRef {
  std::string table;  // optional qualifier
  std::string column;
};

struct ParsedQuery {
  bool count = false;
  std::string count_arg;        // "*" or a column name ("" when !count)
  std::string count_arg_table;  // optional qualifier on COUNT(t.col)
  std::vector<SqlColumnRef> select_cols;  // when !count

  std::string table0;
  std::string table1;  // empty unless joined
  bool has_join = false;
  SqlColumnRef join_left;
  SqlColumnRef join_right;

  std::vector<SqlAtom> where;
};

/// Parses the supported SELECT subset; errors carry byte offsets.
Result<ParsedQuery> ParseSql(const std::string& sql);

}  // namespace dpcf
