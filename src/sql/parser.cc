#include "sql/parser.h"

#include "common/string_util.h"

namespace dpcf {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    DPCF_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DPCF_RETURN_IF_ERROR(ParseSelectList(&q));
    DPCF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DPCF_ASSIGN_OR_RETURN(q.table0, ExpectIdentifier());
    if (Cur().IsKeyword("JOIN")) {
      Advance();
      q.has_join = true;
      DPCF_ASSIGN_OR_RETURN(q.table1, ExpectIdentifier());
      DPCF_RETURN_IF_ERROR(ExpectKeyword("ON"));
      DPCF_ASSIGN_OR_RETURN(q.join_left, ParseColumnRef());
      DPCF_RETURN_IF_ERROR(ExpectSymbol("="));
      DPCF_ASSIGN_OR_RETURN(q.join_right, ParseColumnRef());
    }
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      while (true) {
        DPCF_ASSIGN_OR_RETURN(SqlAtom atom, ParseAtom());
        q.where.push_back(std::move(atom));
        if (!Cur().IsKeyword("AND")) break;
        Advance();
      }
    }
    if (Cur().type != TokenType::kEnd) {
      return Err("trailing input");
    }
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s (near \"%s\")",
                  Cur().offset, what.c_str(), Cur().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!Cur().IsKeyword(kw)) return Err(StrFormat("expected %s", kw));
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!Cur().IsSymbol(sym)) return Err(StrFormat("expected '%s'", sym));
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Cur().type != TokenType::kIdentifier) {
      return Err("expected identifier");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  Result<SqlColumnRef> ParseColumnRef() {
    SqlColumnRef ref;
    DPCF_ASSIGN_OR_RETURN(ref.column, ExpectIdentifier());
    if (Cur().IsSymbol(".")) {
      Advance();
      ref.table = std::move(ref.column);
      DPCF_ASSIGN_OR_RETURN(ref.column, ExpectIdentifier());
    }
    return ref;
  }

  Status ParseSelectList(ParsedQuery* q) {
    if (Cur().IsKeyword("COUNT")) {
      Advance();
      DPCF_RETURN_IF_ERROR(ExpectSymbol("("));
      q->count = true;
      if (Cur().IsSymbol("*")) {
        // Assign via a temporary: GCC 12's -Wrestrict false-positives on
        // basic_string::operator=(const char*) here.
        q->count_arg = std::string("*");
        Advance();
      } else {
        DPCF_ASSIGN_OR_RETURN(SqlColumnRef ref, ParseColumnRef());
        q->count_arg = ref.column;
        q->count_arg_table = ref.table;
      }
      return ExpectSymbol(")");
    }
    while (true) {
      DPCF_ASSIGN_OR_RETURN(SqlColumnRef ref, ParseColumnRef());
      q->select_cols.push_back(std::move(ref));
      if (!Cur().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Result<SqlAtom> ParseAtom() {
    SqlAtom atom;
    DPCF_ASSIGN_OR_RETURN(SqlColumnRef ref, ParseColumnRef());
    atom.table = std::move(ref.table);
    atom.column = std::move(ref.column);
    if (Cur().type != TokenType::kSymbol) return Err("expected operator");
    const std::string& sym = Cur().text;
    if (sym == "=") {
      atom.op = CmpOp::kEq;
    } else if (sym == "<>") {
      atom.op = CmpOp::kNe;
    } else if (sym == "<") {
      atom.op = CmpOp::kLt;
    } else if (sym == "<=") {
      atom.op = CmpOp::kLe;
    } else if (sym == ">") {
      atom.op = CmpOp::kGt;
    } else if (sym == ">=") {
      atom.op = CmpOp::kGe;
    } else {
      return Err("expected comparison operator");
    }
    Advance();
    if (Cur().type == TokenType::kInteger) {
      atom.is_string = false;
      atom.ival = Cur().ival;
    } else if (Cur().type == TokenType::kString) {
      atom.is_string = true;
      atom.sval = Cur().text;
    } else {
      return Err("expected literal");
    }
    Advance();
    return atom;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseSql(const std::string& sql) {
  DPCF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace dpcf
