#include "sql/binder.h"

#include "common/string_util.h"

namespace dpcf {

namespace {

struct ResolvedColumn {
  Table* table = nullptr;
  int col = -1;
};

Result<ResolvedColumn> ResolveColumn(const std::string& qualifier,
                                     const std::string& column,
                                     Table* t0, Table* t1) {
  std::vector<Table*> candidates;
  if (!qualifier.empty()) {
    if (t0 != nullptr && t0->name() == qualifier) candidates.push_back(t0);
    if (t1 != nullptr && t1->name() == qualifier) candidates.push_back(t1);
    if (candidates.empty()) {
      return Status::NotFound("table qualifier " + qualifier);
    }
  } else {
    if (t0 != nullptr) candidates.push_back(t0);
    if (t1 != nullptr) candidates.push_back(t1);
  }
  ResolvedColumn out;
  for (Table* t : candidates) {
    int c = t->schema().ColumnIndex(column);
    if (c < 0) continue;
    if (out.table != nullptr) {
      return Status::InvalidArgument(
          StrFormat("column %s is ambiguous", column.c_str()));
    }
    out.table = t;
    out.col = c;
  }
  if (out.table == nullptr) {
    return Status::NotFound("column " + column);
  }
  return out;
}

Result<PredicateAtom> BindAtom(const SqlAtom& atom,
                               const ResolvedColumn& rc) {
  const Column& col = rc.table->schema().column(static_cast<size_t>(rc.col));
  if (atom.is_string) {
    if (col.type != ValueType::kString) {
      return Status::InvalidArgument(
          StrFormat("string literal compared to INT64 column %s",
                    atom.column.c_str()));
    }
    if (atom.sval.size() > col.size) {
      return Status::InvalidArgument(
          StrFormat("literal longer than CHAR(%u) column %s", col.size,
                    atom.column.c_str()));
    }
    return PredicateAtom::String(rc.col, atom.op, atom.sval, col.size);
  }
  if (col.type != ValueType::kInt64) {
    return Status::InvalidArgument(
        StrFormat("integer literal compared to CHAR column %s",
                  atom.column.c_str()));
  }
  return PredicateAtom::Int64(rc.col, atom.op, atom.ival);
}

}  // namespace

Result<BoundQuery> BindQuery(const Database& db, const ParsedQuery& parsed) {
  Table* t0 = db.GetTable(parsed.table0);
  if (t0 == nullptr) return Status::NotFound("table " + parsed.table0);
  Table* t1 = nullptr;
  if (parsed.has_join) {
    t1 = db.GetTable(parsed.table1);
    if (t1 == nullptr) return Status::NotFound("table " + parsed.table1);
  }

  // Partition WHERE atoms by table.
  Predicate pred0, pred1;
  for (const SqlAtom& atom : parsed.where) {
    DPCF_ASSIGN_OR_RETURN(ResolvedColumn rc,
                          ResolveColumn(atom.table, atom.column, t0, t1));
    DPCF_ASSIGN_OR_RETURN(PredicateAtom bound, BindAtom(atom, rc));
    (rc.table == t0 ? pred0 : pred1).Add(std::move(bound));
  }

  // Resolve COUNT(col) to the referenced column, if any.
  ResolvedColumn count_ref;
  if (parsed.count && parsed.count_arg != "*") {
    DPCF_ASSIGN_OR_RETURN(
        count_ref,
        ResolveColumn(parsed.count_arg_table, parsed.count_arg, t0, t1));
  }

  BoundQuery out;
  if (!parsed.has_join) {
    out.is_join = false;
    out.single.table = t0;
    out.single.pred = std::move(pred0);
    out.single.count_star = parsed.count;
    out.single.count_col = count_ref.col;
    if (!parsed.count) {
      for (const SqlColumnRef& ref : parsed.select_cols) {
        DPCF_ASSIGN_OR_RETURN(ResolvedColumn rc,
                              ResolveColumn(ref.table, ref.column, t0,
                                            nullptr));
        out.single.projection.push_back(rc.col);
      }
    }
    return out;
  }

  DPCF_ASSIGN_OR_RETURN(
      ResolvedColumn left,
      ResolveColumn(parsed.join_left.table, parsed.join_left.column, t0,
                    t1));
  DPCF_ASSIGN_OR_RETURN(
      ResolvedColumn right,
      ResolveColumn(parsed.join_right.table, parsed.join_right.column, t0,
                    t1));
  if (left.table == right.table) {
    return Status::NotSupported("join condition must reference both tables");
  }
  if (!parsed.count) {
    return Status::NotSupported("join queries must be COUNT aggregates");
  }
  out.is_join = true;
  JoinQuery& jq = out.join;
  jq.outer_table = t0;
  jq.outer_pred = std::move(pred0);
  jq.inner_table = t1;
  jq.inner_pred = std::move(pred1);
  jq.outer_col = left.table == t0 ? left.col : right.col;
  jq.inner_col = left.table == t1 ? left.col : right.col;
  jq.count_star = true;
  if (count_ref.table == t0) jq.outer_count_col = count_ref.col;
  if (count_ref.table == t1) jq.inner_count_col = count_ref.col;
  return out;
}

Result<BoundQuery> BindSql(const Database& db, const std::string& sql) {
  DPCF_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  return BindQuery(db, parsed);
}

}  // namespace dpcf
