// SQL tokenizer for the query subset the engine executes:
//   SELECT COUNT(*) | COUNT(col) | col[, col…]
//   FROM t [JOIN t2 ON a.x = b.y] [WHERE conj of comparisons]

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpcf {

enum class TokenType {
  kIdentifier,  // unquoted name (case preserved)
  kKeyword,     // SELECT, FROM, JOIN, ON, WHERE, AND, COUNT (upper-cased)
  kInteger,
  kString,      // 'quoted'
  kSymbol,      // ( ) , . * = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keyword upper-cased; symbol literal; identifier raw
  int64_t ival = 0;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Splits `sql` into tokens (the terminating kEnd token included).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dpcf
