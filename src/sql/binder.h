// Binder: resolves a parsed query against the catalog into the optimizer's
// SingleTableQuery / JoinQuery structures.

#pragma once

#include "common/status.h"
#include "optimizer/plan.h"
#include "sql/parser.h"
#include "table/catalog.h"

namespace dpcf {

/// A bound query: exactly one of `single` / `join` is meaningful.
struct BoundQuery {
  bool is_join = false;
  SingleTableQuery single;
  JoinQuery join;
};

/// Resolves table and column names, partitions WHERE atoms per table (the
/// first FROM table becomes the outer/build side of a join), and converts
/// literals to typed predicate atoms.
Result<BoundQuery> BindQuery(const Database& db, const ParsedQuery& parsed);

/// Parse + bind in one step.
Result<BoundQuery> BindSql(const Database& db, const std::string& sql);

}  // namespace dpcf
