#include "optimizer/optimizer.h"

#include <algorithm>

#include "common/string_util.h"
#include "optimizer/yao.h"

namespace dpcf {

double Optimizer::EstimateDpc(const Table& table, const Predicate& expr,
                              double est_rows, std::string* source) const {
  if (hints_ != nullptr) {
    if (auto hint = hints_->Dpc(SelPredKey(table, expr))) {
      if (source != nullptr) *source = "hint";
      return *hint;
    }
  }
  // Self-tuning DPC histogram: applicable when the expression is a pure
  // range on a single column whose clustering density was learned from an
  // earlier monitored execution.
  if (dpc_histograms_ != nullptr && !expr.empty()) {
    const int col = expr.atoms()[0].col();
    if (auto range = ExtractColumnRange(expr, col);
        range.has_value() && range->atoms.size() == expr.size()) {
      if (auto est = dpc_histograms_->Estimate(table, col, range->lo,
                                               range->hi, est_rows)) {
        if (source != nullptr) *source = "dpc-histogram";
        return *est;
      }
    }
  }
  if (source != nullptr) *source = "yao";
  return YaoEstimate(table.page_count(), table.rows_per_page(),
                     static_cast<int64_t>(est_rows));
}

double Optimizer::EstimateJoinDpc(const JoinQuery& query,
                                  double semi_join_rows,
                                  std::string* source) const {
  if (hints_ != nullptr) {
    if (auto hint = hints_->Dpc(
            JoinPredKey(*query.outer_table, query.outer_col,
                        *query.inner_table, query.inner_col))) {
      if (source != nullptr) *source = "hint";
      return *hint;
    }
  }
  if (source != nullptr) *source = "yao";
  return YaoEstimate(query.inner_table->page_count(),
                     query.inner_table->rows_per_page(),
                     static_cast<int64_t>(semi_join_rows));
}

double Optimizer::ExpectedAtomEvals(const Table& table,
                                    const Predicate& pred) const {
  if (pred.empty()) return 0;
  double evals = 0;
  double reach = 1.0;  // probability evaluation reaches atom i
  for (const PredicateAtom& a : pred.atoms()) {
    evals += reach;
    reach *= card_.AtomSelectivity(table, a);
  }
  return evals;
}

Result<std::vector<AccessPathPlan>> Optimizer::EnumerateAccessPaths(
    const SingleTableQuery& query) const {
  Table* table = query.table;
  if (table == nullptr) return Status::InvalidArgument("query has no table");
  std::vector<AccessPathPlan> paths;

  const double full_rows = card_.EstimateRows(*table, query.pred);
  const double atoms_per_row = ExpectedAtomEvals(*table, query.pred);

  // Referenced columns, for covering-index eligibility.
  std::vector<int> referenced;
  for (const PredicateAtom& a : query.pred.atoms()) {
    referenced.push_back(a.col());
  }
  if (!query.count_star) {
    referenced.insert(referenced.end(), query.projection.begin(),
                      query.projection.end());
  } else if (query.count_col >= 0) {
    referenced.push_back(query.count_col);
  }

  // 1. Table scan — always available.
  {
    AccessPathPlan p;
    p.kind = AccessKind::kTableScan;
    p.table = table;
    p.full_pred = query.pred;
    p.est_rows = full_rows;
    p.est_seek_rows = static_cast<double>(table->row_count());
    p.est_dpc = 0;
    p.dpc_source = "n/a";
    p.est_cost = cost_.TableScan(*table, atoms_per_row);
    paths.push_back(std::move(p));
  }

  std::vector<IndexRange> seek_ranges;  // reused for intersections
  for (Index* index : db_->catalog().IndexesForTable(table)) {
    auto range = BuildIndexRange(query.pred, index);

    if (index->is_clustered_key()) {
      // 2. Clustered range scan when the clustering column is constrained.
      if (!range.has_value()) continue;
      auto bounds = ExtractColumnRange(query.pred, index->leading_col());
      AccessPathPlan p;
      p.kind = AccessKind::kClusteredRange;
      p.table = table;
      p.full_pred = query.pred;
      p.ranges = {*range};
      p.cluster_lo = bounds->lo;
      p.cluster_hi = bounds->hi;
      double range_rows = card_.EstimateRows(*table, range->sargable);
      p.ranges[0].est_rows = range_rows;
      double pages =
          std::min<double>(table->page_count(),
                           range_rows / std::max<uint32_t>(
                                            1, table->rows_per_page()) +
                               1);
      p.est_rows = full_rows;
      p.est_seek_rows = range_rows;
      p.est_dpc = pages;  // contiguous, fetched sequentially
      p.dpc_source = "contiguous";
      p.est_cost = cost_.ClusteredRange(*index, pages, range_rows,
                                        atoms_per_row);
      paths.push_back(std::move(p));
      continue;
    }

    // 3. Covering-index scan (all referenced columns are key columns).
    if (!referenced.empty() && index->Covers(referenced)) {
      AccessPathPlan p;
      p.kind = AccessKind::kCoveringScan;
      p.table = table;
      p.full_pred = query.pred;
      IndexRange r;
      r.index = index;
      r.lo = BtreeKey{INT64_MIN, INT64_MIN};
      r.hi = BtreeKey{INT64_MAX, INT64_MAX};
      p.ranges = {r};
      p.est_rows = full_rows;
      p.est_seek_rows = static_cast<double>(index->tree()->entry_count());
      p.est_dpc = 0;
      p.dpc_source = "n/a";
      p.est_cost = cost_.CoveringScan(*index, atoms_per_row);
      paths.push_back(std::move(p));
    }

    // 4. Index seek.
    if (!range.has_value()) continue;
    range->est_rows = card_.EstimateRows(*table, range->sargable);
    AccessPathPlan p;
    p.kind = AccessKind::kIndexSeek;
    p.table = table;
    p.full_pred = query.pred;
    p.ranges = {*range};
    p.residual = RemoveAtoms(query.pred, range->sargable);
    p.est_rows = full_rows;
    p.est_seek_rows = range->est_rows;
    p.est_dpc =
        EstimateDpc(*table, range->sargable, range->est_rows, &p.dpc_source);
    p.est_cost =
        cost_.IndexSeek(*index, range->est_rows, p.est_dpc,
                        static_cast<double>(p.residual.size()));
    seek_ranges.push_back(*range);
    paths.push_back(std::move(p));
  }

  // 5. Index intersections over pairs of seekable non-clustered indexes.
  for (size_t i = 0; i < seek_ranges.size(); ++i) {
    for (size_t j = i + 1; j < seek_ranges.size(); ++j) {
      const IndexRange& a = seek_ranges[i];
      const IndexRange& b = seek_ranges[j];
      Predicate combined = a.sargable;
      for (const PredicateAtom& atom : b.sargable.atoms()) {
        combined.Add(atom);
      }
      AccessPathPlan p;
      p.kind = AccessKind::kIndexIntersection;
      p.table = table;
      p.full_pred = query.pred;
      p.ranges = {a, b};
      p.residual = RemoveAtoms(query.pred, combined);
      double combined_rows = card_.EstimateRows(*table, combined);
      p.est_rows = full_rows;
      p.est_seek_rows = combined_rows;
      p.est_dpc =
          EstimateDpc(*table, combined, combined_rows, &p.dpc_source);
      p.est_cost = cost_.IndexIntersection(
          *a.index, a.est_rows, *b.index, b.est_rows, combined_rows,
          p.est_dpc, static_cast<double>(p.residual.size()));
      paths.push_back(std::move(p));
    }
  }
  return paths;
}

Result<AccessPathPlan> Optimizer::OptimizeSingleTable(
    const SingleTableQuery& query) const {
  DPCF_ASSIGN_OR_RETURN(std::vector<AccessPathPlan> paths,
                        EnumerateAccessPaths(query));
  auto best = std::min_element(paths.begin(), paths.end(),
                               [](const AccessPathPlan& a,
                                  const AccessPathPlan& b) {
                                 return a.est_cost < b.est_cost;
                               });
  return *best;
}

Result<std::vector<JoinPlan>> Optimizer::EnumerateJoinPlans(
    const JoinQuery& query) const {
  if (query.outer_table == nullptr || query.inner_table == nullptr) {
    return Status::InvalidArgument("join query missing a table");
  }
  SingleTableQuery outer_q{query.outer_table, query.outer_pred, false, -1,
                           {query.outer_col}};
  if (query.outer_count_col >= 0) {
    outer_q.projection.push_back(query.outer_count_col);
  }
  SingleTableQuery inner_q{query.inner_table, query.inner_pred, false, -1,
                           {query.inner_col}};
  if (query.inner_count_col >= 0) {
    inner_q.projection.push_back(query.inner_count_col);
  }
  DPCF_ASSIGN_OR_RETURN(AccessPathPlan outer_path,
                        OptimizeSingleTable(outer_q));
  DPCF_ASSIGN_OR_RETURN(AccessPathPlan inner_path,
                        OptimizeSingleTable(inner_q));

  const double outer_rows = outer_path.est_rows;
  const double inner_rows = inner_path.est_rows;
  const double join_rows = card_.EstimateJoinRows(
      *query.outer_table, outer_rows, query.outer_col, *query.inner_table,
      inner_rows, query.inner_col);

  std::vector<JoinPlan> plans;

  // Hash join: build on the (filtered) outer, probe the inner.
  {
    JoinPlan p;
    p.method = JoinMethod::kHashJoin;
    p.outer_path = outer_path;
    p.inner_path = inner_path;
    p.est_join_rows = join_rows;
    // The inner DPC is reported for diagnosis even though hash join does
    // not pay it.
    double semi_rows = std::min(join_rows,
                                static_cast<double>(
                                    query.inner_table->row_count()));
    p.est_inner_dpc = EstimateJoinDpc(query, semi_rows, &p.dpc_source);
    p.est_cost = cost_.HashJoin(outer_path.est_cost, outer_rows,
                                inner_path.est_cost, inner_rows, join_rows);
    plans.push_back(std::move(p));
  }

  // INL join: needs an index whose leading column is the inner join column.
  for (Index* index : db_->catalog().IndexesForTable(query.inner_table)) {
    if (index->leading_col() != query.inner_col) continue;
    JoinPlan p;
    p.method = JoinMethod::kIndexNestedLoops;
    p.outer_path = outer_path;
    p.inl_index = index;
    p.est_join_rows = join_rows;
    double semi_rows = std::min(join_rows,
                                static_cast<double>(
                                    query.inner_table->row_count()));
    p.est_inner_dpc = EstimateJoinDpc(query, semi_rows, &p.dpc_source);
    p.est_cost = cost_.InlJoin(outer_path.est_cost, outer_rows, *index,
                               p.est_inner_dpc, join_rows);
    plans.push_back(std::move(p));
  }

  // Merge join (sorting either side as needed).
  {
    JoinPlan p;
    p.method = JoinMethod::kMergeJoin;
    p.outer_path = outer_path;
    p.inner_path = inner_path;
    p.sort_outer = !PathEmitsSortedBy(outer_path, query.outer_col);
    p.sort_inner = !PathEmitsSortedBy(inner_path, query.inner_col);
    p.est_join_rows = join_rows;
    double semi_rows = std::min(join_rows,
                                static_cast<double>(
                                    query.inner_table->row_count()));
    p.est_inner_dpc = EstimateJoinDpc(query, semi_rows, &p.dpc_source);
    // Early termination: a streaming (unsorted) inner stops once its join
    // keys pass the outer's maximum. When the outer join column is range-
    // bounded by the predicate, only the matching key prefix of the inner
    // is consumed — cost the inner scan at that fraction.
    double inner_cost = inner_path.est_cost;
    double consumed_rows = inner_rows;
    if (!p.sort_inner && inner_path.kind == AccessKind::kTableScan) {
      if (auto bound = ExtractColumnRange(query.outer_pred,
                                          query.outer_col);
          bound.has_value() && bound->hi != INT64_MAX) {
        const Histogram* h =
            card_.stats()->Get(*query.inner_table, query.inner_col);
        if (h != nullptr && h->row_count() > 0) {
          double frac = std::clamp(
              h->EstimateRange(h->min_value(), bound->hi) /
                  static_cast<double>(h->row_count()),
              0.0, 1.0);
          inner_cost *= frac;
          consumed_rows *= frac;
        }
      }
    }
    p.est_cost = cost_.MergeJoin(outer_path.est_cost, outer_rows,
                                 inner_cost, consumed_rows, join_rows,
                                 p.sort_outer, p.sort_inner);
    plans.push_back(std::move(p));
  }
  return plans;
}

Result<JoinPlan> Optimizer::OptimizeJoin(const JoinQuery& query) const {
  DPCF_ASSIGN_OR_RETURN(std::vector<JoinPlan> plans,
                        EnumerateJoinPlans(query));
  auto best = std::min_element(
      plans.begin(), plans.end(),
      [](const JoinPlan& a, const JoinPlan& b) {
        return a.est_cost < b.est_cost;
      });
  return *best;
}

}  // namespace dpcf
