#include "optimizer/yao.h"

#include <algorithm>
#include <cmath>

namespace dpcf {

double YaoEstimate(int64_t pages, int64_t rows_per_page,
                   int64_t qualifying_rows) {
  if (pages <= 0 || rows_per_page <= 0 || qualifying_rows <= 0) return 0;
  const double n = static_cast<double>(pages) * rows_per_page;
  const double k = static_cast<double>(qualifying_rows);
  if (k >= n) return static_cast<double>(pages);
  // C(N-m, k)/C(N, k) = prod_{i=0..m-1} (N-k-i)/(N-i).
  double miss_prob = 1.0;
  for (int64_t i = 0; i < rows_per_page; ++i) {
    double denom = n - static_cast<double>(i);
    double numer = n - k - static_cast<double>(i);
    if (numer <= 0) {
      miss_prob = 0;
      break;
    }
    miss_prob *= numer / denom;
  }
  return static_cast<double>(pages) * (1.0 - miss_prob);
}

double CardenasEstimate(int64_t pages, int64_t qualifying_rows) {
  if (pages <= 0 || qualifying_rows <= 0) return 0;
  const double p = static_cast<double>(pages);
  return p * (1.0 - std::pow(1.0 - 1.0 / p,
                             static_cast<double>(qualifying_rows)));
}

int64_t PageCountLowerBound(int64_t rows_per_page, int64_t qualifying_rows) {
  if (qualifying_rows <= 0 || rows_per_page <= 0) return 0;
  return (qualifying_rows + rows_per_page - 1) / rows_per_page;
}

int64_t PageCountUpperBound(int64_t pages, int64_t qualifying_rows) {
  return std::max<int64_t>(0, std::min(pages, qualifying_rows));
}

}  // namespace dpcf
