#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace dpcf {

double CostModel::LeafPages(const Index& index, double rows) const {
  return std::ceil(rows /
                   std::max<double>(1, index.tree()->leaf_capacity()));
}

double CostModel::SeekDescent(const Index& index) const {
  return static_cast<double>(index.tree()->height()) * p_.rand_read_ms;
}

double CostModel::TableScan(const Table& table, double atoms_per_row) const {
  const double pages = static_cast<double>(table.page_count());
  const double rows = static_cast<double>(table.row_count());
  return pages * p_.seq_read_ms + rows * p_.cpu_row_ms +
         rows * atoms_per_row * p_.cpu_pred_atom_ms;
}

double CostModel::ClusteredRange(const Index& cluster_index, double pages,
                                 double rows, double atoms_per_row) const {
  return SeekDescent(cluster_index) + pages * p_.seq_read_ms +
         rows * p_.cpu_row_ms + rows * atoms_per_row * p_.cpu_pred_atom_ms;
}

double CostModel::FetchIo(double dpc, double rows,
                          uint32_t rows_per_page) const {
  const double lb = rows / std::max<uint32_t>(1, rows_per_page);
  if (dpc <= 1.5 * lb + 1.0) {
    // Co-clustered: one positioning seek, then a sequential run.
    return p_.rand_read_ms + dpc * p_.seq_read_ms;
  }
  return dpc * p_.rand_read_ms;
}

double CostModel::IndexSeek(const Index& index, double seek_rows, double dpc,
                            double residual_atoms) const {
  return SeekDescent(index) + LeafPages(index, seek_rows) * p_.seq_read_ms +
         FetchIo(dpc, seek_rows, index.table()->rows_per_page()) +
         seek_rows * (p_.cpu_row_ms + residual_atoms * p_.cpu_pred_atom_ms);
}

double CostModel::IndexIntersection(const Index& a, double a_rows,
                                    const Index& b, double b_rows,
                                    double intersection_rows, double dpc,
                                    double residual_atoms) const {
  const double seeks = SeekDescent(a) + LeafPages(a, a_rows) * p_.seq_read_ms +
                       SeekDescent(b) + LeafPages(b, b_rows) * p_.seq_read_ms;
  const double intersect_cpu = (a_rows + b_rows) * p_.cpu_probe_ms;
  return seeks + intersect_cpu + dpc * p_.rand_read_ms +
         intersection_rows *
             (p_.cpu_row_ms + residual_atoms * p_.cpu_pred_atom_ms);
}

double CostModel::CoveringScan(const Index& index,
                               double atoms_per_row) const {
  const double pages = static_cast<double>(index.page_count());
  const double rows = static_cast<double>(index.tree()->entry_count());
  return pages * p_.seq_read_ms + rows * p_.cpu_row_ms +
         rows * atoms_per_row * p_.cpu_pred_atom_ms;
}

double CostModel::HashJoin(double outer_cost, double outer_rows,
                           double inner_cost, double inner_rows,
                           double join_rows) const {
  return outer_cost + inner_cost +
         (outer_rows + inner_rows) * p_.cpu_probe_ms +
         join_rows * p_.cpu_row_ms;
}

double CostModel::MergeJoin(double outer_cost, double outer_rows,
                            double inner_cost, double inner_rows,
                            double join_rows, bool sort_outer,
                            bool sort_inner) const {
  auto sort_cost = [this](double rows) {
    return rows * std::log2(std::max(rows, 2.0)) * p_.cpu_probe_ms;
  };
  double cost = outer_cost + inner_cost + join_rows * p_.cpu_row_ms;
  if (sort_outer) cost += sort_cost(outer_rows);
  if (sort_inner) cost += sort_cost(inner_rows);
  return cost;
}

double CostModel::InlJoin(double outer_cost, double outer_rows,
                          const Index& inner_index, double dpc,
                          double match_rows) const {
  // Outer rows arrive in (near-)key order in our plans, so index descents
  // hit cached internal nodes; charge the distinct leaves touched plus one
  // descent, then the dominant term: one random fetch per distinct page.
  const double leaf_io =
      (SeekDescent(inner_index) +
       LeafPages(inner_index, std::max(outer_rows, match_rows)) *
           p_.rand_read_ms);
  return outer_cost + leaf_io +
         FetchIo(dpc, match_rows,
                 inner_index.table()->rows_per_page()) +
         (outer_rows + match_rows) * p_.cpu_row_ms;
}

}  // namespace dpcf
