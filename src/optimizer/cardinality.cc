#include "optimizer/cardinality.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpcf {

namespace {
constexpr double kDefaultAtomSelectivity = 0.1;
}

std::string SelPredKey(const Table& table, const Predicate& pred) {
  return table.name() + "|" + pred.CanonicalKey(table.schema());
}

std::string JoinPredKey(const Table& a, int col_a, const Table& b,
                        int col_b) {
  std::string lhs =
      a.name() + "." + a.schema().column(static_cast<size_t>(col_a)).name;
  std::string rhs =
      b.name() + "." + b.schema().column(static_cast<size_t>(col_b)).name;
  if (rhs < lhs) std::swap(lhs, rhs);
  return "JOIN(" + lhs + "=" + rhs + ")";
}

Status StatisticsCatalog::Build(DiskManager* disk, const Table& table,
                                int col, int num_buckets) {
  DPCF_ASSIGN_OR_RETURN(Histogram h,
                        Histogram::Build(disk, table, col, num_buckets));
  histograms_[{&table, col}] = std::move(h);
  return Status::OK();
}

Status StatisticsCatalog::BuildAll(DiskManager* disk, const Table& table,
                                   int num_buckets) {
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (table.schema().column(c).type != ValueType::kInt64) continue;
    DPCF_RETURN_IF_ERROR(
        Build(disk, table, static_cast<int>(c), num_buckets));
  }
  return Status::OK();
}

const Histogram* StatisticsCatalog::Get(const Table& table, int col) const {
  auto it = histograms_.find({&table, col});
  return it == histograms_.end() ? nullptr : &it->second;
}

double CardinalityEstimator::AtomSelectivity(
    const Table& table, const PredicateAtom& atom) const {
  const double rows = static_cast<double>(table.row_count());
  if (rows == 0) return 0;
  if (atom.is_string()) return kDefaultAtomSelectivity;
  const Histogram* h = stats_->Get(table, atom.col());
  if (h == nullptr || h->row_count() == 0) return kDefaultAtomSelectivity;
  const int64_t v = atom.int_operand();
  double est_rows = 0;
  switch (atom.op()) {
    case CmpOp::kEq:
      est_rows = h->EstimateEq(v);
      break;
    case CmpOp::kNe:
      est_rows = static_cast<double>(h->row_count()) - h->EstimateEq(v);
      break;
    case CmpOp::kLt:
      est_rows = h->EstimateRange(h->min_value(), v - 1);
      break;
    case CmpOp::kLe:
      est_rows = h->EstimateRange(h->min_value(), v);
      break;
    case CmpOp::kGt:
      est_rows = h->EstimateRange(v + 1, h->max_value());
      break;
    case CmpOp::kGe:
      est_rows = h->EstimateRange(v, h->max_value());
      break;
  }
  return std::clamp(est_rows / static_cast<double>(h->row_count()), 0.0,
                    1.0);
}

double CardinalityEstimator::EstimateRows(const Table& table,
                                          const Predicate& pred) const {
  if (hints_ != nullptr) {
    if (auto hint = hints_->Cardinality(SelPredKey(table, pred))) {
      return *hint;
    }
  }
  double sel = 1.0;
  for (const PredicateAtom& a : pred.atoms()) {
    sel *= AtomSelectivity(table, a);
  }
  return sel * static_cast<double>(table.row_count());
}

double CardinalityEstimator::EstimateJoinRows(const Table& a, double a_rows,
                                              int col_a, const Table& b,
                                              double b_rows,
                                              int col_b) const {
  if (hints_ != nullptr) {
    if (auto hint =
            hints_->Cardinality(JoinPredKey(a, col_a, b, col_b))) {
      return *hint;
    }
  }
  const Histogram* ha = stats_->Get(a, col_a);
  const Histogram* hb = stats_->Get(b, col_b);
  double ndv_a = ha != nullptr ? ha->distinct_count() : a_rows;
  double ndv_b = hb != nullptr ? hb->distinct_count() : b_rows;
  double denom = std::max({ndv_a, ndv_b, 1.0});
  return a_rows * b_rows / denom;
}

}  // namespace dpcf
