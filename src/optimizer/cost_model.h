// Optimizer cost model.
//
// Costs are in the same simulated-millisecond units the execution simulator
// charges, built from the SimCostParams device constants. The decisive term
// for the paper's experiments is `dpc × rand_read_ms` in the index-seek and
// INL-join formulas: when the analytical DPC (Yao) is wrong, the ranking of
// Table Scan vs Index Seek and Hash vs INL flips — which is exactly the
// failure execution feedback corrects.

#pragma once

#include <cstdint>

#include "index/secondary_index.h"
#include "storage/io_stats.h"
#include "table/table.h"

namespace dpcf {

class CostModel {
 public:
  explicit CostModel(SimCostParams params = SimCostParams())
      : p_(params) {}

  const SimCostParams& params() const { return p_; }

  /// Full sequential scan: every page streamed, every row processed,
  /// `atoms_per_row` predicate evaluations expected per row (short-circuit
  /// average, estimated by the caller).
  double TableScan(const Table& table, double atoms_per_row) const;

  /// Clustered range scan touching `pages` data pages / `rows` rows, plus
  /// the clustered-key descent.
  double ClusteredRange(const Index& cluster_index, double pages,
                        double rows, double atoms_per_row) const;

  /// Index seek fetching `seek_rows` rids whose rows live on `dpc`
  /// distinct pages; each fetched page is a random I/O. Residual atoms are
  /// evaluated per fetched row.
  double IndexSeek(const Index& index, double seek_rows, double dpc,
                   double residual_atoms) const;

  /// Two index seeks + rid intersection + fetch of the intersection.
  double IndexIntersection(const Index& a, double a_rows, const Index& b,
                           double b_rows, double intersection_rows,
                           double dpc, double residual_atoms) const;

  /// Covering index scan: leaf pages streamed.
  double CoveringScan(const Index& index, double atoms_per_row) const;

  /// Hash join on already-costed inputs.
  double HashJoin(double outer_cost, double outer_rows, double inner_cost,
                  double inner_rows, double join_rows) const;

  /// Merge join; `sort_outer`/`sort_inner` add n·log n CPU.
  double MergeJoin(double outer_cost, double outer_rows, double inner_cost,
                   double inner_rows, double join_rows, bool sort_outer,
                   bool sort_inner) const;

  /// INL join: per outer row an index lookup on the inner; `dpc` distinct
  /// inner pages fetched randomly; `match_rows` total fetches.
  double InlJoin(double outer_cost, double outer_rows,
                 const Index& inner_index, double dpc,
                 double match_rows) const;

  /// Leaf pages an index range of `rows` entries spans.
  double LeafPages(const Index& index, double rows) const;

  /// I/O for fetching `dpc` distinct pages holding `rows` rows. When the
  /// page count sits at its lower bound (rows/m) the qualifying rows are
  /// co-clustered and the fetches stream sequentially; otherwise each page
  /// is a random access. Analytical (Yao) DPC values never hit the
  /// clustered branch — only accurate fed-back counts do, which is part of
  /// why correcting them changes plan choice.
  double FetchIo(double dpc, double rows, uint32_t rows_per_page) const;

 private:
  double SeekDescent(const Index& index) const;

  SimCostParams p_;
};

}  // namespace dpcf
