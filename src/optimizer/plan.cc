#include "optimizer/plan.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/rel_ops.h"

namespace dpcf {

const char* AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kTableScan:
      return "TableScan";
    case AccessKind::kClusteredRange:
      return "ClusteredRange";
    case AccessKind::kIndexSeek:
      return "IndexSeek";
    case AccessKind::kIndexIntersection:
      return "IndexIntersection";
    case AccessKind::kCoveringScan:
      return "CoveringScan";
  }
  return "?";
}

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kHashJoin:
      return "HashJoin";
    case JoinMethod::kMergeJoin:
      return "MergeJoin";
    case JoinMethod::kIndexNestedLoops:
      return "IndexNestedLoopsJoin";
  }
  return "?";
}

std::string AccessPathPlan::Describe() const {
  std::string s = StrFormat("%s(%s", AccessKindName(kind),
                            table->name().c_str());
  for (const IndexRange& r : ranges) {
    s += StrFormat(", %s[%s..%s]", r.index->name().c_str(),
                   r.lo.ToString().c_str(), r.hi.ToString().c_str());
  }
  s += StrFormat(") rows=%s dpc=%s(%s) cost=%s",
                 FormatDouble(est_rows, 1).c_str(),
                 FormatDouble(est_dpc, 1).c_str(), dpc_source.c_str(),
                 FormatDouble(est_cost, 2).c_str());
  return s;
}

std::string AccessPathPlan::Signature() const {
  std::string s = std::string(AccessKindName(kind)) + "(" + table->name();
  for (const IndexRange& r : ranges) s += "," + r.index->name();
  return s + ")";
}

std::string JoinPlan::Signature() const {
  std::string s = std::string(JoinMethodName(method)) + "[" +
                  outer_path.Signature();
  if (method == JoinMethod::kIndexNestedLoops) {
    s += ",via=" + inl_index->name();
  } else {
    s += "," + inner_path.Signature();
    if (sort_outer) s += ",sortO";
    if (sort_inner) s += ",sortI";
  }
  return s + "]";
}

std::string JoinPlan::Describe() const {
  std::string s = StrFormat("%s[outer=%s", JoinMethodName(method),
                            outer_path.Describe().c_str());
  if (method == JoinMethod::kIndexNestedLoops) {
    s += StrFormat(", inner via %s", inl_index->name().c_str());
  } else {
    s += StrFormat(", inner=%s", inner_path.Describe().c_str());
  }
  s += StrFormat("] joinRows=%s innerDpc=%s(%s) cost=%s",
                 FormatDouble(est_join_rows, 1).c_str(),
                 FormatDouble(est_inner_dpc, 1).c_str(), dpc_source.c_str(),
                 FormatDouble(est_cost, 2).c_str());
  return s;
}

std::optional<ColumnRange> ExtractColumnRange(const Predicate& pred,
                                              int col) {
  ColumnRange range;
  bool any = false;
  for (const PredicateAtom& a : pred.atoms()) {
    if (a.col() != col || a.is_string()) continue;
    int64_t v = a.int_operand();
    switch (a.op()) {
      case CmpOp::kEq:
        range.lo = std::max(range.lo, v);
        range.hi = std::min(range.hi, v);
        break;
      case CmpOp::kLt:
        if (v == INT64_MIN) return std::nullopt;
        range.hi = std::min(range.hi, v - 1);
        break;
      case CmpOp::kLe:
        range.hi = std::min(range.hi, v);
        break;
      case CmpOp::kGt:
        if (v == INT64_MAX) return std::nullopt;
        range.lo = std::max(range.lo, v + 1);
        break;
      case CmpOp::kGe:
        range.lo = std::max(range.lo, v);
        break;
      case CmpOp::kNe:
        continue;  // not sargable as a range
    }
    range.atoms.Add(a);
    any = true;
  }
  if (!any) return std::nullopt;
  return range;
}

std::optional<IndexRange> BuildIndexRange(const Predicate& pred,
                                          Index* index) {
  const std::vector<int>& cols = index->key_cols();
  auto leading = ExtractColumnRange(pred, cols[0]);
  if (!leading.has_value()) return std::nullopt;
  IndexRange range;
  range.index = index;
  range.sargable = leading->atoms;
  if (cols.size() > 1 && leading->lo == leading->hi) {
    // Equality on the leading column: the second key column can narrow the
    // composite range further.
    if (auto second = ExtractColumnRange(pred, cols[1])) {
      range.lo = BtreeKey{leading->lo, second->lo};
      range.hi = BtreeKey{leading->hi, second->hi};
      for (const PredicateAtom& a : second->atoms.atoms()) {
        range.sargable.Add(a);
      }
      return range;
    }
  }
  range.lo = BtreeKey::Min(leading->lo);
  range.hi = BtreeKey::Max(leading->hi);
  return range;
}

Predicate RemoveAtoms(const Predicate& pred, const Predicate& used) {
  Predicate out;
  for (const PredicateAtom& a : pred.atoms()) {
    bool is_used = std::any_of(
        used.atoms().begin(), used.atoms().end(),
        [&a](const PredicateAtom& u) { return u.SameAs(a); });
    if (!is_used) out.Add(a);
  }
  return out;
}

bool PathEmitsSortedBy(const AccessPathPlan& path, int col) {
  if (path.table->organization() != TableOrganization::kClustered ||
      path.table->cluster_key_col() != col) {
    return false;
  }
  return path.kind == AccessKind::kTableScan ||
         path.kind == AccessKind::kClusteredRange;
}

namespace {

std::unique_ptr<ScanMonitorBundle> MakeBundle(
    const Predicate& pushed, const Schema* schema,
    const std::vector<ScanExprRequest>& requests, double fraction,
    uint64_t seed, Status* status) {
  *status = Status::OK();
  if (requests.empty()) return nullptr;
  auto bundle =
      std::make_unique<ScanMonitorBundle>(pushed, schema, fraction, seed);
  for (const ScanExprRequest& req : requests) {
    Status st = bundle->AddRequest(req);
    if (!st.ok()) {
      *status = st;
      return nullptr;
    }
  }
  return bundle;
}

}  // namespace

Result<OperatorPtr> BuildAccessPathOp(
    const AccessPathPlan& path, const std::vector<int>& projection,
    const std::vector<ScanExprRequest>& scan_requests,
    const std::vector<FetchMonitorRequest>& fetch_requests,
    double sample_fraction, uint64_t seed,
    const ParallelScanOptions& parallel) {
  Status st;
  switch (path.kind) {
    case AccessKind::kTableScan: {
      auto bundle = MakeBundle(path.full_pred, &path.table->schema(),
                               scan_requests, sample_fraction, seed, &st);
      DPCF_RETURN_IF_ERROR(st);
      if (parallel.num_threads > 1) {
        return OperatorPtr(std::make_unique<ParallelTableScanOp>(path.table, path.full_pred,
                                                   projection,
                                                   std::move(bundle),
                                                   parallel));
      }
      return OperatorPtr(std::make_unique<TableScanOp>(
          path.table, path.full_pred, projection, std::move(bundle),
          parallel.vectorized));
    }
    case AccessKind::kClusteredRange: {
      auto bundle = MakeBundle(path.full_pred, &path.table->schema(),
                               scan_requests, sample_fraction, seed, &st);
      DPCF_RETURN_IF_ERROR(st);
      return OperatorPtr(std::make_unique<ClusteredRangeScanOp>(
          path.table, path.ranges[0].index, path.cluster_lo, path.cluster_hi,
          path.full_pred, projection, std::move(bundle),
          parallel.vectorized));
    }
    case AccessKind::kIndexSeek: {
      const IndexRange& r = path.ranges[0];
      auto source =
          std::make_unique<IndexSeekSource>(r.index, r.lo, r.hi);
      return OperatorPtr(std::make_unique<FetchOp>(path.table, std::move(source),
                                     path.residual, projection,
                                     fetch_requests));
    }
    case AccessKind::kIndexIntersection: {
      std::vector<std::unique_ptr<IndexSeekSource>> seeks;
      for (const IndexRange& r : path.ranges) {
        seeks.push_back(
            std::make_unique<IndexSeekSource>(r.index, r.lo, r.hi));
      }
      auto source =
          std::make_unique<IndexIntersectionSource>(std::move(seeks));
      return OperatorPtr(std::make_unique<FetchOp>(path.table, std::move(source),
                                     path.residual, projection,
                                     fetch_requests));
    }
    case AccessKind::kCoveringScan: {
      return OperatorPtr(std::make_unique<CoveringIndexScanOp>(
          path.ranges[0].index, path.full_pred, projection));
    }
  }
  return Status::Internal("unknown access kind");
}

Result<OperatorPtr> BuildSingleTableExec(const AccessPathPlan& path,
                                         const SingleTableQuery& query,
                                         const PlanMonitorHooks& hooks) {
  std::vector<int> projection =
      query.count_star ? std::vector<int>{} : query.projection;
  DPCF_ASSIGN_OR_RETURN(
      OperatorPtr op,
      BuildAccessPathOp(path, projection, hooks.outer_scan_requests,
                        hooks.fetch_requests, hooks.scan_sample_fraction,
                        hooks.seed,
                        ParallelScanOptions{hooks.scan_threads,
                                            hooks.morsel_pages,
                                            hooks.prefetch_pages,
                                            hooks.vectorized_scan,
                                            hooks.adaptive_readahead}));
  if (query.count_star) {
    op = OperatorPtr(std::make_unique<AggregateCountOp>(std::move(op)));
  }
  return op;
}

Result<OperatorPtr> BuildJoinExec(const JoinPlan& plan,
                                  const JoinQuery& query,
                                  const PlanMonitorHooks& hooks) {
  // Children project exactly the join column (position 0) — the queries in
  // the evaluation are COUNT aggregates.
  const std::vector<int> outer_proj{query.outer_col};
  const std::vector<int> inner_proj{query.inner_col};

  // Join children stay serial (num_threads 1; see PlanMonitorHooks), but
  // the vectorized toggle still applies to their scans.
  ParallelScanOptions child_scan;
  child_scan.vectorized = hooks.vectorized_scan;

  DPCF_ASSIGN_OR_RETURN(
      OperatorPtr outer_op,
      BuildAccessPathOp(plan.outer_path, outer_proj,
                        hooks.outer_scan_requests, {},
                        hooks.scan_sample_fraction, hooks.seed,
                        child_scan));

  OperatorPtr root;
  switch (plan.method) {
    case JoinMethod::kIndexNestedLoops: {
      root = OperatorPtr(std::make_unique<IndexNestedLoopsJoinOp>(
          std::move(outer_op), 0, query.inner_table, plan.inl_index,
          query.inner_pred, std::vector<int>{}, hooks.fetch_requests));
      break;
    }
    case JoinMethod::kHashJoin: {
      DPCF_ASSIGN_OR_RETURN(
          OperatorPtr inner_op,
          BuildAccessPathOp(plan.inner_path, inner_proj,
                            hooks.inner_scan_requests, {},
                            hooks.inner_scan_sample_fraction,
                            hooks.seed + 1, child_scan));
      root = OperatorPtr(std::make_unique<HashJoinOp>(std::move(outer_op), 0,
                                        std::move(inner_op), 0,
                                        hooks.bitvector));
      break;
    }
    case JoinMethod::kMergeJoin: {
      DPCF_ASSIGN_OR_RETURN(
          OperatorPtr inner_op,
          BuildAccessPathOp(plan.inner_path, inner_proj,
                            hooks.inner_scan_requests, {},
                            hooks.inner_scan_sample_fraction,
                            hooks.seed + 1, child_scan));
      if (plan.sort_inner) {
        inner_op = OperatorPtr(std::make_unique<SortOp>(std::move(inner_op), 0));
      }
      if (plan.sort_outer) {
        outer_op = OperatorPtr(std::make_unique<SortOp>(std::move(outer_op), 0));
      }
      MergeBitvectorMode mode = MergeBitvectorMode::kNone;
      if (hooks.bitvector.has_value()) {
        // Prebuilt when the outer blocks (Sort); partial when both stream
        // in key order. A sorted *inner* drains its scan before the outer
        // produces bits, so bitvector monitoring is unavailable there.
        if (plan.sort_outer) {
          mode = MergeBitvectorMode::kPrebuilt;
        } else if (!plan.sort_inner) {
          mode = MergeBitvectorMode::kPartial;
        }
      }
      root = OperatorPtr(std::make_unique<MergeJoinOp>(
          std::move(outer_op), 0, std::move(inner_op), 0, mode,
          mode == MergeBitvectorMode::kNone
              ? std::nullopt
              : hooks.bitvector));
      break;
    }
  }
  if (query.count_star) {
    root = OperatorPtr(std::make_unique<AggregateCountOp>(std::move(root)));
  }
  return root;
}

}  // namespace dpcf
