// Plan descriptors and physical-plan construction.
//
// The optimizer produces AccessPathPlan / JoinPlan descriptors (with their
// cost and DPC estimates attached, so diagnosis tools can show *why* a plan
// was chosen); BuildSingleTableExec / BuildJoinExec lower a descriptor to an
// operator tree, optionally instrumented with the page-count monitors the
// MonitorManager requests.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dpsample.h"
#include "exec/join_ops.h"
#include "exec/operator.h"
#include "exec/parallel_scan.h"
#include "exec/scan_ops.h"
#include "index/secondary_index.h"

namespace dpcf {

/// SELECT COUNT(*) | COUNT(col) | cols FROM table WHERE pred.
struct SingleTableQuery {
  Table* table = nullptr;
  Predicate pred;
  bool count_star = true;
  /// For COUNT(col): the referenced column (>= 0). The count is identical
  /// to COUNT(*) (no NULLs), but the reference matters for covering-index
  /// eligibility — the paper's COUNT(padding) queries exist precisely so
  /// no index covers them.
  int count_col = -1;
  std::vector<int> projection;  // used when !count_star
};

/// SELECT COUNT(*) FROM outer JOIN inner ON outer.col = inner.col
/// WHERE outer_pred AND inner_pred. The outer side carries the driving
/// selection (the paper's T1); the inner side owns the join-column index
/// relevant for INL costing.
struct JoinQuery {
  Table* outer_table = nullptr;
  Predicate outer_pred;
  int outer_col = -1;
  Table* inner_table = nullptr;
  Predicate inner_pred;
  int inner_col = -1;
  bool count_star = true;
  /// Column of the inner/outer table referenced by COUNT(col), or -1.
  int inner_count_col = -1;
  int outer_count_col = -1;
};

enum class AccessKind {
  kTableScan,
  kClusteredRange,
  kIndexSeek,
  kIndexIntersection,
  kCoveringScan,
};

const char* AccessKindName(AccessKind kind);

/// One usable index range derived from the sargable atoms of a predicate.
struct IndexRange {
  Index* index = nullptr;
  BtreeKey lo;
  BtreeKey hi;
  /// The atoms the range covers (in index-column order); becomes the
  /// monitored "seek expression".
  Predicate sargable;
  double est_rows = 0;  // rows satisfying `sargable`
};

/// A costed way to access one table.
struct AccessPathPlan {
  AccessKind kind = AccessKind::kTableScan;
  Table* table = nullptr;
  Predicate full_pred;
  std::vector<IndexRange> ranges;  // 1 (seek/covering/clustered), 2 (∩)
  Predicate residual;              // full_pred minus the sargable atoms
  int64_t cluster_lo = 0;          // kClusteredRange bounds on the key col
  int64_t cluster_hi = 0;

  double est_rows = 0;       // rows satisfying full_pred
  double est_seek_rows = 0;  // rows the fetch stream will carry
  double est_dpc = 0;        // distinct pages the plan fetches randomly
  double est_cost = 0;
  std::string dpc_source;  // "yao", "hint", "n/a"

  std::string Describe() const;

  /// Structural identity (kind + table + indexes), independent of the
  /// estimates — what "the plan changed" means.
  std::string Signature() const;
};

enum class JoinMethod { kHashJoin, kMergeJoin, kIndexNestedLoops };

const char* JoinMethodName(JoinMethod method);

/// A costed join strategy (direction is fixed by the query).
struct JoinPlan {
  JoinMethod method = JoinMethod::kHashJoin;
  AccessPathPlan outer_path;  // build side (hash) / driving side (INL)
  AccessPathPlan inner_path;  // probe side (hash/merge); ignored for INL
  Index* inl_index = nullptr;
  bool sort_outer = false;
  bool sort_inner = false;

  double est_join_rows = 0;
  double est_inner_dpc = 0;  // DPC(inner, join-pred) used for INL costing
  double est_cost = 0;
  std::string dpc_source;

  std::string Describe() const;
  std::string Signature() const;
};

/// Extracts the sargable bounds on `col` from a conjunction. Returns the
/// atoms consumed and tightest [lo, hi]; nullopt if no atom constrains col.
struct ColumnRange {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  Predicate atoms;
};
std::optional<ColumnRange> ExtractColumnRange(const Predicate& pred, int col);

/// Builds the usable range for an index from a predicate (leading column
/// must be constrained; a second key column extends the range only when the
/// leading constraint is an equality point).
std::optional<IndexRange> BuildIndexRange(const Predicate& pred,
                                          Index* index);

/// Atoms of `pred` not contained in `used` (by SameAs), preserving order.
Predicate RemoveAtoms(const Predicate& pred, const Predicate& used);

/// Monitor instrumentation passed to the plan builders. Empty hooks build
/// an unmonitored plan.
struct PlanMonitorHooks {
  double scan_sample_fraction = 0.01;
  /// Fraction for the inner/probe side's scan (small inner tables may
  /// need a higher fraction than the outer).
  double inner_scan_sample_fraction = 0.01;
  uint64_t seed = 0x5eed;
  /// Requests attached to the (single or outer) table's scan.
  std::vector<ScanExprRequest> outer_scan_requests;
  /// Requests attached to the inner/probe table's scan.
  std::vector<ScanExprRequest> inner_scan_requests;
  /// Linear-counting monitors on the fetch stream (index plans, INL join).
  std::vector<FetchMonitorRequest> fetch_requests;
  /// Bitvector the join should build and register (hash/merge).
  std::optional<BitvectorSpec> bitvector;
  /// Worker threads for full table scans (morsel-parallel when > 1).
  /// Applies to the single-table kTableScan path only: join children stay
  /// serial because a partial merge-join bitvector is built concurrently
  /// with the probe scan that observes it.
  int scan_threads = 1;
  /// Pages per morsel for the parallel scan dispatch.
  uint32_t morsel_pages = 32;
  /// Readahead window for the parallel scan (see
  /// ParallelScanOptions::prefetch_pages). 0 disables readahead.
  uint32_t prefetch_pages = 0;
  /// Adaptive readahead window (see
  /// ParallelScanOptions::adaptive_readahead).
  bool adaptive_readahead = true;
  /// Vectorized predicate kernels for kTableScan lowering (serial and
  /// parallel); off = the row-at-a-time oracle path.
  bool vectorized_scan = true;
};

/// Lowers an access-path descriptor to an operator tree over `table`.
/// `projection` lists emitted columns; scan monitors come from `requests`.
/// `parallel.num_threads > 1` lowers kTableScan to a morsel-parallel scan;
/// all other access kinds ignore it.
Result<OperatorPtr> BuildAccessPathOp(
    const AccessPathPlan& path, const std::vector<int>& projection,
    const std::vector<ScanExprRequest>& scan_requests,
    const std::vector<FetchMonitorRequest>& fetch_requests,
    double sample_fraction, uint64_t seed,
    const ParallelScanOptions& parallel = {});

/// Full single-table executable (adds COUNT aggregation when requested).
Result<OperatorPtr> BuildSingleTableExec(const AccessPathPlan& path,
                                         const SingleTableQuery& query,
                                         const PlanMonitorHooks& hooks);

/// Full join executable (adds COUNT aggregation when requested).
Result<OperatorPtr> BuildJoinExec(const JoinPlan& plan,
                                  const JoinQuery& query,
                                  const PlanMonitorHooks& hooks);

/// True if `path` emits rows physically ordered by `col` (needed to elide
/// sorts under a Merge Join).
bool PathEmitsSortedBy(const AccessPathPlan& path, int col);

}  // namespace dpcf
