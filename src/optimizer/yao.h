// Analytical distinct-page-count estimation (Yao / Mackert–Lohman style).
//
// This is "today's query optimizer" that the paper diagnoses: given a table
// of P pages with m rows per page and k qualifying rows, the expected number
// of distinct pages touched is computed under the assumption that qualifying
// rows are spread *uniformly at random* across pages — i.e. the predicate
// column is independent of the physical clustering. Example 1 in the paper
// is exactly the case where this assumption is wrong by orders of magnitude.

#pragma once

#include <cstdint>

namespace dpcf {

/// Yao's formula: E[pages] = P * (1 - C(N-m, k) / C(N, k)), with N = P*m.
/// Exact under the random-spread assumption; O(m) evaluation.
double YaoEstimate(int64_t pages, int64_t rows_per_page,
                   int64_t qualifying_rows);

/// Cardenas' approximation P * (1 - (1 - 1/P)^k); cheaper, slightly
/// overestimates for small pages. Provided for the ablation bench.
double CardenasEstimate(int64_t pages, int64_t qualifying_rows);

/// Lower bound ceil(k/m) and upper bound min(k, P) on the true page count
/// (used by the Clustering Ratio, paper Section V-B.2).
int64_t PageCountLowerBound(int64_t rows_per_page, int64_t qualifying_rows);
int64_t PageCountUpperBound(int64_t pages, int64_t qualifying_rows);

}  // namespace dpcf
