// Statistics catalog, cardinality estimation, and the hint (injection)
// interface.
//
// OptimizerHints is the paper's "method by which the distinct page count for
// a given expression can be input to the query optimizer" (Section V-A):
// both cardinalities and DPC values can be injected per canonical expression
// key, exactly how the evaluation isolates page-count effects (accurate
// cardinalities injected; DPC first estimated analytically, then replaced by
// execution feedback).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"
#include "exec/predicate.h"
#include "optimizer/histogram.h"
#include "table/catalog.h"

namespace dpcf {

/// Canonical key for a selection expression on one table.
std::string SelPredKey(const Table& table, const Predicate& pred);

/// Canonical key for a join predicate a.col_a = b.col_b (order-insensitive).
std::string JoinPredKey(const Table& a, int col_a, const Table& b, int col_b);

/// Injected overrides, keyed by canonical expression strings.
class OptimizerHints {
 public:
  void SetCardinality(const std::string& key, double rows) {
    cardinality_[key] = rows;
  }
  void SetDpc(const std::string& key, double pages) { dpc_[key] = pages; }

  std::optional<double> Cardinality(const std::string& key) const {
    auto it = cardinality_.find(key);
    return it == cardinality_.end() ? std::nullopt
                                    : std::optional<double>(it->second);
  }
  std::optional<double> Dpc(const std::string& key) const {
    auto it = dpc_.find(key);
    return it == dpc_.end() ? std::nullopt
                            : std::optional<double>(it->second);
  }

  size_t num_cardinality_hints() const { return cardinality_.size(); }
  size_t num_dpc_hints() const { return dpc_.size(); }
  void Clear() {
    cardinality_.clear();
    dpc_.clear();
  }

 private:
  std::map<std::string, double> cardinality_;
  std::map<std::string, double> dpc_;
};

/// Histograms per (table, column).
class StatisticsCatalog {
 public:
  /// Builds (or rebuilds) the histogram for one column.
  Status Build(DiskManager* disk, const Table& table, int col,
               int num_buckets = 100);

  /// Builds histograms for every INT64 column of the table.
  Status BuildAll(DiskManager* disk, const Table& table,
                  int num_buckets = 100);

  const Histogram* Get(const Table& table, int col) const;

 private:
  std::map<std::pair<const Table*, int>, Histogram> histograms_;
};

/// Row-count estimation with hint overrides.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const StatisticsCatalog* stats,
                       const OptimizerHints* hints)
      : stats_(stats), hints_(hints) {}

  /// Estimated rows of `table` satisfying `pred`. Hint for the canonical
  /// key wins; otherwise atom selectivities multiplied (independence).
  double EstimateRows(const Table& table, const Predicate& pred) const;

  /// Selectivity in [0,1] of one atom.
  double AtomSelectivity(const Table& table, const PredicateAtom& atom) const;

  /// Join cardinality for a.col_a = b.col_b given filtered input sizes.
  double EstimateJoinRows(const Table& a, double a_rows, int col_a,
                          const Table& b, double b_rows, int col_b) const;

  const StatisticsCatalog* stats() const { return stats_; }
  const OptimizerHints* hints() const { return hints_; }

 private:
  const StatisticsCatalog* stats_;
  const OptimizerHints* hints_;
};

}  // namespace dpcf
