// Equi-depth histograms over INT64 columns.
//
// The cardinality side of the optimizer. The paper deliberately *injects
// accurate cardinalities* in its experiments to isolate page-count errors;
// we support both: histogram-based estimates here, and exact injection via
// OptimizerHints. Histograms estimate row counts only — the paper's central
// observation is that no cardinality statistic captures on-disk clustering,
// which is why DPC needs execution feedback.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace dpcf {

/// Equi-depth histogram with per-bucket distinct counts.
class Histogram {
 public:
  /// Empty histogram (no statistics); estimates are zero.
  Histogram() = default;

  /// Builds from all values of `col` in `table` (raw page walk; statistics
  /// creation is DDL-time work, not charged as query I/O).
  static Result<Histogram> Build(DiskManager* disk, const Table& table,
                                 int col, int num_buckets = 100);

  /// Builds directly from a value vector (testing / synthetic stats).
  static Histogram FromValues(std::vector<int64_t> values, int num_buckets);

  /// Estimated number of rows with lo <= value <= hi.
  double EstimateRange(int64_t lo, int64_t hi) const;

  /// Estimated number of rows with value == v.
  double EstimateEq(int64_t v) const;

  int64_t row_count() const { return row_count_; }
  double distinct_count() const { return distinct_total_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  size_t num_buckets() const { return upper_.size(); }

 private:
  // Bucket i covers (upper_[i-1], upper_[i]] (first bucket from min_).
  std::vector<int64_t> upper_;
  std::vector<int64_t> rows_;      // rows per bucket
  std::vector<double> distinct_;   // distinct values per bucket
  int64_t row_count_ = 0;
  double distinct_total_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace dpcf
