// Plan selection: access-path and join-method enumeration with costing.
//
// This is the component whose mistakes the paper diagnoses. Cardinalities
// come from histograms (or injected hints); distinct page counts come from
// the analytical Yao estimator — which assumes predicate columns are
// independent of physical clustering — unless a DPC hint (typically sourced
// from execution feedback) overrides it. Exposing EstimateDpc lets the
// diagnosis layer show estimated-vs-actual page counts side by side.

#pragma once

#include <string>
#include <vector>

#include "core/dpc_histogram.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "table/catalog.h"

namespace dpcf {

class Optimizer {
 public:
  /// `dpc_histograms` (optional) supplies learned page-count densities:
  /// the DPC estimate resolution order is exact hint → self-tuning DPC
  /// histogram → analytical Yao formula.
  Optimizer(Database* db, const StatisticsCatalog* stats,
            const OptimizerHints* hints,
            SimCostParams params = SimCostParams(),
            const DpcHistogramCatalog* dpc_histograms = nullptr)
      : db_(db),
        hints_(hints),
        dpc_histograms_(dpc_histograms),
        card_(stats, hints),
        cost_(params) {}

  /// All costed access paths for a single-table query (Table Scan always
  /// included), unordered.
  Result<std::vector<AccessPathPlan>> EnumerateAccessPaths(
      const SingleTableQuery& query) const;

  /// Cheapest access path.
  Result<AccessPathPlan> OptimizeSingleTable(
      const SingleTableQuery& query) const;

  /// All costed join strategies (Hash always included; INL when an index
  /// exists on the inner join column; Merge with sorts as needed).
  Result<std::vector<JoinPlan>> EnumerateJoinPlans(
      const JoinQuery& query) const;

  /// Cheapest join strategy.
  Result<JoinPlan> OptimizeJoin(const JoinQuery& query) const;

  /// DPC for a selection expression: hint if injected, else a learned
  /// DPC-histogram density when available for the expression's column,
  /// else Yao. `est_rows` is the expression's estimated cardinality;
  /// `source` (may be null) receives "hint", "dpc-histogram" or "yao".
  double EstimateDpc(const Table& table, const Predicate& expr,
                     double est_rows, std::string* source) const;

  /// DPC(inner, join-pred): hint for the canonical join key, else Yao on
  /// the estimated semi-join cardinality.
  double EstimateJoinDpc(const JoinQuery& query, double semi_join_rows,
                         std::string* source) const;

  /// Expected predicate-atom evaluations per scanned row under
  /// short-circuiting (1 + Σ products of leading selectivities).
  double ExpectedAtomEvals(const Table& table, const Predicate& pred) const;

  const CardinalityEstimator& cardinality() const { return card_; }
  const CostModel& cost_model() const { return cost_; }

 private:
  Database* db_;
  const OptimizerHints* hints_;
  const DpcHistogramCatalog* dpc_histograms_;
  CardinalityEstimator card_;
  CostModel cost_;
};

}  // namespace dpcf
