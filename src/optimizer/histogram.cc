#include "optimizer/histogram.h"

#include <algorithm>
#include <cassert>

namespace dpcf {

Result<Histogram> Histogram::Build(DiskManager* disk, const Table& table,
                                   int col, int num_buckets) {
  if (col < 0 || col >= static_cast<int>(table.schema().num_columns())) {
    return Status::InvalidArgument("histogram column out of range");
  }
  if (table.schema().column(static_cast<size_t>(col)).type !=
      ValueType::kInt64) {
    return Status::NotSupported("histograms require INT64 columns");
  }
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(table.row_count()));
  const HeapFile* file = table.file();
  for (PageNo p = 0; p < file->page_count(); ++p) {
    const char* page = disk->RawPage(PageId{file->segment(), p});
    uint32_t n = HeapFile::PageRowCount(page);
    for (uint16_t s = 0; s < n; ++s) {
      RowView row(file->RowInPage(page, s), &table.schema());
      values.push_back(row.GetInt64(static_cast<size_t>(col)));
    }
  }
  return FromValues(std::move(values), num_buckets);
}

Histogram Histogram::FromValues(std::vector<int64_t> values,
                                int num_buckets) {
  Histogram h;
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  h.row_count_ = static_cast<int64_t>(values.size());
  h.min_ = values.front();
  h.max_ = values.back();
  num_buckets = std::max(1, num_buckets);
  int64_t per_bucket =
      std::max<int64_t>(1, (h.row_count_ + num_buckets - 1) / num_buckets);
  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + static_cast<size_t>(per_bucket));
    // Extend so a value never straddles buckets.
    while (end < values.size() && values[end] == values[end - 1]) ++end;
    int64_t rows = static_cast<int64_t>(end - i);
    double distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) distinct += 1;
    }
    h.upper_.push_back(values[end - 1]);
    h.rows_.push_back(rows);
    h.distinct_.push_back(distinct);
    h.distinct_total_ += distinct;
    i = end;
  }
  return h;
}

double Histogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (row_count_ == 0 || lo > hi || hi < min_ || lo > max_) return 0;
  double total = 0;
  int64_t bucket_lo = min_;
  for (size_t b = 0; b < upper_.size(); ++b) {
    int64_t bucket_hi = upper_[b];
    // Overlap of [lo, hi] with [bucket_lo, bucket_hi], assuming uniform
    // spread within the bucket.
    int64_t olo = std::max(lo, bucket_lo);
    int64_t ohi = std::min(hi, bucket_hi);
    if (olo <= ohi) {
      double width = static_cast<double>(bucket_hi - bucket_lo) + 1;
      double overlap = static_cast<double>(ohi - olo) + 1;
      total += static_cast<double>(rows_[b]) * (overlap / width);
    }
    bucket_lo = bucket_hi + 1;
    if (bucket_lo > hi) break;
  }
  return std::min(total, static_cast<double>(row_count_));
}

double Histogram::EstimateEq(int64_t v) const {
  if (row_count_ == 0 || v < min_ || v > max_) return 0;
  int64_t bucket_lo = min_;
  for (size_t b = 0; b < upper_.size(); ++b) {
    if (v <= upper_[b]) {
      return static_cast<double>(rows_[b]) / std::max(1.0, distinct_[b]);
    }
    bucket_lo = upper_[b] + 1;
  }
  (void)bucket_lo;
  return 0;
}

}  // namespace dpcf
