#!/usr/bin/env python3
"""Validates an observability dump produced by a bench run with
DPCF_OBS_DIR set (bench/bench_util.h, MaybeDumpObservability).

Checks, over the five artifacts:
  trace.json    parses as Chrome trace_event JSON: a traceEvents list of
                well-formed events (complete events carry a non-negative
                duration) in the engine's known categories
  metrics.prom  parses as Prometheus text exposition; names follow the
                dpcf-metric-naming convention; and the cross-layer
                accounting reconciles exactly:
                  logical_reads == sum(hits) + sum(misses)
                  sum(misses)   == disk seq + rand reads
                  prefetch_hits <= disk prefetch reads
  metrics.json  counter values agree with metrics.prom sample for sample
  journal.json  the flight-recorder dump has the documented shape: integer
                capacity/thread/drop fields and a ts_us-sorted event list
                whose types are all in the engine's event taxonomy; when
                the run submitted async reads, the journal carries ring
                events and metrics.prom carries the per-class
                disk_queue_wait_us / disk_service_time_us histograms
  explain.txt   the annotated EXPLAIN ANALYZE plan shows actual and
                estimated DPC per monitored expression

Usage: tools/check_observability.py --dir DUMP_DIR
Exit status 0 when every check passes, 1 otherwise.

CI runs this against a monitored+traced fig6 smoke run (see
.github/workflows/ci.yml), so a regression in any exporter fails the
build rather than producing an unloadable trace or a figure whose
counters quietly disagree with IoStats.
"""

import argparse
import json
import os
import re
import sys

KNOWN_CATEGORIES = {"exec", "io", "monitor", "op", "scan"}
SNAKE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$")
UNIT_SUFFIXES = ("_us", "_ms", "_seconds", "_bytes", "_pages", "_rows",
                 "_ratio", "_factor", "_ops")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
LABEL = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"]*)"')

errors = []


def fail(msg):
    errors.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"ok:   {msg}")


def load(dump_dir, name):
    path = os.path.join(dump_dir, name)
    if not os.path.isfile(path):
        fail(f"{name} missing from {dump_dir}")
        return None
    with open(path, encoding="utf-8") as f:
        return f.read()


def check_trace(text):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"trace.json does not parse: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace.json has no traceEvents")
        return
    cats = set()
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"trace event {i} missing '{field}': {e}")
                return
        if e["ph"] not in ("X", "i"):
            fail(f"trace event {i} has unknown phase {e['ph']!r}")
            return
        if e["ph"] == "X" and e.get("dur", -1) < 0:
            fail(f"complete event {i} has negative/missing dur: {e}")
            return
        cats.add(e["cat"])
    unknown = cats - KNOWN_CATEGORIES
    if unknown:
        fail(f"trace.json has unknown categories {sorted(unknown)}")
    ok(f"trace.json: {len(events)} events in categories {sorted(cats)}")


def parse_prometheus(text):
    """Returns ({name: type}, {(name, frozen labels): float value})."""
    types = {}
    samples = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"metrics.prom:{line_no}: malformed TYPE line")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE.match(line)
        if m is None:
            fail(f"metrics.prom:{line_no}: unparseable sample: {line}")
            continue
        labels = frozenset(
            (lm.group("k"), lm.group("v"))
            for lm in LABEL.finditer(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(f"metrics.prom:{line_no}: non-numeric value: {line}")
            continue
        samples[(m.group("name"), labels)] = value
    return types, samples


def family_sum(samples, name):
    return sum(v for (n, _), v in samples.items() if n == name)


def labeled(samples, name, **labels):
    want = frozenset(labels.items())
    for (n, ls), v in samples.items():
        if n == name and want <= ls:
            return v
    fail(f"metrics.prom has no sample {name}{labels}")
    return 0.0


def check_naming(types):
    for name, kind in types.items():
        base = name
        if not SNAKE.match(base):
            fail(f"metric '{name}' is not snake_case")
        elif kind == "counter" and not base.endswith("_total"):
            fail(f"counter '{name}' must end in _total")
        elif kind in ("gauge", "histogram") and not base.endswith(
                UNIT_SUFFIXES):
            fail(f"{kind} '{name}' must end in a unit suffix")
    ok(f"metrics.prom: {len(types)} families follow the naming convention")


def check_reconciliation(samples):
    logical = labeled(samples, "buffer_pool_logical_reads_total")
    hits = family_sum(samples, "buffer_pool_hits_total")
    misses = family_sum(samples, "buffer_pool_misses_total")
    if logical != hits + misses:
        fail(f"logical_reads {logical} != hits {hits} + misses {misses}")
    else:
        ok(f"logical_reads {logical:.0f} == hits + misses")

    seq = labeled(samples, "disk_reads_total", **{"class": "seq"})
    rand = labeled(samples, "disk_reads_total", **{"class": "rand"})
    if misses != seq + rand:
        fail(f"pool misses {misses} != disk demand reads {seq + rand}")
    else:
        ok(f"pool misses {misses:.0f} == disk seq + rand reads")

    prefetch_hits = labeled(samples, "buffer_pool_prefetch_hits_total")
    prefetch_reads = labeled(samples, "disk_reads_total",
                             **{"class": "prefetch"})
    if prefetch_hits > prefetch_reads:
        fail(f"prefetch_hits {prefetch_hits} > prefetch reads "
             f"{prefetch_reads}")
    else:
        ok(f"prefetch_hits {prefetch_hits:.0f} <= prefetch reads "
           f"{prefetch_reads:.0f}")


def check_json_agreement(text, samples):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"metrics.json does not parse: {e}")
        return
    counters = doc.get("counters")
    if not isinstance(counters, list) or not counters:
        fail("metrics.json has no counters")
        return
    for c in counters:
        key = (c["name"], frozenset(c.get("labels", {}).items()))
        prom = samples.get(key)
        if prom is None:
            fail(f"metrics.json counter {key} absent from metrics.prom")
        elif prom != c["value"]:
            fail(f"counter {key}: json {c['value']} != prom {prom}")
    ok(f"metrics.json: {len(counters)} counters agree with metrics.prom")


# Event taxonomy of src/obs/event_journal.h (JournalEventName). "none"
# never appears in a dump but is legal in the enum.
KNOWN_JOURNAL_EVENTS = {
    "none", "ring_submit", "ring_dispatch", "ring_complete",
    "backpressure_begin", "backpressure_end", "loading_wait",
    "readahead_resize", "monitor_build", "monitor_merge", "eviction",
    "drift_alert",
}


def check_journal(text):
    """Validates journal.json; returns its parsed document (or None)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"journal.json does not parse: {e}")
        return None
    for field in ("capacity_per_thread", "threads", "dropped_torn",
                  "dropped_overwritten"):
        if not isinstance(doc.get(field), int) or doc[field] < 0:
            fail(f"journal.json '{field}' is not a non-negative int: "
                 f"{doc.get(field)!r}")
            return None
    events = doc.get("events")
    if not isinstance(events, list):
        fail("journal.json 'events' is not a list")
        return None
    last_ts = 0
    for i, e in enumerate(events):
        for field in ("ts_us", "thread", "a", "b"):
            if not isinstance(e.get(field), int) or e[field] < 0:
                fail(f"journal event {i} '{field}' is not a "
                     f"non-negative int: {e}")
                return None
        if e.get("type") not in KNOWN_JOURNAL_EVENTS:
            fail(f"journal event {i} has unknown type {e.get('type')!r}")
            return None
        if e["ts_us"] < last_ts:
            fail(f"journal event {i} breaks the ts_us sort order")
            return None
        last_ts = e["ts_us"]
        if e["thread"] >= doc["threads"]:
            fail(f"journal event {i} thread {e['thread']} out of range "
                 f"(threads={doc['threads']})")
            return None
    if doc["threads"] > 0 and len(events) > \
            doc["capacity_per_thread"] * doc["threads"]:
        fail(f"journal.json holds {len(events)} events, more than "
             f"capacity {doc['capacity_per_thread']} x {doc['threads']} "
             "threads")
        return None
    ok(f"journal.json: {len(events)} events across {doc['threads']} "
       f"thread ring(s), sorted and well-typed")
    return doc


def check_async_ring(samples, journal):
    """When the run submitted async reads, the ring must have left both
    its latency histograms and its flight-recorder events behind."""
    submitted = family_sum(samples, "disk_async_submitted_total")
    if submitted <= 0:
        ok("no async submissions — ring attribution checks skipped")
        return
    for family in ("disk_queue_wait_us", "disk_service_time_us"):
        classes = {
            dict(ls).get("class")
            for (n, ls), _ in samples.items()
            if n == family + "_count"
        }
        classes.discard(None)
        if not classes:
            fail(f"{submitted:.0f} async submissions but metrics.prom "
                 f"has no {family} samples")
        elif not classes <= {"demand", "prefetch"}:
            fail(f"{family} has unexpected class labels "
                 f"{sorted(classes)}")
        else:
            ok(f"{family} present with classes {sorted(classes)}")
    if journal is None:
        return
    types = {e["type"] for e in journal["events"]}
    missing = {"ring_submit", "ring_complete"} - types
    if journal["events"] and missing:
        fail(f"{submitted:.0f} async submissions but journal.json lacks "
             f"{sorted(missing)} events")
    elif journal["events"]:
        ok("journal.json carries ring submit/complete events")


def check_explain(text):
    for needle in ("actual rows=", "actualDpc=", "estDpc="):
        if needle not in text:
            fail(f"explain.txt lacks '{needle}' — not an annotated plan?")
            return
    ok("explain.txt is an annotated plan with estimated vs actual DPC")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", required=True,
                        help="dump directory (DPCF_OBS_DIR of the run)")
    args = parser.parse_args()

    trace = load(args.dir, "trace.json")
    prom = load(args.dir, "metrics.prom")
    mjson = load(args.dir, "metrics.json")
    journal = load(args.dir, "journal.json")
    explain = load(args.dir, "explain.txt")
    if errors:
        return 1

    check_trace(trace)
    types, samples = parse_prometheus(prom)
    check_naming(types)
    check_reconciliation(samples)
    check_json_agreement(mjson, samples)
    journal_doc = check_journal(journal)
    check_async_ring(samples, journal_doc)
    check_explain(explain)

    if errors:
        print(f"\n{len(errors)} check(s) failed")
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
