#!/usr/bin/env sh
# Runs the DPCF lint over the default tree (src tests bench examples
# tools/lint ignores non-C++ files). Usage: tools/lint/run.sh [paths...]
set -eu
cd "$(dirname "$0")/../.."
if [ "$#" -eq 0 ]; then
  set -- src tests bench examples
fi
exec python3 tools/lint/dpcf_lint.py "$@"
