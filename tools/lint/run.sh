#!/usr/bin/env sh
# One entry point for both static-analysis layers: the regex lint
# (tools/lint/dpcf_lint.py) and the AST-level semantic analyzer
# (tools/analysis/dpcf_ast.py). Usage: tools/lint/run.sh [paths...]
#
# The AST pass auto-selects its engine: python bindings for libclang
# when importable, the built-in token-tree engine otherwise — so this
# script needs nothing beyond python3 and degrades gracefully on a bare
# container. Either layer reporting findings fails the run.
set -eu
cd "$(dirname "$0")/../.."
if [ "$#" -eq 0 ]; then
  set -- src tests bench examples
fi

status=0
echo "== regex lint (tools/lint/dpcf_lint.py) =="
python3 tools/lint/dpcf_lint.py "$@" || status=1

echo "== ast analysis (tools/analysis/dpcf_ast.py) =="
if python3 tools/analysis/dpcf_ast.py "$@"; then
  :
else
  rc=$?
  # Exit 3 = no analysis engine at all (not even python3's tokenizer
  # could run, e.g. --engine clang forced without libclang); report but
  # do not fail the combined lint on a missing optional dependency.
  if [ "$rc" -eq 3 ]; then
    echo "ast analysis skipped: no engine available (exit 3)"
  else
    status=1
  fi
fi

exit "$status"
