#!/usr/bin/env python3
"""DPCF repo-specific lint.

Enforces the project's concurrency/determinism conventions that generic
tools cannot know about (see DESIGN.md section 9 for the catalog):

  dpcf-mutex-annotation   raw std::mutex members; dpcf::Mutex that guards
                          nothing
  dpcf-nondeterminism     wall-clock / ambient randomness in src/core,
                          src/exec (breaks feedback determinism)
  dpcf-discarded-status   Status/Result-returning call used as a bare
                          statement
  dpcf-include-hygiene    missing #pragma once, parent-relative includes,
                          .cc not including its own header first
  dpcf-naked-new          naked new/delete (ownership belongs in
                          unique_ptr / the buffer pool's frame store)
  dpcf-metric-naming      registry metric names off-convention (snake_case;
                          counters `_total`, gauges/histograms a unit)
  dpcf-eval-in-morsel     per-row predicate/monitor calls inside page row
                          loops in src/exec (use the batch kernel; `oracle`
                          comments mark the deliberate reference paths)

Usage:
  tools/lint/dpcf_lint.py [--list-rules] [--rule ID]... PATH...

PATH arguments may be files or directories (searched recursively for
*.h / *.cc). Exit status is 0 when clean, 1 when any finding is reported,
2 on usage errors.

Suppression: append `// NOLINT(dpcf-<rule>)` to the offending line, or put
`// NOLINTNEXTLINE(dpcf-<rule>)` on the line above. A bare `// NOLINT`
suppresses every rule on that line. Suppressions are deliberate, reviewed
exceptions — each one should say why in the surrounding code.
"""

import argparse
import os
import re
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

from rules import ALL_RULES  # noqa: E402  (path setup must precede)

SOURCE_EXTENSIONS = (".h", ".cc")
# lint_selftest and ast_selftest hold deliberately-violating fixtures;
# their selftests lint them explicitly (with --rel-root), tree-wide runs
# must not see them.
SKIP_DIR_PATTERNS = re.compile(
    r"^(build.*|\.git|\.cache|__pycache__|lint_selftest|ast_selftest)$")

NOLINT_RE = re.compile(r"//\s*NOLINT(?:NEXTLINE)?(?:\(([^)]*)\))?")
NOLINTNEXTLINE_RE = re.compile(r"//\s*NOLINTNEXTLINE(?:\(([^)]*)\))?")


class SourceFile:
    """A parsed source file handed to every rule.

    `raw_lines` is the file verbatim; `code_lines` has comments and string
    literal contents blanked (same line count and column widths) so rules
    can regex over code without matching prose.
    """

    def __init__(self, path, repo_relative, text):
        self.path = path
        self.rel = repo_relative
        self.text = text
        self.raw_lines = text.splitlines()
        self.code_lines = _strip_comments_and_strings(text).splitlines()


def _strip_comments_and_strings(text):
    """Blanks //, /* */ comments and "..." / '...' contents, keeping
    newlines and column positions so findings line up with the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated literal; resync
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def _suppressed_rules(raw_lines, line_no):
    """Rule ids suppressed on 1-based `line_no` (None = all rules)."""
    suppressed = set()
    line = raw_lines[line_no - 1]
    m = NOLINT_RE.search(line)
    if m and not NOLINTNEXTLINE_RE.search(line):
        if m.group(1) is None:
            return None
        suppressed.update(r.strip() for r in m.group(1).split(","))
    if line_no >= 2:
        m = NOLINTNEXTLINE_RE.search(raw_lines[line_no - 2])
        if m:
            if m.group(1) is None:
                return None
            suppressed.update(r.strip() for r in m.group(1).split(","))
    return suppressed


def discover_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs if not SKIP_DIR_PATTERNS.match(d))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"dpcf_lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def repo_relative(path, rel_root=None):
    """Path relative to the repo root (the directory holding tools/), or to
    `rel_root` when given. Path-scoped rules key off this prefix, so the
    lint selftest points --rel-root at a fixture tree whose layout mirrors
    the repo (fixtures under <root>/src/ get the src/-only rules)."""
    root = (os.path.abspath(rel_root) if rel_root
            else os.path.dirname(os.path.dirname(_HERE)))
    ap = os.path.abspath(path)
    try:
        return os.path.relpath(ap, root)
    except ValueError:
        return path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--rule", action="append", default=[],
                        help="run only this rule id (repeatable)")
    parser.add_argument("--rel-root", default=None,
                        help="directory paths are reported relative to "
                             "(default: the repo root); also sets the "
                             "prefix path-scoped rules match against")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE_ID}: {rule.DESCRIPTION}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    rules = ALL_RULES
    if args.rule:
        known = {r.RULE_ID for r in ALL_RULES}
        unknown = [r for r in args.rule if r not in known]
        if unknown:
            print(f"dpcf_lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [r for r in ALL_RULES if r.RULE_ID in args.rule]

    files = discover_files(args.paths)
    sources = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"dpcf_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        sources.append(
            SourceFile(path, repo_relative(path, args.rel_root), text))

    # Rules that need a whole-tree view (e.g. the set of Status-returning
    # method names) get it up front.
    corpus = {"sources": sources}
    for rule in rules:
        prepare = getattr(rule, "prepare", None)
        if prepare:
            prepare(corpus)

    findings = []
    for src in sources:
        for rule in rules:
            for line_no, message in rule.check(src):
                suppressed = _suppressed_rules(src.raw_lines, line_no)
                if suppressed is None:
                    continue
                if rule.RULE_ID in suppressed:
                    continue
                findings.append((src.rel, line_no, rule.RULE_ID, message))

    findings.sort()
    for rel, line_no, rule_id, message in findings:
        print(f"{rel}:{line_no}: [{rule_id}] {message}")
    if findings:
        print(f"dpcf_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
