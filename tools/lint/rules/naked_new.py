"""dpcf-naked-new: ownership lives in unique_ptr (or the pool's frames).

Raw `new` leaks on every early Status return between allocation and the
owning container; raw `delete` double-frees when two paths both think
they own. The repo's convention: std::make_unique everywhere, and the
only blessed raw-buffer owner is the buffer pool's preallocated frame
store (which itself uses unique_ptr<char[]>). Private-constructor
factories that cannot use make_unique get a NOLINT with a reason.
"""

import re

RULE_ID = "dpcf-naked-new"
DESCRIPTION = "naked new/delete outside sanctioned owners"

# `new X(...)`, `new X[...]` — but not `Renew(`, not `new_x` identifiers.
_NEW_RE = re.compile(r"(?<![\w_])new\s+[A-Za-z_:(]")
# `delete p` / `delete[] p` — but not `= delete;` defaulted members and
# not `operator delete`.
_DELETE_RE = re.compile(r"(?<![\w_])delete\s*(?:\[\s*\]\s*)?[A-Za-z_(*]")
_DELETED_FN_RE = re.compile(r"=\s*delete\b|operator\s+delete")


def check(source):
    for i, line in enumerate(source.code_lines, start=1):
        if _NEW_RE.search(line):
            yield (i, "naked new; use std::make_unique (NOLINT private-"
                      "ctor factories with a reason)")
        if _DELETE_RE.search(line) and not _DELETED_FN_RE.search(line):
            yield (i, "naked delete; owners must be RAII "
                      "(unique_ptr / PageGuard)")
