"""dpcf-mutex-annotation: every latch must be visible to clang TSA.

Three checks, scoped to files under src/:
  1. A member/variable of type std::mutex (or friends) is rejected —
     dpcf::Mutex from common/thread_annotations.h is the same mutex plus a
     CAPABILITY attribute, so the analysis can see who holds it.
  2. A dpcf::Mutex member whose name is never referenced by a GUARDED_BY /
     PT_GUARDED_BY / REQUIRES / ACQUIRE annotation in the same file guards
     nothing: either annotate the state it protects or delete it.
  3. A dpcf::Mutex that appears only in lock-discipline annotations
     (REQUIRES / EXCLUDES / ACQUIRE / ...) but never in a GUARDED_BY /
     PT_GUARDED_BY is suspicious for the opposite reason: functions hold it
     but no data is declared as protected by it, so TSA cannot catch an
     unlocked access to whatever it is meant to cover. Annotate the state.
"""

import re

RULE_ID = "dpcf-mutex-annotation"
DESCRIPTION = ("std::mutex members must be dpcf::Mutex, and every "
               "dpcf::Mutex must guard something")

_STD_MUTEX_RE = re.compile(
    r"\bstd::(recursive_|shared_|timed_|recursive_timed_)?mutex\b")
_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:dpcf::)?Mutex\s+(\w+)\s*[;\x20]")
_ANNOTATION_USE = ("GUARDED_BY", "PT_GUARDED_BY", "REQUIRES",
                   "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED",
                   "EXCLUDES", "RETURN_CAPABILITY")


def _in_scope(source):
    rel = source.rel.replace("\\", "/")
    return rel.startswith("src/")


def check(source):
    if not _in_scope(source):
        return
    for i, line in enumerate(source.code_lines, start=1):
        m = _STD_MUTEX_RE.search(line)
        if m:
            # Declarations only; `#include <mutex>` or using-directives
            # don't match the std:: spelling.
            yield (i, "raw std::mutex is invisible to thread-safety "
                      "analysis; use dpcf::Mutex + dpcf::MutexLock from "
                      "common/thread_annotations.h")
    # Check 2: a declared Mutex member must be named by some annotation.
    whole = "\n".join(source.code_lines)
    for i, line in enumerate(source.code_lines, start=1):
        m = _MUTEX_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        used = any(
            re.search(rf"\b{macro}\s*\([^)]*\b{re.escape(name)}\b", whole)
            for macro in _ANNOTATION_USE)
        if not used:
            yield (i, f"dpcf::Mutex '{name}' is not referenced by any "
                      "GUARDED_BY/REQUIRES/EXCLUDES annotation in this "
                      "file — annotate what it protects")
            continue
        # Check 3 (mutually exclusive with check 2): referenced by
        # lock-discipline annotations, but no state is GUARDED_BY it.
        guards_state = any(
            re.search(rf"\b{macro}\s*\([^)]*\b{re.escape(name)}\b", whole)
            for macro in ("GUARDED_BY", "PT_GUARDED_BY"))
        if not guards_state:
            yield (i, f"dpcf::Mutex '{name}' appears in lock annotations "
                      "but no member is GUARDED_BY it — TSA cannot catch "
                      "unlocked access to the state it protects; add "
                      "GUARDED_BY to that state")
