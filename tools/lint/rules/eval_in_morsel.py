"""dpcf-eval-in-morsel: per-row predicate/monitor calls inside page loops.

The scan hot path evaluates predicates with the vectorized PredicateKernel
and feeds monitors with ScanMonitorBundle::ObserveBatch (DESIGN.md section
12): one call per page, not one per row. A per-row EvalLeading /
EvalNoShortCircuit / OnRow call inside a loop over a page's rows
reintroduces exactly the per-tuple overhead the kernel removed, usually by
accident when a new operator copies the old loop shape.

The row-at-a-time path is still *deliberately* kept in two places — the
oracle the property sweep (tests/predicate_batch_test.cc) compares the
kernel against, and scans whose control flow cannot batch (sorted-key early
exit). Those loops are marked with an `oracle` comment within five lines
above the loop header, which this rule honors; anything unmarked is
flagged. Only src/exec is in scope: monitor internals (src/core) and tests
drive rows one at a time by design.
"""

import re

RULE_ID = "dpcf-eval-in-morsel"
DESCRIPTION = ("per-row EvalLeading/EvalNoShortCircuit/OnRow inside a page "
               "row loop in src/exec without an `oracle` marker")

# A *call* through an object (definitions use `Predicate::EvalLeading`).
_CALL = re.compile(r"(?:\.|->)\s*(EvalLeading|EvalNoShortCircuit|OnRow)\s*\(")

# A loop whose bound is the current page's row count — the shape every
# morsel/page scan loop in src/exec takes.
_ROW_LOOP = re.compile(
    r"\b(?:for|while)\s*\(.*\b(?:rows_in_page_?|row_idx_?|num_rows|"
    r"PageRowCount)\b")

_ORACLE = re.compile(r"\boracle\b", re.IGNORECASE)

# How far above a call the enclosing loop header may sit, and how far above
# the header its oracle marker may sit.
_LOOP_WINDOW = 40
_MARKER_WINDOW = 5


def _in_scope(source):
    rel = source.rel.replace("\\", "/")
    return rel.startswith("src/exec/")


def check(source):
    if not _in_scope(source):
        return
    code = source.code_lines
    raw = source.raw_lines
    for i, line in enumerate(code, start=1):
        m = _CALL.search(line)
        if m is None:
            continue
        # Innermost row loop above the call (heuristic: nearest header in
        # the window; page loops in this codebase are short).
        header = None
        for j in range(i - 1, max(0, i - 1 - _LOOP_WINDOW), -1):
            if _ROW_LOOP.search(code[j - 1]):
                header = j
                break
        if header is None:
            continue
        marked = any(
            _ORACLE.search(raw[k - 1])
            for k in range(max(1, header - _MARKER_WINDOW), header + 1))
        if marked:
            continue
        yield (i, f"per-row {m.group(1)}() inside a page row loop — use "
                  "PredicateKernel::EvalBatch / ScanMonitorBundle::"
                  "ObserveBatch, or mark the loop with an `oracle` comment "
                  "if row-at-a-time is intentional")
