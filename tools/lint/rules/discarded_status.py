"""dpcf-discarded-status: a dropped Status is a swallowed failure.

The whole-tree prepare pass harvests the names of methods declared to
return Status or Result<T> from every header handed to the linter, then
flags single-line statements that call one of those methods and do
nothing with the value. Handle it with DPCF_RETURN_IF_ERROR /
DPCF_ASSIGN_OR_RETURN, assign it, assert on it in tests, or — for the
rare fire-and-forget case — write an explicit `(void)` cast plus a NOLINT
explaining why the failure is ignorable.

Heuristic limits (deliberate, to stay regex-light): only single-line call
statements are checked, and methods whose name collides with a
void-returning function elsewhere may false-positive — suppress with
// NOLINT(dpcf-discarded-status) and a reason.
"""

import re

RULE_ID = "dpcf-discarded-status"
DESCRIPTION = "Status/Result-returning call used as a bare statement"

_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:\[\[nodiscard\]\]\s*)?"
    r"(?:Status|Result<[^;={}]*>)\s+(\w+)\s*\(")

# Names too generic to flag on name alone (they collide with std:: and
# test-fixture methods that return void).
_IGNORED_NAMES = {"main", "Run", "TestBody"}

_status_methods = set()


def prepare(corpus):
    _status_methods.clear()
    for src in corpus["sources"]:
        if not src.rel.endswith(".h"):
            continue
        for line in src.code_lines:
            m = _DECL_RE.match(line)
            if m and m.group(1) not in _IGNORED_NAMES:
                _status_methods.add(m.group(1))


def _call_statement_re():
    if not _status_methods:
        return None
    names = "|".join(sorted(re.escape(n) for n in _status_methods))
    # A full statement on one line: optional receiver chain (obj. / ptr->
    # / ns:: only — a leading `outer(` means something consumes the
    # value), one of the harvested names, parens, `;`, nothing else.
    return re.compile(
        rf"^\s*(?:[\w\]\[\*]+(?:\.|->|::))*({names})\s*\(.*\)\s*;\s*$")


def check(source):
    call_re = _call_statement_re()
    if call_re is None:
        return
    for i, line in enumerate(source.code_lines, start=1):
        raw = source.raw_lines[i - 1]
        m = call_re.match(line)
        if not m:
            continue
        # A continuation line of a multi-line call (e.g. the argument of a
        # DPCF_RETURN_IF_ERROR spanning lines) has unbalanced parens, or
        # follows a line that obviously continues into this one.
        if line.count("(") != line.count(")"):
            continue
        if i >= 2:
            prev = source.code_lines[i - 2].rstrip()
            if prev.endswith(("=", "(", ",", "<<", "&&", "||", "?", ":",
                              "return")):
                continue
        # Anything that consumes the value disqualifies the match.
        if re.search(r"=|\breturn\b|\(void\)|RETURN_IF_ERROR|"
                     r"ASSIGN_OR_RETURN|ASSERT_|EXPECT_|CHECK", raw):
            continue
        yield (i, f"result of '{m.group(1)}' (Status/Result) is discarded; "
                  "propagate, assert, or cast to (void) with a reason")
