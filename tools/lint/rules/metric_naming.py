"""dpcf-metric-naming: registry metric names follow the convention
MetricsRegistry documents (obs/metrics_registry.h).

Prometheus-style exposition only stays queryable if names are predictable:
snake_case, with the family's kind readable off the suffix — counters end
in `_total`, gauges and histograms in a unit (`_us`, `_ms`, `_bytes`,
`_pages`, `_rows`, `_ratio`, `_factor`, `_ops`), or `_info` for constant
gauges whose payload is a label (Prometheus info-metric idiom, e.g.
`dpcf_simd_dispatch_info{isa="avx2"} 1`). The rule checks every
GetCounter / GetGauge / GetHistogram registration in src/ and bench/
whose name is a string literal (dynamic names are out of regex reach and
out of convention anyway).
"""

import re

RULE_ID = "dpcf-metric-naming"
DESCRIPTION = ("metric names must be snake_case with a unit suffix "
               "(counters `_total`; gauges/histograms `_us`, `_ms`, "
               "`_bytes`, `_pages`, `_rows`, `_ratio`, `_factor`, `_ops`, "
               "or `_info` for constant label-carrying gauges)")

_CALL = re.compile(r"\bGet(Counter|Gauge|Histogram)\s*\(")
_LITERAL = re.compile(r'"([^"\\]*)"')
_SNAKE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$")
_UNIT_SUFFIXES = ("_us", "_ms", "_seconds", "_bytes", "_pages", "_rows",
                  "_ratio", "_factor", "_ops", "_info")


def _in_scope(source):
    rel = source.rel.replace("\\", "/")
    return rel.startswith(("src/", "bench/"))


def check(source):
    if not _in_scope(source):
        return
    for i, line in enumerate(source.code_lines, start=1):
        for m in _CALL.finditer(line):
            kind = m.group(1)
            # String contents are blanked in code_lines; read the name
            # from the raw line (columns line up), falling back to the
            # next line for calls that wrap after the open paren.
            lit = _LITERAL.search(source.raw_lines[i - 1], m.end())
            if lit is None and i < len(source.raw_lines):
                lit = _LITERAL.search(source.raw_lines[i])
            if lit is None:
                continue  # name is not a literal; nothing to check
            name = lit.group(1)
            if not _SNAKE.match(name):
                yield (i, f"metric name '{name}' is not snake_case")
            elif kind == "Counter" and not name.endswith("_total"):
                yield (i, f"counter '{name}' must end in '_total'")
            elif kind != "Counter" and (
                    name.endswith("_total")
                    or not name.endswith(_UNIT_SUFFIXES)):
                yield (i, f"{kind.lower()} '{name}' must end in a unit "
                          f"suffix ({', '.join(_UNIT_SUFFIXES)}), "
                          "not '_total'")
