"""dpcf-include-hygiene: keep the include graph boring.

  1. Every header must open with #pragma once (before any other
     preprocessor directive or code).
  2. No parent-relative includes (#include "../...") — all quoted
     includes are rooted at src/, which is on the include path.
  3. A src/**/foo.cc with a sibling foo.h must include "dir/foo.h" as its
     FIRST include — the cheapest possible check that every header is
     self-contained (it gets compiled once with nothing before it).
  4. No <bits/stdc++.h> or other non-standard catch-all headers.
"""

import os
import re

RULE_ID = "dpcf-include-hygiene"
DESCRIPTION = ("#pragma once, no parent-relative includes, "
               ".cc includes its own header first")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"][^>"]+[>"])')


def check(source):
    rel = source.rel.replace("\\", "/")
    includes = []  # (line_no, spelling)
    pragma_once_line = None
    first_directive_line = None
    for i, line in enumerate(source.code_lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if first_directive_line is None:
                first_directive_line = i
            if re.match(r"^#\s*pragma\s+once\b", stripped):
                pragma_once_line = i
        # The comment/string stripper blanks quoted include paths, so take
        # the spelling from the raw line once the code view shows a
        # directive there.
        if _INCLUDE_RE.match(line) or re.match(r"^\s*#\s*include\b", line):
            m = _INCLUDE_RE.match(source.raw_lines[i - 1])
            if m:
                includes.append((i, m.group(1)))

    if rel.endswith(".h"):
        if pragma_once_line is None:
            yield (1, "header is missing #pragma once")
        elif first_directive_line != pragma_once_line:
            yield (pragma_once_line,
                   "#pragma once must be the first directive in the header")

    for line_no, spelling in includes:
        if spelling.startswith('"../') or "/../" in spelling:
            yield (line_no, f"parent-relative include {spelling}; quoted "
                            "includes are rooted at src/")
        if spelling == "<bits/stdc++.h>":
            yield (line_no, "<bits/stdc++.h> is a non-standard catch-all; "
                            "include what you use")

    if rel.startswith("src/") and rel.endswith(".cc") and includes:
        own_header = os.path.splitext(rel)[0][len("src/"):] + ".h"
        if os.path.exists(
                os.path.join(os.path.dirname(source.path),
                             os.path.basename(own_header))):
            expected = f'"{own_header}"'
            if includes[0][1] != expected:
                yield (includes[0][0],
                       f"first include must be the file's own header "
                       f"{expected} (self-containment check)")
