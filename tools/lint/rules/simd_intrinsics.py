"""dpcf-simd-intrinsics: raw vector intrinsics outside src/exec/simd*.

The SIMD layer (src/exec/simd.h, DESIGN.md section 16) confines ISA-
specific code to per-ISA translation units selected by runtime dispatch:
simd_avx2.cc is the only file compiled with -mavx2 and simd_neon.cc the
only one assuming NEON. An `_mm256_*` call in any other TU either fails to
compile (no -mavx2 there) or, worse, compiles because someone widened the
flag and then SIGILLs on CPUs without the feature — and it bypasses the
scalar-equivalence testing the dispatch table gets. The rule flags x86
`_mm*_*` and ARM NEON-style (`vld1q_s64`, `vdupq_n_s64`, ...) intrinsic
calls everywhere except files whose path starts with src/exec/simd.
"""

import re

RULE_ID = "dpcf-simd-intrinsics"
DESCRIPTION = ("raw SIMD intrinsics (_mm*/_mm256_*/vld1q_*-style) outside "
               "src/exec/simd* — add a kernel to the SimdOps dispatch "
               "table instead")

# x86: _mm_*, _mm256_*, _mm512_* calls. ARM: NEON intrinsics are v<op>
# optionally followed by digits/q and lane infixes, ending in a typed
# suffix like _s64 / _u32 / _f64 (vld1q_s64, vgetq_lane_u64, vdupq_n_s64).
_X86 = re.compile(r"\b_mm\d{0,3}_[a-z0-9_]+\s*\(")
_NEON = re.compile(r"\bv[a-z]+\d*q?(?:_[a-z]+)*_[sufp]\d+\s*\(")

_ALLOWED_PREFIX = "src/exec/simd"


def _in_scope(source):
    rel = source.rel.replace("\\", "/")
    return not rel.startswith(_ALLOWED_PREFIX)


def check(source):
    if not _in_scope(source):
        return
    for i, line in enumerate(source.code_lines, start=1):
        for pat, family in ((_X86, "x86"), (_NEON, "NEON")):
            m = pat.search(line)
            if m is not None:
                name = m.group(0).rstrip("( \t")
                yield (i, f"raw {family} intrinsic {name}() outside "
                          "src/exec/simd* — route it through the SimdOps "
                          "kernel table (src/exec/simd.h)")
