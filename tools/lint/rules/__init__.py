"""Rule registry for dpcf_lint. Each rule module exposes RULE_ID,
DESCRIPTION, check(source) -> iterable[(line_no, message)], and an
optional prepare(corpus) for whole-tree context."""

from rules import discarded_status
from rules import eval_in_morsel
from rules import include_hygiene
from rules import metric_naming
from rules import mutex_annotation
from rules import naked_new
from rules import nondeterminism
from rules import simd_intrinsics

ALL_RULES = [
    mutex_annotation,
    nondeterminism,
    discarded_status,
    include_hygiene,
    naked_new,
    metric_naming,
    eval_in_morsel,
    simd_intrinsics,
]
