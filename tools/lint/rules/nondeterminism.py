"""dpcf-nondeterminism: feedback must be a pure function of (data, seed).

The paper's monitors are only trustworthy re-optimization input if two
runs over the same data produce bit-identical feedback (DESIGN.md section
8's parallel-equivalence guarantee leans on this too). Ambient entropy —
wall clock, process-global PRNGs, hardware entropy — inside the monitor
core (src/core) or the execution path (src/exec) silently breaks that, so
it is banned there; randomness must come from common/random.h generators
seeded through MonitorOptions::seed.

std::chrono::steady_clock is allowed: it feeds wall-time *reporting*
(RunStatistics::wall_ms), never feedback state.
"""

import re

RULE_ID = "dpcf-nondeterminism"
DESCRIPTION = ("ambient entropy (rand, time, random_device, system_clock) "
               "in src/core or src/exec")

_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() is process-global state"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device draws hardware entropy"),
    (re.compile(r"(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock reads the wall clock"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"),
     "clock() reads CPU time"),
    (re.compile(r"\bgettimeofday\b"),
     "gettimeofday reads the wall clock"),
    (re.compile(r"\bstd::mt19937(?:_64)?\s+\w+\s*;"),
     "default-constructed mt19937 has an unseeded, implementation-defined "
     "state; seed it from MonitorOptions::seed"),
]


def _in_scope(source):
    rel = source.rel.replace("\\", "/")
    return rel.startswith(("src/core/", "src/exec/"))


def check(source):
    if not _in_scope(source):
        return
    for i, line in enumerate(source.code_lines, start=1):
        for pattern, why in _PATTERNS:
            if pattern.search(line):
                yield (i, f"{why}; feedback would differ run to run — "
                          "use a seeded generator from common/random.h")
