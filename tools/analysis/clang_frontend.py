"""libclang engine for dpcf_ast.py (rules 1-2).

When python bindings for libclang are importable and a
compile_commands.json is available, the discarded-status and unnamed-raii
rules run on real clang ASTs: return types come from the semantic
analyzer (so overload sets, templates and `auto` are exact, not
name-indexed), and "discarded" means the call is a full-expression
statement in a compound statement, exactly as the standard defines it.

The engine is deliberately defensive: any failure to import, load the
shared library, or parse a TU raises, and dpcf_ast.py (in --engine auto)
falls back to the token-tree engine for these rules. It is never the only
implementation — the fixtures in tests/ast_selftest pass on both engines,
and CI sets DPCF_AST_REQUIRE_CLANG=1 so a regression here fails loudly
instead of silently degrading.
"""

import json
import os
import shlex


class EngineUnavailable(RuntimeError):
    pass


# Canonical-type spellings counted as "must not be discarded".
_STATUS_SPELLINGS = ("dpcf::Status", "Status")
_RESULT_PREFIXES = ("dpcf::Result<", "Result<")

_RAII_TYPE_NAMES = {"MutexLock", "ScopedSpan", "QueryIdScope",
                    "WorkerRegion", "PageGuard", "lock_guard",
                    "unique_lock", "scoped_lock", "shared_lock"}

_RAII_FIX_NAMES = {"MutexLock": "lock", "ScopedSpan": "span",
                   "QueryIdScope": "qid_scope",
                   "WorkerRegion": "worker_region", "PageGuard": "guard",
                   "lock_guard": "lock", "unique_lock": "lock",
                   "scoped_lock": "lock", "shared_lock": "lock"}


class ClangEngine:
    def __init__(self, compdb_path):
        try:
            from clang import cindex
        except ImportError as e:
            raise EngineUnavailable(f"clang.cindex not importable: {e}")
        self.cindex = cindex
        try:
            self.index = cindex.Index.create()
        except Exception as e:  # LibclangError: .so missing/mismatched
            raise EngineUnavailable(f"libclang shared library: {e}")
        if compdb_path is None:
            raise EngineUnavailable(
                "no compile_commands.json found (configure a build dir "
                "first, or pass --compdb)")
        with open(compdb_path, encoding="utf-8") as fh:
            self.compdb = json.load(fh)

    # ------------------------------------------------------------------

    def analyze(self, sources, rule_ids, rel_of):
        """Returns finding tuples (rel, line, rule, message, fix) for the
        requested rules over every source that appears in (or is included
        by) a compile_commands.json entry."""
        wanted = {os.path.abspath(s.path) for s in sources}
        findings = []
        seen_tu_files = set()
        for entry in self.compdb:
            path = os.path.abspath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if not path.endswith(".cc"):
                continue
            args = self._entry_args(entry)
            tu = self.index.parse(path, args=args)
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                raise EngineUnavailable(
                    f"clang failed to parse {path}: {fatal[0].spelling}")
            self._walk(tu.cursor, wanted, rule_ids, rel_of, findings,
                       seen_tu_files)
        # Dedup: a header included from many TUs reports once.
        uniq = {}
        for f in findings:
            uniq.setdefault((f[0], f[1], f[2]), f)
        return sorted(uniq.values())

    def _entry_args(self, entry):
        if "arguments" in entry:
            args = list(entry["arguments"])[1:]
        else:
            args = shlex.split(entry.get("command", ""))[1:]
        # Drop the -o/-c and the input file; keep includes/defines/std.
        out, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a.endswith((".cc", ".o")):
                continue
            out.append(a)
        return out

    # ------------------------------------------------------------------

    def _walk(self, cursor, wanted, rule_ids, rel_of, findings, _seen):
        ck = self.cindex.CursorKind
        for node in cursor.walk_preorder():
            loc = node.location
            if loc.file is None or \
                    os.path.abspath(loc.file.name) not in wanted:
                continue
            if node.kind != ck.COMPOUND_STMT:
                continue
            for child in node.get_children():
                stmt = self._unwrap(child)
                if stmt is None:
                    continue
                if "dpcf-ast-discarded-status" in rule_ids:
                    f = self._check_discarded(stmt, rel_of)
                    if f:
                        findings.append(f)
                if "dpcf-ast-unnamed-raii" in rule_ids:
                    f = self._check_unnamed_raii(stmt, rel_of)
                    if f:
                        findings.append(f)

    def _unwrap(self, node):
        """Peels EXPR_WITH_CLEANUPS / UNEXPOSED_EXPR wrappers clang puts
        around full-expression statements."""
        ck = self.cindex.CursorKind
        while node is not None and node.kind in (ck.UNEXPOSED_EXPR,
                                                 ck.EXPR_WITH_CLEANUPS
                                                 if hasattr(
                                                     ck,
                                                     "EXPR_WITH_CLEANUPS")
                                                 else ck.UNEXPOSED_EXPR):
            children = list(node.get_children())
            if len(children) != 1:
                return node
            node = children[0]
        return node

    def _check_discarded(self, stmt, rel_of):
        ck = self.cindex.CursorKind
        if stmt.kind != ck.CALL_EXPR:
            return None
        ty = stmt.type.get_canonical().spelling
        is_status = ty in _STATUS_SPELLINGS or \
            any(ty.startswith(p) for p in _RESULT_PREFIXES)
        if not is_status:
            return None
        name = stmt.spelling or "<call>"
        loc = stmt.location
        return (rel_of(loc.file.name), loc.line,
                "dpcf-ast-discarded-status",
                f"result of '{name}' (returns {ty}) is silently "
                "discarded; check it, or (void)-cast with a comment "
                "saying why failure is impossible here [clang]", None)

    def _check_unnamed_raii(self, stmt, rel_of):
        ck = self.cindex.CursorKind
        temp_kinds = [ck.CXX_FUNCTIONAL_CAST_EXPR]
        if hasattr(ck, "CXX_TEMPORARY_OBJECT_EXPR"):
            temp_kinds.append(ck.CXX_TEMPORARY_OBJECT_EXPR)
        if stmt.kind not in temp_kinds and stmt.kind != ck.CALL_EXPR:
            return None
        ty = stmt.type.spelling
        base = ty.split("<")[0].split("::")[-1].strip()
        if base not in _RAII_TYPE_NAMES:
            return None
        # A named declaration's initializer is not a statement-child of
        # the compound statement, so reaching here means it is unnamed.
        loc = stmt.location
        name = _RAII_FIX_NAMES.get(base, "guard")
        return (rel_of(loc.file.name), loc.line, "dpcf-ast-unnamed-raii",
                f"'{base}' temporary is destroyed at the semicolon — the "
                f"guard covers nothing; name it (e.g. `{base} "
                f"{name}(...)`) [clang]", None)
