#!/usr/bin/env python3
"""dpcf-ast: semantic (AST-level) analysis for the DPCF tree.

Where tools/lint/dpcf_lint.py matches single lines, this analyzer builds a
whole-program model — resolved return types, the call graph, thread-safety
attribute arguments, lock scopes — and checks the properties that need it
(DESIGN.md section 13 has the catalog and the regex-vs-AST division of
labor):

  dpcf-ast-discarded-status   a call whose *resolved* return type is
                              Status/Result<T> (through typedefs and
                              member chains, across lines) discarded as a
                              bare statement
  dpcf-ast-unnamed-raii       MutexLock / ScopedSpan / QueryIdScope / ...
                              constructed as an unnamed temporary, which
                              destructs at the semicolon (--fix names it)
  dpcf-ast-nondeterminism     src/core + src/exec functions *reaching*
                              ambient entropy (rand, time, random_device,
                              *_clock::now) through the call graph, not
                              just mentioning it on a line; seeded-RNG
                              plumbing and reporting sinks are allowlisted
  dpcf-ast-guard-consistency  a GUARDED_BY(mu) field accessed under a
                              MutexLock on mu in one place and with no
                              lock on another path (the gcc-build shadow
                              of clang's thread-safety analysis)
  dpcf-ast-charge-conservation a function reading a heap-page image
                              (PageRowCount / RowInPage / PageRows /
                              FetchRow) with a return path that charges
                              neither IoStats nor CpuStats, directly or
                              through any callee

Engines: with python bindings for libclang available (CI installs them),
rules 1-2 run on real clang ASTs driven by compile_commands.json; the
remaining rules always run on the built-in token-tree model in
cpp_model.py, because libclang does not expose the *arguments* of
thread-safety attributes (GUARDED_BY(mu_) et al.) except as raw tokens.
Without libclang every rule runs on the token-tree model, so the analyzer
works — and its selftest passes — on a bare python3.

Usage:
  tools/analysis/dpcf_ast.py [options] PATH...
    --list-rules          print the rule catalog and exit
    --rule ID             run only this rule (repeatable)
    --engine {auto,clang,python}   AST engine (default auto)
    --compdb FILE         compile_commands.json (default: build*/...)
    --rel-root DIR        report paths relative to DIR (fixture trees)
    --json FILE           also write findings as JSON ('-' = stdout only)
    --fix                 apply fixes (names unnamed RAII temporaries)

Exit status: 0 clean, 1 findings, 2 usage error, 3 requested engine
unavailable.

Suppression: `// NOLINT(dpcf-ast-<rule>)` on the flagged line or
`// NOLINTNEXTLINE(dpcf-ast-<rule>)` above it, same as the repo lint; a
bare NOLINT suppresses everything. Each suppression is a reviewed
exception and should say why.
"""

import argparse
import json
import os
import re
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import cpp_model  # noqa: E402
from cpp_model import (  # noqa: E402
    Model, SourceFile, match_brackets, NON_CALL_KEYWORDS)

SOURCE_EXTENSIONS = (".h", ".cc")
# lint_selftest / ast_selftest hold deliberately-violating fixtures that
# their selftests analyze explicitly; negative_compile holds the clang-TSA
# must-not-compile cases, which violate the guard rules by construction.
SKIP_DIR_PATTERNS = re.compile(
    r"^(build.*|\.git|\.cache|__pycache__|lint_selftest|ast_selftest"
    r"|negative_compile)$")

NOLINT_RE = re.compile(r"//\s*NOLINT(?:NEXTLINE)?(?:\(([^)]*)\))?")
NOLINTNEXTLINE_RE = re.compile(r"//\s*NOLINTNEXTLINE(?:\(([^)]*)\))?")

# ---------------------------------------------------------------------------
# Shared vocabulary

# RAII types whose unnamed-temporary form is always a bug: the object's
# entire point is its scope, and `MutexLock(&mu);` unlocks at the `;`.
RAII_TYPES = {
    "MutexLock": "lock",
    "ScopedSpan": "span",
    "QueryIdScope": "qid_scope",
    "WorkerRegion": "worker_region",
    "PageGuard": "guard",
    "SubmissionGuard": "lock",
    "CompletionScope": "scope",
    "StallScope": "stall_scope",
    "lock_guard": "lock",
    "unique_lock": "lock",
    "scoped_lock": "lock",
    "shared_lock": "lock",
}

# Functions whose Status return is legitimately ignorable.
STATUS_IGNORED_NAMES = {"main"}

# Rule 3: the entropy sources, and where the call-graph walk stops.
CLOCK_NAMES = {"steady_clock", "system_clock", "high_resolution_clock"}
# (file-prefix, why) — functions defined under these prefixes are treated
# as sinks, not conduits: they may read clocks for *reporting* but feed
# nothing back into feedback state. The list is part of the rule's
# contract; DESIGN.md section 13 documents each entry.
NONDET_BARRIERS = [
    ("src/common/random", "the seeded-RNG plumbing itself"),
    ("src/obs/", "observability sinks: spans/metrics timing, never state"),
    ("src/storage/buffer_pool", "miss-read latency histogram timing only"),
    ("src/storage/disk_manager",
     "submission-ring latency histogram/span timing only"),
]

# Rule 5: page-image readers and the charge-token vocabulary.
PAGE_READERS = {"PageRowCount", "RowInPage", "PageRows", "FetchRow",
                "CopyPageImage"}
CHARGE_TOKENS = {
    # IoStats (storage/io_stats.h)
    "physical_seq_reads", "physical_rand_reads", "physical_writes",
    "prefetch_reads", "prefetch_hits", "prefetch_rejected",
    "logical_reads", "buffer_hits", "raw_page_reads",
    # CpuStats
    "rows_processed", "predicate_atom_evals", "monitor_hash_ops",
    "monitor_row_ops", "hash_table_ops",
}
# Files that *define* the page accessors / charge primitives: exempt from
# rule 5 (the reader itself cannot charge on behalf of its caller).
CHARGE_EXEMPT_PREFIXES = ("src/table/heap_file", "src/table/row_codec",
                         "src/storage/io_stats")


class Finding:
    __slots__ = ("rel", "line", "rule", "message", "fix")

    def __init__(self, rel, line, rule, message, fix=None):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message
        self.fix = fix  # (path, line, col, insert_text) or None

    def sort_key(self):
        return (self.rel, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# Statement iteration helpers (shared by rules 1 and 2)

def body_statements(src, fn, brackets):
    """Yields (start, end) absolute token-index ranges for the expression
    statements in fn's body, at every block depth. `end` is exclusive and
    does not include the ';'. Control-flow headers and block braces act as
    boundaries; a '{' directly after an identifier or '>' is treated as a
    braced initializer and stays inside its statement."""
    toks = src.tokens
    i = fn.body_start + 1
    end = fn.body_end
    start = i
    while i < end:
        t = toks[i]
        if t.text in ("(", "["):
            i = brackets.get(i, i) + 1
            continue
        if t.text == "{":
            prev = toks[i - 1]
            if prev.kind == "ident" and prev.text not in NON_CALL_KEYWORDS \
                    or prev.text == ">":
                i = brackets.get(i, i) + 1  # braced init: part of the stmt
                continue
            start = i + 1  # block open: boundary
            i += 1
            continue
        if t.text == "}":
            start = i + 1
            i += 1
            continue
        if t.text == ";":
            if i > start:
                yield (start, i)
            start = i + 1
            i += 1
            continue
        if t.text == ":" and i > start and toks[i - 1].kind == "ident" \
                and toks[i - 1].text in ("public", "private", "protected",
                                         "default", "else"):
            start = i + 1  # labels inside local classes / switch
            i += 1
            continue
        i += 1


# ---------------------------------------------------------------------------
# Rule 1: dpcf-ast-discarded-status

class DiscardedStatusRule:
    RULE_ID = "dpcf-ast-discarded-status"
    DESCRIPTION = ("call with resolved return type Status/Result<T> "
                   "discarded as a bare statement")

    def __init__(self, model):
        self.model = model
        self.status_names = model.status_like_names(STATUS_IGNORED_NAMES)

    def check(self, src, brackets, reverse):
        for fn in self.model.functions:
            if fn.file is not src:
                continue
            for start, end in body_statements(src, fn, brackets):
                callee = self._bare_call(src, brackets, reverse, start, end)
                if callee is None:
                    continue
                name = src.tokens[callee].text
                if name not in self.status_names:
                    continue
                types = sorted(self.model.resolve_type(t) for t in
                               self.model.return_types.get(name, ()))
                ty = types[0].replace(" ", "") if types else "Status"
                yield Finding(
                    src.rel, src.tokens[callee].line, self.RULE_ID,
                    f"result of '{name}' (returns {ty}) is silently "
                    "discarded; every declaration of this name in the "
                    "tree returns Status/Result — check it, or "
                    "(void)-cast with a comment saying why failure is "
                    "impossible here")

    @staticmethod
    def _bare_call(src, brackets, reverse, start, end):
        toks = src.tokens
        if end - start < 3 or toks[end - 1].text != ")":
            return None
        open_idx = reverse.get(end - 1)
        if open_idx is None or open_idx <= start:
            return None
        callee = open_idx - 1
        ct = toks[callee]
        if ct.kind != "ident" or ct.text in NON_CALL_KEYWORDS:
            return None
        i = start
        expect_connector = False
        while i < callee:
            t = toks[i]
            if t.text in ("(", "["):
                i = brackets.get(i, i) + 1
                expect_connector = True
                continue
            if t.kind == "ident" and t.text not in NON_CALL_KEYWORDS:
                if expect_connector:
                    return None
                i += 1
                expect_connector = True
                continue
            if t.text in ("::", ".", "->") :
                i += 1
                expect_connector = False
                continue
            if t.text == "this":
                i += 1
                expect_connector = True
                continue
            return None
        if i != callee or expect_connector:
            return None
        return callee


# ---------------------------------------------------------------------------
# Rule 2: dpcf-ast-unnamed-raii

class UnnamedRaiiRule:
    RULE_ID = "dpcf-ast-unnamed-raii"
    DESCRIPTION = ("scope-guard type (MutexLock, ScopedSpan, ...) "
                   "constructed as an unnamed temporary")

    def __init__(self, model):
        self.model = model

    def check(self, src, brackets, reverse):
        for fn in self.model.functions:
            if fn.file is not src:
                continue
            body_names = {t.text for t in
                          src.tokens[fn.body_start:fn.body_end]
                          if t.kind == "ident"}
            for start, end in body_statements(src, fn, brackets):
                hit = self._unnamed_temp(src, brackets, start, end)
                if hit is None:
                    continue
                type_idx, args_idx = hit
                type_tok = src.tokens[type_idx]
                base = RAII_TYPES[type_tok.text]
                name = base
                n = 2
                while name in body_names:
                    name = f"{base}{n}"
                    n += 1
                args_tok = src.tokens[args_idx]
                yield Finding(
                    src.rel, type_tok.line, self.RULE_ID,
                    f"'{type_tok.text}' temporary is destroyed at the "
                    "semicolon — the guard covers nothing; name it "
                    f"(e.g. `{type_tok.text} {name}(...)`)",
                    fix=(src.path, args_tok.line, args_tok.col,
                         f" {name}"))

    @staticmethod
    def _unnamed_temp(src, brackets, start, end):
        """Matches `[ns::]* RaiiType ( ... )` or `{ ... }` spanning the
        whole statement; returns (type_idx, open_idx) or None."""
        toks = src.tokens
        i = start
        # Optional namespace qualifiers: `std::scoped_lock(...)`.
        while i + 1 < end and toks[i].kind == "ident" and \
                toks[i + 1].text == "::":
            i += 2
        if i >= end or toks[i].kind != "ident":
            return None
        type_idx = i
        if toks[i].text not in RAII_TYPES:
            return None
        i += 1
        # Optional template arguments: `lock_guard<Mutex>(mu)`.
        if i < end and toks[i].text == "<":
            depth = 1
            i += 1
            while i < end and depth:
                if toks[i].text == "<":
                    depth += 1
                elif toks[i].text == ">":
                    depth -= 1
                elif toks[i].text == ">>":
                    depth -= 2
                i += 1
            if depth:
                return None
        if i >= end or toks[i].text not in ("(", "{"):
            return None
        close = brackets.get(i)
        if close != end - 1:
            return None  # something follows the ctor args: not unnamed
        return (type_idx, i)


# ---------------------------------------------------------------------------
# Rule 3: dpcf-ast-nondeterminism

class NondeterminismRule:
    RULE_ID = "dpcf-ast-nondeterminism"
    DESCRIPTION = ("src/core + src/exec code reaching ambient entropy "
                   "(rand/time/random_device/*_clock::now) via the call "
                   "graph")

    SCOPE_PREFIXES = ("src/core/", "src/exec/")

    def __init__(self, model):
        self.model = model
        self._reach_memo = {}

    # -- entropy classification ------------------------------------------

    def _receiver_idents(self, receiver):
        idents = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", receiver)
        out = set(idents)
        for ident in idents:
            resolved = self.model.aliases.get(ident)
            if resolved:
                out.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", resolved))
        return out

    def direct_entropy_calls(self, fn):
        """Yields (token_index, description) for entropy read directly in
        fn's body."""
        toks = fn.file.tokens
        for name, idx, receiver in fn.calls:
            recv = self._receiver_idents(receiver)
            bare = not recv or recv <= {"std"}
            if name in ("rand", "srand") and bare:
                yield idx, f"{name}() (process-global PRNG)"
            elif name == "time" and (bare or recv <= {"std", "nullptr"}):
                yield idx, "time() (wall clock)"
            elif name == "clock" and bare:
                yield idx, "clock() (CPU time)"
            elif name == "gettimeofday":
                yield idx, "gettimeofday() (wall clock)"
            elif name == "now" and recv & CLOCK_NAMES:
                clock = sorted(recv & CLOCK_NAMES)[0]
                yield idx, f"{clock}::now() (clock read)"
        for i in range(fn.body_start + 1, fn.body_end):
            t = toks[i]
            if t.kind == "ident" and t.text == "random_device":
                yield i, "std::random_device (hardware entropy)"

    # -- call-graph closure ----------------------------------------------

    def _is_barrier(self, fn):
        return any(fn.file.rel.startswith(p) for p, _ in NONDET_BARRIERS)

    def _in_scope(self, fn):
        return fn.file.rel.startswith(self.SCOPE_PREFIXES)

    def reaches_entropy(self, name, _stack=None):
        """Shortest-discovered chain [name, ..., source-description] by
        which `name` reaches entropy, or None. Barrier functions absorb;
        undefined names are assumed pure."""
        if name in self._reach_memo:
            return self._reach_memo[name]
        if _stack is None:
            _stack = set()
        if name in _stack:
            return None
        _stack.add(name)
        result = None
        for fn in self.model.defined_names.get(name, ()):
            if self._is_barrier(fn):
                continue
            for _, desc in self.direct_entropy_calls(fn):
                result = [name, desc]
                break
            if result:
                break
            for callee, _, _ in fn.calls:
                if callee == name or callee in NON_CALL_KEYWORDS:
                    continue
                sub = self.reaches_entropy(callee, _stack)
                if sub:
                    result = [name] + sub
                    break
            if result:
                break
        _stack.discard(name)
        self._reach_memo[name] = result
        return result

    def check(self, src, brackets, reverse):
        del brackets, reverse
        for fn in self.model.functions:
            if fn.file is not src or not self._in_scope(fn):
                continue
            toks = src.tokens
            seen_lines = set()
            for idx, desc in self.direct_entropy_calls(fn):
                line = toks[idx].line
                if line in seen_lines:
                    continue
                seen_lines.add(line)
                yield Finding(
                    src.rel, line, self.RULE_ID,
                    f"'{fn.display_name}' reads {desc} directly; feedback "
                    "must be a pure function of (data, seed) — route "
                    "randomness through common/random.h and timestamps "
                    "through the observability sinks")
            for callee, idx, _ in fn.calls:
                defs = self.model.defined_names.get(callee)
                if not defs:
                    continue
                if any(self._in_scope(d) for d in defs):
                    continue  # flagged at its own definition instead
                if all(self._is_barrier(d) for d in defs):
                    continue
                chain = self.reaches_entropy(callee)
                if not chain:
                    continue
                line = toks[idx].line
                if line in seen_lines:
                    continue
                seen_lines.add(line)
                pretty = " -> ".join([fn.display_name] + chain)
                yield Finding(
                    src.rel, line, self.RULE_ID,
                    f"call reaches ambient entropy: {pretty}; feedback "
                    "must be deterministic, so either seed this path or "
                    "add the callee to the reviewed reporting barriers")


# ---------------------------------------------------------------------------
# Rule 4: dpcf-ast-guard-consistency

class GuardConsistencyRule:
    RULE_ID = "dpcf-ast-guard-consistency"
    DESCRIPTION = ("GUARDED_BY field locked on some accesses and "
                   "lock-free on others")

    def __init__(self, model):
        self.model = model
        # Evaluated whole-program in prepare_findings(); check() then
        # yields per file.
        self._by_file = {}
        self._prepare()

    def _prepare(self):
        for gf in self.model.guarded_fields:
            owners = set(gf.cls_chain)
            if not owners:
                continue
            guarded, unguarded = [], []
            for fn in self.model.functions:
                if not (set(fn.owner_chain) & owners):
                    continue
                if fn.no_tsa or fn.name in self.model.declared_no_tsa \
                        or fn.name in owners or fn.name.startswith("~"):
                    continue
                g, u = self._classify_accesses(fn, gf)
                guarded.extend(g)
                unguarded.extend(u)
            if not guarded or not unguarded:
                continue
            g_src, g_line = guarded[0]
            for (u_src, u_line) in sorted(set(unguarded),
                                          key=lambda x: (x[0].rel, x[1])):
                self._by_file.setdefault(u_src, []).append(Finding(
                    u_src.rel, u_line, self.RULE_ID,
                    f"'{'::'.join(gf.cls_chain)}::{gf.name}' is "
                    f"GUARDED_BY({gf.guard_expr}) and locked at e.g. "
                    f"{g_src.rel}:{g_line}, but this access holds no "
                    f"MutexLock on '{gf.guard_last}' and the enclosing "
                    "function does not REQUIRES it"))

    def _classify_accesses(self, fn, gf):
        src = fn.file
        toks = src.tokens
        brackets = match_brackets(toks)
        requires_lasts = set()
        all_requires = list(fn.requires) + \
            self.model.declared_requires.get(fn.name, [])
        for expr in all_requires:
            for part in expr.split(","):
                idents = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", part)
                if idents:
                    requires_lasts.add(idents[-1])
        # Lock regions: (start_idx, end_idx, guard_last).
        regions = []
        block_stack = []
        i = fn.body_start + 1
        while i < fn.body_end:
            t = toks[i]
            if t.text == "{":
                block_stack.append(brackets.get(i, fn.body_end))
                i += 1
                continue
            if t.text == "}":
                if block_stack:
                    block_stack.pop()
                i += 1
                continue
            if t.kind == "ident" and t.text in ("MutexLock", "lock_guard",
                                                "scoped_lock",
                                                "unique_lock"):
                j = i + 1
                if j < fn.body_end and toks[j].text == "<":  # lock_guard<>
                    depth = 1
                    j += 1
                    while j < fn.body_end and depth:
                        depth += {"<": 1, ">": -1}.get(toks[j].text, 0)
                        j += 1
                if j < fn.body_end and toks[j].kind == "ident":
                    j += 1  # the variable name
                if j < fn.body_end and toks[j].text == "(":
                    close = brackets.get(j, j)
                    idents = [t2.text for t2 in toks[j + 1:close]
                              if t2.kind == "ident"]
                    if idents:
                        scope_end = block_stack[-1] if block_stack \
                            else fn.body_end
                        regions.append((close, scope_end, idents[-1]))
                    i = close + 1
                    continue
            i += 1
        # Direct lock()/unlock() calls on the guard also open a region
        # (BufferPool's serialize_miss_io path does this around cv waits).
        i = fn.body_start + 1
        while i < fn.body_end:
            t = toks[i]
            if t.kind == "ident" and t.text == "lock" and \
                    i + 1 < fn.body_end and toks[i + 1].text == "(" and \
                    toks[i - 1].text in (".", "->") and \
                    toks[i - 2].kind == "ident":
                # receiver chain last ident before `.lock(`
                if self._expr_last_ident(toks, i - 2) == gf.guard_last:
                    regions.append((i, fn.body_end, gf.guard_last))
            i += 1
        guarded, unguarded = [], []
        for i in range(fn.body_start + 1, fn.body_end):
            t = toks[i]
            if t.kind != "ident" or t.text != gf.name:
                continue
            nxt = toks[i + 1] if i + 1 < fn.body_end else None
            if nxt is not None and nxt.text == "(":
                continue  # a call, not a field access
            prev = toks[i - 1]
            if prev.text == "::":
                continue  # qualified name, e.g. Class::field in a sizeof
            if not (prev.text in (".", "->") or gf.name.endswith("_")):
                continue  # likely an unrelated local
            if any(r_start < i <= r_end and last == gf.guard_last
                   for r_start, r_end, last in regions):
                guarded.append((src, t.line))
            elif gf.guard_last in requires_lasts:
                guarded.append((src, t.line))
            else:
                unguarded.append((src, t.line))
        return guarded, unguarded

    @staticmethod
    def _expr_last_ident(toks, idx):
        return toks[idx].text if toks[idx].kind == "ident" else None

    def check(self, src, brackets, reverse):
        del brackets, reverse
        for finding in self._by_file.get(src, []):
            yield finding


# ---------------------------------------------------------------------------
# Rule 5: dpcf-ast-charge-conservation

class ChargeConservationRule:
    RULE_ID = "dpcf-ast-charge-conservation"
    DESCRIPTION = ("page-image read with a return path charging neither "
                   "IoStats nor CpuStats")

    def __init__(self, model):
        self.model = model
        self.charging = self._charging_closure()

    def _charging_closure(self):
        """Function names that charge IoStats/CpuStats directly or through
        any callee (name-level fixpoint over the call graph)."""
        charging = set()
        direct = {}
        for fn in self.model.functions:
            toks = fn.file.tokens
            has = any(toks[i].kind == "ident" and
                      toks[i].text in CHARGE_TOKENS
                      for i in range(fn.body_start + 1, fn.body_end))
            direct[fn] = has
            if has:
                charging.add(fn.name)
        changed = True
        while changed:
            changed = False
            for fn in self.model.functions:
                if fn.name in charging:
                    continue
                if any(callee in charging for callee, _, _ in fn.calls):
                    charging.add(fn.name)
                    changed = True
        return charging

    def _in_scope(self, fn):
        rel = fn.file.rel
        if not rel.startswith("src/"):
            return False
        return not rel.startswith(CHARGE_EXEMPT_PREFIXES)

    def check(self, src, brackets, reverse):
        del reverse
        toks = src.tokens
        for fn in self.model.functions:
            if fn.file is not src or not self._in_scope(fn):
                continue
            readers = [(idx, name) for name, idx, _ in fn.calls
                       if name in PAGE_READERS]
            if not readers:
                continue
            first_idx, first_name = min(readers)
            charge_positions = [
                i for i in range(fn.body_start + 1, fn.body_end)
                if toks[i].kind == "ident" and toks[i].text in CHARGE_TOKENS]
            charge_positions += [idx for callee, idx, _ in fn.calls
                                 if callee in self.charging]
            charge_positions.sort()
            # Return paths after the first read must see a charge first;
            # the implicit fall-off-the-end return of a void function is
            # modelled as a return at the closing brace.
            returns = [i for i in range(fn.body_start + 1, fn.body_end)
                       if toks[i].kind == "ident" and
                       toks[i].text == "return" and i > first_idx]
            if not returns:
                returns = [fn.body_end]
            for r in returns:
                if any(c < r for c in charge_positions):
                    continue
                line = toks[min(r, fn.body_end - 1)].line
                yield Finding(
                    src.rel, fn.line, self.RULE_ID,
                    f"'{fn.display_name}' reads the page image via "
                    f"'{first_name}' (line {toks[first_idx].line}) but "
                    f"the path returning at line {line} charges neither "
                    "IoStats nor CpuStats, directly or via any callee; "
                    "every page access must be accounted so estimation-"
                    "error diagnosis can trust the counters")
                break  # one finding per function keeps the signal readable


ALL_RULES = [DiscardedStatusRule, UnnamedRaiiRule, NondeterminismRule,
             GuardConsistencyRule, ChargeConservationRule]
CLANG_RULES = {"dpcf-ast-discarded-status", "dpcf-ast-unnamed-raii"}


# ---------------------------------------------------------------------------
# Driver

def discover_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs if not SKIP_DIR_PATTERNS.match(d))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"dpcf_ast: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def repo_relative(path, rel_root=None):
    root = (os.path.abspath(rel_root) if rel_root
            else os.path.dirname(os.path.dirname(_HERE)))
    try:
        return os.path.relpath(os.path.abspath(path), root).replace(
            "\\", "/")
    except ValueError:
        return path


def find_compdb(explicit):
    if explicit:
        if not os.path.isfile(explicit):
            print(f"dpcf_ast: compdb not found: {explicit}",
                  file=sys.stderr)
            sys.exit(2)
        return explicit
    repo_root = os.path.dirname(os.path.dirname(_HERE))
    for entry in sorted(os.listdir(repo_root)):
        if entry.startswith("build"):
            candidate = os.path.join(repo_root, entry,
                                     "compile_commands.json")
            if os.path.isfile(candidate):
                return candidate
    return None


def suppressed_rules(raw_lines, line_no):
    suppressed = set()
    if not 1 <= line_no <= len(raw_lines):
        return suppressed
    line = raw_lines[line_no - 1]
    m = NOLINT_RE.search(line)
    if m and not NOLINTNEXTLINE_RE.search(line):
        if m.group(1) is None:
            return None
        suppressed.update(r.strip() for r in m.group(1).split(","))
    if line_no >= 2:
        m = NOLINTNEXTLINE_RE.search(raw_lines[line_no - 2])
        if m:
            if m.group(1) is None:
                return None
            suppressed.update(r.strip() for r in m.group(1).split(","))
    return suppressed


def apply_fixes(findings):
    """Applies insert-text fixes bottom-up per file; returns count."""
    by_path = {}
    for f in findings:
        if f.fix:
            by_path.setdefault(f.fix[0], []).append(f.fix)
    applied = 0
    for path, fixes in by_path.items():
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines(keepends=True)
        for _, line, col, text in sorted(fixes, reverse=True):
            raw = lines[line - 1]
            lines[line - 1] = raw[:col] + text + raw[col:]
            applied += 1
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("".join(lines))
    return applied


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--rule", action="append", default=[])
    parser.add_argument("--engine", choices=("auto", "clang", "python"),
                        default="auto")
    parser.add_argument("--compdb", default=None)
    parser.add_argument("--rel-root", default=None)
    parser.add_argument("--json", dest="json_out", default=None,
                        metavar="FILE")
    parser.add_argument("--fix", action="store_true",
                        help="apply fixes (names unnamed RAII temporaries)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE_ID}: {rule.DESCRIPTION}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    selected = {r.RULE_ID for r in ALL_RULES}
    if args.rule:
        unknown = [r for r in args.rule if r not in selected]
        if unknown:
            print(f"dpcf_ast: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        selected = set(args.rule)

    # ---- engine selection ----
    clang_engine = None
    if args.engine in ("auto", "clang") and selected & CLANG_RULES:
        try:
            import clang_frontend
            clang_engine = clang_frontend.ClangEngine(
                find_compdb(args.compdb))
        except Exception as e:  # ImportError, LibclangError, bad compdb
            if args.engine == "clang":
                print(f"dpcf_ast: --engine clang requested but libclang "
                      f"is unavailable: {e}", file=sys.stderr)
                return 3
            print(f"dpcf_ast: note: libclang unavailable ({e}); all "
                  "rules run on the built-in token-tree engine",
                  file=sys.stderr)
            clang_engine = None

    files = discover_files(args.paths)
    sources = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"dpcf_ast: cannot read {path}: {e}", file=sys.stderr)
            return 2
        sources.append(SourceFile(path, repo_relative(path, args.rel_root),
                                  text))

    model = Model(sources)
    rules = [cls(model) for cls in ALL_RULES if cls.RULE_ID in selected]

    findings = []
    token_rules = [r for r in rules
                   if clang_engine is None or r.RULE_ID not in CLANG_RULES]
    for src in sources:
        brackets = match_brackets(src.tokens)
        reverse = {c: o for o, c in brackets.items()}
        for rule in token_rules:
            findings.extend(rule.check(src, brackets, reverse))

    if clang_engine is not None:
        try:
            clang_findings = clang_engine.analyze(
                sources, selected & CLANG_RULES,
                lambda p: repo_relative(p, args.rel_root))
            findings.extend(Finding(*f) for f in clang_findings)
        except Exception as e:
            if args.engine == "clang":
                print(f"dpcf_ast: clang engine failed: {e}",
                      file=sys.stderr)
                return 3
            print(f"dpcf_ast: note: clang engine failed ({e}); falling "
                  "back to the token-tree engine for its rules",
                  file=sys.stderr)
            for src in sources:
                brackets = match_brackets(src.tokens)
                reverse = {c: o for o, c in brackets.items()}
                for rule in rules:
                    if rule.RULE_ID in CLANG_RULES:
                        findings.extend(rule.check(src, brackets, reverse))

    # ---- suppression ----
    raw_by_rel = {s.rel: s.raw_lines for s in sources}
    kept = []
    for f in findings:
        sup = suppressed_rules(raw_by_rel.get(f.rel, []), f.line)
        if sup is None or f.rule in sup:
            continue
        kept.append(f)
    # Dedup (clang + token engines may agree) and sort.
    uniq = {}
    for f in kept:
        uniq.setdefault((f.rel, f.line, f.rule), f)
    kept = sorted(uniq.values(), key=Finding.sort_key)

    engine_name = "clang+python" if clang_engine is not None else "python"
    payload = {
        "engine": engine_name,
        "count": len(kept),
        "findings": [{"file": f.rel, "line": f.line, "rule": f.rule,
                      "message": f.message} for f in kept],
    }
    if args.json_out == "-":
        print(json.dumps(payload, indent=2))
    else:
        for f in kept:
            print(f"{f.rel}:{f.line}: [{f.rule}] {f.message}")
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")

    if args.fix:
        applied = apply_fixes(kept)
        print(f"dpcf_ast: applied {applied} fix(es)", file=sys.stderr)

    if kept:
        print(f"dpcf_ast: {len(kept)} finding(s) in {len(files)} file(s) "
              f"[engine: {engine_name}]", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
