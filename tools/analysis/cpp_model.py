"""Token-tree C++ frontend for the DPCF AST analyzer (dpcf_ast.py).

This is the analyzer's built-in semantic model, used for every rule when
libclang is unavailable and for the attribute/call-graph rules even when it
is (libclang does not expose the *arguments* of thread-safety attributes
such as GUARDED_BY, so those are parsed from tokens in both engines).

It is deliberately not a full C++ parser. It tokenizes, tracks
namespace/class/function scopes by brace matching, and builds a
whole-program model with exactly the facts the rules need:

  * every function definition with its body token range, qualifier chain,
    REQUIRES(...) clauses and NO_THREAD_SAFETY_ANALYSIS marker;
  * a repo-wide return-type index (function name -> set of declared return
    types), with `using`/`typedef` aliases resolved, so a call statement
    can be checked against the *resolved* type rather than a same-line
    regex;
  * every GUARDED_BY field with its owning class chain and mutex
    expression;
  * a name-level call graph (callee name -> call sites per function).

The idiom constraints of this codebase (Google style, no function-try
blocks, no K&R declarations) are assumed; on code it cannot follow the
model errs toward *not* reporting, and the fixture suite in
tests/ast_selftest pins the behaviors the rules rely on.
"""

import os
import re

# C++ keywords that can precede a '(' without being a call/function name.
NON_CALL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "new", "delete", "throw", "case", "do", "else",
    "static_assert", "noexcept", "co_await", "co_return", "co_yield",
    "assert", "defined", "typeid",
}

# Declaration specifiers stripped when reconstructing a return type.
DECL_SPECIFIERS = {
    "virtual", "static", "inline", "constexpr", "consteval", "constinit",
    "explicit", "friend", "extern", "mutable", "typename",
}

# Trailing tokens allowed between a parameter list's ')' and the body '{'
# (besides annotation macros, which are ALL_CAPS idents with optional
# parens).
SIGNATURE_TRAILERS = {"const", "noexcept", "override", "final", "mutable",
                      "volatile", "&", "&&", "->", "try"}

_TWO_CHAR_PUNCT = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
}
_THREE_CHAR_PUNCT = {"<=>", "->*", "...", "<<=", ">>="}

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_ALL_CAPS = re.compile(r"^[A-Z][A-Z0-9_]*$")


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # ident | number | string | char | punct
        self.text = text
        self.line = line  # 1-based
        self.col = col    # 0-based offset in the raw line

    def __repr__(self):
        return f"Token({self.kind},{self.text!r},{self.line})"


def tokenize(text):
    """Lexes `text` into Tokens, dropping comments and preprocessor lines
    (except that #include targets never matter to the rules). String and
    char literals become single tokens so their contents cannot confuse
    statement parsing."""
    tokens = []
    i, n = 0, len(text)
    line, col = 1, 0

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 0
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c in " \t\r\n":
            advance(1)
            continue
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if c == "/" and nxt == "*":
            advance(2)
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                advance(1)
            advance(2)
            continue
        if c == "#" and (col == 0 or text[:i].rstrip(" \t").endswith("\n")):
            # Preprocessor directive: skip to end of line, honoring
            # backslash continuations.
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    advance(2)
                    continue
                if text[i] == "\n":
                    break
                advance(1)
            continue
        if c in "\"'":
            quote = c
            start_line, start_col = line, col
            j = i + 1
            buf = [c]
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j:j + 2])
                    j += 2
                    continue
                buf.append(text[j])
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            tok_text = "".join(buf)
            tokens.append(Token("string" if quote == '"' else "char",
                                tok_text, start_line, start_col))
            advance(j - i)
            continue
        if _IDENT_START.match(c):
            m = _IDENT.match(text, i)
            word = m.group(0)
            tokens.append(Token("ident", word, line, col))
            advance(len(word))
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'+-"):
                # '+'/'-' only directly after an exponent marker.
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            tokens.append(Token("number", text[i:j], line, col))
            advance(j - i)
            continue
        three = text[i:i + 3]
        if three in _THREE_CHAR_PUNCT:
            tokens.append(Token("punct", three, line, col))
            advance(3)
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_PUNCT:
            tokens.append(Token("punct", two, line, col))
            advance(2)
            continue
        tokens.append(Token("punct", c, line, col))
        advance(1)
    return tokens


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.raw_lines = text.splitlines()
        self.tokens = tokenize(text)


class FunctionDef:
    """One function definition (a body was seen)."""

    __slots__ = ("name", "qualifier", "lexical_classes", "file", "line",
                 "sig_start", "body_start", "body_end", "requires",
                 "no_tsa", "calls")

    def __init__(self, name, qualifier, lexical_classes, file, line,
                 sig_start, body_start, body_end, requires, no_tsa):
        self.name = name
        # Explicit qualifier chain at the definition ("BufferPool" in
        # `BufferPool::Fetch`), innermost last. Empty for free functions
        # and inline methods.
        self.qualifier = qualifier
        # Class scopes the definition is lexically nested in (for inline
        # methods), innermost last.
        self.lexical_classes = lexical_classes
        self.file = file
        self.line = line
        self.sig_start = sig_start    # token index of the name
        self.body_start = body_start  # token index of '{'
        self.body_end = body_end      # token index of matching '}'
        self.requires = requires      # raw REQUIRES(...) expr strings
        self.no_tsa = no_tsa
        self.calls = []               # (callee_name, token_index, receiver)

    @property
    def owner_chain(self):
        """Class chain owning this method, best effort: the explicit
        qualifier if present, else the lexical class nesting."""
        return self.qualifier or self.lexical_classes

    @property
    def display_name(self):
        return "::".join(list(self.owner_chain) + [self.name])

    def body_tokens(self, tokens):
        return tokens[self.body_start + 1:self.body_end]


class GuardedField:
    __slots__ = ("cls_chain", "name", "guard_expr", "file", "line")

    def __init__(self, cls_chain, name, guard_expr, file, line):
        self.cls_chain = cls_chain  # ("BufferPool", "Shard")
        self.name = name
        self.guard_expr = guard_expr  # "mu", "disk->mu_", ...
        self.file = file
        self.line = line

    @property
    def guard_last(self):
        """Last identifier of the mutex expression — what a MutexLock
        statement's argument is matched against."""
        parts = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", self.guard_expr)
        return parts[-1] if parts else self.guard_expr


def match_brackets(tokens):
    """Returns {open_index: close_index} for (), {} and [] pairs."""
    match = {}
    stack = []
    pairs = {"(": ")", "{": "}", "[": "]"}
    closers = {")": "(", "}": "{", "]": "["}
    for idx, tok in enumerate(tokens):
        if tok.kind != "punct":
            continue
        if tok.text in pairs:
            stack.append((tok.text, idx))
        elif tok.text in closers:
            # Pop until the matching opener kind (tolerates unbalanced
            # input from macro tricks rather than crashing).
            while stack:
                kind, open_idx = stack.pop()
                if kind == closers[tok.text]:
                    match[open_idx] = idx
                    break
    return match


class Model:
    """Whole-program facts over a set of SourceFiles."""

    def __init__(self, sources):
        self.sources = sources
        self.functions = []          # FunctionDef, every file
        self.aliases = {}            # alias name -> underlying type string
        self.return_types = {}       # function name -> set of type strings
        self.guarded_fields = []     # GuardedField
        self.defined_names = {}      # name -> [FunctionDef]
        # Annotations live on *declarations* (headers); out-of-line
        # definitions do not repeat them, so rules consult these by name.
        self.declared_requires = {}  # name -> [REQUIRES expr strings]
        self.declared_no_tsa = set()
        for src in sources:
            try:
                self._scan_file(src)
            except Exception as e:  # keep going; one odd file must not
                import sys          # take down the whole run
                print(f"dpcf_ast: warning: model error in {src.rel}: {e}",
                      file=sys.stderr)
        for fn in self.functions:
            self.defined_names.setdefault(fn.name, []).append(fn)
            self._collect_calls(fn)

    # ---- harvesting -----------------------------------------------------

    def _scan_file(self, src):
        toks = src.tokens
        brackets = match_brackets(toks)
        # Scope stack entries: (kind, name, close_index) where kind is
        # 'namespace' | 'class' | 'other'.
        scopes = []
        i = 0
        n = len(toks)
        while i < n:
            tok = toks[i]
            while scopes and i >= scopes[-1][2]:
                scopes.pop()
            if tok.kind != "ident":
                i += 1
                continue

            if tok.text in ("using", "typedef"):
                i = self._harvest_alias(src, toks, i)
                continue

            if tok.text in ("GUARDED_BY", "PT_GUARDED_BY"):
                i = self._harvest_guarded_at(src, toks, brackets, i, scopes)
                continue

            if tok.text in ("class", "struct") and i + 1 < n:
                j = i + 1
                # skip attributes / export macros between keyword and name
                while j < n and toks[j].kind == "ident" and \
                        _ALL_CAPS.match(toks[j].text):
                    # CAPABILITY("mutex") style macro with optional parens
                    if j + 1 < n and toks[j + 1].text == "(":
                        j = brackets.get(j + 1, j + 1) + 1
                    else:
                        j += 1
                if j < n and toks[j].kind == "ident":
                    name = toks[j].text
                    k = j + 1
                    # scan to '{' (definition) or ';' (fwd decl) at depth 0
                    while k < n and toks[k].text not in ("{", ";"):
                        if toks[k].text in ("(", "[", "<"):
                            pass  # base lists with templates stay linear
                        k += 1
                    if k < n and toks[k].text == "{":
                        close = brackets.get(k, n)
                        scopes.append(("class", name, close))
                        i = k + 1
                        continue
                i = j
                continue

            if tok.text == "namespace":
                j = i + 1
                name = ""
                if j < n and toks[j].kind == "ident":
                    name = toks[j].text
                    j += 1
                if j < n and toks[j].text == "{":
                    scopes.append(("namespace", name, brackets.get(j, n)))
                    i = j + 1
                    continue
                i = j
                continue

            fn = self._try_function_def(src, toks, brackets, i, scopes)
            if fn is not None:
                self.functions.append(fn)
                i = fn.body_start + 1  # descend into the body (lambdas,
                continue               # local classes are re-scanned)
            i += 1

    def _harvest_alias(self, src, toks, i):
        """`using X = type;` / `typedef type X;`"""
        n = len(toks)
        j = i + 1
        if toks[i].text == "using":
            if j + 1 < n and toks[j].kind == "ident" and \
                    toks[j + 1].text == "=":
                name = toks[j].text
                k = j + 2
                ty = []
                while k < n and toks[k].text != ";":
                    ty.append(toks[k].text)
                    k += 1
                self.aliases[name] = " ".join(ty)
                return k
            return j
        # typedef: the alias is the last identifier before ';'
        k = j
        parts = []
        while k < n and toks[k].text != ";":
            parts.append(toks[k])
            k += 1
        idents = [t for t in parts if t.kind == "ident"]
        if len(idents) >= 2:
            alias = idents[-1].text
            ty = " ".join(t.text for t in parts
                          if t is not idents[-1])
            self.aliases[alias] = ty
        return k

    def _harvest_guarded_at(self, src, toks, brackets, i, scopes):
        """One GUARDED_BY / PT_GUARDED_BY annotation at token i, with the
        *current* scope stack (so nested classes get their full chain).
        Returns the index to resume scanning at."""
        n = len(toks)
        if i + 1 >= n or toks[i + 1].text != "(":
            return i + 1
        close = brackets.get(i + 1)
        if close is None:
            return i + 1
        cls_chain = tuple(name for kind, name, _ in scopes
                          if kind == "class")
        expr = "".join(t.text for t in toks[i + 2:close])
        # Field name: nearest identifier to the left, skipping a
        # brace/paren initializer.
        j = i - 1
        if j >= 0 and toks[j].text in ("}", ")"):
            opener = {"}": "{", ")": "("}[toks[j].text]
            closer = toks[j].text
            d = 1
            while j > 0 and d:
                j -= 1
                if toks[j].text == closer:
                    d += 1
                elif toks[j].text == opener:
                    d -= 1
            j -= 1
        while j > 0 and toks[j].kind != "ident":
            j -= 1
        if j >= 0 and toks[j].kind == "ident" and cls_chain:
            self.guarded_fields.append(GuardedField(
                cls_chain, toks[j].text, expr, src, toks[j].line))
        return close + 1

    def _try_function_def(self, src, toks, brackets, i, scopes):
        """Tries to parse a function definition whose *name* starts at or
        after token i; returns a FunctionDef or None. Only called with i
        at an identifier."""
        n = len(toks)
        tok = toks[i]
        if tok.text in NON_CALL_KEYWORDS or tok.text in DECL_SPECIFIERS:
            return None
        # The candidate name is an identifier directly followed by '('.
        # Walk the qualifier chain backwards later; first find `name (`.
        if i + 1 >= n or toks[i + 1].text != "(":
            return None
        name = tok.text
        close_paren = brackets.get(i + 1)
        if close_paren is None:
            return None
        # Destructor / operator are skipped (no rule needs them).
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.text in ("~", "operator"):
            return None
        # Reject calls: a call site is preceded by an operator or appears
        # inside another function body — distinguished by requiring a
        # *return type or ctor position*: the token before the qualifier
        # chain must not be one of . -> ( , = return etc.
        q = i - 1
        qualifier = []
        while q >= 1 and toks[q].text == "::" and toks[q - 1].kind == "ident":
            qualifier.insert(0, toks[q - 1].text)
            q -= 2
        before = toks[q] if q >= 0 else None
        if before is not None:
            if before.kind == "punct" and before.text not in \
                    ("}", ";", "{", ">", "&", "*", "]"):
                return None
            if before.kind == "ident" and before.text in NON_CALL_KEYWORDS:
                return None
        # Scan the signature trailer for '{' (definition), ';'
        # (declaration) or anything else (not a function).
        j = close_paren + 1
        requires = []
        no_tsa = False
        saw_arrow = False
        while j < n:
            t = toks[j]
            if t.text == "{":
                if saw_arrow or not self._is_decl_context(toks, q):
                    pass
                break
            if t.text == ";":
                # Declaration: harvest the return type and the
                # thread-safety annotations, then stop.
                self._harvest_return_type(toks, q, i, name)
                if requires:
                    self.declared_requires.setdefault(
                        name, []).extend(requires)
                if no_tsa:
                    self.declared_no_tsa.add(name)
                return None
            if t.text == ":" and toks[j - 1].text != ":":
                # ctor initializer list: scan to the body '{'.
                j = self._skip_ctor_initializers(toks, brackets, j + 1)
                continue
            if t.text == "->":
                saw_arrow = True
                j += 1
                continue
            if t.kind == "ident":
                if t.text == "NO_THREAD_SAFETY_ANALYSIS":
                    no_tsa = True
                    j += 1
                    continue
                if _ALL_CAPS.match(t.text) or t.text in SIGNATURE_TRAILERS:
                    if j + 1 < n and toks[j + 1].text == "(":
                        inner_close = brackets.get(j + 1, j + 1)
                        if t.text in ("REQUIRES", "REQUIRES_SHARED"):
                            requires.append("".join(
                                x.text for x in toks[j + 2:inner_close]))
                        j = inner_close + 1
                        continue
                    j += 1
                    continue
                if t.text in SIGNATURE_TRAILERS or saw_arrow:
                    j += 1
                    continue
                return None
            if t.kind == "punct" and (t.text in SIGNATURE_TRAILERS or
                                      saw_arrow or t.text in ("=",)):
                if t.text == "=":
                    # `= default` / `= delete` / `= 0`: declaration-like.
                    self._harvest_return_type(toks, q, i, name)
                    return None
                j += 1
                continue
            return None
        if j >= n or toks[j].text != "{":
            return None
        body_end = brackets.get(j)
        if body_end is None:
            return None
        self._harvest_return_type(toks, q, i, name)
        lexical = tuple(nm for kind, nm, _ in scopes if kind == "class")
        return FunctionDef(name, tuple(qualifier), lexical, src,
                           tok.line, i, j, body_end, requires, no_tsa)

    @staticmethod
    def _is_decl_context(toks, q):
        return True  # placeholder for future tightening

    @staticmethod
    def _skip_ctor_initializers(toks, brackets, j):
        """From just after the ':' of a ctor-initializer list, returns the
        index of the body '{'. A '{' directly following an identifier or
        '>' is a brace-initializer; any other '{' opens the body."""
        n = len(toks)
        while j < n:
            t = toks[j]
            if t.text == "(" or t.text == "[":
                j = brackets.get(j, j) + 1
                continue
            if t.text == "{":
                prev = toks[j - 1]
                if prev.kind == "ident" or prev.text == ">":
                    j = brackets.get(j, j) + 1
                    continue
                return j
            j += 1
        return n - 1

    def _harvest_return_type(self, toks, q, name_idx, name):
        """Reconstructs the declared return type from the tokens between
        the statement start and the function name; records it in the
        return-type index."""
        # Walk back from q to the previous statement/scope boundary.
        start = q
        while start >= 0 and toks[start].text not in ("{", "}", ";"):
            # public: / private: labels end with ':' but a lone ':' also
            # appears in ternaries; class bodies only have the former.
            if toks[start].text == ":" and toks[start - 1].kind == "ident" \
                    and toks[start - 1].text in ("public", "private",
                                                 "protected"):
                break
            start -= 1
        parts = []
        angle = 0
        for t in toks[start + 1:q + 1]:
            if t.kind == "ident" and t.text in DECL_SPECIFIERS and angle == 0:
                continue
            if t.text == "[" or t.text == "]":
                continue  # [[nodiscard]] etc.
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            parts.append(t.text)
        ty = " ".join(parts).strip()
        if not ty:
            return  # constructor (no return type) — nothing to record
        self.return_types.setdefault(name, set()).add(ty)

    # ---- calls ----------------------------------------------------------

    def _collect_calls(self, fn):
        toks = fn.file.tokens
        body = range(fn.body_start + 1, fn.body_end)
        for idx in body:
            t = toks[idx]
            if t.kind != "ident" or t.text in NON_CALL_KEYWORDS:
                continue
            if idx + 1 >= fn.body_end or toks[idx + 1].text != "(":
                continue
            prev = toks[idx - 1]
            if prev.text in ("class", "struct", "new"):
                continue
            # Receiver chain text, e.g. "std::chrono::steady_clock::" or
            # "obj->" — walked backwards over ident/::/./-> runs.
            j = idx - 1
            chain = []
            while j > fn.body_start:
                if toks[j].text in ("::", ".", "->"):
                    chain.insert(0, toks[j].text)
                    j -= 1
                elif toks[j].kind == "ident" and chain and \
                        chain[0] in ("::", ".", "->"):
                    chain.insert(0, toks[j].text)
                    j -= 1
                else:
                    break
            fn.calls.append((t.text, idx, "".join(chain)))

    # ---- type resolution -------------------------------------------------

    def resolve_type(self, ty, _depth=0):
        """Resolves leading alias names: `StatusOr` declared as
        `using StatusOr = Result<PageGuard>;` resolves to the Result
        spelling. Bounded to avoid alias cycles."""
        if _depth > 8:
            return ty
        head = ty.split(" ", 1)[0].split("<", 1)[0]
        if head in self.aliases:
            resolved = self.aliases[head]
            rest = ty[len(head):]
            return self.resolve_type((resolved + rest).strip(), _depth + 1)
        return ty

    def status_like_names(self, ignored=()):
        """Function names whose *every* harvested declaration returns
        Status or Result<T> (after alias resolution). Names that collide
        with a void/other-returning declaration anywhere in the tree are
        excluded — that is the resolved-type improvement over the line
        regex, which can only suppress such collisions by hand."""
        out = set()
        for name, types in self.return_types.items():
            if name in ignored:
                continue
            resolved = {self.resolve_type(t) for t in types}
            if resolved and all(
                    t == "Status" or t.startswith("Status ") or
                    t.startswith("Result <") or t == "Result"
                    for t in resolved):
                out.add(name)
        return out
