# Empty dependencies file for bench_ablation_linear_counter.
# This may be replaced when dependencies are built.
