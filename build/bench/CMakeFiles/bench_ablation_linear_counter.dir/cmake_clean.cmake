file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linear_counter.dir/bench_ablation_linear_counter.cc.o"
  "CMakeFiles/bench_ablation_linear_counter.dir/bench_ablation_linear_counter.cc.o.d"
  "bench_ablation_linear_counter"
  "bench_ablation_linear_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linear_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
