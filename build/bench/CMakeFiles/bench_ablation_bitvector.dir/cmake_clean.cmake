file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitvector.dir/bench_ablation_bitvector.cc.o"
  "CMakeFiles/bench_ablation_bitvector.dir/bench_ablation_bitvector.cc.o.d"
  "bench_ablation_bitvector"
  "bench_ablation_bitvector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
