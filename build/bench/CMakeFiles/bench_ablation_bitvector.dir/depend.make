# Empty dependencies file for bench_ablation_bitvector.
# This may be replaced when dependencies are built.
