file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dpsample.dir/bench_ablation_dpsample.cc.o"
  "CMakeFiles/bench_ablation_dpsample.dir/bench_ablation_dpsample.cc.o.d"
  "bench_ablation_dpsample"
  "bench_ablation_dpsample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dpsample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
