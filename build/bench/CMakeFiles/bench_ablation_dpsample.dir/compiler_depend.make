# Empty compiler generated dependencies file for bench_ablation_dpsample.
# This may be replaced when dependencies are built.
