# Empty compiler generated dependencies file for bench_fig10_clustering_ratio.
# This may be replaced when dependencies are built.
