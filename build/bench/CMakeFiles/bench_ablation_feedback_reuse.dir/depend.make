# Empty dependencies file for bench_ablation_feedback_reuse.
# This may be replaced when dependencies are built.
