file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_monitors.dir/bench_micro_monitors.cc.o"
  "CMakeFiles/bench_micro_monitors.dir/bench_micro_monitors.cc.o.d"
  "bench_micro_monitors"
  "bench_micro_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
