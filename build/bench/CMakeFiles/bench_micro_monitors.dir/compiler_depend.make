# Empty compiler generated dependencies file for bench_micro_monitors.
# This may be replaced when dependencies are built.
