file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_databases.dir/bench_table1_databases.cc.o"
  "CMakeFiles/bench_table1_databases.dir/bench_table1_databases.cc.o.d"
  "bench_table1_databases"
  "bench_table1_databases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_databases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
