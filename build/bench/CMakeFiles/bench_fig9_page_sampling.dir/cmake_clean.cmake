file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_page_sampling.dir/bench_fig9_page_sampling.cc.o"
  "CMakeFiles/bench_fig9_page_sampling.dir/bench_fig9_page_sampling.cc.o.d"
  "bench_fig9_page_sampling"
  "bench_fig9_page_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_page_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
