# Empty dependencies file for bench_fig7_single_table_overhead.
# This may be replaced when dependencies are built.
