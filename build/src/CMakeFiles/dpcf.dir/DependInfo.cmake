
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/dpcf.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/common/hash.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/dpcf.dir/common/random.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dpcf.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dpcf.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/bitvector_filter.cc" "src/CMakeFiles/dpcf.dir/core/bitvector_filter.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/bitvector_filter.cc.o.d"
  "/root/repo/src/core/clustering_ratio.cc" "src/CMakeFiles/dpcf.dir/core/clustering_ratio.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/clustering_ratio.cc.o.d"
  "/root/repo/src/core/distinct_sampler.cc" "src/CMakeFiles/dpcf.dir/core/distinct_sampler.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/distinct_sampler.cc.o.d"
  "/root/repo/src/core/dpc_histogram.cc" "src/CMakeFiles/dpcf.dir/core/dpc_histogram.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/dpc_histogram.cc.o.d"
  "/root/repo/src/core/dpsample.cc" "src/CMakeFiles/dpcf.dir/core/dpsample.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/dpsample.cc.o.d"
  "/root/repo/src/core/feedback_driver.cc" "src/CMakeFiles/dpcf.dir/core/feedback_driver.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/feedback_driver.cc.o.d"
  "/root/repo/src/core/feedback_store.cc" "src/CMakeFiles/dpcf.dir/core/feedback_store.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/feedback_store.cc.o.d"
  "/root/repo/src/core/grouped_page_counter.cc" "src/CMakeFiles/dpcf.dir/core/grouped_page_counter.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/grouped_page_counter.cc.o.d"
  "/root/repo/src/core/linear_counter.cc" "src/CMakeFiles/dpcf.dir/core/linear_counter.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/linear_counter.cc.o.d"
  "/root/repo/src/core/monitor_manager.cc" "src/CMakeFiles/dpcf.dir/core/monitor_manager.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/monitor_manager.cc.o.d"
  "/root/repo/src/core/pid_monitor.cc" "src/CMakeFiles/dpcf.dir/core/pid_monitor.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/pid_monitor.cc.o.d"
  "/root/repo/src/core/run_statistics.cc" "src/CMakeFiles/dpcf.dir/core/run_statistics.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/core/run_statistics.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/dpcf.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/dpcf.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/index_ops.cc" "src/CMakeFiles/dpcf.dir/exec/index_ops.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/index_ops.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/CMakeFiles/dpcf.dir/exec/join_ops.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/CMakeFiles/dpcf.dir/exec/predicate.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/predicate.cc.o.d"
  "/root/repo/src/exec/rel_ops.cc" "src/CMakeFiles/dpcf.dir/exec/rel_ops.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/rel_ops.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/CMakeFiles/dpcf.dir/exec/scan_ops.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/exec/scan_ops.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/dpcf.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/index/btree.cc.o.d"
  "/root/repo/src/index/secondary_index.cc" "src/CMakeFiles/dpcf.dir/index/secondary_index.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/index/secondary_index.cc.o.d"
  "/root/repo/src/optimizer/cardinality.cc" "src/CMakeFiles/dpcf.dir/optimizer/cardinality.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/cardinality.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/dpcf.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/histogram.cc" "src/CMakeFiles/dpcf.dir/optimizer/histogram.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/histogram.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/dpcf.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/dpcf.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/yao.cc" "src/CMakeFiles/dpcf.dir/optimizer/yao.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/optimizer/yao.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/dpcf.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/dpcf.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/tokenizer.cc" "src/CMakeFiles/dpcf.dir/sql/tokenizer.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/sql/tokenizer.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/dpcf.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/dpcf.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/dpcf.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/dpcf.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/storage/page.cc.o.d"
  "/root/repo/src/table/catalog.cc" "src/CMakeFiles/dpcf.dir/table/catalog.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/catalog.cc.o.d"
  "/root/repo/src/table/heap_file.cc" "src/CMakeFiles/dpcf.dir/table/heap_file.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/heap_file.cc.o.d"
  "/root/repo/src/table/row_codec.cc" "src/CMakeFiles/dpcf.dir/table/row_codec.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/row_codec.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/dpcf.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/dpcf.dir/table/table.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/table.cc.o.d"
  "/root/repo/src/table/value.cc" "src/CMakeFiles/dpcf.dir/table/value.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/table/value.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/dpcf.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/realworld.cc" "src/CMakeFiles/dpcf.dir/workload/realworld.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/workload/realworld.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/dpcf.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/tpch_like.cc" "src/CMakeFiles/dpcf.dir/workload/tpch_like.cc.o" "gcc" "src/CMakeFiles/dpcf.dir/workload/tpch_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
