# Empty dependencies file for dpcf.
# This may be replaced when dependencies are built.
