# Empty compiler generated dependencies file for dpcf.
# This may be replaced when dependencies are built.
