file(REMOVE_RECURSE
  "libdpcf.a"
)
