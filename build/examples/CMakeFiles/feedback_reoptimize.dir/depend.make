# Empty dependencies file for feedback_reoptimize.
# This may be replaced when dependencies are built.
