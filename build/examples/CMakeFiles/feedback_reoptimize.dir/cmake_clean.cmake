file(REMOVE_RECURSE
  "CMakeFiles/feedback_reoptimize.dir/feedback_reoptimize.cc.o"
  "CMakeFiles/feedback_reoptimize.dir/feedback_reoptimize.cc.o.d"
  "feedback_reoptimize"
  "feedback_reoptimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_reoptimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
