# Empty compiler generated dependencies file for join_advisor.
# This may be replaced when dependencies are built.
