# Empty compiler generated dependencies file for dba_diagnose.
# This may be replaced when dependencies are built.
