file(REMOVE_RECURSE
  "CMakeFiles/dba_diagnose.dir/dba_diagnose.cc.o"
  "CMakeFiles/dba_diagnose.dir/dba_diagnose.cc.o.d"
  "dba_diagnose"
  "dba_diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
