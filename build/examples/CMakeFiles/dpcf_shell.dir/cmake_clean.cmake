file(REMOVE_RECURSE
  "CMakeFiles/dpcf_shell.dir/dpcf_shell.cc.o"
  "CMakeFiles/dpcf_shell.dir/dpcf_shell.cc.o.d"
  "dpcf_shell"
  "dpcf_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpcf_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
