# Empty dependencies file for dpcf_shell.
# This may be replaced when dependencies are built.
