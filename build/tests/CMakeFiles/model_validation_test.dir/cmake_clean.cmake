file(REMOVE_RECURSE
  "CMakeFiles/model_validation_test.dir/model_validation_test.cc.o"
  "CMakeFiles/model_validation_test.dir/model_validation_test.cc.o.d"
  "model_validation_test"
  "model_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
