# Empty dependencies file for cardinality_feedback_test.
# This may be replaced when dependencies are built.
