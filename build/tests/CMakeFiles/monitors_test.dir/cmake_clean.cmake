file(REMOVE_RECURSE
  "CMakeFiles/monitors_test.dir/monitors_test.cc.o"
  "CMakeFiles/monitors_test.dir/monitors_test.cc.o.d"
  "monitors_test"
  "monitors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
