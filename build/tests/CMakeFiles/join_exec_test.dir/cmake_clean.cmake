file(REMOVE_RECURSE
  "CMakeFiles/join_exec_test.dir/join_exec_test.cc.o"
  "CMakeFiles/join_exec_test.dir/join_exec_test.cc.o.d"
  "join_exec_test"
  "join_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
