# Empty compiler generated dependencies file for join_exec_test.
# This may be replaced when dependencies are built.
