file(REMOVE_RECURSE
  "CMakeFiles/dpc_histogram_test.dir/dpc_histogram_test.cc.o"
  "CMakeFiles/dpc_histogram_test.dir/dpc_histogram_test.cc.o.d"
  "dpc_histogram_test"
  "dpc_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
