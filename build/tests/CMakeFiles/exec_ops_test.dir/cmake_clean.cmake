file(REMOVE_RECURSE
  "CMakeFiles/exec_ops_test.dir/exec_ops_test.cc.o"
  "CMakeFiles/exec_ops_test.dir/exec_ops_test.cc.o.d"
  "exec_ops_test"
  "exec_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
