file(REMOVE_RECURSE
  "CMakeFiles/distinct_sampler_test.dir/distinct_sampler_test.cc.o"
  "CMakeFiles/distinct_sampler_test.dir/distinct_sampler_test.cc.o.d"
  "distinct_sampler_test"
  "distinct_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
