# Empty compiler generated dependencies file for distinct_sampler_test.
# This may be replaced when dependencies are built.
