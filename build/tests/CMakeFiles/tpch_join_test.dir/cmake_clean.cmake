file(REMOVE_RECURSE
  "CMakeFiles/tpch_join_test.dir/tpch_join_test.cc.o"
  "CMakeFiles/tpch_join_test.dir/tpch_join_test.cc.o.d"
  "tpch_join_test"
  "tpch_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
