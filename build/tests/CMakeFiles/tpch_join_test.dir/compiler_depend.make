# Empty compiler generated dependencies file for tpch_join_test.
# This may be replaced when dependencies are built.
