// Reservoir+GEE distinct estimation and the unified PidStreamMonitor.

#include <cmath>

#include <gtest/gtest.h>

#include "core/pid_monitor.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

TEST(ReservoirTest, ExactWhileStreamFitsInReservoir) {
  ReservoirDistinctEstimator est(128, 1);
  for (uint64_t v = 0; v < 50; ++v) {
    est.Add(v % 10);  // 10 distinct values, 5 occurrences each
  }
  EXPECT_EQ(est.rows_seen(), 50);
  EXPECT_EQ(est.sample_size(), 50u);
  EXPECT_DOUBLE_EQ(est.Estimate(), 10.0);
}

TEST(ReservoirTest, EmptyEstimatesZero) {
  ReservoirDistinctEstimator est(64, 1);
  EXPECT_EQ(est.Estimate(), 0.0);
}

TEST(ReservoirTest, ResetClears) {
  ReservoirDistinctEstimator est(64, 1);
  est.Add(1);
  est.Reset();
  EXPECT_EQ(est.rows_seen(), 0);
  EXPECT_EQ(est.Estimate(), 0.0);
}

TEST(ReservoirTest, SampleSizeIsBounded) {
  ReservoirDistinctEstimator est(100, 2);
  for (uint64_t v = 0; v < 100'000; ++v) est.Add(v);
  EXPECT_EQ(est.sample_size(), 100u);
  EXPECT_EQ(est.rows_seen(), 100'000);
}

class ReservoirAccuracy
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ReservoirAccuracy, GeeEstimateInPlausibleBand) {
  // `distinct` values, each repeated `reps` times, shuffled: GEE is not
  // guaranteed accurate (that is the paper's point), but it must land
  // within a broad factor-of-3 band for these benign distributions.
  const auto [distinct, reps] = GetParam();
  std::vector<uint64_t> stream;
  for (int64_t v = 0; v < distinct; ++v) {
    for (int64_t r = 0; r < reps; ++r) {
      stream.push_back(static_cast<uint64_t>(v));
    }
  }
  Rng rng(9);
  Shuffle(&stream, &rng);
  ReservoirDistinctEstimator est(1024, 3);
  for (uint64_t v : stream) est.Add(v);
  double e = est.Estimate();
  EXPECT_GT(e, distinct / 3.0);
  EXPECT_LT(e, distinct * 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReservoirAccuracy,
    ::testing::Values(std::make_tuple(int64_t{100}, int64_t{100}),
                      std::make_tuple(int64_t{1000}, int64_t{10}),
                      std::make_tuple(int64_t{5000}, int64_t{4})));

TEST(PidStreamMonitorTest, LinearMechanismChargesHashes) {
  FetchMonitorRequest req;
  req.label = "x";
  req.mechanism = DistinctCountMechanism::kLinearCounting;
  req.numbits = 4096;
  PidStreamMonitor m(req);
  CpuStats cpu;
  for (uint64_t pid = 0; pid < 500; ++pid) m.Add(pid, &cpu);
  EXPECT_EQ(cpu.monitor_hash_ops, 500);
  EXPECT_EQ(cpu.monitor_row_ops, 0);
  EXPECT_NEAR(m.Estimate(), 500, 50);
  MonitorRecord rec = m.MakeRecord("T");
  EXPECT_NE(rec.mechanism.find("linear-counting"), std::string::npos);
  EXPECT_EQ(rec.actual_cardinality, 500);
  EXPECT_FALSE(rec.exact);
}

TEST(PidStreamMonitorTest, ReservoirMechanismChargesRowOps) {
  FetchMonitorRequest req;
  req.label = "x";
  req.mechanism = DistinctCountMechanism::kReservoirSampling;
  req.reservoir_capacity = 256;
  PidStreamMonitor m(req);
  CpuStats cpu;
  for (uint64_t pid = 0; pid < 500; ++pid) m.Add(pid % 40, &cpu);
  EXPECT_EQ(cpu.monitor_row_ops, 500);
  EXPECT_EQ(cpu.monitor_hash_ops, 0);
  MonitorRecord rec = m.MakeRecord("T");
  EXPECT_NE(rec.mechanism.find("reservoir+gee"), std::string::npos);
}

TEST(PidStreamMonitorTest, MechanismNamesAreStable) {
  EXPECT_STREQ(
      DistinctCountMechanismName(DistinctCountMechanism::kLinearCounting),
      "linear-counting");
  EXPECT_STREQ(DistinctCountMechanismName(
                   DistinctCountMechanism::kReservoirSampling),
               "reservoir+gee");
}

}  // namespace
}  // namespace dpcf
