// Tests for the paper's monitoring primitives: linear counting (Fig 3),
// bitvector filters (Fig 5), grouped page counting, and the DPSample scan
// bundle (Fig 4).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bitvector_filter.h"
#include "core/dpsample.h"
#include "core/grouped_page_counter.h"
#include "core/linear_counter.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

// ---------------------------------------------------------------- Linear

class LinearCounterAccuracy
    : public ::testing::TestWithParam<std::tuple<int64_t, uint32_t>> {};

TEST_P(LinearCounterAccuracy, EstimateWithinTolerance) {
  const auto [distinct, numbits] = GetParam();
  LinearCounter counter(numbits, /*seed=*/123);
  Rng rng(77);
  // Feed each distinct value several times (duplicates must not matter).
  for (int64_t v = 0; v < distinct; ++v) {
    uint64_t packed = static_cast<uint64_t>(v) * 1315423911ULL;
    counter.Add(packed);
    if (v % 3 == 0) counter.Add(packed);
  }
  double est = counter.Estimate();
  // Whang et al.: standard error ~ sqrt(numbits*(exp(t)-t-1))/n with
  // t = n/numbits; allow 5 sigma-ish via a generous 10% + small-absolute
  // tolerance band.
  double tol = std::max(10.0, 0.1 * static_cast<double>(distinct));
  EXPECT_NEAR(est, static_cast<double>(distinct), tol)
      << "distinct=" << distinct << " bits=" << numbits;
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(
    LoadFactors, LinearCounterAccuracy,
    ::testing::Values(std::make_tuple(int64_t{100}, 1024u),
                      std::make_tuple(int64_t{1000}, 1024u),
                      std::make_tuple(int64_t{2000}, 1024u),
                      std::make_tuple(int64_t{5000}, 4096u),
                      std::make_tuple(int64_t{20000}, 16384u),
                      std::make_tuple(int64_t{50000}, 16384u)));

TEST(LinearCounterTest, EmptyEstimatesZero) {
  LinearCounter c(1024);
  EXPECT_EQ(c.Estimate(), 0.0);
  EXPECT_EQ(c.BitsSet(), 0u);
  EXPECT_FALSE(c.saturated());
}

TEST(LinearCounterTest, DuplicatesDoNotInflate) {
  LinearCounter c(1024);
  for (int i = 0; i < 100'000; ++i) c.Add(42);
  EXPECT_EQ(c.BitsSet(), 1u);
  EXPECT_NEAR(c.Estimate(), 1.0, 0.01);
}

TEST(LinearCounterTest, SaturationIsDetectedAndBounded) {
  LinearCounter c(64);
  for (uint64_t v = 0; v < 100'000; ++v) c.Add(v);
  EXPECT_TRUE(c.saturated());
  EXPECT_GT(c.Estimate(), 64.0) << "saturated estimate is a lower bound";
  EXPECT_TRUE(std::isfinite(c.Estimate()));
}

TEST(LinearCounterTest, ResetClears) {
  LinearCounter c(1024);
  c.Add(1);
  c.Add(2);
  c.Reset();
  EXPECT_EQ(c.BitsSet(), 0u);
}

TEST(LinearCounterTest, BitsRoundedUpToWord) {
  LinearCounter c(100);
  EXPECT_EQ(c.numbits(), 128u);
  EXPECT_EQ(c.MemoryBytes(), 16u);
  LinearCounter tiny(1);
  EXPECT_EQ(tiny.numbits(), 64u);
}

TEST(LinearCounterTest, RecommendedBitsScaleWithExpectation) {
  EXPECT_GE(RecommendedLinearCounterBits(100), 1024u);
  uint32_t small = RecommendedLinearCounterBits(10'000);
  uint32_t big = RecommendedLinearCounterBits(10'000'000);
  EXPECT_LT(small, big);
  EXPECT_EQ(big % 64, 0u);
}

// -------------------------------------------------------------- Bitvector

TEST(BitvectorFilterTest, DirectModeIsExactWhenDomainFits) {
  BitvectorFilter f(1 << 12, 0, BitvectorMode::kDirect);
  for (int64_t k = 0; k < 2000; k += 2) f.AddKeyCounted(k);
  EXPECT_EQ(f.keys_added(), 1000);
  for (int64_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(f.MayContain(k), k % 2 == 0) << k;
  }
  for (int64_t k = 2000; k < 4096; ++k) {
    EXPECT_FALSE(f.MayContain(k)) << "no false positives in-domain";
  }
}

TEST(BitvectorFilterTest, DirectModeBaseOffsetsDomain) {
  BitvectorFilter f(64, 0, BitvectorMode::kDirect, /*base=*/1'000'000);
  f.AddKey(1'000'003);
  EXPECT_TRUE(f.MayContain(1'000'003));
  EXPECT_FALSE(f.MayContain(1'000'004));
}

TEST(BitvectorFilterTest, FoldingNeverProducesFalseNegatives) {
  // Fewer bits than the domain: collisions may overestimate but an added
  // key must always be found (the paper's one-sided error guarantee).
  for (BitvectorMode mode : {BitvectorMode::kDirect, BitvectorMode::kHashed}) {
    BitvectorFilter f(256, 9, mode);
    std::set<int64_t> keys;
    Rng rng(5);
    for (int i = 0; i < 300; ++i) keys.insert(rng.NextInt(0, 100'000));
    for (int64_t k : keys) f.AddKey(k);
    for (int64_t k : keys) {
      EXPECT_TRUE(f.MayContain(k));
    }
  }
}

TEST(BitvectorFilterTest, FalsePositiveRateShrinksWithBits) {
  // Measure FP rate on non-keys for growing filter sizes (hashed mode).
  double prev_rate = 1.0;
  Rng key_rng(6);
  std::set<int64_t> keys;
  while (keys.size() < 500) keys.insert(key_rng.NextInt(0, 1 << 30));
  for (uint32_t bits : {1u << 10, 1u << 13, 1u << 16}) {
    BitvectorFilter f(bits, 3, BitvectorMode::kHashed);
    for (int64_t k : keys) f.AddKey(k);
    Rng probe_rng(7);
    int fp = 0, probes = 20'000;
    for (int i = 0; i < probes; ++i) {
      int64_t probe = probe_rng.NextInt(1 << 30, 1 << 31);  // disjoint
      fp += f.MayContain(probe);
    }
    double rate = static_cast<double>(fp) / probes;
    EXPECT_LE(rate, prev_rate + 0.01) << bits;
    prev_rate = rate;
  }
  EXPECT_LT(prev_rate, 0.02) << "64Ki bits for 500 keys: FP ~ 0.8%";
}

TEST(BitvectorFilterTest, ResetClearsBitsAndCount) {
  BitvectorFilter f(128);
  f.AddKeyCounted(7);
  f.Reset();
  EXPECT_EQ(f.BitsSet(), 0u);
  EXPECT_EQ(f.keys_added(), 0);
  EXPECT_FALSE(f.MayContain(7));
}

// ------------------------------------------------------------- GroupedPC

TEST(GroupedPageCounterTest, CountsPagesWithAtLeastOneHit) {
  GroupedPageCounter c;
  // Page 1: 2 hits, page 2: none, page 3: 1 hit.
  c.BeginPage();
  c.OnRowSatisfies();
  c.OnRowSatisfies();
  c.EndPage();
  c.BeginPage();
  c.EndPage();
  c.BeginPage();
  c.OnRowSatisfies();
  c.EndPage();
  EXPECT_EQ(c.pages_satisfying(), 2);
  EXPECT_EQ(c.rows_satisfying(), 3);
  EXPECT_EQ(c.pages_seen(), 3);
  c.Reset();
  EXPECT_EQ(c.pages_satisfying(), 0);
}

// --------------------------------------------------------------- Bundle

class BundleTest : public ::testing::Test {
 protected:
  BundleTest()
      : schema_({Column::Int64("a"), Column::Int64("b")}),
        codec_(&schema_) {}

  // Synthesizes `pages` pages of `rows_per_page` rows; row (p, r) gets
  // a = global index, b = global index % modulo.
  void Drive(ScanMonitorBundle* bundle, const Predicate& pushed, int pages,
             int rows_per_page, int modulo, CpuStats* cpu) {
    std::vector<const BitvectorFilter*> no_filters;
    int64_t g = 0;
    for (int p = 0; p < pages; ++p) {
      bundle->BeginPage(cpu, static_cast<PageNo>(p));
      for (int r = 0; r < rows_per_page; ++r, ++g) {
        std::vector<char> buf(schema_.row_size());
        ASSERT_OK(codec_.Encode(
            {Value::Int64(g), Value::Int64(g % modulo)}, buf.data()));
        RowView row(buf.data(), &schema_);
        uint32_t leading = pushed.EvalLeading(row, cpu);
        bundle->OnRow(row, leading, cpu, no_filters);
      }
      bundle->EndPage();
    }
  }

  Schema schema_;
  RowCodec codec_;
};

TEST_F(BundleTest, PrefixRequestIsExactAndFree) {
  Predicate pushed({PredicateAtom::Int64(0, CmpOp::kLt, 35)});
  ScanMonitorBundle bundle(pushed, &schema_, /*f=*/0.5, /*seed=*/1);
  ScanExprRequest req;
  req.label = "prefix";
  req.expr = pushed;
  ASSERT_OK(bundle.AddRequest(req));
  EXPECT_FALSE(bundle.HasSampledRequests());

  CpuStats cpu;
  Drive(&bundle, pushed, /*pages=*/10, /*rows=*/10, /*modulo=*/7, &cpu);
  auto results = bundle.Finish();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].mode, ScanMonitorMode::kPrefixExact);
  // a < 35: rows 0..34 live on pages 0..3 => DPC 4, card 35. Exact.
  EXPECT_EQ(results[0].dpc, 4);
  EXPECT_EQ(results[0].cardinality, 35);
  EXPECT_EQ(results[0].pages_seen, 10);
  // The scan itself charged 100 atom evals; the monitor none extra.
  EXPECT_EQ(cpu.predicate_atom_evals, 100);
}

TEST_F(BundleTest, FullFractionNonPrefixIsExactButCharged) {
  Predicate pushed({PredicateAtom::Int64(0, CmpOp::kLt, 35)});
  ScanMonitorBundle bundle(pushed, &schema_, /*f=*/1.0, /*seed=*/1);
  ScanExprRequest req;
  req.label = "nonprefix";
  req.expr = Predicate({PredicateAtom::Int64(1, CmpOp::kEq, 3)});
  ASSERT_OK(bundle.AddRequest(req));
  EXPECT_TRUE(bundle.HasSampledRequests());

  CpuStats cpu;
  Drive(&bundle, pushed, 10, 10, /*modulo=*/7, &cpu);
  auto results = bundle.Finish();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].mode, ScanMonitorMode::kFullExact);
  // b = g%7 == 3 hits every page of 10 rows (7-cycle covers each page...
  // page p covers g in [10p, 10p+10): contains a multiple ≡3 mod 7 for all
  // pages except where the cycle misses; verify against brute force.
  int64_t expect_pages = 0, expect_rows = 0;
  for (int p = 0; p < 10; ++p) {
    bool hit = false;
    for (int g = 10 * p; g < 10 * p + 10; ++g) {
      if (g % 7 == 3) {
        ++expect_rows;
        hit = true;
      }
    }
    expect_pages += hit;
  }
  EXPECT_EQ(results[0].dpc, static_cast<double>(expect_pages));
  EXPECT_EQ(results[0].cardinality, static_cast<double>(expect_rows));
  // Monitoring charged one extra (non-short-circuited) atom per row.
  EXPECT_EQ(cpu.predicate_atom_evals, 100 + 100);
}

TEST_F(BundleTest, SampledEstimateIsCloseOnAverage) {
  // Unbiasedness check: average the DPSample estimate across many seeds.
  Predicate pushed;  // unconditioned scan
  const int pages = 200, rows = 10;
  // b == 1 hits exactly the pages containing g ≡ 1 mod 13.
  int64_t truth_pages = 0;
  for (int p = 0; p < pages; ++p) {
    bool hit = false;
    for (int g = rows * p; g < rows * (p + 1); ++g) hit |= (g % 13 == 1);
    truth_pages += hit;
  }
  double sum = 0;
  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    ScanMonitorBundle bundle(pushed, &schema_, /*f=*/0.3,
                             /*seed=*/1000 + trial);
    ScanExprRequest req;
    req.label = "sampled";
    req.expr = Predicate({PredicateAtom::Int64(1, CmpOp::kEq, 1)});
    ASSERT_OK(bundle.AddRequest(req));
    CpuStats cpu;
    Drive(&bundle, pushed, pages, rows, /*modulo=*/13, &cpu);
    auto results = bundle.Finish();
    EXPECT_EQ(results[0].mode, ScanMonitorMode::kSampled);
    sum += results[0].dpc;
  }
  double mean = sum / kTrials;
  EXPECT_NEAR(mean, static_cast<double>(truth_pages),
              0.15 * static_cast<double>(truth_pages));
}

TEST_F(BundleTest, SamplingChargesOnlySampledPages) {
  Predicate pushed({PredicateAtom::Int64(0, CmpOp::kGe, 0)});
  ScanMonitorBundle bundle(pushed, &schema_, /*f=*/0.2, /*seed=*/3);
  ScanExprRequest req;
  req.label = "x";
  req.expr = Predicate({PredicateAtom::Int64(1, CmpOp::kEq, 0)});
  ASSERT_OK(bundle.AddRequest(req));
  CpuStats cpu;
  Drive(&bundle, pushed, 100, 10, 7, &cpu);
  auto results = bundle.Finish();
  // Scan charges 1000 atom evals; monitor charges 10 per *sampled* page.
  int64_t monitor_evals = cpu.predicate_atom_evals - 1000;
  EXPECT_EQ(monitor_evals, results[0].pages_sampled * 10);
  EXPECT_LT(results[0].pages_sampled, 45) << "~20 of 100 expected";
  EXPECT_GT(results[0].pages_sampled, 5);
}

TEST_F(BundleTest, BitvectorRequestRequiresColumn) {
  Predicate pushed;
  ScanMonitorBundle bundle(pushed, &schema_, 1.0, 1);
  ScanExprRequest bad;
  bad.label = "bv";
  bad.bitvector_slot = 0;
  bad.bv_col = -1;
  EXPECT_FALSE(bundle.AddRequest(bad).ok());
}

TEST_F(BundleTest, BitvectorRequestProbesRegisteredFilter) {
  Predicate pushed;
  ScanMonitorBundle bundle(pushed, &schema_, 1.0, 1);
  ScanExprRequest req;
  req.label = "bv";
  req.bitvector_slot = 0;
  req.bv_col = 1;  // column b
  ASSERT_OK(bundle.AddRequest(req));

  BitvectorFilter filter(1 << 10, 0, BitvectorMode::kDirect);
  filter.AddKey(3);  // only b == 3 "joins"
  std::vector<const BitvectorFilter*> slots{&filter};

  CpuStats cpu;
  int64_t g = 0;
  int64_t expect_pages = 0;
  for (int p = 0; p < 20; ++p) {
    bundle.BeginPage(&cpu, static_cast<PageNo>(p));
    bool hit = false;
    for (int r = 0; r < 10; ++r, ++g) {
      std::vector<char> buf(schema_.row_size());
      ASSERT_OK(codec_.Encode(
          {Value::Int64(g), Value::Int64(g % 7)}, buf.data()));
      RowView row(buf.data(), &schema_);
      bundle.OnRow(row, 0, &cpu, slots);
      hit |= (g % 7 == 3);
    }
    bundle.EndPage();
    expect_pages += hit;
  }
  auto results = bundle.Finish();
  EXPECT_EQ(results[0].dpc, static_cast<double>(expect_pages));
  EXPECT_GT(cpu.monitor_hash_ops, 0);
  EXPECT_NE(results[0].expr_text.find("bitvector(b)"), std::string::npos);
}

TEST_F(BundleTest, MissingFilterCountsNothing) {
  Predicate pushed;
  ScanMonitorBundle bundle(pushed, &schema_, 1.0, 1);
  ScanExprRequest req;
  req.label = "bv";
  req.bitvector_slot = 0;
  req.bv_col = 1;
  ASSERT_OK(bundle.AddRequest(req));
  std::vector<const BitvectorFilter*> slots{nullptr};  // never registered
  CpuStats cpu;
  bundle.BeginPage(&cpu, 0);
  std::vector<char> buf(schema_.row_size());
  ASSERT_OK(codec_.Encode({Value::Int64(0), Value::Int64(0)}, buf.data()));
  bundle.OnRow(RowView(buf.data(), &schema_), 0, &cpu, slots);
  bundle.EndPage();
  EXPECT_EQ(bundle.Finish()[0].dpc, 0.0);
}

}  // namespace
}  // namespace dpcf
