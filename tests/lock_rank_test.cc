// Runtime lock-rank enforcement (common/thread_annotations.h).
//
// The TSA annotations prove the pool -> disk acquisition order at compile
// time, but only under clang; every gcc build (and therefore the ASAN /
// UBSAN / TSAN CI jobs) compiles them to nothing. These tests pin down the
// runtime half added in PR 7: under -DDPCF_LOCK_RANK=ON a ranked
// dpcf::Mutex acquisition must be strictly greater than every ranked mutex
// the thread already holds, and an inversion aborts the process.
//
//  - correctly ordered pool -> disk acquisition stays silent, both on bare
//    ranked mutexes and through the real BufferPool miss path (shard latch,
//    condvar waits, disk latch, writeback);
//  - a deliberate disk -> pool inversion dies with the lock-rank
//    diagnostic (death test);
//  - nesting two latches of the same rank (two buffer-pool shards) dies,
//    which is the "no code path holds two shard latches" rule.
//
// Without DPCF_LOCK_RANK the ranks are inert; the enforcement tests skip
// so the default tier-1 build stays green.

#include <cstring>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

constexpr uint32_t kPageSize = 256;

// The death-test bodies violate the documented order on purpose; keep
// clang's compile-time analysis out of them so the TSA CI job still
// compiles this file (the runtime checker is exactly for the builds where
// TSA cannot see the bug).
void AcquireInOrder(Mutex* outer, Mutex* inner) NO_THREAD_SAFETY_ANALYSIS {
  MutexLock a(outer);
  MutexLock b(inner);
}

// Calls Fetch while holding the disk latch — the disk-before-pool
// inversion. Under clang this does not even compile (Fetch EXCLUDES the
// disk latch), which is why the TSA escape hatch is needed to hand the
// sequence to the *runtime* checker.
[[maybe_unused]] void FetchWhileHoldingDiskLatch(
    BufferPool* pool, PageId pid) NO_THREAD_SAFETY_ANALYSIS {
  MutexLock d(pool->disk_latch());
  auto guard = pool->Fetch(pid);
  (void)guard;
}

TEST(LockRankTest, RanksAreAssignedAndOrdered) {
  // The storage pair is the load-bearing edge: pool shard strictly before
  // disk, mirroring ACQUIRED_BEFORE(disk->mu_).
  EXPECT_LT(lock_rank::kBufferPoolShard, lock_rank::kDisk);
  // The submission ring sits between the disk latch and the leaves: a
  // producer may enqueue while holding the disk latch is NOT allowed
  // (submission happens before any disk work), but the ring latch must
  // never be held when a leaf latch is taken by a completion callback.
  EXPECT_LT(lock_rank::kDisk, lock_rank::kDiskSubmission);
  EXPECT_LT(lock_rank::kDiskSubmission, lock_rank::kExecMergedCpu);
  // Leaf subsystems all rank above the storage latches so they may be
  // taken from anywhere in the engine.
  EXPECT_LT(lock_rank::kDisk, lock_rank::kExecMergedCpu);
  EXPECT_LT(lock_rank::kDisk, lock_rank::kEstimationTracker);
  EXPECT_LT(lock_rank::kDisk, lock_rank::kMetricsRegistry);
  EXPECT_LT(lock_rank::kDisk, lock_rank::kTraceCollector);
  // Obs leaf band (PR 9): the drift monitor registers per-series gauges
  // while holding its own latch, so it must rank strictly below the
  // registry; the journal's drain latch is never held on the Record path
  // but still ranks as an obs leaf so Snapshot/Drain may be called while
  // holding any storage or estimation latch.
  EXPECT_LT(lock_rank::kEstimationTracker, lock_rank::kDriftMonitor);
  EXPECT_LT(lock_rank::kDriftMonitor, lock_rank::kMetricsRegistry);
  EXPECT_LT(lock_rank::kTraceCollector, lock_rank::kEventJournal);
  EXPECT_LT(lock_rank::kEventJournal, lock_rank::kScanReadahead);

  DiskManager disk(kPageSize);
  EXPECT_EQ(disk.latch()->rank(), lock_rank::kDisk);
  EXPECT_EQ(disk.submission_latch()->rank(), lock_rank::kDiskSubmission);
  Mutex unranked;
  EXPECT_EQ(unranked.rank(), lock_rank::kUnranked);
}

TEST(LockRankTest, OrderedAcquisitionStaysSilent) {
  Mutex pool_mu(lock_rank::kBufferPoolShard);
  Mutex disk_mu(lock_rank::kDisk);
  // Repeat to prove the held-rank stack drains correctly between scopes.
  for (int i = 0; i < 3; ++i) {
    AcquireInOrder(&pool_mu, &disk_mu);
  }
  // Unranked mutexes opt out entirely: nesting them under any rank is
  // allowed, and ranked mutexes may still be acquired (in order) around
  // them.
  Mutex unranked;
  {
    MutexLock p(&pool_mu);
    MutexLock u(&unranked);
    MutexLock d(&disk_mu);
  }
  SUCCEED();
}

TEST(LockRankTest, RealPoolToDiskPathStaysSilent) {
  // Exercise the genuine shard-latch -> disk-latch nesting: misses (read
  // under serialize_miss_io so the shard latch really is held across the
  // disk read), eviction writeback, flush, and cold reset.
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 64;
  std::vector<char> buf(kPageSize, 7);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }
  BufferPoolOptions opts;
  opts.num_shards = 2;
  opts.serialize_miss_io = true;  // hold the shard latch across ReadPage
  BufferPool pool(&disk, 16, opts);
  for (PageNo p = 0; p < kPages; ++p) {  // misses + constant eviction
    auto guard = pool.Fetch(PageId{seg, p});
    ASSERT_OK(guard.status());
    std::memcpy(guard.value().mutable_data(), buf.data(), 8);  // dirty it
  }
  ASSERT_OK(pool.FlushAll());  // writeback under the shard latch
  ASSERT_OK(pool.ColdReset());
  SUCCEED();
}

#if defined(DPCF_LOCK_RANK) && DPCF_LOCK_RANK

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, PoolAfterDiskInversionAborts) {
  Mutex pool_mu(lock_rank::kBufferPoolShard);
  Mutex disk_mu(lock_rank::kDisk);
  EXPECT_DEATH(AcquireInOrder(&disk_mu, &pool_mu),
               "dpcf lock-rank violation");
}

TEST(LockRankDeathTest, RealPoolFetchWhileHoldingDiskLatchAborts) {
  // The real thing, end to end: grab the disk latch through the pool's
  // annotated accessor, then Fetch — the shard latch acquisition inside
  // Fetch is rank 100 under a held rank 200 and must die. Under clang this
  // exact call sequence is already a compile error (EXCLUDES(disk_->mu_));
  // the runtime checker is the gcc/sanitizer-build equivalent.
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  disk.AllocatePage(seg);
  BufferPool pool(&disk, 4);
  EXPECT_DEATH(FetchWhileHoldingDiskLatch(&pool, PageId{seg, 0}),
               "dpcf lock-rank violation");
}

TEST(LockRankDeathTest, SubmissionRingAfterLeafLatchAborts) {
  // A completion callback runs with no disk-manager latch held precisely
  // so it may take leaf latches (merged-CPU accumulators, metrics). The
  // reverse — re-entering the submission ring while a leaf latch is held,
  // e.g. submitting more I/O from inside a merged-feedback critical
  // section — is rank 250 under a held rank 300 and must die.
  Mutex leaf_mu(lock_rank::kExecMergedCpu);
  Mutex ring_mu(lock_rank::kDiskSubmission);
  EXPECT_DEATH(AcquireInOrder(&leaf_mu, &ring_mu),
               "dpcf lock-rank violation");
}

TEST(LockRankDeathTest, DriftMonitorAfterRegistryAborts) {
  // The drift monitor registers its per-series EWMA gauge from inside
  // Observe() while holding its own latch (315 -> 320 is the sanctioned
  // direction). The reverse — touching the monitor from registry render
  // code — is rank 315 under a held rank 320 and must die.
  Mutex registry_mu(lock_rank::kMetricsRegistry);
  Mutex drift_mu(lock_rank::kDriftMonitor);
  EXPECT_DEATH(AcquireInOrder(&registry_mu, &drift_mu),
               "dpcf lock-rank violation");
}

TEST(LockRankDeathTest, JournalDrainUnderDrainAborts) {
  // Record() is lock-free so it may run under any latch; the drain latch
  // itself is an obs leaf — re-entering a journal drain from code already
  // draining (or from any same-or-higher-ranked section) must die.
  Mutex drain_a(lock_rank::kEventJournal);
  Mutex drain_b(lock_rank::kEventJournal);
  EXPECT_DEATH(AcquireInOrder(&drain_a, &drain_b),
               "dpcf lock-rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  // All shard latches share one rank: holding two at once is the bug the
  // aggregate paths (cached_pages / FlushAll / ColdReset) avoid by
  // visiting shards one at a time. Equal rank is not "strictly greater".
  Mutex shard_a(lock_rank::kBufferPoolShard);
  Mutex shard_b(lock_rank::kBufferPoolShard);
  EXPECT_DEATH(AcquireInOrder(&shard_a, &shard_b),
               "dpcf lock-rank violation");
}

#else

TEST(LockRankDeathTest, SkippedWithoutLockRank) {
  GTEST_SKIP() << "built without -DDPCF_LOCK_RANK=ON; ranks are inert";
}

#endif  // DPCF_LOCK_RANK

}  // namespace
}  // namespace dpcf
