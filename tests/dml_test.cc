// Runtime DML: InsertRow / UpdateRow with index maintenance.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/cardinality.h"
#include "exec/index_ops.h"
#include "exec/scan_ops.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(
        [] { DatabaseOptions o; o.page_size = 1024; o.buffer_pool_pages = 64; return o; }());
    Schema schema({Column::Int64("id"), Column::Int64("v"),
                   Column::Char("tag", 8)});
    auto t = db_->CreateTable("t", schema, TableOrganization::kClustered, 0);
    ASSERT_TRUE(t.ok());
    t_ = *t;
    TableBuilder b(t_);
    for (int64_t i = 0; i < 200; ++i) {
      ASSERT_OK(b.AddRow({Value::Int64(i), Value::Int64(i % 10),
                          Value::String("row")}));
    }
    ASSERT_OK(b.Finish());
    ASSERT_OK(
        db_->CreateIndex("t_id", "t", std::vector<int>{0}, true).status());
    ASSERT_OK(db_->CreateIndex("t_v", "t", std::vector<int>{1}).status());
  }

  int64_t CountWhere(int col, int64_t value) {
    Predicate pred({PredicateAtom::Int64(col, CmpOp::kEq, value)});
    TableScanOp scan(t_, pred, {0});
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(&scan, &ctx);
    EXPECT_TRUE(result.ok());
    return static_cast<int64_t>(result->output.size());
  }

  int64_t SeekCount(const char* index, int64_t value) {
    auto source = std::make_unique<IndexSeekSource>(
        db_->GetIndex(index), BtreeKey::Min(value), BtreeKey::Max(value));
    FetchOp fetch(t_, std::move(source), Predicate(), {0});
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(&fetch, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return static_cast<int64_t>(result->output.size());
  }

  std::unique_ptr<Database> db_;
  Table* t_ = nullptr;
};

TEST_F(DmlTest, InsertAppendsAndMaintainsIndexes) {
  ASSERT_OK_AND_ASSIGN(
      Rid rid, db_->InsertRow("t", {Value::Int64(200), Value::Int64(4),
                                    Value::String("new")}));
  EXPECT_EQ(t_->row_count(), 201);
  EXPECT_EQ(rid.page_no, t_->page_count() - 1);
  // Visible to scans and to BOTH indexes.
  EXPECT_EQ(CountWhere(0, 200), 1);
  EXPECT_EQ(SeekCount("t_id", 200), 1);
  EXPECT_EQ(SeekCount("t_v", 4), 21);  // 20 original + 1 new
  EXPECT_OK(db_->GetIndex("t_v")->tree()->CheckInvariants());
}

TEST_F(DmlTest, InsertReusesPartialTailPage) {
  // 200 rows at 1024B pages / 32B rows => rows_per_page = (1024-8)/32 = 31;
  // 200 = 6*31 + 14: the 7th page is part-full and must absorb inserts.
  uint32_t pages_before = t_->page_count();
  ASSERT_TRUE(db_->InsertRow("t", {Value::Int64(201), Value::Int64(1),
                                   Value::String("x")})
                  .ok());
  EXPECT_EQ(t_->page_count(), pages_before);
}

TEST_F(DmlTest, ClusteredInsertRejectsOutOfOrderKeys) {
  auto r = db_->InsertRow("t", {Value::Int64(100), Value::Int64(1),
                                Value::String("bad")});
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(t_->row_count(), 200);
  // Equal key is fine (duplicates allowed at the tail).
  EXPECT_TRUE(db_->InsertRow("t", {Value::Int64(199), Value::Int64(1),
                                   Value::String("ok")})
                  .ok());
}

TEST_F(DmlTest, HeapInsertAcceptsAnyOrder) {
  Schema schema({Column::Int64("k")});
  ASSERT_TRUE(db_->CreateTable("h", schema, TableOrganization::kHeap).ok());
  ASSERT_TRUE(db_->InsertRow("h", {Value::Int64(50)}).ok());
  ASSERT_TRUE(db_->InsertRow("h", {Value::Int64(10)}).ok());
  EXPECT_EQ(db_->GetTable("h")->row_count(), 2);
}

TEST_F(DmlTest, UpdateRekeysChangedIndexesOnly) {
  // Row id=42 has v=2; move it to v=7.
  ASSERT_OK_AND_ASSIGN(BtreeIterator it,
                       db_->GetIndex("t_id")->tree()->SeekFirst(
                           BtreeKey::Min(42)));
  ASSERT_TRUE(it.Valid());
  Rid rid = Rid::Unpack(it.aux());
  ASSERT_OK(db_->UpdateRow("t", rid,
                           {Value::Int64(42), Value::Int64(7),
                            Value::String("upd")}));
  EXPECT_EQ(SeekCount("t_v", 2), 19);
  EXPECT_EQ(SeekCount("t_v", 7), 21);
  EXPECT_EQ(SeekCount("t_id", 42), 1) << "unchanged key untouched";
  EXPECT_OK(db_->GetIndex("t_v")->tree()->CheckInvariants());
  // The new bytes are visible to scans after checkpointing the pool.
  ASSERT_OK(db_->Checkpoint());
  const char* row = nullptr;
  auto guard = t_->file()->FetchRow(rid, &row);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(RowView(row, &t_->schema()).GetValue(2).AsString(), "upd");
}

TEST_F(DmlTest, UpdateCannotChangeClusteringKey) {
  EXPECT_EQ(db_->UpdateRow("t", Rid{0, 0},
                           {Value::Int64(999), Value::Int64(0),
                            Value::String("bad")})
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(DmlTest, DmlRejectsUnknownTableAndBadRows) {
  EXPECT_EQ(db_->InsertRow("missing", {Value::Int64(1)}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_->InsertRow("t", {Value::Int64(1)}).status().code(),
            StatusCode::kInvalidArgument)
      << "arity mismatch";
  EXPECT_EQ(db_->UpdateRow("t", Rid{999, 0},
                           {Value::Int64(0), Value::Int64(0),
                            Value::String("x")})
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(DmlTest, InsertedRowsFlowThroughFeedbackPipeline) {
  // After DML + checkpoint, the diagnostic raw walkers see the new rows.
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(db_->InsertRow("t", {Value::Int64(200 + i),
                                     Value::Int64(3),
                                     Value::String("new")})
                    .ok());
  }
  ASSERT_OK(db_->Checkpoint());
  Predicate pred({PredicateAtom::Int64(1, CmpOp::kEq, 3)});
  StatisticsCatalog stats;
  ASSERT_OK(stats.BuildAll(db_->disk(), *t_));
  const Histogram* h = stats.Get(*t_, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->row_count(), 240);
  EXPECT_NEAR(h->EstimateEq(3), 60, 2);  // 20 original + 40 inserted
}

}  // namespace
}  // namespace dpcf
