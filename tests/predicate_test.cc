// Predicate tests: atom evaluation across operators and types,
// short-circuit semantics and charging, prefix detection, canonical keys.

#include <gtest/gtest.h>

#include "exec/predicate.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest()
      : schema_({Column::Int64("a"), Column::Int64("b"),
                 Column::Char("s", 4)}),
        codec_(&schema_) {}

  std::vector<char> Encode(int64_t a, int64_t b, const std::string& s) {
    std::vector<char> buf(schema_.row_size());
    Status st = codec_.Encode(
        {Value::Int64(a), Value::Int64(b), Value::String(s)}, buf.data());
    EXPECT_TRUE(st.ok());
    return buf;
  }

  Schema schema_;
  RowCodec codec_;
};

struct OpCase {
  CmpOp op;
  int64_t operand;
  int64_t value;
  bool expected;
};

class IntAtomTest : public PredicateTest,
                    public ::testing::WithParamInterface<OpCase> {};

TEST_P(IntAtomTest, EvaluatesCorrectly) {
  const OpCase& c = GetParam();
  auto row = Encode(c.value, 0, "x");
  PredicateAtom atom = PredicateAtom::Int64(0, c.op, c.operand);
  EXPECT_EQ(atom.Eval(RowView(row.data(), &schema_)), c.expected);
  EXPECT_EQ(atom.EvalInt(c.value), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntAtomTest,
    ::testing::Values(OpCase{CmpOp::kEq, 5, 5, true},
                      OpCase{CmpOp::kEq, 5, 6, false},
                      OpCase{CmpOp::kNe, 5, 6, true},
                      OpCase{CmpOp::kNe, 5, 5, false},
                      OpCase{CmpOp::kLt, 5, 4, true},
                      OpCase{CmpOp::kLt, 5, 5, false},
                      OpCase{CmpOp::kLe, 5, 5, true},
                      OpCase{CmpOp::kLe, 5, 6, false},
                      OpCase{CmpOp::kGt, 5, 6, true},
                      OpCase{CmpOp::kGt, 5, 5, false},
                      OpCase{CmpOp::kGe, 5, 5, true},
                      OpCase{CmpOp::kGe, 5, 4, false},
                      OpCase{CmpOp::kLt, -10, -11, true},
                      OpCase{CmpOp::kGt, INT64_MAX - 1, INT64_MAX, true}));

TEST_F(PredicateTest, StringAtomsComparePadded) {
  auto row = Encode(0, 0, "ca");
  RowView view(row.data(), &schema_);
  EXPECT_TRUE(PredicateAtom::String(2, CmpOp::kEq, "ca", 4).Eval(view));
  EXPECT_FALSE(PredicateAtom::String(2, CmpOp::kEq, "wa", 4).Eval(view));
  EXPECT_TRUE(PredicateAtom::String(2, CmpOp::kNe, "wa", 4).Eval(view));
  // Lexicographic on the padded representation.
  EXPECT_TRUE(PredicateAtom::String(2, CmpOp::kLt, "cb", 4).Eval(view));
  EXPECT_TRUE(PredicateAtom::String(2, CmpOp::kGe, "ca", 4).Eval(view));
}

TEST_F(PredicateTest, ShortCircuitStopsAtFirstFalse) {
  Predicate p({PredicateAtom::Int64(0, CmpOp::kLt, 10),
               PredicateAtom::Int64(1, CmpOp::kEq, 7),
               PredicateAtom::Int64(0, CmpOp::kGe, 0)});
  CpuStats cpu;
  auto row = Encode(50, 7, "x");  // first atom fails
  EXPECT_EQ(p.EvalLeading(RowView(row.data(), &schema_), &cpu), 0u);
  EXPECT_EQ(cpu.predicate_atom_evals, 1);

  cpu.Reset();
  auto row2 = Encode(5, 9, "x");  // second fails
  EXPECT_EQ(p.EvalLeading(RowView(row2.data(), &schema_), &cpu), 1u);
  EXPECT_EQ(cpu.predicate_atom_evals, 2);

  cpu.Reset();
  auto row3 = Encode(5, 7, "x");  // all pass
  EXPECT_EQ(p.EvalLeading(RowView(row3.data(), &schema_), &cpu), 3u);
  EXPECT_TRUE(p.Eval(RowView(row3.data(), &schema_), &cpu));
}

TEST_F(PredicateTest, NoShortCircuitChargesEveryAtom) {
  Predicate p({PredicateAtom::Int64(0, CmpOp::kLt, 10),
               PredicateAtom::Int64(1, CmpOp::kEq, 7),
               PredicateAtom::Int64(0, CmpOp::kGe, 0)});
  CpuStats cpu;
  auto row = Encode(50, 9, "x");  // fails immediately
  EXPECT_FALSE(p.EvalNoShortCircuit(RowView(row.data(), &schema_), &cpu));
  EXPECT_EQ(cpu.predicate_atom_evals, 3)
      << "short-circuiting off must evaluate all atoms";
}

TEST_F(PredicateTest, EmptyPredicateAcceptsEverything) {
  Predicate p;
  CpuStats cpu;
  auto row = Encode(1, 2, "x");
  EXPECT_TRUE(p.Eval(RowView(row.data(), &schema_), &cpu));
  EXPECT_EQ(cpu.predicate_atom_evals, 0);
  EXPECT_EQ(p.ToString(schema_), "TRUE");
  EXPECT_EQ(p.CanonicalKey(schema_), "TRUE");
}

TEST_F(PredicateTest, PrefixDetection) {
  PredicateAtom a1 = PredicateAtom::Int64(0, CmpOp::kLt, 10);
  PredicateAtom a2 = PredicateAtom::Int64(1, CmpOp::kEq, 7);
  PredicateAtom a3 = PredicateAtom::Int64(0, CmpOp::kGe, 0);
  Predicate pushed({a1, a2, a3});

  EXPECT_TRUE(Predicate().IsPrefixOf(pushed));
  EXPECT_TRUE(Predicate({a1}).IsPrefixOf(pushed));
  EXPECT_TRUE(Predicate({a1, a2}).IsPrefixOf(pushed));
  EXPECT_TRUE(Predicate({a1, a2, a3}).IsPrefixOf(pushed));
  EXPECT_FALSE(Predicate({a2}).IsPrefixOf(pushed)) << "non-leading atom";
  EXPECT_FALSE(Predicate({a2, a1}).IsPrefixOf(pushed)) << "wrong order";
  EXPECT_FALSE(Predicate({a1, a2, a3, a1}).IsPrefixOf(pushed))
      << "longer than pushed";
  // Same column, different operand: not the same atom.
  EXPECT_FALSE(
      Predicate({PredicateAtom::Int64(0, CmpOp::kLt, 11)}).IsPrefixOf(
          pushed));
}

TEST_F(PredicateTest, PrefixSlicing) {
  Predicate p({PredicateAtom::Int64(0, CmpOp::kLt, 10),
               PredicateAtom::Int64(1, CmpOp::kEq, 7)});
  EXPECT_EQ(p.Prefix(0).size(), 0u);
  EXPECT_EQ(p.Prefix(1).ToString(schema_), "a<10");
  EXPECT_EQ(p.Prefix(2).ToString(schema_), "a<10 AND b=7");
}

TEST_F(PredicateTest, ToStringAndCanonicalKey) {
  Predicate p({PredicateAtom::Int64(1, CmpOp::kEq, 7),
               PredicateAtom::Int64(0, CmpOp::kLt, 10)});
  EXPECT_EQ(p.ToString(schema_), "b=7 AND a<10");
  // Canonical key sorts atoms, so evaluation order doesn't fragment the
  // feedback store.
  Predicate q({PredicateAtom::Int64(0, CmpOp::kLt, 10),
               PredicateAtom::Int64(1, CmpOp::kEq, 7)});
  EXPECT_EQ(p.CanonicalKey(schema_), q.CanonicalKey(schema_));
}

TEST_F(PredicateTest, StringAtomToStringTrimsPadding) {
  PredicateAtom a = PredicateAtom::String(2, CmpOp::kEq, "ca", 4);
  EXPECT_EQ(a.ToString(schema_), "s='ca'");
  EXPECT_STREQ(CmpOpSymbol(CmpOp::kNe), "<>");
  EXPECT_STREQ(CmpOpSymbol(CmpOp::kLe), "<=");
  EXPECT_STREQ(CmpOpSymbol(CmpOp::kGe), ">=");
}

TEST_F(PredicateTest, SameAsComparesOperandAndType) {
  PredicateAtom a = PredicateAtom::Int64(0, CmpOp::kLt, 10);
  EXPECT_TRUE(a.SameAs(PredicateAtom::Int64(0, CmpOp::kLt, 10)));
  EXPECT_FALSE(a.SameAs(PredicateAtom::Int64(0, CmpOp::kLe, 10)));
  EXPECT_FALSE(a.SameAs(PredicateAtom::Int64(1, CmpOp::kLt, 10)));
  EXPECT_FALSE(a.SameAs(PredicateAtom::Int64(0, CmpOp::kLt, 11)));
  EXPECT_FALSE(a.SameAs(PredicateAtom::String(0, CmpOp::kLt, "10", 4)));
}

}  // namespace
}  // namespace dpcf
