// Optimizer tests: histograms, cardinality estimation with hints, the Yao
// analytical DPC baseline, range extraction, access-path and join-method
// enumeration, and hint-driven plan flips.

#include <cmath>

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/yao.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, UniformRangeEstimatesAreAccurate) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10'000; ++i) values.push_back(i);
  Histogram h = Histogram::FromValues(values, 100);
  EXPECT_EQ(h.row_count(), 10'000);
  EXPECT_NEAR(h.EstimateRange(0, 999), 1000, 20);
  EXPECT_NEAR(h.EstimateRange(2500, 7499), 5000, 20);
  EXPECT_NEAR(h.EstimateRange(9990, 20000), 10, 5);
  EXPECT_EQ(h.EstimateRange(20000, 30000), 0);
  EXPECT_EQ(h.EstimateRange(500, 400), 0);
}

TEST(HistogramTest, EqEstimateUsesPerBucketDistincts) {
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 100; ++v) {
    for (int r = 0; r < 50; ++r) values.push_back(v);
  }
  Histogram h = Histogram::FromValues(values, 20);
  EXPECT_NEAR(h.EstimateEq(37), 50, 10);
  EXPECT_EQ(h.EstimateEq(-5), 0);
  EXPECT_EQ(h.EstimateEq(100), 0);
  EXPECT_NEAR(h.distinct_count(), 100, 1);
}

TEST(HistogramTest, SkewedValuesDoNotStraddleBuckets) {
  std::vector<int64_t> values(5000, 7);  // a single heavy value
  for (int64_t i = 0; i < 1000; ++i) values.push_back(1000 + i);
  Histogram h = Histogram::FromValues(values, 50);
  EXPECT_NEAR(h.EstimateEq(7), 5000, 1);
}

TEST(HistogramTest, EmptyHistogramEstimatesZero) {
  Histogram h;
  EXPECT_EQ(h.EstimateRange(0, 10), 0);
  EXPECT_EQ(h.EstimateEq(0), 0);
}

// ------------------------------------------------------------------- Yao

TEST(YaoTest, BoundsAndLimits) {
  const int64_t pages = 1000, m = 50;
  EXPECT_EQ(YaoEstimate(pages, m, 0), 0);
  EXPECT_NEAR(YaoEstimate(pages, m, pages * m), pages, 1e-6);
  for (int64_t k : {1, 10, 100, 1000, 10'000}) {
    double est = YaoEstimate(pages, m, k);
    EXPECT_GE(est, static_cast<double>(PageCountLowerBound(m, k)) - 1e-6);
    EXPECT_LE(est, static_cast<double>(PageCountUpperBound(pages, k)) + 1e-6);
  }
}

TEST(YaoTest, MonotoneInQualifyingRows) {
  double prev = 0;
  for (int64_t k = 0; k <= 50'000; k += 1000) {
    double est = YaoEstimate(1000, 50, k);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(YaoTest, SmallKIsNearlyK) {
  // With few qualifying rows spread over many pages, each row should land
  // on its own page: E ≈ k.
  EXPECT_NEAR(YaoEstimate(100'000, 50, 100), 100, 1);
}

TEST(YaoTest, CardenasApproximatesYao) {
  for (int64_t k : {100, 1000, 10'000}) {
    double yao = YaoEstimate(1000, 50, k);
    double car = CardenasEstimate(1000, k);
    EXPECT_NEAR(car, yao, 0.05 * yao + 1);
  }
}

TEST(YaoTest, BoundsHelpers) {
  EXPECT_EQ(PageCountLowerBound(50, 100), 2);
  EXPECT_EQ(PageCountLowerBound(50, 101), 3);
  EXPECT_EQ(PageCountLowerBound(50, 0), 0);
  EXPECT_EQ(PageCountUpperBound(1000, 100), 100);
  EXPECT_EQ(PageCountUpperBound(1000, 5000), 1000);
}

// ------------------------------------------------------- Range extraction

TEST(RangeExtractionTest, IntersectsAtoms) {
  Predicate pred({PredicateAtom::Int64(0, CmpOp::kGe, 10),
                  PredicateAtom::Int64(0, CmpOp::kLt, 100),
                  PredicateAtom::Int64(1, CmpOp::kEq, 5)});
  auto r0 = ExtractColumnRange(pred, 0);
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->lo, 10);
  EXPECT_EQ(r0->hi, 99);
  EXPECT_EQ(r0->atoms.size(), 2u);
  auto r1 = ExtractColumnRange(pred, 1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->lo, 5);
  EXPECT_EQ(r1->hi, 5);
  EXPECT_FALSE(ExtractColumnRange(pred, 2).has_value());
}

TEST(RangeExtractionTest, NeIsNotSargable) {
  Predicate pred({PredicateAtom::Int64(0, CmpOp::kNe, 10)});
  EXPECT_FALSE(ExtractColumnRange(pred, 0).has_value());
}

TEST(RangeExtractionTest, RemoveAtomsKeepsOrder) {
  PredicateAtom a = PredicateAtom::Int64(0, CmpOp::kLt, 1);
  PredicateAtom b = PredicateAtom::Int64(1, CmpOp::kLt, 2);
  PredicateAtom c = PredicateAtom::Int64(2, CmpOp::kLt, 3);
  Predicate pred({a, b, c});
  Predicate removed = RemoveAtoms(pred, Predicate({b}));
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_TRUE(removed.atoms()[0].SameAs(a));
  EXPECT_TRUE(removed.atoms()[1].SameAs(c));
}

// ------------------------------------------------- Enumeration & costing

class OptimizerTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }

  SingleTableQuery Query(int col, CmpOp op, int64_t v) {
    SingleTableQuery q;
    q.table = t_;
    q.pred.Add(PredicateAtom::Int64(col, op, v));
    q.count_star = true;
    q.count_col = kPadding;
    return q;
  }

  StatisticsCatalog stats_;
  OptimizerHints hints_;
};

TEST_F(OptimizerTest, TableScanAlwaysEnumerated) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  ASSERT_EQ(paths.size(), 1u) << "no sargable atoms: scan only";
  EXPECT_EQ(paths[0].kind, AccessKind::kTableScan);
}

TEST_F(OptimizerTest, SeekEnumeratedPerUsableIndex) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC3, CmpOp::kLt, 1000));
  q.pred.Add(PredicateAtom::Int64(kC5, CmpOp::kLt, 1000));
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  int scans = 0, seeks = 0, intersections = 0;
  for (const auto& p : paths) {
    scans += p.kind == AccessKind::kTableScan;
    seeks += p.kind == AccessKind::kIndexSeek;
    intersections += p.kind == AccessKind::kIndexIntersection;
  }
  EXPECT_EQ(scans, 1);
  EXPECT_EQ(seeks, 2);
  EXPECT_EQ(intersections, 1);
}

TEST_F(OptimizerTest, ClusteredRangeBeatsScanForKeyPredicate) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best,
                       opt.OptimizeSingleTable(Query(kC1, CmpOp::kLt, 500)));
  EXPECT_EQ(best.kind, AccessKind::kClusteredRange);
}

TEST_F(OptimizerTest, CoveringScanRequiresAllReferencedColumns) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  // COUNT(*) referencing only C2 via the predicate: T_c2 covers it.
  SingleTableQuery covered = Query(kC2, CmpOp::kLt, 500);
  covered.count_col = -1;
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(covered));
  bool has_covering = false;
  for (const auto& p : paths) {
    has_covering |= p.kind == AccessKind::kCoveringScan;
  }
  EXPECT_TRUE(has_covering);
  // COUNT(padding): nothing covers.
  ASSERT_OK_AND_ASSIGN(auto paths2,
                       opt.EnumerateAccessPaths(Query(kC2, CmpOp::kLt, 500)));
  for (const auto& p : paths2) {
    EXPECT_NE(p.kind, AccessKind::kCoveringScan);
  }
}

TEST_F(OptimizerTest, YaoDpcMakesScanWinOnLowSelectivityCorrelated) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best,
                       opt.OptimizeSingleTable(Query(kC2, CmpOp::kLt, 400)));
  EXPECT_EQ(best.kind, AccessKind::kTableScan)
      << "without feedback, Yao overestimates DPC and the scan wins";
  EXPECT_EQ(best.Describe().find("hint"), std::string::npos);
}

TEST_F(OptimizerTest, DpcHintFlipsScanToSeek) {
  SingleTableQuery q = Query(kC2, CmpOp::kLt, 400);
  Predicate sargable = q.pred;
  hints_.SetDpc(SelPredKey(*t_, sargable), 5.0);  // the truth
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  EXPECT_EQ(best.kind, AccessKind::kIndexSeek);
  EXPECT_EQ(best.dpc_source, "hint");
  EXPECT_EQ(best.est_dpc, 5.0);
}

TEST_F(OptimizerTest, CardinalityHintOverridesHistogram) {
  SingleTableQuery q = Query(kC5, CmpOp::kLt, 10'000);
  hints_.SetCardinality(SelPredKey(*t_, q.pred), 17.0);
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  for (const auto& p : paths) {
    EXPECT_EQ(p.est_rows, 17.0) << p.Describe();
  }
}

TEST_F(OptimizerTest, HistogramCardinalityCloseForUniformColumn) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  SingleTableQuery q = Query(kC4, CmpOp::kLt, 5000);
  double est = opt.cardinality().EstimateRows(*t_, q.pred);
  EXPECT_NEAR(est, 4999, 250);
}

TEST_F(OptimizerTest, ExpectedAtomEvalsReflectsShortCircuit) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  // Single atom: exactly 1 eval per row.
  EXPECT_DOUBLE_EQ(
      opt.ExpectedAtomEvals(*t_, Query(kC2, CmpOp::kLt, 400).pred), 1.0);
  // Low-selectivity first atom: the second is rarely evaluated.
  Predicate two({PredicateAtom::Int64(kC2, CmpOp::kLt, 400),
                 PredicateAtom::Int64(kC5, CmpOp::kLt, 400)});
  double evals = opt.ExpectedAtomEvals(*t_, two);
  EXPECT_GT(evals, 1.0);
  EXPECT_LT(evals, 1.1);
  EXPECT_EQ(opt.ExpectedAtomEvals(*t_, Predicate()), 0.0);
}

TEST_F(OptimizerTest, CostModelPrefersFewerRandomReads) {
  CostModel cm;
  Index* ix = db_->GetIndex("T_c2");
  double cheap = cm.IndexSeek(*ix, 1000, 15, 0);
  double costly = cm.IndexSeek(*ix, 1000, 900, 0);
  EXPECT_LT(cheap, costly);
  // 15 pages for 1000 rows is the co-clustered lower bound: charged as a
  // sequential run. 900 pages is scattered: charged as random fetches.
  uint32_t m = t_->rows_per_page();
  EXPECT_NEAR(cm.FetchIo(15, 1000, m),
              cm.params().rand_read_ms + 15 * cm.params().seq_read_ms,
              1e-9);
  EXPECT_NEAR(cm.FetchIo(900, 1000, m), 900 * cm.params().rand_read_ms,
              1e-9);
}

TEST_F(OptimizerTest, EstimateDpcPrefersHintOverYao) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  Predicate expr({PredicateAtom::Int64(kC2, CmpOp::kLt, 400)});
  std::string source;
  double yao = opt.EstimateDpc(*t_, expr, 399, &source);
  EXPECT_EQ(source, "yao");
  EXPECT_NEAR(yao, YaoEstimate(t_->page_count(), t_->rows_per_page(), 399),
              1e-9);
  hints_.SetDpc(SelPredKey(*t_, expr), 7.0);
  EXPECT_EQ(opt.EstimateDpc(*t_, expr, 399, &source), 7.0);
  EXPECT_EQ(source, "hint");
}

class JoinOptimizerTest : public OptimizerTest {
 protected:
  void SetUp() override {
    OptimizerTest::SetUp();
    SyntheticOptions s1;
    s1.num_rows = 20'000;
    s1.seed = 1234;
    s1.build_indexes = false;
    auto t1 = BuildSyntheticTable(db_.get(), "T1", s1);
    ASSERT_TRUE(t1.ok());
    t1_ = *t1;
    ASSERT_OK(
        db_->CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true)
            .status());
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t1_));
  }

  JoinQuery JQ(int ci, int64_t limit) {
    JoinQuery q;
    q.outer_table = t1_;
    q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, limit));
    q.outer_col = ci;
    q.inner_table = t_;
    q.inner_col = ci;
    q.inner_count_col = kPadding;
    return q;
  }

  Table* t1_ = nullptr;
};

TEST_F(JoinOptimizerTest, EnumeratesAllThreeMethods) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(auto plans, opt.EnumerateJoinPlans(JQ(kC3, 500)));
  std::set<JoinMethod> methods;
  for (const auto& p : plans) methods.insert(p.method);
  EXPECT_EQ(methods.size(), 3u);
}

TEST_F(JoinOptimizerTest, InlRequiresIndexOnInnerJoinColumn) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  // Swap roles: inner T1 has no index on C3 => no INL plan.
  JoinQuery q;
  q.outer_table = t_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 500));
  q.outer_col = kC3;
  q.inner_table = t1_;
  q.inner_col = kC3;
  ASSERT_OK_AND_ASSIGN(auto plans, opt.EnumerateJoinPlans(q));
  for (const auto& p : plans) {
    EXPECT_NE(p.method, JoinMethod::kIndexNestedLoops);
  }
}

TEST_F(JoinOptimizerTest, JoinDpcHintFlipsHashToInl) {
  JoinQuery q = JQ(kC2, 400);
  {
    Optimizer opt(db_.get(), &stats_, &hints_);
    ASSERT_OK_AND_ASSIGN(JoinPlan best, opt.OptimizeJoin(q));
    EXPECT_EQ(best.method, JoinMethod::kHashJoin);
  }
  hints_.SetDpc(JoinPredKey(*t1_, kC2, *t_, kC2), 5.0);
  {
    Optimizer opt(db_.get(), &stats_, &hints_);
    ASSERT_OK_AND_ASSIGN(JoinPlan best, opt.OptimizeJoin(q));
    EXPECT_EQ(best.method, JoinMethod::kIndexNestedLoops);
    EXPECT_EQ(best.dpc_source, "hint");
  }
}

TEST_F(JoinOptimizerTest, MergeJoinSortFlagsFollowClustering) {
  Optimizer opt(db_.get(), &stats_, &hints_);
  // Join on the clustering columns themselves: no sorts needed.
  JoinQuery q;
  q.outer_table = t1_;
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 500));
  q.outer_col = kC1;
  q.inner_table = t_;
  q.inner_col = kC1;
  ASSERT_OK_AND_ASSIGN(auto plans, opt.EnumerateJoinPlans(q));
  for (const auto& p : plans) {
    if (p.method == JoinMethod::kMergeJoin) {
      EXPECT_FALSE(p.sort_outer);
      EXPECT_FALSE(p.sort_inner);
    }
  }
  // Join on C5: both sides need sorting.
  ASSERT_OK_AND_ASSIGN(auto plans2, opt.EnumerateJoinPlans(JQ(kC5, 500)));
  for (const auto& p : plans2) {
    if (p.method == JoinMethod::kMergeJoin) {
      EXPECT_TRUE(p.sort_outer);
      EXPECT_TRUE(p.sort_inner);
    }
  }
}

TEST_F(JoinOptimizerTest, JoinPredKeyIsOrderInsensitive) {
  EXPECT_EQ(JoinPredKey(*t1_, kC2, *t_, kC2),
            JoinPredKey(*t_, kC2, *t1_, kC2));
  EXPECT_NE(JoinPredKey(*t1_, kC2, *t_, kC2),
            JoinPredKey(*t1_, kC3, *t_, kC3));
}

}  // namespace
}  // namespace dpcf
