// Property sweep for the vectorized predicate path (DESIGN.md section 12):
// the batch kernel and the batch-fed monitors must be indistinguishable —
// tuples, CpuStats charges, and monitor feedback bit for bit — from the
// row-at-a-time oracle they replace.
//
//  * kernel level: EvalBatch vs Predicate::EvalLeading and EvalBatchDense
//    vs Predicate::EvalNoShortCircuit over every page of the synthetic
//    table, for random conjunctions of int64 and CHAR atoms across all six
//    CmpOps;
//  * scan level: TableScanOp(vectorized) vs TableScanOp(oracle) with
//    prefix-exact, sampled (f < 1) and bitvector monitor requests;
//  * parallel level: ParallelTableScanOp(vectorized) vs the serial oracle.
//
// The engine has no SQL NULLs — rows are fixed-width and every column is
// populated — so the "NULL handling" corner of the sweep is covered by its
// moral equivalents here: empty batches (n = 0), empty-string and
// space-padded CHAR operands, and 0%/100%/single-row selectivities.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dpsample.h"
#include "core/feedback_driver.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/predicate_kernel.h"
#include "exec/scan_ops.h"
#include "table/heap_file.h"
#include "table/row_codec.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using testing::SyntheticDbTest;

// Random conjunction mixing int64 atoms on C1..C5 with an occasional CHAR
// atom on the padding column, uniform over all six CmpOps.
Predicate RandomMixedConjunction(Rng* rng, int64_t n, int max_atoms,
                                 uint32_t pad_width) {
  Predicate pred;
  const int atoms = 1 + static_cast<int>(rng->NextBounded(
                            static_cast<uint64_t>(max_atoms)));
  const int cols[] = {kC1, kC2, kC3, kC4, kC5};
  for (int a = 0; a < atoms; ++a) {
    CmpOp op = static_cast<CmpOp>(rng->NextBounded(6));
    if (rng->NextBounded(4) == 0) {
      // String atom: operands chosen around the constant "pad" value so
      // every CmpOp exercises both outcomes across the sweep.
      const char* operands[] = {"pad", "", "paa", "pae", "zzz"};
      pred.Add(PredicateAtom::String(
          kPadding, op, operands[rng->NextBounded(5)], pad_width));
      continue;
    }
    int col = cols[rng->NextBounded(5)];
    int64_t v = rng->NextInt(1, n);
    if (op == CmpOp::kLt || op == CmpOp::kLe) v = std::max<int64_t>(v, n / 8);
    if (op == CmpOp::kGt || op == CmpOp::kGe) {
      v = std::min<int64_t>(v, 7 * n / 8);
    }
    pred.Add(PredicateAtom::Int64(col, op, v));
  }
  return pred;
}

class PredicateBatchSweep : public SyntheticDbTest,
                            public ::testing::WithParamInterface<int> {
 protected:
  // Runs `pred` over every page of T twice — batch kernel vs row-at-a-time
  // reference — and asserts identical survivors, leading counts, dense pass
  // bits and CpuStats charges.
  void CheckKernelAgainstOracle(const Predicate& pred) {
    const Schema* schema = &t_->schema();
    const HeapFile* file = t_->file();
    PredicateKernel kernel(pred, schema);
    ASSERT_EQ(kernel.num_atoms(), pred.atoms().size());
    RowBlock block(schema);
    std::vector<uint32_t> sel, leading;
    CpuStats batch_cpu, serial_cpu, dense_batch_cpu, dense_serial_cpu;

    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      const uint32_t n = HeapFile::PageRowCount(page);
      block.Reset(HeapFile::PageRows(page), n);
      sel.resize(n);
      leading.resize(n);
      const uint32_t m =
          kernel.EvalBatch(&block, &batch_cpu, sel.data(), leading.data());

      uint32_t expect_m = 0;
      for (uint32_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(s)), schema);
        const uint32_t lead = pred.EvalLeading(row, &serial_cpu);
        ASSERT_EQ(leading[s], lead) << "page " << p << " row " << s << ": "
                                    << pred.ToString(*schema);
        if (lead == pred.atoms().size()) {
          ASSERT_LT(expect_m, m);
          ASSERT_EQ(sel[expect_m], s);
          ++expect_m;
        }
      }
      ASSERT_EQ(m, expect_m) << pred.ToString(*schema);

      // Dense (no-short-circuit) path, as monitors run it on sampled pages.
      std::vector<uint8_t> pass(n);
      kernel.EvalBatchDense(&block, &dense_batch_cpu, pass.data());
      for (uint32_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(s)), schema);
        const bool expect =
            pred.EvalNoShortCircuit(row, &dense_serial_cpu);
        ASSERT_EQ(pass[s] != 0, expect) << "page " << p << " row " << s;
      }
    }
    EXPECT_EQ(batch_cpu.predicate_atom_evals, serial_cpu.predicate_atom_evals)
        << pred.ToString(*schema);
    EXPECT_EQ(dense_batch_cpu.predicate_atom_evals,
              dense_serial_cpu.predicate_atom_evals);
  }
};

TEST_P(PredicateBatchSweep, KernelMatchesRowOracleOnRandomConjunctions) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48611 + 17);
  const uint32_t pad_width = t_->schema().column(kPadding).size;
  for (int round = 0; round < 4; ++round) {
    CheckKernelAgainstOracle(
        RandomMixedConjunction(&rng, t_->row_count(), 4, pad_width));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateBatchSweep, ::testing::Range(0, 8));

class PredicateBatchEdgeTest : public SyntheticDbTest {};

TEST_F(PredicateBatchEdgeTest, SelectivityExtremes) {
  const uint32_t pad_width = t_->schema().column(kPadding).size;
  const int64_t n = t_->row_count();
  // 0%: no value < 1; the selection vector empties after atom 0, so later
  // atoms must neither run nor charge. 100%: everything passes. Single
  // survivor: C1 is a permutation of 1..n, so C1 == k keeps exactly one
  // row. String extremes: the padding column is the constant "pad".
  struct Case {
    Predicate pred;
    int64_t survivors;
  };
  std::vector<Case> cases;
  cases.push_back({Predicate({PredicateAtom::Int64(kC1, CmpOp::kLt, 1),
                              PredicateAtom::Int64(kC2, CmpOp::kGt, 0)}),
                   0});
  cases.push_back({Predicate(), n});
  cases.push_back({Predicate({PredicateAtom::Int64(kC1, CmpOp::kGe, 1)}), n});
  cases.push_back(
      {Predicate({PredicateAtom::Int64(kC1, CmpOp::kEq, n / 2)}), 1});
  cases.push_back(
      {Predicate({PredicateAtom::String(kPadding, CmpOp::kEq, "pad",
                                        pad_width)}),
       n});
  cases.push_back(
      {Predicate({PredicateAtom::String(kPadding, CmpOp::kNe, "pad",
                                        pad_width)}),
       0});
  // Empty-string operand pads to all spaces, which sorts before "pad...".
  cases.push_back(
      {Predicate({PredicateAtom::String(kPadding, CmpOp::kGt, "",
                                        pad_width)}),
       n});
  cases.push_back(
      {Predicate({PredicateAtom::String(kPadding, CmpOp::kLe, "",
                                        pad_width)}),
       0});

  const Schema* schema = &t_->schema();
  const HeapFile* file = t_->file();
  for (const Case& c : cases) {
    PredicateKernel kernel(c.pred, schema);
    RowBlock block(schema);
    std::vector<uint32_t> sel, leading;
    CpuStats batch_cpu, serial_cpu;
    int64_t survivors = 0;
    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      const uint32_t rows = HeapFile::PageRowCount(page);
      block.Reset(HeapFile::PageRows(page), rows);
      sel.resize(rows);
      leading.resize(rows);
      survivors +=
          kernel.EvalBatch(&block, &batch_cpu, sel.data(), leading.data());
      for (uint32_t s = 0; s < rows; ++s) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(s)), schema);
        c.pred.EvalLeading(row, &serial_cpu);
      }
    }
    EXPECT_EQ(survivors, c.survivors) << c.pred.ToString(*schema);
    EXPECT_EQ(batch_cpu.predicate_atom_evals,
              serial_cpu.predicate_atom_evals)
        << c.pred.ToString(*schema);
  }
}

TEST_F(PredicateBatchEdgeTest, EmptyBatchIsFreeAndEmpty) {
  const Schema* schema = &t_->schema();
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kGt, 0)});
  PredicateKernel kernel(pred, schema);
  RowBlock block(schema);
  block.Reset(nullptr, 0);
  CpuStats cpu;
  EXPECT_EQ(kernel.EvalBatch(&block, &cpu, nullptr, nullptr), 0u);
  EXPECT_EQ(cpu.predicate_atom_evals, 0);
  kernel.EvalBatchDense(&block, &cpu, nullptr);
  EXPECT_EQ(cpu.predicate_atom_evals, 0);

  // An empty batch fed to a monitor bundle must leave every counter and
  // the open page's satisfied flag untouched.
  ScanMonitorBundle bundle(pred, schema, /*f=*/1.0, /*seed=*/3);
  ScanExprRequest req;
  req.label = "edge";
  req.expr = pred;
  ASSERT_OK(bundle.AddRequest(req));
  std::vector<const BitvectorFilter*> no_slots;
  bundle.BeginPage(&cpu, 0);
  bundle.ObserveBatch(&block, nullptr, &cpu, no_slots);
  bundle.EndPage();
  auto results = bundle.Finish();
  EXPECT_EQ(results[0].dpc, 0.0);
  EXPECT_EQ(results[0].cardinality, 0.0);
}

// ------------------------------------------------- scan-level equivalence

class VectorizedScanSweep : public SyntheticDbTest,
                            public ::testing::WithParamInterface<int> {
 protected:
  // Builds the bundle used by both paths: a prefix-exact request, a
  // sampled (f = 0.5) request, and a bitvector semi-join request.
  std::unique_ptr<ScanMonitorBundle> MakeBundle(const Predicate& pushed,
                                                const Predicate& requested,
                                                uint64_t seed, int slot) {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        pushed, &t_->schema(), /*f=*/0.5, seed);
    if (!pushed.atoms().empty()) {
      ScanExprRequest prefix;
      prefix.label = "prefix";
      prefix.expr = Predicate({pushed.atoms()[0]});
      EXPECT_TRUE(bundle->AddRequest(std::move(prefix)).ok());
    }
    ScanExprRequest sampled;
    sampled.label = "sampled";
    sampled.expr = requested;
    EXPECT_TRUE(bundle->AddRequest(std::move(sampled)).ok());
    ScanExprRequest bv;
    bv.label = "bv";
    bv.expr = requested;
    bv.bitvector_slot = slot;
    bv.bv_col = kC2;
    EXPECT_TRUE(bundle->AddRequest(std::move(bv)).ok());
    return bundle;
  }

  // One monitored scan, vectorized or oracle, with a registered bitvector
  // filter keyed on C2.
  RunResult RunScan(const Predicate& pushed, const Predicate& requested,
                    uint64_t seed, bool vectorized) {
    EXPECT_TRUE(db_->ColdCache().ok());
    ExecContext ctx(db_->buffer_pool());
    const int slot = ctx.AllocateFilterSlot();
    auto filter = std::make_unique<BitvectorFilter>(
        1 << 12, /*seed=*/0, BitvectorMode::kHashed);
    for (int64_t k = 1; k <= t_->row_count(); k += 3) filter->AddKey(k);
    EXPECT_TRUE(ctx.SetFilter(slot, std::move(filter)).ok());
    TableScanOp scan(t_, pushed, {kC1, kC5, kPadding},
                     MakeBundle(pushed, requested, seed, slot), vectorized);
    EXPECT_EQ(scan.vectorized(), vectorized);
    auto run = ExecutePlan(&scan, &ctx);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(*run);
  }
};

TEST_P(VectorizedScanSweep, TuplesStatsAndFeedbackMatchOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 92821 + 29);
  const uint32_t pad_width = t_->schema().column(kPadding).size;
  const Predicate pushed =
      RandomMixedConjunction(&rng, t_->row_count(), 3, pad_width);
  const Predicate requested =
      RandomMixedConjunction(&rng, t_->row_count(), 2, pad_width);
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 101;

  RunResult vec = RunScan(pushed, requested, seed, /*vectorized=*/true);
  RunResult oracle = RunScan(pushed, requested, seed, /*vectorized=*/false);

  ASSERT_EQ(vec.output.size(), oracle.output.size())
      << pushed.ToString(t_->schema());
  for (size_t i = 0; i < vec.output.size(); ++i) {
    ASSERT_EQ(vec.output[i], oracle.output[i]) << "tuple " << i;
  }

  const CpuStats& vc = vec.stats.cpu;
  const CpuStats& oc = oracle.stats.cpu;
  EXPECT_EQ(vc.rows_processed, oc.rows_processed);
  EXPECT_EQ(vc.predicate_atom_evals, oc.predicate_atom_evals)
      << pushed.ToString(t_->schema()) << " / "
      << requested.ToString(t_->schema());
  EXPECT_EQ(vc.monitor_row_ops, oc.monitor_row_ops);
  EXPECT_EQ(vc.monitor_hash_ops, oc.monitor_hash_ops);
  EXPECT_EQ(vec.stats.simulated_ms, oracle.stats.simulated_ms);

  ASSERT_EQ(vec.stats.monitors.size(), oracle.stats.monitors.size());
  for (size_t i = 0; i < vec.stats.monitors.size(); ++i) {
    const MonitorRecord& v = vec.stats.monitors[i];
    const MonitorRecord& o = oracle.stats.monitors[i];
    EXPECT_EQ(v.label, o.label);
    EXPECT_EQ(v.mechanism, o.mechanism);
    EXPECT_EQ(v.actual_dpc, o.actual_dpc) << v.label;
    EXPECT_EQ(v.actual_cardinality, o.actual_cardinality) << v.label;
    EXPECT_EQ(v.exact, o.exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedScanSweep, ::testing::Range(0, 8));

class ParallelVectorizedSweep : public SyntheticDbTest,
                                public ::testing::WithParamInterface<int> {};

TEST_P(ParallelVectorizedSweep, ParallelBatchMatchesSerialOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15013 + 11);
  const uint32_t pad_width = t_->schema().column(kPadding).size;
  const Predicate pushed =
      RandomMixedConjunction(&rng, t_->row_count(), 3, pad_width);
  const Predicate requested =
      RandomMixedConjunction(&rng, t_->row_count(), 2, pad_width);
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 17;

  auto make_bundle = [&] {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        pushed, &t_->schema(), /*f=*/0.5, seed);
    ScanExprRequest req;
    req.label = "sweep";
    req.expr = requested;
    EXPECT_TRUE(bundle->AddRequest(std::move(req)).ok());
    return bundle;
  };

  // Serial row-at-a-time oracle.
  ExecContext serial_ctx(db_->buffer_pool());
  TableScanOp serial(t_, pushed, {kC1, kPadding}, make_bundle(),
                     /*vectorized=*/false);
  ASSERT_OK_AND_ASSIGN(RunResult oracle, ExecutePlan(&serial, &serial_ctx));

  for (int threads : {1, 4}) {
    ExecContext ctx(db_->buffer_pool());
    ParallelScanOptions options;
    options.num_threads = threads;
    options.morsel_pages = 16;
    options.vectorized = true;
    ParallelTableScanOp parallel(t_, pushed, {kC1, kPadding}, make_bundle(),
                                 options);
    ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&parallel, &ctx));
    ASSERT_EQ(run.output.size(), oracle.output.size()) << threads;
    for (size_t i = 0; i < run.output.size(); ++i) {
      ASSERT_EQ(run.output[i], oracle.output[i])
          << "tuple " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(run.stats.monitors.size(), oracle.stats.monitors.size());
    for (size_t i = 0; i < run.stats.monitors.size(); ++i) {
      EXPECT_EQ(run.stats.monitors[i].actual_dpc,
                oracle.stats.monitors[i].actual_dpc)
          << pushed.ToString(t_->schema());
      EXPECT_EQ(run.stats.monitors[i].actual_cardinality,
                oracle.stats.monitors[i].actual_cardinality);
    }
    // Page-parallel batch evaluation performs exactly the serial charges.
    EXPECT_EQ(run.stats.cpu.rows_processed, oracle.stats.cpu.rows_processed);
    EXPECT_EQ(run.stats.cpu.predicate_atom_evals,
              oracle.stats.cpu.predicate_atom_evals);
    EXPECT_EQ(run.stats.cpu.monitor_row_ops,
              oracle.stats.cpu.monitor_row_ops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVectorizedSweep,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace dpcf
