// Feedback-layer tests: MonitorManager request selection, FeedbackStore,
// RunStatistics XML output, ClusteringRatio, exact-cardinality helpers.

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "core/feedback_driver.h"
#include "core/feedback_store.h"
#include "core/monitor_manager.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

// --------------------------------------------------------- MonitorManager

class MonitorManagerTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }
  StatisticsCatalog stats_;
  OptimizerHints hints_;
};

TEST_F(MonitorManagerTest, ScanPlanRequestsOneExprPerUsableIndex) {
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC3, CmpOp::kLt, 1000));
  q.pred.Add(PredicateAtom::Int64(kC5, CmpOp::kLt, 1000));

  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  const AccessPathPlan* scan = nullptr;
  for (const auto& p : paths) {
    if (p.kind == AccessKind::kTableScan) scan = &p;
  }
  ASSERT_NE(scan, nullptr);

  MonitorManager mm(db_.get());
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(*scan, q));
  // Expressions: sargable C3, sargable C5, and the full conjunction.
  EXPECT_EQ(ih.hooks.outer_scan_requests.size(), 3u);
  EXPECT_TRUE(ih.hooks.fetch_requests.empty());
  EXPECT_FALSE(ih.hooks.bitvector.has_value());
  EXPECT_EQ(ih.entries.size(), 3u);
  // The full conjunction equals the pushed predicate => prefix-free; the
  // single-column expressions are non-prefix (C5 atom alone) or prefix
  // (C3 atom is the leading atom).
  bool saw_full = false;
  for (const auto& e : ih.entries) {
    if (e.expr.size() == 2) saw_full = true;
    EXPECT_EQ(e.table, t_);
    EXPECT_FALSE(e.is_join);
  }
  EXPECT_TRUE(saw_full);
}

TEST_F(MonitorManagerTest, DuplicateExpressionsDeduplicated) {
  // Single-atom predicate: the sargable expr for T_c2 IS the full pred.
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 500));
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  const AccessPathPlan* scan = nullptr;
  for (const auto& p : paths) {
    if (p.kind == AccessKind::kTableScan) scan = &p;
  }
  MonitorManager mm(db_.get());
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(*scan, q));
  EXPECT_EQ(ih.hooks.outer_scan_requests.size(), 1u);
}

TEST_F(MonitorManagerTest, IndexPlanGetsFetchMonitors) {
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 500));
  q.pred.Add(PredicateAtom::Int64(kC5, CmpOp::kLt, 15'000));

  hints_.SetDpc(
      SelPredKey(*t_, Predicate({PredicateAtom::Int64(kC2, CmpOp::kLt,
                                                      500)})),
      7.0);
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  ASSERT_EQ(best.kind, AccessKind::kIndexSeek);

  MonitorManager mm(db_.get());
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(best, q));
  ASSERT_EQ(ih.hooks.fetch_requests.size(), 2u);
  EXPECT_FALSE(ih.hooks.fetch_requests[0].passing_residual_only);
  EXPECT_TRUE(ih.hooks.fetch_requests[1].passing_residual_only);
  EXPECT_TRUE(ih.hooks.outer_scan_requests.empty());
}

TEST_F(MonitorManagerTest, DisabledMonitoringProducesNoRequests) {
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 500));
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  MonitorOptions off;
  off.enabled = false;
  MonitorManager mm(db_.get(), off);
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(best, q));
  EXPECT_TRUE(ih.hooks.outer_scan_requests.empty());
  EXPECT_TRUE(ih.hooks.fetch_requests.empty());
  EXPECT_TRUE(ih.entries.empty());
}

TEST_F(MonitorManagerTest, SmallTableRaisesSampleFraction) {
  SingleTableQuery q;
  q.table = t_;  // ~250 pages
  q.count_star = true;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 500));
  Optimizer opt(db_.get(), &stats_, &hints_);
  ASSERT_OK_AND_ASSIGN(AccessPathPlan best, opt.OptimizeSingleTable(q));
  MonitorOptions opts;
  opts.scan_sample_fraction = 0.01;
  opts.min_sampled_pages = 96;
  MonitorManager mm(db_.get(), opts);
  ASSERT_OK_AND_ASSIGN(InstrumentedHooks ih, mm.ForSingleTable(best, q));
  EXPECT_GT(ih.hooks.scan_sample_fraction, 0.3);
}

// ----------------------------------------------------------- FeedbackStore

TEST(FeedbackStoreTest, RecordLookupAndFreshestWins) {
  FeedbackStore store;
  MonitorRecord a;
  a.label = "T|C2<100";
  a.actual_dpc = 10;
  a.actual_cardinality = 99;
  a.exact = true;
  store.Record(a);
  MonitorRecord b = a;
  b.actual_dpc = 12;
  store.Record(b);
  EXPECT_EQ(store.size(), 1u);
  auto entry = store.Lookup("T|C2<100");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dpc, 12);
  EXPECT_FALSE(store.Lookup("missing").has_value());
}

TEST(FeedbackStoreTest, ApplyToHintsInjectsDpcAndExactCards) {
  FeedbackStore store;
  MonitorRecord exact;
  exact.label = "k1";
  exact.actual_dpc = 5;
  exact.actual_cardinality = 50;
  exact.exact = true;
  store.Record(exact);
  MonitorRecord sampled;
  sampled.label = "k2";
  sampled.actual_dpc = 7;
  sampled.actual_cardinality = 70;
  sampled.exact = false;
  store.Record(sampled);

  OptimizerHints hints;
  store.ApplyToHints(&hints);
  EXPECT_EQ(hints.Dpc("k1"), 5.0);
  EXPECT_EQ(hints.Dpc("k2"), 7.0);
  EXPECT_EQ(hints.Cardinality("k1"), 50.0);
  EXPECT_FALSE(hints.Cardinality("k2").has_value())
      << "sampled cardinalities are not injected as exact";
}

TEST(FeedbackStoreTest, ClearEmptiesStore) {
  FeedbackStore store;
  MonitorRecord r;
  r.label = "x";
  store.Record(r);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Entries().empty());
}

// ----------------------------------------------------------- RunStatistics

TEST(RunStatisticsTest, XmlContainsMonitorsAndEstimates) {
  RunStatistics stats;
  stats.plan_text = "TableScan(T, C2<100)";
  stats.rows_returned = 1;
  stats.simulated_ms = 12.5;
  MonitorRecord m;
  m.table = "T";
  m.label = "T|C2<100";
  m.expr_text = "C2<100";
  m.mechanism = "prefix-exact";
  m.actual_dpc = 4;
  m.actual_cardinality = 99;
  m.exact = true;
  m.estimated_dpc = 212;
  m.estimated_cardinality = 100;
  stats.monitors.push_back(m);
  std::string xml = stats.ToXml();
  EXPECT_NE(xml.find("<RunStatistics>"), std::string::npos);
  EXPECT_NE(xml.find("mechanism=\"prefix-exact\""), std::string::npos);
  EXPECT_NE(xml.find("actualDpc=\"4.0\""), std::string::npos);
  EXPECT_NE(xml.find("estimatedDpc=\"212.0\""), std::string::npos);
  EXPECT_NE(xml.find("C2&lt;100"), std::string::npos) << "escaped";
}

TEST(RunStatisticsTest, DpcErrorFactorIsSymmetricRatio) {
  MonitorRecord m;
  m.actual_dpc = 10;
  m.estimated_dpc = 100;
  EXPECT_DOUBLE_EQ(m.DpcErrorFactor(), 10.0);
  m.estimated_dpc = 1;
  EXPECT_DOUBLE_EQ(m.DpcErrorFactor(), 10.0);
  m.estimated_dpc = -1;  // absent
  EXPECT_EQ(m.DpcErrorFactor(), 0.0);
}

// --------------------------------------------------------- ClusteringRatio

class ClusteringRatioTest : public SyntheticDbTest {};

TEST_F(ClusteringRatioTest, CorrelatedColumnHasLowRatio) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, 1000)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult r,
                       ComputeClusteringRatio(db_->disk(), *t_, pred));
  EXPECT_EQ(r.qualifying_rows, 999);
  EXPECT_LT(r.ratio, 0.01);
  EXPECT_GE(r.actual_pages, r.lower_bound);
  EXPECT_LE(r.actual_pages, r.upper_bound);
}

TEST_F(ClusteringRatioTest, UncorrelatedColumnHasHighRatio) {
  Predicate pred({PredicateAtom::Int64(kC5, CmpOp::kLt, 1000)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult r,
                       ComputeClusteringRatio(db_->disk(), *t_, pred));
  EXPECT_GT(r.ratio, 0.8);
}

TEST_F(ClusteringRatioTest, IntermediateColumnsFallBetween) {
  Predicate p3({PredicateAtom::Int64(kC3, CmpOp::kLt, 1000)});
  Predicate p5({PredicateAtom::Int64(kC5, CmpOp::kLt, 1000)});
  Predicate p2({PredicateAtom::Int64(kC2, CmpOp::kLt, 1000)});
  ASSERT_OK_AND_ASSIGN(auto r2,
                       ComputeClusteringRatio(db_->disk(), *t_, p2));
  ASSERT_OK_AND_ASSIGN(auto r3,
                       ComputeClusteringRatio(db_->disk(), *t_, p3));
  ASSERT_OK_AND_ASSIGN(auto r5,
                       ComputeClusteringRatio(db_->disk(), *t_, p5));
  EXPECT_LT(r2.ratio, r3.ratio);
  EXPECT_LT(r3.ratio, r5.ratio);
}

TEST_F(ClusteringRatioTest, EmptyPredicateSelectsEverything) {
  ASSERT_OK_AND_ASSIGN(
      ClusteringRatioResult r,
      ComputeClusteringRatio(db_->disk(), *t_, Predicate()));
  EXPECT_EQ(r.qualifying_rows, t_->row_count());
  EXPECT_EQ(r.actual_pages, t_->page_count());
}

TEST_F(ClusteringRatioTest, NoMatchesYieldZero) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, -5)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult r,
                       ComputeClusteringRatio(db_->disk(), *t_, pred));
  EXPECT_EQ(r.qualifying_rows, 0);
  EXPECT_EQ(r.actual_pages, 0);
  EXPECT_EQ(r.ratio, 0);
}

// ------------------------------------------------------ Exact cardinality

class ExactCardTest : public SyntheticDbTest {};

TEST_F(ExactCardTest, MatchesPermutationArithmetic) {
  Predicate pred({PredicateAtom::Int64(kC4, CmpOp::kLt, 777)});
  EXPECT_EQ(ExactCardinality(db_->disk(), *t_, pred), 776);
  Predicate both({PredicateAtom::Int64(kC2, CmpOp::kLe, 100),
                  PredicateAtom::Int64(kC1, CmpOp::kLe, 100)});
  EXPECT_EQ(ExactCardinality(db_->disk(), *t_, both), 100)
      << "C2 == C1, so the conjunction equals either alone";
}

TEST_F(ExactCardTest, JoinCardinalitiesOnPermutations) {
  SyntheticOptions s1;
  s1.num_rows = 20'000;
  s1.seed = 1234;
  s1.build_indexes = false;
  ASSERT_TRUE(BuildSyntheticTable(db_.get(), "T1", s1).ok());
  JoinQuery q;
  q.outer_table = db_->GetTable("T1");
  q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, 501));
  q.outer_col = kC5;
  q.inner_table = t_;
  q.inner_col = kC5;
  ASSERT_OK_AND_ASSIGN(ExactJoinCardinalities exact,
                       ExactJoinCardinality(db_->disk(), q));
  // Permutation columns: every outer key matches exactly one inner row.
  EXPECT_EQ(exact.join_rows, 500);
  EXPECT_EQ(exact.semi_join_rows, 500);

  // An inner selection shrinks join_rows but not semi_join_rows.
  q.inner_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLe, 10'000));
  ASSERT_OK_AND_ASSIGN(ExactJoinCardinalities filtered,
                       ExactJoinCardinality(db_->disk(), q));
  EXPECT_EQ(filtered.semi_join_rows, 500);
  EXPECT_LT(filtered.join_rows, 500);
  EXPECT_GT(filtered.join_rows, 100);
}

// --------------------------------------------------------- FeedbackDriver

class FeedbackDriverTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }
  StatisticsCatalog stats_;
};

TEST_F(FeedbackDriverTest, FeedbackReusedAcrossSimilarQueries) {
  FeedbackDriver driver(db_.get(), &stats_, {});
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 400));
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome first, driver.RunSingleTable(q));
  EXPECT_TRUE(first.plan_changed);
  // The store now holds the DPC for this expression...
  EXPECT_GE(driver.store()->size(), 1u);
  // ...so re-optimizing the same query starts from the corrected plan.
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome second, driver.RunSingleTable(q));
  EXPECT_FALSE(second.plan_changed);
  EXPECT_NE(second.plan_before.find("IndexSeek"), std::string::npos);
}

TEST_F(FeedbackDriverTest, MonitoredRunReportsEstimatesAndActuals) {
  FeedbackDriver driver(db_.get(), &stats_, {});
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC3, CmpOp::kLt, 600));
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome, driver.RunSingleTable(q));
  ASSERT_FALSE(outcome.feedback.empty());
  for (const MonitorRecord& m : outcome.feedback) {
    EXPECT_GE(m.estimated_dpc, 0) << m.label;
    EXPECT_GE(m.estimated_cardinality, 0) << m.label;
  }
  // XML report renders.
  std::string xml = outcome.monitored_run.ToXml();
  EXPECT_NE(xml.find("PageCount"), std::string::npos);
}

TEST_F(FeedbackDriverTest, PersistentMisestimationAdvisesReoptimization) {
  FeedbackRunOptions options;
  // Without this the driver's self-tuning DPC histograms silently fix the
  // estimate after one run and there is no drift left to detect.
  options.learn_dpc_histograms = false;
  options.drift.threshold_factor = 4.0;
  options.drift.consecutive_k = 3;
  FeedbackDriver driver(db_.get(), &stats_, options);
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  // C2 is the identity permutation: Yao's independence assumption
  // overestimates its DPC by far more than the 4x threshold.
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 400));
  for (int run = 0; run < 3; ++run) {
    // Discard the correction between runs (fig6's per-query methodology):
    // the optimizer keeps mis-estimating the same expression, which is
    // exactly the drift the monitor exists to flag.
    driver.hints()->Clear();
    driver.store()->Clear();
    ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunSingleTable(q));
    EXPECT_EQ(out.reoptimization_advised, run == 2) << "run " << run;
  }
  const std::vector<DriftAlert> alerts =
      driver.drift_monitor()->ActiveAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].table, "T");
  EXPECT_GT(alerts[0].ewma_q_error, 4.0);

  // Keeping the feedback makes the next run's estimate accurate, which
  // clears the alert: advice stops as soon as the correction sticks.
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome fixed, driver.RunSingleTable(q));
  EXPECT_FALSE(fixed.reoptimization_advised);
  EXPECT_TRUE(driver.drift_monitor()->ActiveAlerts().empty());
}

TEST_F(FeedbackDriverTest, CardinalityInjectionCanBeDisabled) {
  FeedbackRunOptions options;
  options.inject_accurate_cardinalities = false;
  FeedbackDriver driver(db_.get(), &stats_, options);
  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred.Add(PredicateAtom::Int64(kC2, CmpOp::kLt, 400));
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome, driver.RunSingleTable(q));
  // No pre-run injection happened; any cardinality hints present were
  // deposited by the feedback store (exact monitor observations).
  for (const auto& e : driver.store()->Entries()) {
    EXPECT_NE(e.mechanism, "") << e.key;
  }
  EXPECT_GT(driver.hints()->num_dpc_hints(), 0u);
  // Histograms are accurate on permutations, so the flow still works.
  EXPECT_GE(outcome.speedup, 0.0);
}

}  // namespace
}  // namespace dpcf
