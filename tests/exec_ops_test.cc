// Operator tests: every access method and join method verified against a
// brute-force reference executor over the same data, plus monitor-placement
// and accounting behaviour.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/index_ops.h"
#include "exec/join_ops.h"
#include "exec/rel_ops.h"
#include "exec/scan_ops.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class ExecOpsTest : public SyntheticDbTest {
 protected:
  // Brute-force reference: ids (C1 values) of rows satisfying pred.
  std::vector<int64_t> Reference(const Predicate& pred) {
    std::vector<int64_t> out;
    const HeapFile* file = t_->file();
    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(file->RowInPage(page, s), &t_->schema());
        bool pass = true;
        for (const PredicateAtom& a : pred.atoms()) {
          if (!a.Eval(row)) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(row.GetInt64(kC1));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<int64_t> Drain(Operator* op) {
    ExecContext ctx(db_->buffer_pool());
    auto result = ExecutePlan(op, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<int64_t> out;
    for (const Tuple& t : result->output) out.push_back(t[0].AsInt64());
    std::sort(out.begin(), out.end());
    return out;
  }

  Predicate TwoAtomPred() {
    return Predicate({PredicateAtom::Int64(kC3, CmpOp::kLt, 4000),
                      PredicateAtom::Int64(kC5, CmpOp::kGe, 10'000)});
  }
};

TEST_F(ExecOpsTest, TableScanMatchesReference) {
  Predicate pred = TwoAtomPred();
  TableScanOp scan(t_, pred, {kC1});
  EXPECT_EQ(Drain(&scan), Reference(pred));
}

TEST_F(ExecOpsTest, TableScanEmptyPredicateReturnsAllRows) {
  TableScanOp scan(t_, Predicate(), {kC1});
  EXPECT_EQ(Drain(&scan).size(), static_cast<size_t>(t_->row_count()));
}

TEST_F(ExecOpsTest, TableScanChargesSequentialIo) {
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  TableScanOp scan(t_, Predicate(), {});
  auto result = ExecutePlan(&scan, &ctx);
  ASSERT_TRUE(result.ok());
  const IoStats& io = result->stats.io;
  EXPECT_EQ(io.physical_reads(), t_->page_count());
  // First page is a seek; the rest stream.
  EXPECT_EQ(io.physical_rand_reads, 1);
  EXPECT_EQ(result->stats.cpu.rows_processed, t_->row_count());
}

TEST_F(ExecOpsTest, ClusteredRangeScanMatchesReference) {
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kGe, 5000),
                  PredicateAtom::Int64(kC1, CmpOp::kLe, 5999),
                  PredicateAtom::Int64(kC5, CmpOp::kLt, 15'000)});
  ClusteredRangeScanOp scan(t_, db_->GetIndex("T_c1"), 5000, 5999, pred,
                            {kC1});
  EXPECT_EQ(Drain(&scan), Reference(pred));
}

TEST_F(ExecOpsTest, ClusteredRangeScanTouchesOnlyRangePages) {
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kGe, 5000),
                  PredicateAtom::Int64(kC1, CmpOp::kLe, 5999)});
  ClusteredRangeScanOp scan(t_, db_->GetIndex("T_c1"), 5000, 5999, pred,
                            {});
  auto result = ExecutePlan(&scan, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 1000u);
  // 1000 rows / 81 per page = ~13 data pages (+ tree descent).
  EXPECT_LT(result->stats.io.logical_reads, 25);
}

TEST_F(ExecOpsTest, ClusteredRangeScanEmptyRange) {
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kGt, 100'000)});
  ClusteredRangeScanOp scan(t_, db_->GetIndex("T_c1"), 100'001, INT64_MAX,
                            pred, {kC1});
  EXPECT_TRUE(Drain(&scan).empty());
}

TEST_F(ExecOpsTest, IndexSeekFetchMatchesReference) {
  Predicate pred({PredicateAtom::Int64(kC4, CmpOp::kGe, 300),
                  PredicateAtom::Int64(kC4, CmpOp::kLe, 1200)});
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c4"), BtreeKey::Min(300), BtreeKey::Max(1200));
  FetchOp fetch(t_, std::move(source), Predicate(), {kC1});
  EXPECT_EQ(Drain(&fetch), Reference(pred));
}

TEST_F(ExecOpsTest, FetchEvaluatesResidual) {
  Predicate full({PredicateAtom::Int64(kC4, CmpOp::kLe, 1000),
                  PredicateAtom::Int64(kC5, CmpOp::kLt, 10'000)});
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c4"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(1000));
  Predicate residual({PredicateAtom::Int64(kC5, CmpOp::kLt, 10'000)});
  FetchOp fetch(t_, std::move(source), residual, {kC1});
  EXPECT_EQ(Drain(&fetch), Reference(full));
}

TEST_F(ExecOpsTest, IndexIntersectionMatchesReference) {
  Predicate full({PredicateAtom::Int64(kC3, CmpOp::kLt, 3000),
                  PredicateAtom::Int64(kC5, CmpOp::kLt, 3000)});
  std::vector<std::unique_ptr<IndexSeekSource>> seeks;
  seeks.push_back(std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c3"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(2999)));
  seeks.push_back(std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c5"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(2999)));
  auto source =
      std::make_unique<IndexIntersectionSource>(std::move(seeks));
  FetchOp fetch(t_, std::move(source), Predicate(), {kC1});
  EXPECT_EQ(Drain(&fetch), Reference(full));
}

TEST_F(ExecOpsTest, CoveringIndexScanProjectsKeyColumns) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, 100)});
  CoveringIndexScanOp scan(db_->GetIndex("T_c2"), pred, {kC2});
  auto out = Drain(&scan);
  ASSERT_EQ(out.size(), 99u);
  EXPECT_EQ(out.front(), 1);
  EXPECT_EQ(out.back(), 99);
}

TEST_F(ExecOpsTest, FetchMonitorCountsSeekExpression) {
  Predicate pred({PredicateAtom::Int64(kC2, CmpOp::kLt, 811)});
  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex("T_c2"), BtreeKey::Min(INT64_MIN), BtreeKey::Max(810));
  FetchMonitorRequest req;
  req.label = "seek";
  req.numbits = 4096;
  FetchOp fetch(t_, std::move(source), Predicate(), {}, {req});
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&fetch, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stats.monitors.size(), 1u);
  const MonitorRecord& m = result->stats.monitors[0];
  // C2 < 811 = first 810 rows: 10 contiguous pages.
  EXPECT_NEAR(m.actual_dpc, 10.0, 1.5);
  EXPECT_EQ(m.actual_cardinality, 810);
  EXPECT_FALSE(m.exact);
  EXPECT_GT(result->stats.cpu.monitor_hash_ops, 0);
}

TEST_F(ExecOpsTest, ScanMonitorGroupsPagesExactly) {
  Predicate pushed({PredicateAtom::Int64(kC2, CmpOp::kLt, 811)});
  auto bundle = std::make_unique<ScanMonitorBundle>(
      pushed, &t_->schema(), 1.0, 42);
  ScanExprRequest req;
  req.label = "full";
  req.expr = pushed;
  ASSERT_OK(bundle->AddRequest(req));
  TableScanOp scan(t_, pushed, {}, std::move(bundle));
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&scan, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stats.monitors.size(), 1u);
  EXPECT_EQ(result->stats.monitors[0].actual_dpc, 10);
  EXPECT_TRUE(result->stats.monitors[0].exact);
}

TEST_F(ExecOpsTest, SortOrdersByKey) {
  Predicate pred({PredicateAtom::Int64(kC5, CmpOp::kLt, 500)});
  auto scan = std::make_unique<TableScanOp>(t_, pred,
                                            std::vector<int>{kC5});
  SortOp sort(std::move(scan), 0);
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&sort, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.size(), 499u);
  for (size_t i = 1; i < result->output.size(); ++i) {
    EXPECT_LE(result->output[i - 1][0].AsInt64(),
              result->output[i][0].AsInt64());
  }
}

TEST_F(ExecOpsTest, AggregateCountCountsRows) {
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLe, 123)});
  auto scan = std::make_unique<TableScanOp>(t_, pred, std::vector<int>{});
  AggregateCountOp agg(std::move(scan));
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&agg, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0][0].AsInt64(), 123);
}

TEST_F(ExecOpsTest, TupleFilterApplies) {
  auto scan = std::make_unique<TableScanOp>(
      t_, Predicate({PredicateAtom::Int64(kC1, CmpOp::kLe, 100)}),
      std::vector<int>{kC1});
  TupleFilterOp filter(std::move(scan),
                       {TupleAtom{0, CmpOp::kGt, Value::Int64(90)}});
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&filter, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 10u);
}

TEST_F(ExecOpsTest, DescribeTreeRendersNestedPlan) {
  auto scan = std::make_unique<TableScanOp>(t_, Predicate(),
                                            std::vector<int>{});
  AggregateCountOp agg(std::move(scan));
  std::string tree = DescribeTree(agg);
  EXPECT_NE(tree.find("Aggregate(COUNT)"), std::string::npos);
  EXPECT_NE(tree.find("  ClusteredIndexScan"), std::string::npos);
}

TEST_F(ExecOpsTest, ScanCloseMidStreamReleasesPins) {
  TableScanOp scan(t_, Predicate(), {kC1});
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK(scan.Open(&ctx));
  Tuple t;
  auto more = scan.Next(&ctx, &t);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  ASSERT_OK(scan.Close(&ctx));
  // All pins released: a cold reset must succeed.
  EXPECT_OK(db_->buffer_pool()->ColdReset());
}

TEST_F(ExecOpsTest, MergeJoinWithSortedInputsMatchesHash) {
  // Self-join T on C1 restricted to a band, via merge (clustered order)
  // and hash; both must agree.
  Predicate band({PredicateAtom::Int64(kC1, CmpOp::kGe, 100),
                  PredicateAtom::Int64(kC1, CmpOp::kLe, 300)});
  auto outer = std::make_unique<TableScanOp>(t_, band,
                                             std::vector<int>{kC1});
  auto inner = std::make_unique<TableScanOp>(t_, band,
                                             std::vector<int>{kC1});
  MergeJoinOp merge(std::move(outer), 0, std::move(inner), 0);
  ExecContext ctx(db_->buffer_pool());
  auto merged = ExecutePlan(&merge, &ctx);
  ASSERT_TRUE(merged.ok());

  auto outer2 = std::make_unique<TableScanOp>(t_, band,
                                              std::vector<int>{kC1});
  auto inner2 = std::make_unique<TableScanOp>(t_, band,
                                              std::vector<int>{kC1});
  HashJoinOp hash(std::move(outer2), 0, std::move(inner2), 0);
  ExecContext ctx2(db_->buffer_pool());
  auto hashed = ExecutePlan(&hash, &ctx2);
  ASSERT_TRUE(hashed.ok());
  EXPECT_EQ(merged->output.size(), hashed->output.size());
  EXPECT_EQ(merged->output.size(), 201u);
}

TEST_F(ExecOpsTest, MergeJoinHandlesDuplicateKeys) {
  // Build tiny heap tables with duplicate join keys: outer keys
  // {1,1,2,3}, inner keys {1,2,2,5} => 2*1 + 1*2 = 4 result rows.
  Schema schema({Column::Int64("k")});
  auto mk = [&](const char* name,
                std::vector<int64_t> keys) -> Table* {
    auto t = db_->CreateTable(name, schema, TableOrganization::kHeap);
    EXPECT_TRUE(t.ok());
    TableBuilder b(*t);
    for (int64_t k : keys) EXPECT_OK(b.AddRow({Value::Int64(k)}));
    EXPECT_OK(b.Finish());
    return *t;
  };
  Table* lhs = mk("dupL", {1, 1, 2, 3});
  Table* rhs = mk("dupR", {1, 2, 2, 5});
  auto outer = std::make_unique<TableScanOp>(lhs, Predicate(),
                                             std::vector<int>{0});
  auto inner = std::make_unique<TableScanOp>(rhs, Predicate(),
                                             std::vector<int>{0});
  MergeJoinOp merge(std::move(outer), 0, std::move(inner), 0);
  ExecContext ctx(db_->buffer_pool());
  auto result = ExecutePlan(&merge, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 4u);
}

}  // namespace
}  // namespace dpcf
