// B+-tree tests: bulk load, random insert with splits, duplicates, seeks,
// lazy delete, structural invariants — parameterized across page sizes so
// both shallow and multi-level trees are exercised.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/btree.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

class BtreeTest : public ::testing::TestWithParam<size_t> {
 protected:
  BtreeTest() : disk_(GetParam()), pool_(&disk_, 256) {}

  Btree MakeTree() {
    auto t = Btree::Create(&pool_, "t");
    EXPECT_TRUE(t.ok());
    return std::move(t).value();
  }

  std::vector<BtreeEntry> Drain(Btree* tree) {
    std::vector<BtreeEntry> out;
    auto it = tree->Begin();
    EXPECT_TRUE(it.ok()) << it.status().ToString();
    while (it->Valid()) {
      out.push_back(it->entry());
      EXPECT_OK(it->Next());
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_P(BtreeTest, EmptyTreeIteratesNothing) {
  Btree tree = MakeTree();
  EXPECT_EQ(tree.entry_count(), 0);
  EXPECT_TRUE(Drain(&tree).empty());
  ASSERT_OK(tree.CheckInvariants());
}

TEST_P(BtreeTest, SequentialInsertsStaySorted) {
  Btree tree = MakeTree();
  const int64_t n = 2000;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_OK(tree.Insert({{i, 0}, static_cast<uint64_t>(i * 10)}));
  }
  ASSERT_OK(tree.CheckInvariants());
  auto all = Drain(&tree);
  ASSERT_EQ(all.size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(all[static_cast<size_t>(i)].key.k1, i);
    EXPECT_EQ(all[static_cast<size_t>(i)].aux,
              static_cast<uint64_t>(i * 10));
  }
}

TEST_P(BtreeTest, RandomInsertsMatchReferenceMap) {
  Btree tree = MakeTree();
  std::map<std::pair<int64_t, uint64_t>, bool> reference;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    int64_t k = rng.NextInt(0, 500);  // plenty of duplicate keys
    uint64_t aux = static_cast<uint64_t>(i);
    ASSERT_OK(tree.Insert({{k, 0}, aux}));
    reference[{k, aux}] = true;
  }
  ASSERT_OK(tree.CheckInvariants());
  auto all = Drain(&tree);
  ASSERT_EQ(all.size(), reference.size());
  size_t i = 0;
  for (const auto& [key, unused] : reference) {
    EXPECT_EQ(all[i].key.k1, key.first);
    EXPECT_EQ(all[i].aux, key.second);
    ++i;
  }
}

TEST_P(BtreeTest, DuplicateFullEntryRejected) {
  Btree tree = MakeTree();
  ASSERT_OK(tree.Insert({{5, 0}, 1}));
  EXPECT_EQ(tree.Insert({{5, 0}, 1}).code(), StatusCode::kAlreadyExists);
  ASSERT_OK(tree.Insert({{5, 0}, 2}));  // same key, different rid: fine
  EXPECT_EQ(tree.entry_count(), 2);
}

TEST_P(BtreeTest, SeekFirstFindsLowerBound) {
  Btree tree = MakeTree();
  for (int64_t i = 0; i < 1000; i += 2) {  // even keys only
    ASSERT_OK(tree.Insert({{i, 0}, static_cast<uint64_t>(i)}));
  }
  for (int64_t probe : {0, 1, 2, 499, 500, 997, 998}) {
    auto it = tree.SeekFirst(BtreeKey{probe, INT64_MIN});
    ASSERT_TRUE(it.ok());
    ASSERT_TRUE(it->Valid()) << probe;
    EXPECT_EQ(it->key().k1, (probe + 1) / 2 * 2) << probe;
  }
  auto past = tree.SeekFirst(BtreeKey{999, INT64_MIN});
  ASSERT_TRUE(past.ok());
  EXPECT_FALSE(past->Valid());
}

TEST_P(BtreeTest, CollectRangeInclusive) {
  Btree tree = MakeTree();
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_OK(tree.Insert({{i, 0}, static_cast<uint64_t>(i)}));
  }
  std::vector<uint64_t> out;
  ASSERT_OK(tree.CollectRange(BtreeKey::Min(100), BtreeKey::Max(199), &out));
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.front(), 100u);
  EXPECT_EQ(out.back(), 199u);
}

TEST_P(BtreeTest, BulkLoadMatchesInsertResult) {
  std::vector<BtreeEntry> entries;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    entries.push_back({{rng.NextInt(0, 100'000), 0},
                       static_cast<uint64_t>(i)});
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  Btree bulk = MakeTree();
  ASSERT_OK(bulk.BulkLoad(entries));
  ASSERT_OK(bulk.CheckInvariants());
  EXPECT_EQ(bulk.entry_count(), static_cast<int64_t>(entries.size()));
  EXPECT_EQ(Drain(&bulk), entries);
}

TEST_P(BtreeTest, BulkLoadRejectsUnsortedInput) {
  Btree tree = MakeTree();
  std::vector<BtreeEntry> bad{{{2, 0}, 0}, {{1, 0}, 0}};
  EXPECT_EQ(tree.BulkLoad(bad).code(), StatusCode::kInvalidArgument);
  std::vector<BtreeEntry> dup{{{1, 0}, 0}, {{1, 0}, 0}};
  EXPECT_EQ(tree.BulkLoad(dup).code(), StatusCode::kInvalidArgument);
}

TEST_P(BtreeTest, BulkLoadRequiresEmptyTree) {
  Btree tree = MakeTree();
  ASSERT_OK(tree.Insert({{1, 0}, 1}));
  EXPECT_FALSE(tree.BulkLoad({{{2, 0}, 2}}).ok());
}

TEST_P(BtreeTest, InsertAfterBulkLoad) {
  std::vector<BtreeEntry> entries;
  for (int64_t i = 0; i < 1000; ++i) entries.push_back({{i * 2, 0}, 1});
  Btree tree = MakeTree();
  ASSERT_OK(tree.BulkLoad(entries));
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(tree.Insert({{i * 2 + 1, 0}, 1}));
  }
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.entry_count(), 2000);
  auto all = Drain(&tree);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].key.k1, static_cast<int64_t>(i));
  }
}

TEST_P(BtreeTest, DeleteRemovesExactEntry) {
  Btree tree = MakeTree();
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_OK(tree.Insert({{i, 0}, 7}));
  }
  ASSERT_OK(tree.Delete({{250, 0}, 7}));
  EXPECT_EQ(tree.entry_count(), 499);
  EXPECT_EQ(tree.Delete({{250, 0}, 7}).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete({{250, 0}, 8}).code(), StatusCode::kNotFound);
  ASSERT_OK(tree.CheckInvariants());
  auto it = tree.SeekFirst(BtreeKey{250, INT64_MIN});
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->key().k1, 251);
}

TEST_P(BtreeTest, DeleteDuplicateKeySpanningLeaves) {
  Btree tree = MakeTree();
  // Many entries with the same key, distinct aux: spans multiple leaves on
  // small pages.
  for (uint64_t aux = 0; aux < 400; ++aux) {
    ASSERT_OK(tree.Insert({{42, 0}, aux}));
  }
  ASSERT_OK(tree.Delete({{42, 0}, 399}));
  ASSERT_OK(tree.Delete({{42, 0}, 0}));
  ASSERT_OK(tree.Delete({{42, 0}, 200}));
  EXPECT_EQ(tree.entry_count(), 397);
  ASSERT_OK(tree.CheckInvariants());
}

TEST_P(BtreeTest, CompositeKeysOrderLexicographically) {
  Btree tree = MakeTree();
  for (int64_t a = 0; a < 20; ++a) {
    for (int64_t b = 0; b < 20; ++b) {
      ASSERT_OK(
          tree.Insert({{a, b}, static_cast<uint64_t>(a * 100 + b)}));
    }
  }
  ASSERT_OK(tree.CheckInvariants());
  // Range over a = 7, all b.
  std::vector<uint64_t> out;
  ASSERT_OK(tree.CollectRange(BtreeKey::Min(7), BtreeKey::Max(7), &out));
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front(), 700u);
  EXPECT_EQ(out.back(), 719u);
  // Composite sub-range (7, 5)..(7, 9).
  out.clear();
  ASSERT_OK(tree.CollectRange(BtreeKey{7, 5}, BtreeKey{7, 9}, &out));
  EXPECT_EQ(out.size(), 5u);
}

TEST_P(BtreeTest, HeightGrowsLogarithmically) {
  Btree tree = MakeTree();
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_OK(tree.Insert({{i, 0}, 0}));
  }
  // Sanity: capacity^height must cover the entries.
  double cap = tree.leaf_capacity();
  double internal = tree.internal_capacity();
  double reachable = cap;
  for (uint32_t l = 1; l < tree.height(); ++l) reachable *= internal;
  EXPECT_GE(reachable, 5000.0);
  EXPECT_LE(tree.height(), 7u);
}

TEST_P(BtreeTest, IteratorChargesBufferPoolIo) {
  Btree tree = MakeTree();
  for (int64_t i = 0; i < 3000; ++i) {
    ASSERT_OK(tree.Insert({{i, 0}, 0}));
  }
  int64_t before = disk_.io_stats()->logical_reads;
  auto it = tree.Begin();
  ASSERT_TRUE(it.ok());
  while (it->Valid()) ASSERT_OK(it->Next());
  EXPECT_GT(disk_.io_stats()->logical_reads, before)
      << "tree traversal must go through the buffer pool";
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BtreeTest,
                         ::testing::Values(256, 512, 4096),
                         [](const auto& pinfo) {
                           return "page" + std::to_string(pinfo.param);
                         });

TEST(BtreeKeyTest, MinMaxBracketAllAuxValues) {
  EXPECT_LT(BtreeKey::Min(5), (BtreeKey{5, 0}));
  EXPECT_LT((BtreeKey{5, 0}), BtreeKey::Max(5));
  EXPECT_LT(BtreeKey::Max(5), BtreeKey::Min(6));
  EXPECT_EQ(BtreeKey({3, 0}).ToString(), "3");
  EXPECT_EQ((BtreeKey{3, 4}).ToString(), "(3,4)");
}

}  // namespace
}  // namespace dpcf
