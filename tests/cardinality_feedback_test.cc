// LEO-style cardinality feedback (paper §II-C: the framework of [17]
// extended with page counts): exact cardinalities observed by the scan
// monitors are deposited in the FeedbackStore and correct future
// estimates — independently of the page-count channel.

#include <gtest/gtest.h>

#include "core/feedback_driver.h"
#include "tests/test_util.h"
#include "workload/realworld.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

class CardinalityFeedbackTest : public SyntheticDbTest {
 protected:
  void SetUp() override {
    SyntheticDbTest::SetUp();
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
  }
  StatisticsCatalog stats_;
};

TEST_F(CardinalityFeedbackTest, MonitoredRunCorrectsIndependenceError) {
  // C1 == C2 row-for-row, so "C1 <= 1000 AND C2 <= 1000" selects 1000
  // rows; the independence assumption predicts 0.05 × 0.05 × 20000 = 50.
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kLe, 1000),
                  PredicateAtom::Int64(kC2, CmpOp::kLe, 1000)});
  OptimizerHints empty;
  CardinalityEstimator before(&stats_, &empty);
  double est_before = before.EstimateRows(*t_, pred);
  EXPECT_LT(est_before, 100) << "independence misses the correlation";

  FeedbackRunOptions options;
  options.inject_accurate_cardinalities = false;  // monitors are the source
  FeedbackDriver driver(db_.get(), &stats_, options);
  SingleTableQuery q;
  q.table = t_;
  q.pred = pred;
  q.count_star = true;
  q.count_col = kPadding;
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunSingleTable(q));
  (void)out;

  // The full conjunction was the pushed predicate: prefix-exact counting
  // observed both its cardinality and page count exactly.
  auto entry = driver.store()->Lookup(SelPredKey(*t_, pred));
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->exact);
  EXPECT_EQ(entry->cardinality, 1000);
  CardinalityEstimator after(&stats_, driver.hints());
  EXPECT_EQ(after.EstimateRows(*t_, pred), 1000);
}

TEST_F(CardinalityFeedbackTest, SampledObservationsAreNotTreatedAsExact) {
  // Weakly selective atoms keep the Table Scan optimal, so both per-index
  // sub-expressions get monitored; the C5-only expression is a non-prefix
  // of the pushed conjunction and is therefore DPSample-estimated.
  Predicate pred({PredicateAtom::Int64(kC3, CmpOp::kLt, 15'000),
                  PredicateAtom::Int64(kC5, CmpOp::kLt, 15'000)});
  FeedbackRunOptions options;
  options.inject_accurate_cardinalities = false;
  FeedbackDriver driver(db_.get(), &stats_, options);
  SingleTableQuery q;
  q.table = t_;
  q.pred = pred;
  q.count_star = true;
  q.count_col = kPadding;
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunSingleTable(q));
  EXPECT_NE(out.plan_before.find("TableScan"), std::string::npos)
      << out.plan_before;

  Predicate c5_only({PredicateAtom::Int64(kC5, CmpOp::kLt, 15'000)});
  auto entry = driver.store()->Lookup(SelPredKey(*t_, c5_only));
  ASSERT_TRUE(entry.has_value()) << "the C5 expression was monitored";
  EXPECT_FALSE(entry->exact);
  EXPECT_FALSE(driver.hints()
                   ->Cardinality(SelPredKey(*t_, c5_only))
                   .has_value())
      << "sampled cardinalities must not become exact hints";
  EXPECT_TRUE(
      driver.hints()->Dpc(SelPredKey(*t_, c5_only)).has_value())
      << "the DPC estimate itself is still usable";

  // The C3-only expression IS a prefix: recorded exactly.
  Predicate c3_only({PredicateAtom::Int64(kC3, CmpOp::kLt, 15'000)});
  auto c3_entry = driver.store()->Lookup(SelPredKey(*t_, c3_only));
  ASSERT_TRUE(c3_entry.has_value());
  EXPECT_TRUE(c3_entry->exact);
  EXPECT_EQ(c3_entry->cardinality, 14'999);
}

TEST_F(CardinalityFeedbackTest, SkewedRealWorldColumnRoundTrips) {
  // End-to-end on Zipf data: the head category's exact count survives the
  // store round trip even when the histogram was already decent (equi-
  // depth isolates heavy hitters); feedback makes it exact.
  Database db2([] { DatabaseOptions o; o.page_size = kDefaultPageSize; o.buffer_pool_pages = 2048; return o; }());
  RealWorldOptions rw;
  rw.scale = 0.1;
  ASSERT_TRUE(BuildRealWorldDatabases(&db2, rw).ok());
  Table* products = db2.GetTable("products");
  StatisticsCatalog stats2;
  ASSERT_OK(stats2.BuildAll(db2.disk(), *products));
  const int cat = products->schema().ColumnIndex("category_id");
  Predicate pred({PredicateAtom::Int64(cat, CmpOp::kEq, 1)});
  const int64_t truth = ExactCardinality(db2.disk(), *products, pred);

  FeedbackRunOptions options;
  options.inject_accurate_cardinalities = false;
  FeedbackDriver driver(&db2, &stats2, options);
  SingleTableQuery q;
  q.table = products;
  q.pred = pred;
  q.count_star = true;
  q.count_col = static_cast<int>(products->schema().num_columns()) - 1;
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome out, driver.RunSingleTable(q));
  ASSERT_EQ(out.monitored_run.rows_returned, 1);
  auto entry = driver.store()->Lookup(SelPredKey(*products, pred));
  ASSERT_TRUE(entry.has_value());
  if (entry->exact) {
    EXPECT_EQ(entry->cardinality, static_cast<double>(truth));
  }
}

}  // namespace
}  // namespace dpcf
