// Randomized property sweeps:
//  * plan-equivalence: every enumerated access path returns the same rows
//    as a brute-force reference for random conjunctions;
//  * monitor-correctness: exact scan monitors equal ground truth for the
//    same random expressions; DPSample stays within its concentration
//    band; linear counting tracks the fetch stream.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "core/feedback_driver.h"
#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using dpcf::testing::SyntheticDbTest;

Predicate RandomConjunction(Rng* rng, int64_t n, int max_atoms) {
  Predicate pred;
  int atoms = 1 + static_cast<int>(rng->NextBounded(
                      static_cast<uint64_t>(max_atoms)));
  const int cols[] = {kC1, kC2, kC3, kC4, kC5};
  for (int a = 0; a < atoms; ++a) {
    int col = cols[rng->NextBounded(5)];
    CmpOp op = static_cast<CmpOp>(rng->NextBounded(6));
    // Operand biased to keep some rows alive.
    int64_t v = rng->NextInt(1, n);
    if (op == CmpOp::kLt || op == CmpOp::kLe) {
      v = std::max<int64_t>(v, n / 10);
    }
    if (op == CmpOp::kGt || op == CmpOp::kGe) {
      v = std::min<int64_t>(v, 9 * n / 10);
    }
    pred.Add(PredicateAtom::Int64(col, op, v));
  }
  return pred;
}

class PlanEquivalenceSweep
    : public SyntheticDbTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(PlanEquivalenceSweep, AllAccessPathsAgreeWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  StatisticsCatalog stats;
  ASSERT_OK(stats.BuildAll(db_->disk(), *t_));
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats, &hints);

  SingleTableQuery q;
  q.table = t_;
  q.count_star = true;
  q.count_col = kPadding;
  q.pred = RandomConjunction(&rng, t_->row_count(), 3);

  const int64_t truth = ExactCardinality(db_->disk(), *t_, q.pred);
  ASSERT_OK_AND_ASSIGN(auto paths, opt.EnumerateAccessPaths(q));
  ASSERT_GE(paths.size(), 1u);
  for (const AccessPathPlan& p : paths) {
    ASSERT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    PlanMonitorHooks none;
    ASSERT_OK_AND_ASSIGN(OperatorPtr root,
                         BuildSingleTableExec(p, q, none));
    ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(root.get(), &ctx));
    ASSERT_EQ(run.output.size(), 1u) << p.Describe();
    EXPECT_EQ(run.output[0][0].AsInt64(), truth)
        << p.Describe() << "\npred: " << q.pred.ToString(t_->schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceSweep,
                         ::testing::Range(0, 12));

class MonitorTruthSweep
    : public SyntheticDbTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(MonitorTruthSweep, ExactScanMonitorsEqualGroundTruth) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  // Pushed predicate and requested expression drawn independently.
  Predicate pushed = RandomConjunction(&rng, t_->row_count(), 2);
  Predicate requested = RandomConjunction(&rng, t_->row_count(), 2);

  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, requested));

  auto bundle = std::make_unique<ScanMonitorBundle>(
      pushed, &t_->schema(), /*f=*/1.0, /*seed=*/GetParam());
  ScanExprRequest req;
  req.label = "sweep";
  req.expr = requested;
  ASSERT_OK(bundle->AddRequest(req));
  TableScanOp scan(t_, pushed, {}, std::move(bundle));
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  ASSERT_EQ(run.stats.monitors.size(), 1u);
  const MonitorRecord& m = run.stats.monitors[0];
  EXPECT_EQ(m.actual_dpc, static_cast<double>(truth.actual_pages))
      << "pushed: " << pushed.ToString(t_->schema())
      << "\nrequested: " << requested.ToString(t_->schema());
  EXPECT_EQ(m.actual_cardinality,
            static_cast<double>(truth.qualifying_rows));
  EXPECT_TRUE(m.exact);
}

TEST_P(MonitorTruthSweep, SampledMonitorsLandInConcentrationBand) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 3);
  Predicate pushed;  // full scan
  Predicate requested = RandomConjunction(&rng, t_->row_count(), 1);
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, requested));
  if (truth.actual_pages < 20) {
    GTEST_SKIP() << "too few qualifying pages for a sampling bound";
  }
  const double f = 0.5;
  auto bundle = std::make_unique<ScanMonitorBundle>(
      pushed, &t_->schema(), f, /*seed=*/GetParam() + 99);
  ScanExprRequest req;
  req.label = "sweep";
  req.expr = requested;
  ASSERT_OK(bundle->AddRequest(req));
  TableScanOp scan(t_, pushed, {}, std::move(bundle));
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  const MonitorRecord& m = run.stats.monitors[0];
  // 6-sigma binomial band: extremely unlikely to trip spuriously.
  double sigma = std::sqrt((1 - f) / f *
                           static_cast<double>(truth.actual_pages));
  EXPECT_NEAR(m.actual_dpc, static_cast<double>(truth.actual_pages),
              6 * sigma + 2)
      << requested.ToString(t_->schema());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorTruthSweep, ::testing::Range(0, 10));

class FetchMonitorSweep
    : public SyntheticDbTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(FetchMonitorSweep, LinearCountingTracksSeekTruth) {
  // Random range on a random indexed column; the fetch monitor's estimate
  // must track the exact page count of the seek expression.
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 5);
  const int cols[] = {kC2, kC3, kC4, kC5};
  const char* names[] = {"T_c2", "T_c3", "T_c4", "T_c5"};
  int pick = static_cast<int>(rng.NextBounded(4));
  int64_t lo = rng.NextInt(1, t_->row_count() / 2);
  int64_t hi = lo + rng.NextInt(100, t_->row_count() / 5);

  Predicate expr({PredicateAtom::Int64(cols[pick], CmpOp::kGe, lo),
                  PredicateAtom::Int64(cols[pick], CmpOp::kLe, hi)});
  ASSERT_OK_AND_ASSIGN(ClusteringRatioResult truth,
                       ComputeClusteringRatio(db_->disk(), *t_, expr));

  auto source = std::make_unique<IndexSeekSource>(
      db_->GetIndex(names[pick]), BtreeKey::Min(lo), BtreeKey::Max(hi));
  FetchMonitorRequest req;
  req.label = "sweep";
  req.numbits = 1 << 14;
  req.seed = static_cast<uint64_t>(GetParam());
  FetchOp fetch(t_, std::move(source), Predicate(), {}, {req});
  ASSERT_OK(db_->ColdCache());
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&fetch, &ctx));
  const MonitorRecord& m = run.stats.monitors[0];
  EXPECT_EQ(m.actual_cardinality,
            static_cast<double>(truth.qualifying_rows));
  EXPECT_NEAR(m.actual_dpc, static_cast<double>(truth.actual_pages),
              0.05 * truth.actual_pages + 3)
      << expr.ToString(t_->schema());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FetchMonitorSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dpcf
