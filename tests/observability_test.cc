// The observability layer end to end: metrics registry semantics and
// exposition, trace collection on/off, q-error tracking, per-operator
// profiles with annotated-plan rendering, and the buffer pool's
// prefetch-hit accounting.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/monitor_manager.h"
#include "exec/executor.h"
#include "exec/parallel_scan.h"
#include "exec/scan_ops.h"
#include "obs/estimation_error_tracker.h"
#include "obs/metrics_registry.h"
#include "obs/op_profile.h"
#include "obs/trace_collector.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using testing::SyntheticDbTest;

// ------------------------------------------------------------ MetricsRegistry

TEST(MetricsRegistryTest, FindOrCreateIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "help");
  Counter* b = reg.GetCounter("x_total", "ignored on re-registration");
  EXPECT_EQ(a, b);
  a->Increment();
  a->Increment(4);
  EXPECT_EQ(b->value(), 5);

  // Distinct label sets are distinct children of the same family.
  Counter* s0 = reg.GetCounter("y_total", "h", {{"shard", "0"}});
  Counter* s1 = reg.GetCounter("y_total", "h", {{"shard", "1"}});
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, reg.GetCounter("y_total", "h", {{"shard", "0"}}));
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("latency_us", "h");
  g->Set(4.0);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricsRegistryTest, LogHistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  // Bounds 1, 2, 4, 8; everything above 8 overflows.
  LogHistogram* h = reg.GetHistogram("read_us", "h", 1.0, 2.0, 4);
  h->Observe(0.5);  // bucket 0 (<= 1)
  h->Observe(3.0);  // bucket 2 (2, 4]
  h->Observe(4.0);  // bucket 2 inclusive upper bound
  h->Observe(100);  // overflow
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 107.5);
  EXPECT_EQ(h->bucket_count(0), 1);
  EXPECT_EQ(h->bucket_count(1), 0);
  EXPECT_EQ(h->bucket_count(2), 2);
  EXPECT_EQ(h->overflow_count(), 1);
  // First registration wins the geometry; the re-registration resolves the
  // same child.
  EXPECT_EQ(h, reg.GetHistogram("read_us", "h", 5.0, 10.0, 2));
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total", "Requests served", {{"shard", "3"}})
      ->Increment(7);
  reg.GetGauge("latency_us", "Configured latency")->Set(2000);
  reg.GetHistogram("wait_us", "Wait time", 1.0, 2.0, 2)->Observe(1.5);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# HELP requests_total Requests served"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{shard=\"3\"} 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE latency_us gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wait_us histogram"), std::string::npos);
  // Histogram exposition carries cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("wait_us_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_us_count 1"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, LogHistogramQuantiles) {
  MetricsRegistry reg;
  // Bounds 1, 2, 4, 8, 16.
  LogHistogram* h = reg.GetHistogram("q_us", "h", 1.0, 2.0, 5);
  EXPECT_EQ(h->Quantile(0.5), 0.0);  // empty histogram
  for (int i = 0; i < 100; ++i) h->Observe(1.5);  // all in bucket (1, 2]
  // Every rank interpolates inside the covering bucket.
  EXPECT_GT(h->Quantile(0.5), 1.0);
  EXPECT_LE(h->Quantile(0.5), 2.0);
  EXPECT_LT(h->Quantile(0.05), h->Quantile(0.95));
  // Overflow observations clamp to the last bound.
  LogHistogram* o = reg.GetHistogram("o_us", "h", 1.0, 2.0, 2);
  o->Observe(100.0);
  EXPECT_DOUBLE_EQ(o->Quantile(0.99), 2.0);

  // Prometheus exposition carries summary-style quantile samples and the
  // JSON mirror a "quantiles" object, so dashboards get p50/p95/p99
  // without PromQL.
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("q_us{quantile=\"0.5\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("q_us{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("q_us{quantile=\"0.99\"}"), std::string::npos);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("a_total", "h", {{"k", "va\"l"}})->Increment();
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a_total\""), std::string::npos) << json;
  // Label values are JSON-escaped.
  EXPECT_NE(json.find("va\\\"l"), std::string::npos) << json;
}

// ------------------------------------------------------------ TraceCollector

TEST(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  TraceCollector trace(/*enabled=*/false);
  trace.AddSpan("cat", "span", 0);
  trace.AddInstant("cat", "instant");
  { ScopedSpan s(&trace, "cat", "scoped"); }
  { ScopedSpan null_ok(nullptr, "cat", "scoped"); }
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceCollectorTest, RecordsSpansAndInstants) {
  TraceCollector trace(/*enabled=*/true);
  const int64_t begin = trace.NowUs();
  trace.AddSpan("io", "miss read", begin, {{"page", "7"}});
  trace.AddInstant("exec", "plan start");
  { ScopedSpan s(&trace, "monitor", "merge"); }
  EXPECT_EQ(trace.event_count(), 3u);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"miss read\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"page\": \"7\""), std::string::npos) << json;
}

TEST(TraceCollectorTest, QueryIdScopeTagsEvents) {
  TraceCollector trace(/*enabled=*/true);
  EXPECT_EQ(TraceCollector::current_query_id(), 0u);
  trace.AddInstant("exec", "untagged");
  {
    TraceCollector::QueryIdScope scope(42);
    EXPECT_EQ(TraceCollector::current_query_id(), 42u);
    trace.AddInstant("exec", "tagged");
    {
      // Scopes nest; the inner id wins and the outer is restored.
      TraceCollector::QueryIdScope inner(43);
      trace.AddInstant("exec", "inner");
    }
    EXPECT_EQ(TraceCollector::current_query_id(), 42u);
  }
  EXPECT_EQ(TraceCollector::current_query_id(), 0u);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"qid\": \"42\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"qid\": \"43\""), std::string::npos) << json;
  // The untagged event (id 0 = no scope) carries no qid arg.
  const size_t untagged = json.find("\"untagged\"");
  ASSERT_NE(untagged, std::string::npos);
  const size_t line_end = json.find("}", untagged);
  EXPECT_EQ(json.substr(untagged, line_end - untagged).find("qid"),
            std::string::npos)
      << json;
}

TEST(TraceCollectorTest, ExecutePlanTagsSpansWithContextQueryId) {
  // End to end: a traced scan under a context query id must produce only
  // qid-tagged spans, including those recorded by worker threads.
  DatabaseOptions opts;
  opts.buffer_pool_pages = 512;
  opts.observability.tracing = true;
  Database db(opts);
  SyntheticOptions sopts;
  sopts.num_rows = 2000;
  sopts.seed = 5;
  sopts.build_indexes = false;
  ASSERT_OK_AND_ASSIGN(Table * t, BuildSyntheticTable(&db, "T", sopts));
  ExecContext ctx(db.buffer_pool());
  ctx.set_trace(db.trace());
  ctx.set_query_id(7);
  Predicate pred({PredicateAtom::Int64(kC1, CmpOp::kLt, 100)});
  ParallelScanOptions options;
  options.num_threads = 2;
  ParallelTableScanOp scan(t, pred, {kC1}, nullptr, options);
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_EQ(run.stats.rows_returned, 99);
  ASSERT_GT(db.trace()->event_count(), 0u);
  const std::string json = db.trace()->ToJson();
  EXPECT_NE(json.find("\"qid\": \"7\""), std::string::npos) << json;
  // Every span of this run carries the tag: no args-bearing event without
  // it, and the span count matches the qid count.
  size_t spans = 0, tagged = 0;
  for (size_t pos = 0; (pos = json.find("\"name\"", pos)) != std::string::npos;
       ++pos) {
    ++spans;
  }
  for (size_t pos = 0;
       (pos = json.find("\"qid\": \"7\"", pos)) != std::string::npos; ++pos) {
    ++tagged;
  }
  EXPECT_EQ(spans, tagged) << json;
}

TEST(TraceCollectorTest, CapDropsAndCounts) {
  TraceCollector trace(/*enabled=*/true);
  trace.set_max_events(2);
  for (int i = 0; i < 5; ++i) trace.AddInstant("cat", "e");
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_EQ(trace.dropped_events(), 3u);
  trace.Clear();
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

// --------------------------------------------------- EstimationErrorTracker

TEST(QErrorHistogramTest, ObserveAndQuantile) {
  QErrorHistogram h;
  h.Observe(1.0);
  h.Observe(1.5);
  h.Observe(3.0);
  h.Observe(100.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 1.5 + 3.0 + 100.0) / 4);
  // Conservative bucket-boundary quantiles: the median lands in the
  // [1, 2] band, the tail in 100's bucket (64, 128].
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 128.0);
}

TEST(EstimationErrorTrackerTest, GroupsByTableAndMechanism) {
  EstimationErrorTracker tracker;
  MonitorRecord with_est;
  with_est.table = "T";
  with_est.mechanism = "prefix-exact";
  with_est.actual_dpc = 100;
  with_est.estimated_dpc = 400;
  with_est.actual_cardinality = 10;
  with_est.estimated_cardinality = 10;

  MonitorRecord without_est = with_est;
  without_est.estimated_dpc = -1;
  without_est.estimated_cardinality = -1;

  MonitorRecord other_table = with_est;
  other_table.table = "T1";

  tracker.RecordAll({with_est, without_est, other_table});
  EXPECT_EQ(tracker.total_records(), 3);

  auto groups = tracker.Summaries();
  ASSERT_EQ(groups.size(), 2u);
  const auto& t = groups[0].table == "T" ? groups[0] : groups[1];
  EXPECT_EQ(t.records, 2);
  // The estimate-less record is counted but contributes to no histogram.
  EXPECT_EQ(t.with_estimates, 1);
  EXPECT_EQ(t.dpc_error.count(), 1);
  EXPECT_DOUBLE_EQ(t.dpc_error.max(), 4.0);
  EXPECT_DOUBLE_EQ(t.cardinality_error.max(), 1.0);

  EXPECT_NE(tracker.Report().find("prefix-exact"), std::string::npos);
  tracker.Clear();
  EXPECT_EQ(tracker.total_records(), 0);
}

// ------------------------------------------------------ per-operator profiles

class ObservabilityExecTest : public SyntheticDbTest {};

TEST_F(ObservabilityExecTest, ProfilingCapturesOperatorTree) {
  TableScanOp scan(t_, Predicate(), {0}, nullptr);
  ExecContext ctx(db_->buffer_pool());
  ctx.set_profiling(true);
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_EQ(run.output.size(), 20'000u);

  ASSERT_NE(run.stats.profile, nullptr);
  const OpProfileNode& node = *run.stats.profile;
  // T is clustered, so the scan renders as ClusteredIndexScan.
  EXPECT_NE(node.describe.find("Scan(T"), std::string::npos);
  EXPECT_EQ(node.profile.rows, 20'000);
  EXPECT_EQ(node.profile.open_calls, 1);
  EXPECT_EQ(node.profile.close_calls, 1);
  // rows emissions plus the final false.
  EXPECT_EQ(node.profile.next_calls, 20'001);
  // The scan's inclusive I/O delta is the whole run's I/O.
  EXPECT_EQ(static_cast<int64_t>(node.profile.io.logical_reads),
            static_cast<int64_t>(run.stats.io.logical_reads));
  EXPECT_GT(node.profile.cpu.rows_processed, 0);

  const std::string plan =
      RenderAnnotatedPlan(node, run.stats.monitors);
  EXPECT_NE(plan.find("Scan(T"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=20000"), std::string::npos) << plan;
}

TEST_F(ObservabilityExecTest, ProfilingOffCapturesNothing) {
  TableScanOp scan(t_, Predicate(), {0}, nullptr);
  ExecContext ctx(db_->buffer_pool());
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_EQ(run.stats.profile, nullptr);
  EXPECT_EQ(scan.profile().open_calls, 0);
  EXPECT_EQ(scan.profile().next_calls, 0);
}

TEST(RenderAnnotatedPlanTest, AttachesEstimatesByLabelAndMechanism) {
  OpProfileNode node;
  node.describe = "TableScan(T, C1<10)";
  node.profile.rows = 5;
  MonitorRecord own;
  own.table = "T";
  own.label = "T|C1<10";
  own.expr_text = "C1<10";
  own.mechanism = "prefix-exact";
  own.actual_dpc = 100;
  node.records.push_back(own);

  MonitorRecord est = own;
  est.estimated_dpc = 400;
  const std::string plan = RenderAnnotatedPlan(node, {est});
  EXPECT_NE(plan.find("actualDpc=100.0"), std::string::npos) << plan;
  EXPECT_NE(plan.find("estDpc=400.0"), std::string::npos) << plan;
  EXPECT_NE(plan.find("errFactor=4.0x"), std::string::npos) << plan;
}

// --------------------------------------------------- prefetch-hit accounting

class PrefetchHitTest : public SyntheticDbTest {};

TEST_F(PrefetchHitTest, FirstDemandFetchAfterPrefetchChargesOneHit) {
  ASSERT_OK(db_->ColdCache());
  BufferPool* pool = db_->buffer_pool();
  IoStats* io = db_->disk()->io_stats();
  const PageId pid{t_->file()->segment(), 0};

  ASSERT_OK(pool->Prefetch(pid));
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_reads), 1);
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_hits), 0);

  // One prefetched load is at most one prefetch hit: the first demand
  // fetch charges it, later fetches of the still-resident page do not.
  { ASSERT_OK_AND_ASSIGN(PageGuard g, pool->Fetch(pid)); }
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_hits), 1);
  { ASSERT_OK_AND_ASSIGN(PageGuard g, pool->Fetch(pid)); }
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_hits), 1);
  EXPECT_LE(static_cast<int64_t>(io->prefetch_hits),
            static_cast<int64_t>(io->prefetch_reads));

  // A prefetch of an already-cached page is a no-op, not a second read.
  ASSERT_OK(pool->Prefetch(pid));
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_reads), 1);
}

// ------------------------------------------------- registry-backed monitors

TEST(MonitorManagerStatsTest, RegistryBackedAndSharedAcrossManagers) {
  // The monitor_* counters live on the Database's registry, so every
  // manager on the same Database publishes into — and any reader reads
  // back — the same totals. (The former InstrumentationStats struct
  // accessor was just a copy of these counters and has been removed.)
  Database db;
  MonitorManager a(&db);
  Counter* plans =
      db.metrics()->GetCounter("monitor_single_table_plans_total", "");
  EXPECT_EQ(plans->value(), 0);
  plans->Increment(3);
  MonitorManager b(&db);
  EXPECT_EQ(
      db.metrics()->GetCounter("monitor_single_table_plans_total", "")
          ->value(),
      3);
}

TEST(MonitorManagerStatsTest, MetricsOffPublishesNothing) {
  DatabaseOptions opts;
  opts.observability.metrics = false;
  Database db(opts);
  MonitorManager mm(&db);
  // With publication off the managers hold no counter handles; nothing
  // ever lands in the registry.
  EXPECT_EQ(
      db.metrics()->GetCounter("monitor_single_table_plans_total", "")
          ->value(),
      0);
  EXPECT_EQ(
      db.metrics()->GetCounter("monitor_scan_expressions_total", "")
          ->value(),
      0);
}

// ----------------------------------------------------------- worker regions

TEST(WorkerRegionTest, TracksLiveRegions) {
  ExecContext ctx(nullptr);
  EXPECT_EQ(ctx.active_worker_regions(), 0);
  {
    ExecContext::WorkerRegion outer(&ctx);
    EXPECT_EQ(ctx.active_worker_regions(), 1);
    {
      ExecContext::WorkerRegion inner(&ctx);
      EXPECT_EQ(ctx.active_worker_regions(), 2);
    }
    EXPECT_EQ(ctx.active_worker_regions(), 1);
  }
  EXPECT_EQ(ctx.active_worker_regions(), 0);
  // Quiescent again: the unlatched driver read is safe.
  (void)ctx.cpu_stats();
}

}  // namespace
}  // namespace dpcf
