// Shared helpers for the test suite.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "table/catalog.h"
#include "workload/synthetic.h"

namespace dpcf::testing {

#define ASSERT_OK(expr)                                    \
  do {                                                     \
    const ::dpcf::Status _st = (expr);                     \
    ASSERT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

#define EXPECT_OK(expr)                                    \
  do {                                                     \
    const ::dpcf::Status _st = (expr);                     \
    EXPECT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

// Unwraps a Result<T> or fails the test. Usage:
//   ASSERT_OK_AND_ASSIGN(auto value, SomeResultFn());
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      DPCF_ASSIGN_OR_RETURN_NAME(_test_result_, __LINE__), lhs, expr)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)              \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).value()

/// A small synthetic database shared by integration-style tests.
class SyntheticDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 512;
    db_ = std::make_unique<Database>(opts);
    SyntheticOptions sopts;
    sopts.num_rows = 20'000;
    sopts.seed = 7;
    auto table = BuildSyntheticTable(db_.get(), "T", sopts);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    t_ = *table;
  }

  std::unique_ptr<Database> db_;
  Table* t_ = nullptr;
};

}  // namespace dpcf::testing
