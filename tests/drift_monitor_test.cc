// Estimation-drift monitor (obs/drift_monitor.h): EWMA convergence,
// K-consecutive raise hysteresis, clear-on-healthy, and the metric /
// journal exposition — plus the Prometheus label-escaping edge cases the
// new per-(table, expr) labeled families make load-bearing.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/run_statistics.h"
#include "obs/drift_monitor.h"
#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

MonitorRecord Rec(const std::string& table, const std::string& label,
                  double actual_dpc, double estimated_dpc) {
  MonitorRecord rec;
  rec.table = table;
  rec.label = label;
  rec.expr_text = label;
  rec.mechanism = "count";
  rec.actual_dpc = actual_dpc;
  rec.actual_cardinality = 100;
  rec.estimated_dpc = estimated_dpc;
  rec.estimated_cardinality = 100;
  return rec;
}

TEST(DriftMonitorTest, IgnoresRecordsWithoutEstimates) {
  DriftMonitor dm;
  MonitorRecord rec = Rec("T", "e0", 50, /*estimated_dpc=*/-1);
  EXPECT_FALSE(dm.Observe(rec));
  EXPECT_TRUE(dm.ActiveAlerts().empty());
  EXPECT_EQ(dm.alerts_raised(), 0);
}

TEST(DriftMonitorTest, EwmaConvergesToTheObservedError) {
  DriftMonitorOptions opts;
  opts.alpha = 0.3;
  opts.threshold_factor = 1000;  // never alert; this test is about the EWMA
  DriftMonitor dm(opts);
  // Constant q-error of 8x: the first observation seeds the EWMA at 8 and
  // every subsequent fold keeps it there.
  for (int i = 0; i < 5; ++i) {
    dm.Observe(Rec("T", "e0", 10, 80));
  }
  // Now a run of accurate observations (q = 1): the EWMA decays toward 1
  // geometrically, by a factor (1 - alpha) per fold.
  MetricsRegistry reg;
  dm.AttachObservability(&reg, nullptr);
  double expect = 8;
  for (int i = 0; i < 20; ++i) {
    dm.Observe(Rec("T", "e0", 10, 10));
    expect = opts.alpha * 1 + (1 - opts.alpha) * expect;
  }
  Gauge* g = reg.GetGauge("estimation_drift_q_error_factor", "",
                          {{"table", "T"}, {"expr", "e0"}});
  EXPECT_NEAR(g->value(), expect, 1e-9);
  EXPECT_LT(g->value(), 1.01);  // converged to accurate
}

TEST(DriftMonitorTest, AlertNeedsKConsecutiveHighObservations) {
  DriftMonitorOptions opts;
  opts.threshold_factor = 4.0;
  opts.consecutive_k = 3;
  DriftMonitor dm(opts);
  const MonitorRecord bad = Rec("T", "e0", 10, 100);  // q = 10
  const MonitorRecord good = Rec("T", "e0", 10, 12);  // q = 1.2

  // Two bad then one good: the streak resets, no alert.
  EXPECT_FALSE(dm.Observe(bad));
  EXPECT_FALSE(dm.Observe(bad));
  EXPECT_FALSE(dm.Observe(good));
  EXPECT_EQ(dm.alerts_raised(), 0);

  // Three bad in a row: raise on exactly the K-th.
  EXPECT_FALSE(dm.Observe(bad));
  EXPECT_FALSE(dm.Observe(bad));
  EXPECT_TRUE(dm.Observe(bad));
  EXPECT_EQ(dm.alerts_raised(), 1);
  std::vector<DriftAlert> alerts = dm.ActiveAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].table, "T");
  EXPECT_EQ(alerts[0].expression, "e0");
  EXPECT_GT(alerts[0].ewma_q_error, opts.threshold_factor);

  // Staying bad keeps the alert active but does not re-raise.
  EXPECT_TRUE(dm.Observe(bad));
  EXPECT_EQ(dm.alerts_raised(), 1);
}

TEST(DriftMonitorTest, OneHealthyObservationClearsTheAlert) {
  DriftMonitorOptions opts;
  opts.threshold_factor = 4.0;
  opts.consecutive_k = 2;
  DriftMonitor dm(opts);
  const MonitorRecord bad = Rec("T", "e0", 10, 100);
  const MonitorRecord good = Rec("T", "e0", 10, 10);
  dm.Observe(bad);
  EXPECT_TRUE(dm.Observe(bad));
  ASSERT_EQ(dm.ActiveAlerts().size(), 1u);

  EXPECT_FALSE(dm.Observe(good));
  EXPECT_TRUE(dm.ActiveAlerts().empty());

  // Re-raising after a clear needs a full fresh streak — and counts as a
  // second raise.
  EXPECT_FALSE(dm.Observe(bad));
  EXPECT_TRUE(dm.Observe(bad));
  EXPECT_EQ(dm.alerts_raised(), 2);
}

TEST(DriftMonitorTest, SeriesAreIndependentPerTableAndExpression) {
  DriftMonitorOptions opts;
  opts.consecutive_k = 2;
  DriftMonitor dm(opts);
  // Interleaved observations: e0 drifts, e1 stays accurate. ObserveAll
  // reports advisement as soon as any touched series alerts.
  std::vector<MonitorRecord> round = {Rec("T", "e0", 10, 100),
                                      Rec("T", "e1", 10, 10)};
  EXPECT_FALSE(dm.ObserveAll(round));
  EXPECT_TRUE(dm.ObserveAll(round));
  std::vector<DriftAlert> alerts = dm.ActiveAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].expression, "e0");
}

TEST(DriftMonitorTest, RaisesAreCountedAndJournaled) {
  DriftMonitorOptions opts;
  opts.consecutive_k = 2;
  MetricsRegistry reg;
  EventJournal journal(16);
  DriftMonitor dm(opts);
  dm.AttachObservability(&reg, &journal);
  dm.Observe(Rec("T", "e0", 10, 100));
  dm.Observe(Rec("T", "e0", 10, 100));
  EXPECT_EQ(reg.GetCounter("estimation_drift_alerts_total", "")->value(), 1);
  std::vector<EventJournal::Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEvent::kDriftAlert);
  EXPECT_EQ(events[0].a, 10000u);  // milli q-error: EWMA stayed at 10
  EXPECT_EQ(events[0].b, 2u);      // observations at raise time
}

TEST(DriftMonitorTest, BadOptionsAreSanitized) {
  DriftMonitorOptions opts;
  opts.alpha = -2;
  opts.threshold_factor = 0;
  opts.consecutive_k = 0;
  DriftMonitor dm(opts);
  EXPECT_GT(dm.options().alpha, 0);
  EXPECT_LE(dm.options().alpha, 1);
  EXPECT_GE(dm.options().threshold_factor, 1);
  EXPECT_GE(dm.options().consecutive_k, 1);
}

// ------------------------------------------- Prometheus label escaping

TEST(PrometheusLabelEscapingTest, QuotesBackslashesAndNewlines) {
  // Monitored expressions land in label values verbatim — e.g.
  // expr="B < 10" is fine, but a label value containing a double quote,
  // backslash or newline must be escaped per the text exposition format
  // or every sample after it is unparseable.
  MetricsRegistry reg;
  reg.GetGauge("estimation_drift_q_error_factor", "help",
               {{"table", "T"}, {"expr", "name=\"x\\y\"\nrest"}})
      ->Set(2.0);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("expr=\"name=\\\"x\\\\y\\\"\\nrest\""),
            std::string::npos)
      << text;
  // The raw (unescaped) newline must not survive inside the value.
  EXPECT_EQ(text.find("name=\"x\\y\"\nrest"), std::string::npos);
}

TEST(PrometheusLabelEscapingTest, HistogramChildLabelsAreEscaped) {
  MetricsRegistry reg;
  reg.GetHistogram("disk_queue_wait_us", "help", 1.0, 2.0, 4,
                   {{"class", "de\"mand\\"}})
      ->Observe(3.0);
  const std::string text = reg.PrometheusText();
  // Every _bucket line carries the escaped child label next to le=...
  EXPECT_NE(text.find("class=\"de\\\"mand\\\\\",le=\"1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("disk_queue_wait_us_count{class=\"de\\\"mand\\\\\"}"),
            std::string::npos)
      << text;
}

TEST(PrometheusLabelEscapingTest, PlainValuesPassThroughUntouched) {
  MetricsRegistry reg;
  reg.GetHistogram("disk_service_time_us", "help", 1.0, 2.0, 4,
                   {{"class", "prefetch"}})
      ->Observe(5.0);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("disk_service_time_us_count{class=\"prefetch\"}"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace dpcf
