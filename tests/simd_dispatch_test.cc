// Property sweep for the SIMD dispatch layer (DESIGN.md section 16): every
// available ISA — scalar always, AVX2/NEON when the build + CPU has them —
// must be indistinguishable bit for bit from the scalar oracle:
//
//  * kernel level: EvalBatch selection vectors, leading[] counts,
//    EvalBatchDense pass bitmaps, and predicate_atom_evals charges;
//  * scan level: monitored TableScanOp feedback (prefix-exact, sampled
//    DPSample draws, bitvector) under each ISA vs the row-wise oracle;
//  * clustered level: ClusteredRangeScanOp's batch path vs its
//    row-at-a-time oracle, including the sorted-key early-exit boundary
//    (range ends mid-page / at a page edge / past the table) and empty
//    runs;
//  * leaf runs: BtreeIterator::NextRun vs per-entry Next().

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dpsample.h"
#include "exec/executor.h"
#include "exec/index_ops.h"
#include "exec/predicate_kernel.h"
#include "exec/scan_ops.h"
#include "exec/simd.h"
#include "index/btree.h"
#include "obs/metrics_registry.h"
#include "table/heap_file.h"
#include "table/row_codec.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

using testing::SyntheticDbTest;

/// Pins the process-wide SIMD table for a scope, restoring the previous
/// ISA on exit so test order doesn't leak.
class ScopedSimd {
 public:
  explicit ScopedSimd(SimdIsa isa) : prev_(ActiveSimdIsa()) {
    EXPECT_TRUE(SetActiveSimd(isa).ok()) << SimdIsaName(isa);
  }
  ~ScopedSimd() { (void)SetActiveSimd(prev_); }

 private:
  SimdIsa prev_;
};

Predicate RandomIntConjunction(Rng* rng, int64_t n, int max_atoms) {
  Predicate pred;
  const int atoms = 1 + static_cast<int>(rng->NextBounded(
                            static_cast<uint64_t>(max_atoms)));
  const int cols[] = {kC1, kC2, kC3, kC4, kC5};
  for (int a = 0; a < atoms; ++a) {
    CmpOp op = static_cast<CmpOp>(rng->NextBounded(6));
    int col = cols[rng->NextBounded(5)];
    int64_t v = rng->NextInt(1, n);
    if (op == CmpOp::kLt || op == CmpOp::kLe) v = std::max<int64_t>(v, n / 8);
    if (op == CmpOp::kGt || op == CmpOp::kGe) {
      v = std::min<int64_t>(v, 7 * n / 8);
    }
    pred.Add(PredicateAtom::Int64(col, op, v));
  }
  return pred;
}

TEST(SimdDispatch, NamesRoundTrip) {
  EXPECT_STREQ(SimdIsaName(SimdIsa::kScalar), "scalar");
  EXPECT_STREQ(SimdIsaName(SimdIsa::kAvx2), "avx2");
  EXPECT_STREQ(SimdIsaName(SimdIsa::kNeon), "neon");
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndListedFirst) {
  EXPECT_TRUE(SimdIsaAvailable(SimdIsa::kScalar));
  const std::vector<SimdIsa> isas = AvailableSimdIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas[0], SimdIsa::kScalar);
  for (SimdIsa isa : isas) EXPECT_TRUE(SimdIsaAvailable(isa));
  // AVX2 and NEON are mutually exclusive builds, so at least one of the
  // vector ISAs must be unavailable — exercising the rejection path.
  ASSERT_TRUE(!SimdIsaAvailable(SimdIsa::kAvx2) ||
              !SimdIsaAvailable(SimdIsa::kNeon));
  const SimdIsa missing = !SimdIsaAvailable(SimdIsa::kAvx2) ? SimdIsa::kAvx2
                                                            : SimdIsa::kNeon;
  EXPECT_FALSE(SetActiveSimd(missing).ok());
}

TEST(SimdDispatch, EnvResolutionPolicy) {
  const SimdIsa best = ChooseSimdIsa(nullptr);
  EXPECT_TRUE(SimdIsaAvailable(best));
  EXPECT_EQ(ChooseSimdIsa(""), best);          // unset/empty -> autodetect
  EXPECT_EQ(ChooseSimdIsa("scalar"), SimdIsa::kScalar);
  EXPECT_EQ(ChooseSimdIsa("bogus-isa"), best); // unrecognized -> autodetect
  // A recognized-but-unavailable ISA degrades to scalar, not to best.
  if (!SimdIsaAvailable(SimdIsa::kNeon)) {
    EXPECT_EQ(ChooseSimdIsa("neon"), SimdIsa::kScalar);
  }
  if (!SimdIsaAvailable(SimdIsa::kAvx2)) {
    EXPECT_EQ(ChooseSimdIsa("avx2"), SimdIsa::kScalar);
  }
  if (SimdIsaAvailable(SimdIsa::kAvx2)) {
    EXPECT_EQ(ChooseSimdIsa("avx2"), SimdIsa::kAvx2);
  }
}

TEST(SimdDispatch, SetActiveSimdGovernsNewKernels) {
  for (SimdIsa isa : AvailableSimdIsas()) {
    ScopedSimd pin(isa);
    EXPECT_EQ(ActiveSimdIsa(), isa);
    Schema schema({Column::Int64("a")});
    PredicateKernel kernel(
        Predicate({PredicateAtom::Int64(0, CmpOp::kGt, 0)}), &schema);
    EXPECT_EQ(kernel.simd_isa(), isa);
  }
}

// ------------------------------------------------ kernel-level ISA sweep

class SimdKernelSweep : public SyntheticDbTest,
                        public ::testing::WithParamInterface<int> {
 protected:
  // Evaluates `pred` over every page under `isa` and checks selection
  // vector, leading[], dense pass bits and charges against the serial
  // row-at-a-time oracle (which is ISA-independent by construction).
  void CheckIsaAgainstOracle(SimdIsa isa, const Predicate& pred) {
    ScopedSimd pin(isa);
    const Schema* schema = &t_->schema();
    const HeapFile* file = t_->file();
    PredicateKernel kernel(pred, schema);
    ASSERT_EQ(kernel.simd_isa(), isa);
    RowBlock block(schema);
    std::vector<uint32_t> sel, leading;
    std::vector<uint8_t> pass;
    CpuStats batch_cpu, serial_cpu;

    for (PageNo p = 0; p < file->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      const uint32_t n = HeapFile::PageRowCount(page);
      block.Reset(HeapFile::PageRows(page), n);
      sel.resize(n);
      leading.resize(n);
      const uint32_t m =
          kernel.EvalBatch(&block, &batch_cpu, sel.data(), leading.data());

      uint32_t expect_m = 0;
      for (uint32_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(s)), schema);
        const uint32_t lead = pred.EvalLeading(row, &serial_cpu);
        ASSERT_EQ(leading[s], lead)
            << SimdIsaName(isa) << " page " << p << " row " << s << ": "
            << pred.ToString(*schema);
        if (lead == pred.atoms().size()) {
          ASSERT_LT(expect_m, m);
          ASSERT_EQ(sel[expect_m], s) << SimdIsaName(isa);
          ++expect_m;
        }
      }
      ASSERT_EQ(m, expect_m) << SimdIsaName(isa);

      pass.resize(n);
      CpuStats dense_cpu;
      kernel.EvalBatchDense(&block, &dense_cpu, pass.data());
      for (uint32_t s = 0; s < n; ++s) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(s)), schema);
        CpuStats scratch;
        ASSERT_EQ(pass[s] != 0, pred.EvalNoShortCircuit(row, &scratch))
            << SimdIsaName(isa) << " page " << p << " row " << s;
      }
    }
    EXPECT_EQ(batch_cpu.predicate_atom_evals, serial_cpu.predicate_atom_evals)
        << SimdIsaName(isa) << ": " << pred.ToString(*schema);
  }
};

TEST_P(SimdKernelSweep, EveryIsaMatchesTheRowOracleBitForBit) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 70901 + 13);
  for (int round = 0; round < 3; ++round) {
    const Predicate pred = RandomIntConjunction(&rng, t_->row_count(), 4);
    for (SimdIsa isa : AvailableSimdIsas()) {
      CheckIsaAgainstOracle(isa, pred);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdKernelSweep, ::testing::Range(0, 6));

// The run-cutoff primitive against a straightforward scalar scan, on the
// clustered table's key column (physically sorted) with boundary bounds.
TEST_F(SimdKernelSweep, LeadingLeCutoffMatchesScalarScan) {
  const Schema* schema = &t_->schema();
  const HeapFile* file = t_->file();
  const size_t key_off = schema->offset(static_cast<size_t>(kC1));
  const uint32_t stride = static_cast<uint32_t>(schema->row_size());
  for (SimdIsa isa : AvailableSimdIsas()) {
    ScopedSimd pin(isa);
    const SimdOps& ops = ActiveSimdOps();
    for (PageNo p = 0; p < file->page_count(); p += 7) {
      const char* page = db_->disk()->RawPage(PageId{file->segment(), p});
      const uint32_t n = HeapFile::PageRowCount(page);
      const char* rows = HeapFile::PageRows(page);
      auto key_at = [&](uint32_t r) {
        RowView row(file->RowInPage(page, static_cast<uint16_t>(r)), schema);
        return row.GetInt64(static_cast<size_t>(kC1));
      };
      const int64_t first = n > 0 ? key_at(0) : 0;
      const int64_t last = n > 0 ? key_at(n - 1) : 0;
      for (int64_t bound : {first - 1, first, first + n / 2, last - 1, last,
                            last + 5}) {
        const uint32_t cut =
            ops.int64_leading_le(rows, stride, key_off, bound, n);
        uint32_t expect = 0;
        while (expect < n && key_at(expect) <= bound) ++expect;
        ASSERT_EQ(cut, expect)
            << SimdIsaName(isa) << " page " << p << " bound " << bound;
      }
      // Empty run: n = 0 must not touch the rows.
      ASSERT_EQ(ops.int64_leading_le(rows, stride, key_off, 0, 0), 0u);
    }
  }
}

// ---------------------------------------------- scan-level monitored sweep

// Asserts two monitored runs are indistinguishable: tuples, CpuStats
// charges, logical I/O, simulated time, and every MonitorRecord (labels,
// mechanisms, DPC feedback — which folds in the DPSample draws).
void ExpectRunsIdentical(const RunResult& a, const RunResult& b,
                         const char* what) {
  ASSERT_EQ(a.output.size(), b.output.size()) << what;
  for (size_t i = 0; i < a.output.size(); ++i) {
    ASSERT_EQ(a.output[i], b.output[i]) << what << " tuple " << i;
  }
  EXPECT_EQ(a.stats.cpu.rows_processed, b.stats.cpu.rows_processed) << what;
  EXPECT_EQ(a.stats.cpu.predicate_atom_evals,
            b.stats.cpu.predicate_atom_evals)
      << what;
  EXPECT_EQ(a.stats.cpu.monitor_row_ops, b.stats.cpu.monitor_row_ops)
      << what;
  EXPECT_EQ(a.stats.cpu.monitor_hash_ops, b.stats.cpu.monitor_hash_ops)
      << what;
  EXPECT_EQ(static_cast<int64_t>(a.stats.io.logical_reads),
            static_cast<int64_t>(b.stats.io.logical_reads))
      << what;
  EXPECT_EQ(a.stats.simulated_ms, b.stats.simulated_ms) << what;
  ASSERT_EQ(a.stats.monitors.size(), b.stats.monitors.size()) << what;
  for (size_t i = 0; i < a.stats.monitors.size(); ++i) {
    const MonitorRecord& x = a.stats.monitors[i];
    const MonitorRecord& y = b.stats.monitors[i];
    EXPECT_EQ(x.label, y.label) << what;
    EXPECT_EQ(x.mechanism, y.mechanism) << what;
    EXPECT_EQ(x.actual_dpc, y.actual_dpc) << what << " " << x.label;
    EXPECT_EQ(x.actual_cardinality, y.actual_cardinality)
        << what << " " << x.label;
    EXPECT_EQ(x.exact, y.exact) << what << " " << x.label;
  }
}

class SimdScanSweep : public SyntheticDbTest,
                      public ::testing::WithParamInterface<int> {
 protected:
  std::unique_ptr<ScanMonitorBundle> MakeBundle(const Predicate& pushed,
                                                const Predicate& requested,
                                                uint64_t seed) {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        pushed, &t_->schema(), /*f=*/0.5, seed);
    if (!pushed.atoms().empty()) {
      ScanExprRequest prefix;
      prefix.label = "prefix";
      prefix.expr = Predicate({pushed.atoms()[0]});
      EXPECT_TRUE(bundle->AddRequest(std::move(prefix)).ok());
    }
    ScanExprRequest sampled;
    sampled.label = "sampled";
    sampled.expr = requested;
    EXPECT_TRUE(bundle->AddRequest(std::move(sampled)).ok());
    return bundle;
  }

  RunResult RunTableScan(const Predicate& pushed, const Predicate& requested,
                         uint64_t seed, bool vectorized) {
    EXPECT_TRUE(db_->ColdCache().ok());
    ExecContext ctx(db_->buffer_pool());
    TableScanOp scan(t_, pushed, {kC1, kC5},
                     MakeBundle(pushed, requested, seed), vectorized);
    auto run = ExecutePlan(&scan, &ctx);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(*run);
  }
};

TEST_P(SimdScanSweep, MonitoredScanFeedbackIdenticalAcrossIsas) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 7);
  const Predicate pushed = RandomIntConjunction(&rng, t_->row_count(), 3);
  const Predicate requested = RandomIntConjunction(&rng, t_->row_count(), 2);
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 211;

  // Oracle: row-at-a-time, which never touches the dispatch table's
  // filter entries. Then every ISA's vectorized run must match it —
  // including the DPSample draws folded into the sampled monitor.
  RunResult oracle =
      RunTableScan(pushed, requested, seed, /*vectorized=*/false);
  for (SimdIsa isa : AvailableSimdIsas()) {
    ScopedSimd pin(isa);
    RunResult vec = RunTableScan(pushed, requested, seed, /*vectorized=*/true);
    ExpectRunsIdentical(vec, oracle, SimdIsaName(isa));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdScanSweep, ::testing::Range(0, 6));

// ------------------------------------- clustered range scan batch vs row

class ClusteredBatchSweep : public SyntheticDbTest {
 protected:
  std::unique_ptr<ScanMonitorBundle> MakeBundle(const Predicate& pushed,
                                                uint64_t seed) {
    auto bundle = std::make_unique<ScanMonitorBundle>(
        pushed, &t_->schema(), /*f=*/0.5, seed);
    ScanExprRequest prefix;
    prefix.label = "prefix";
    prefix.expr = Predicate({pushed.atoms()[0]});
    EXPECT_TRUE(bundle->AddRequest(std::move(prefix)).ok());
    ScanExprRequest sampled;
    sampled.label = "sampled";
    sampled.expr = pushed;
    EXPECT_TRUE(bundle->AddRequest(std::move(sampled)).ok());
    return bundle;
  }

  RunResult RunClustered(int64_t lo, int64_t hi, const Predicate& extra,
                         uint64_t seed, bool vectorized) {
    EXPECT_TRUE(db_->ColdCache().ok());
    ExecContext ctx(db_->buffer_pool());
    Predicate pushed;
    pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kGe, lo));
    pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kLe, hi));
    for (const PredicateAtom& a : extra.atoms()) pushed.Add(a);
    ClusteredRangeScanOp scan(t_, db_->GetIndex("T_c1"), lo, hi, pushed,
                              {kC1, kC3}, MakeBundle(pushed, seed),
                              vectorized);
    EXPECT_EQ(scan.vectorized(), vectorized);
    auto run = ExecutePlan(&scan, &ctx);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(*run);
  }
};

TEST_F(ClusteredBatchSweep, BatchMatchesRowOracleIncludingEarlyExit) {
  const int64_t n = t_->row_count();
  // Rows per page of the synthetic layout, to aim ranges at page edges.
  const HeapFile* file = t_->file();
  const char* page0 = db_->disk()->RawPage(PageId{file->segment(), 0});
  const int64_t rpp = HeapFile::PageRowCount(page0);
  ASSERT_GT(rpp, 2);

  struct Range {
    int64_t lo, hi;
  };
  const Range ranges[] = {
      {1, n},                    // full table, no early exit until the end
      {n / 4, n / 2},            // generic mid-table range
      {1, rpp / 2},              // early exit mid-first-page
      {1, rpp},                  // hi on the last row of a page: the exit
                                 // fires on the *next* page's first row
      {rpp + 1, 2 * rpp - 3},    // starts at a page head, ends mid-page
      {n - rpp / 2, n + 500},    // hi past the table: runs off the end
      {n + 1, n + 100},          // empty range beyond all keys
      {-50, 0},                  // empty range below all keys
      {n / 3, n / 3},            // single-key range
  };
  Predicate extra({PredicateAtom::Int64(kC3, CmpOp::kGt, n / 4)});
  for (const Range& r : ranges) {
    const uint64_t seed = static_cast<uint64_t>(r.lo * 31 + r.hi) + 5;
    RunResult row = RunClustered(r.lo, r.hi, extra, seed, false);
    RunResult batch = RunClustered(r.lo, r.hi, extra, seed, true);
    SCOPED_TRACE(::testing::Message() << "range [" << r.lo << "," << r.hi
                                      << "]");
    ExpectRunsIdentical(batch, row, "clustered");
  }
}

TEST_F(ClusteredBatchSweep, BatchIdenticalAcrossIsasAndRecordsHistogram) {
  const int64_t n = t_->row_count();
  Predicate extra({PredicateAtom::Int64(kC4, CmpOp::kLe, n / 2)});
  RunResult oracle = RunClustered(n / 8, 3 * n / 4, extra, 99, false);
  for (SimdIsa isa : AvailableSimdIsas()) {
    ScopedSimd pin(isa);
    RunResult batch = RunClustered(n / 8, 3 * n / 4, extra, 99, true);
    ExpectRunsIdentical(batch, oracle, SimdIsaName(isa));
  }

  // Satellite: the clustered batch path must feed dpcf_scan_batch_rows
  // (it recorded nothing before the batch path existed).
  MetricsRegistry registry;
  ExecContext ctx(db_->buffer_pool());
  ctx.set_metrics(&registry);
  Predicate pushed;
  pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kGe, 1));
  pushed.Add(PredicateAtom::Int64(kC1, CmpOp::kLe, n / 2));
  ClusteredRangeScanOp scan(t_, db_->GetIndex("T_c1"), 1, n / 2, pushed,
                            {kC1}, nullptr, /*vectorized=*/true);
  ASSERT_OK_AND_ASSIGN(RunResult run, ExecutePlan(&scan, &ctx));
  EXPECT_GT(run.output.size(), 0u);
  LogHistogram* hist = registry.GetHistogram(
      "dpcf_scan_batch_rows",
      "rows per vectorized predicate batch (one batch per page)", 1.0, 2.0,
      12);
  EXPECT_GT(hist->count(), 0) << "clustered batch path recorded no samples";
}

// --------------------------------------------------- B+-tree leaf runs

TEST_F(ClusteredBatchSweep, NextRunMatchesPerEntryIteration) {
  Btree* tree = db_->GetIndex("T_c2")->tree();
  const int64_t n = t_->row_count();
  struct Case {
    int64_t lo, hi;
  };
  const Case cases[] = {
      {1, n},          // everything
      {n / 3, n / 3},  // single key
      {n / 2, n / 2 + 100},
      {n + 1, n + 50},  // empty: seek lands past every key
      {-10, 0},         // empty: hi below the smallest key
  };
  for (const Case& c : cases) {
    // Reference: per-entry iteration.
    std::vector<BtreeEntry> expect;
    ASSERT_OK_AND_ASSIGN(BtreeIterator ref,
                         tree->SeekFirst(BtreeKey::Min(c.lo)));
    while (ref.Valid() && !(BtreeKey::Max(c.hi) < ref.key())) {
      expect.push_back(ref.entry());
      ASSERT_OK(ref.Next());
    }

    // Leaf-run iteration: same entries in the same order, each run bounded
    // by one leaf, terminated by an empty run (or iterator exhaustion).
    std::vector<BtreeEntry> got;
    ASSERT_OK_AND_ASSIGN(BtreeIterator it,
                         tree->SeekFirst(BtreeKey::Min(c.lo)));
    std::vector<BtreeEntry> run;
    int nonempty_runs = 0;
    while (it.Valid()) {
      ASSERT_OK(it.NextRun(BtreeKey::Max(c.hi), &run));
      if (run.empty()) break;  // bound hit: the iterator parked past hi
      ++nonempty_runs;
      got.insert(got.end(), run.begin(), run.end());
    }
    ASSERT_EQ(got.size(), expect.size())
        << "range [" << c.lo << "," << c.hi << "]";
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << "entry " << i;
    }
    if (!expect.empty()) {
      EXPECT_GT(nonempty_runs, 0);
    }
  }

  // A resumed iterator continues where the bound stopped it: widen the
  // bound and the next run picks up the first previously-excluded entry.
  ASSERT_OK_AND_ASSIGN(BtreeIterator it, tree->SeekFirst(BtreeKey::Min(1)));
  std::vector<BtreeEntry> first_half, rest;
  while (it.Valid()) {
    std::vector<BtreeEntry> run;
    ASSERT_OK(it.NextRun(BtreeKey::Max(n / 2), &run));
    if (run.empty()) break;
    first_half.insert(first_half.end(), run.begin(), run.end());
  }
  ASSERT_TRUE(it.Valid());
  EXPECT_TRUE(BtreeKey::Max(n / 2) < it.key());
  while (it.Valid()) {
    std::vector<BtreeEntry> run;
    ASSERT_OK(it.NextRun(BtreeKey::Max(n), &run));
    if (run.empty()) break;
    rest.insert(rest.end(), run.begin(), run.end());
  }
  EXPECT_EQ(first_half.size() + rest.size(), static_cast<size_t>(n));
}

}  // namespace
}  // namespace dpcf
