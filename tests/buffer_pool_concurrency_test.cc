// Multi-threaded buffer-pool stress: concurrent Fetch/pin/unpin with
// eviction pressure, concurrent dirty writes with writeback, and concurrent
// NewPage allocation, each run against 1, 2 and 8 shards (1 shard is the
// historical monolithic configuration). Verifies page *content* integrity
// (a stamp in every page) and that I/O accounting is *exact* under
// contention — logical_reads == buffer_hits + physical_reads() as an
// equality, never an approximation. Run under ThreadSanitizer in CI.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

constexpr uint32_t kPageSize = 256;

int64_t ReadStamp(const char* data) {
  int64_t v;
  std::memcpy(&v, data, sizeof(v));
  return v;
}

void WriteStamp(char* data, int64_t v) { std::memcpy(data, &v, sizeof(v)); }

/// Param: shard count. Capacities below are chosen so that the worst-case
/// concentration of simultaneous pins into one shard still fits in that
/// shard's frame quota — fetches must then never fail, which is what makes
/// the exact accounting assertions valid.
class BufferPoolConcurrencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolConcurrencyTest, ConcurrentFetchKeepsContentsIntact) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 512;
  std::vector<char> buf(kPageSize, 0);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    WriteStamp(buf.data(), 1000 + p);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }

  // Capacity well below the page count so eviction and writeback run
  // constantly under contention; 8 threads hold at most 2 pins each, and
  // 16 <= 128/8 frames per shard, so no fetch can exhaust a shard.
  BufferPool pool(&disk, 128, BufferPoolOptions{GetParam()});
  ASSERT_EQ(pool.num_shards(), GetParam());

  const int kThreads = 8;
  const int kIters = 4000;
  std::vector<std::thread> threads;
  std::atomic<int64_t> fetches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int i = 0; i < kIters; ++i) {
        PageNo p = static_cast<PageNo>(rng.NextBounded(kPages));
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok()) {
          ++failures;
          return;
        }
        ++fetches;
        if (ReadStamp(guard->data()) != 1000 + p) {
          ++failures;
          return;
        }
        // Sometimes hold a second pin concurrently (two guards alive).
        if (i % 7 == 0) {
          PageNo q = static_cast<PageNo>(rng.NextBounded(kPages));
          auto second = pool.Fetch(PageId{seg, q});
          if (!second.ok() || ReadStamp(second->data()) != 1000 + q) {
            ++failures;
            return;
          }
          ++fetches;
        }
        // Threads write only to pages they own (p % kThreads == t), into a
        // byte range no reader inspects — exercises dirty marking and
        // eviction writeback without racing on page bytes.
        if (p % static_cast<PageNo>(kThreads) == static_cast<PageNo>(t) &&
            i % 5 == 0) {
          WriteStamp(guard->mutable_data() + 64 + t * 8, i);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Exact accounting under contention (regression for the miss-path charge
  // ordering): every successful Fetch charged exactly one logical read, and
  // each was either a hit or exactly one physical read — no duplicate loads
  // of a page two threads raced on, and no charge was dropped or doubled
  // across the latch-free miss window.
  IoStats* io = disk.io_stats();
  EXPECT_EQ(static_cast<int64_t>(io->logical_reads), fetches.load());
  EXPECT_EQ(static_cast<int64_t>(io->buffer_hits) + io->physical_reads(),
            fetches.load());
  EXPECT_EQ(static_cast<int64_t>(io->prefetch_reads), 0);

  // All stamps still intact after writeback of every dirty frame.
  ASSERT_OK(pool.FlushAll());
  for (PageNo p = 0; p < kPages; ++p) {
    ASSERT_OK(disk.ReadPage(PageId{seg, p}, buf.data()));
    EXPECT_EQ(ReadStamp(buf.data()), 1000 + p) << "page " << p;
  }
}

TEST_P(BufferPoolConcurrencyTest, SamePageColdFetchYieldsOnePhysicalRead) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 64;
  std::vector<char> buf(kPageSize, 0);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    WriteStamp(buf.data(), 9000 + p);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }
  // Slow the simulated device so every thread reliably arrives while the
  // loader still has the page in kLoading (the window would otherwise be
  // nanoseconds and the waiters' path would rarely run).
  disk.set_read_latency_us(200);

  // Capacity >= page count: no eviction, so the counters below are exact.
  BufferPool pool(&disk, 128, BufferPoolOptions{GetParam()});

  const int kThreads = 8;
  std::barrier sync(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (PageNo p = 0; p < kPages; ++p) {
        // All threads release the barrier together and race Fetch on the
        // same absent page; exactly one must become the loader.
        sync.arrive_and_wait();
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok() || ReadStamp(guard->data()) != 9000 + p) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // One physical read per page despite 8 concurrent fetchers of it; every
  // non-loader was a buffer hit (either waited on the loading frame or
  // arrived after it became ready).
  IoStats* io = disk.io_stats();
  EXPECT_EQ(io->physical_reads(), static_cast<int64_t>(kPages));
  EXPECT_EQ(static_cast<int64_t>(io->logical_reads),
            static_cast<int64_t>(kPages) * kThreads);
  EXPECT_EQ(static_cast<int64_t>(io->buffer_hits),
            static_cast<int64_t>(kPages) * (kThreads - 1));
}

TEST_P(BufferPoolConcurrencyTest, ConcurrentNewPageAllocatesDistinctPages) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("scratch");
  // 4 single-pin threads never fill an 8-frame shard (64/8).
  BufferPool pool(&disk, 64, BufferPoolOptions{GetParam()});

  const int kThreads = 4;
  const int kPagesPerThread = 50;
  std::vector<std::vector<PageNo>> created(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        PageId pid;
        auto guard = pool.NewPage(seg, &pid);
        if (!guard.ok()) {
          ++failures;
          return;
        }
        // Stamp while exclusively pinned by the creator.
        WriteStamp(guard->mutable_data(), 7000 + pid.page_no);
        created[static_cast<size_t>(t)].push_back(pid.page_no);
      }
      // Re-fetch this thread's own pages (may have been evicted and
      // written back meanwhile) and verify the stamps survived.
      for (PageNo p : created[static_cast<size_t>(t)]) {
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok() || ReadStamp(guard->data()) != 7000 + p) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Every allocation produced a distinct page number.
  std::vector<PageNo> all;
  for (const auto& v : created) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kThreads) * kPagesPerThread);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(disk.SegmentPageCount(seg), static_cast<PageNo>(all.size()));
}

TEST_P(BufferPoolConcurrencyTest, EvictionStormUnderTinyPool) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 64;
  std::vector<char> buf(kPageSize, 0);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    WriteStamp(buf.data(), 42 + p);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }
  // A few frames per shard for 4 single-pin threads: nearly every fetch
  // evicts, but a shard (>= 4 frames) can always seat one more fetch.
  const size_t capacity = std::max<size_t>(8, 4 * GetParam());
  BufferPool pool(&disk, capacity, BufferPoolOptions{GetParam()});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 40; ++round) {
        for (PageNo p = 0; p < kPages; ++p) {
          PageNo page = (p + static_cast<PageNo>(t * 16)) % kPages;
          auto guard = pool.Fetch(PageId{seg, page});
          if (!guard.ok() || ReadStamp(guard->data()) != 42 + page) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const IoStats& io = *disk.io_stats();
  EXPECT_EQ(static_cast<int64_t>(io.logical_reads),
            static_cast<int64_t>(io.buffer_hits) + io.physical_reads());
}

TEST_P(BufferPoolConcurrencyTest, ShardAggregatesAndColdReset) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 32;
  for (PageNo p = 0; p < kPages; ++p) disk.AllocatePage(seg);
  BufferPool pool(&disk, 64, BufferPoolOptions{GetParam()});

  for (PageNo p = 0; p < kPages; ++p) {
    auto g = pool.Fetch(PageId{seg, p});
    ASSERT_OK(g.status());
  }
  // cached_pages() sums the per-shard tables (one latch at a time).
  EXPECT_EQ(pool.cached_pages(), static_cast<size_t>(kPages));

  {
    auto pinned = pool.Fetch(PageId{seg, 0});
    ASSERT_OK(pinned.status());
    EXPECT_FALSE(pool.ColdReset().ok());  // pinned page anywhere blocks it
  }
  ASSERT_OK(pool.ColdReset());
  EXPECT_EQ(pool.cached_pages(), 0u);

  // The next fetch of every page is physical again.
  int64_t phys_before = disk.io_stats()->physical_reads();
  for (PageNo p = 0; p < kPages; ++p) {
    auto g = pool.Fetch(PageId{seg, p});
    ASSERT_OK(g.status());
  }
  EXPECT_EQ(disk.io_stats()->physical_reads() - phys_before,
            static_cast<int64_t>(kPages));
}

INSTANTIATE_TEST_SUITE_P(Shards, BufferPoolConcurrencyTest,
                         ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace dpcf
