// Multi-threaded buffer-pool stress: concurrent Fetch/pin/unpin with
// eviction pressure, concurrent dirty writes with writeback, and concurrent
// NewPage allocation. Verifies page *content* integrity (a stamp in every
// page) and I/O accounting, and is run under ThreadSanitizer in CI.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

constexpr uint32_t kPageSize = 256;

int64_t ReadStamp(const char* data) {
  int64_t v;
  std::memcpy(&v, data, sizeof(v));
  return v;
}

void WriteStamp(char* data, int64_t v) { std::memcpy(data, &v, sizeof(v)); }

TEST(BufferPoolConcurrencyTest, ConcurrentFetchKeepsContentsIntact) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 128;
  std::vector<char> buf(kPageSize, 0);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    WriteStamp(buf.data(), 1000 + p);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }

  // Capacity well below the page count so eviction and writeback run
  // constantly under contention.
  BufferPool pool(&disk, 32);

  const int kThreads = 8;
  const int kIters = 4000;
  std::vector<std::thread> threads;
  std::atomic<int64_t> fetches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int i = 0; i < kIters; ++i) {
        PageNo p = static_cast<PageNo>(rng.NextBounded(kPages));
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok()) {
          ++failures;
          return;
        }
        ++fetches;
        if (ReadStamp(guard->data()) != 1000 + p) {
          ++failures;
          return;
        }
        // Sometimes hold a second pin concurrently (two guards alive).
        if (i % 7 == 0) {
          PageNo q = static_cast<PageNo>(rng.NextBounded(kPages));
          auto second = pool.Fetch(PageId{seg, q});
          if (!second.ok() || ReadStamp(second->data()) != 1000 + q) {
            ++failures;
            return;
          }
          ++fetches;
        }
        // Threads write only to pages they own (p % kThreads == t), into a
        // byte range no reader inspects — exercises dirty marking and
        // eviction writeback without racing on page bytes.
        if (p % static_cast<PageNo>(kThreads) == static_cast<PageNo>(t) &&
            i % 5 == 0) {
          WriteStamp(guard->mutable_data() + 64 + t * 8, i);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Accounting: every Fetch charged one logical read, and each one was
  // either a hit or exactly one physical read (no duplicate loads).
  IoStats* io = disk.io_stats();
  EXPECT_EQ(static_cast<int64_t>(io->logical_reads), fetches.load());
  EXPECT_EQ(static_cast<int64_t>(io->buffer_hits) +
                static_cast<int64_t>(io->physical_seq_reads) +
                static_cast<int64_t>(io->physical_rand_reads),
            fetches.load());

  // All stamps still intact after writeback of every dirty frame.
  ASSERT_OK(pool.FlushAll());
  for (PageNo p = 0; p < kPages; ++p) {
    ASSERT_OK(disk.ReadPage(PageId{seg, p}, buf.data()));
    EXPECT_EQ(ReadStamp(buf.data()), 1000 + p) << "page " << p;
  }
}

TEST(BufferPoolConcurrencyTest, ConcurrentNewPageAllocatesDistinctPages) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("scratch");
  BufferPool pool(&disk, 16);

  const int kThreads = 4;
  const int kPagesPerThread = 50;
  std::vector<std::vector<PageNo>> created(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        PageId pid;
        auto guard = pool.NewPage(seg, &pid);
        if (!guard.ok()) {
          ++failures;
          return;
        }
        // Stamp while exclusively pinned by the creator.
        WriteStamp(guard->mutable_data(), 7000 + pid.page_no);
        created[static_cast<size_t>(t)].push_back(pid.page_no);
      }
      // Re-fetch this thread's own pages (may have been evicted and
      // written back meanwhile) and verify the stamps survived.
      for (PageNo p : created[static_cast<size_t>(t)]) {
        auto guard = pool.Fetch(PageId{seg, p});
        if (!guard.ok() || ReadStamp(guard->data()) != 7000 + p) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Every allocation produced a distinct page number.
  std::vector<PageNo> all;
  for (const auto& v : created) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kThreads) * kPagesPerThread);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(disk.SegmentPageCount(seg), static_cast<PageNo>(all.size()));
}

TEST(BufferPoolConcurrencyTest, EvictionStormUnderTinyPool) {
  DiskManager disk(kPageSize);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 64;
  std::vector<char> buf(kPageSize, 0);
  for (PageNo p = 0; p < kPages; ++p) {
    disk.AllocatePage(seg);
    WriteStamp(buf.data(), 42 + p);
    ASSERT_OK(disk.WritePage(PageId{seg, p}, buf.data()));
  }
  // Only 8 frames for 4 threads: nearly every fetch evicts.
  BufferPool pool(&disk, 8);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 40; ++round) {
        for (PageNo p = 0; p < kPages; ++p) {
          PageNo page = (p + static_cast<PageNo>(t * 16)) % kPages;
          auto guard = pool.Fetch(PageId{seg, page});
          if (!guard.ok() || ReadStamp(guard->data()) != 42 + page) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dpcf
