// Join execution + join page-count monitoring (paper Section IV).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/clustering_ratio.h"
#include "core/feedback_driver.h"
#include "exec/executor.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace dpcf {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 1024;
    db_ = std::make_unique<Database>(opts);
    SyntheticOptions sopts;
    sopts.num_rows = 20'000;
    sopts.seed = 7;
    auto t = BuildSyntheticTable(db_.get(), "T", sopts);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    t_ = *t;
    // T1: same schema/distributions, clustered on C1, but with
    // independently drawn permutations — joining on Ci then ranges over
    // clustering-correlated (C2) to scattered (C5) inner row sets.
    SyntheticOptions s1 = sopts;
    s1.seed = 1234;
    s1.build_indexes = false;
    auto t1 = BuildSyntheticTable(db_.get(), "T1", s1);
    ASSERT_TRUE(t1.ok()) << t1.status().ToString();
    t1_ = *t1;
    ASSERT_OK(db_->CreateIndex("T1_c1", "T1", std::vector<int>{kC1}, true)
                  .status());
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t_));
    ASSERT_OK(stats_.BuildAll(db_->disk(), *t1_));
  }

  JoinQuery MakeQuery(int ci, int64_t outer_limit) {
    JoinQuery q;
    q.outer_table = t1_;
    q.outer_pred.Add(PredicateAtom::Int64(kC1, CmpOp::kLt, outer_limit));
    q.outer_col = ci;
    q.inner_table = t_;
    q.inner_col = ci;
    q.count_star = true;
    q.inner_count_col = kPadding;
    return q;
  }

  int64_t RunPlan(const JoinPlan& plan, const JoinQuery& q,
                  bool monitored, std::vector<MonitorRecord>* records) {
    EXPECT_OK(db_->ColdCache());
    ExecContext ctx(db_->buffer_pool());
    PlanMonitorHooks hooks;
    if (monitored) {
      MonitorManager mm(db_.get());
      auto ih = mm.ForJoin(plan, q, &ctx);
      EXPECT_TRUE(ih.ok()) << ih.status().ToString();
      hooks = std::move(ih->hooks);
    }
    auto root = BuildJoinExec(plan, q, hooks);
    EXPECT_TRUE(root.ok()) << root.status().ToString();
    auto result = ExecutePlan(root->get(), &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (records != nullptr) *records = result->stats.monitors;
    EXPECT_EQ(result->output.size(), 1u);
    return result->output[0][0].AsInt64();
  }

  std::unique_ptr<Database> db_;
  Table* t_ = nullptr;
  Table* t1_ = nullptr;
  StatisticsCatalog stats_;
};

TEST_F(JoinTest, AllJoinMethodsAgreeOnCount) {
  // C1 < 501 selects 500 outer rows; C3 values of those rows are unique in
  // T, so the join yields exactly 500 rows.
  JoinQuery q = MakeQuery(kC3, 501);
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPlan> plans,
                       opt.EnumerateJoinPlans(q));
  ASSERT_GE(plans.size(), 3u);
  for (const JoinPlan& plan : plans) {
    EXPECT_EQ(RunPlan(plan, q, false, nullptr), 500) << plan.Describe();
  }
}

TEST_F(JoinTest, HashJoinBitvectorCountsInnerPages) {
  // Exact DPC(T, join-pred): T rows with C2 in {1..500} = first 500 rows,
  // contiguous => ceil(500 / rows_per_page) pages.
  JoinQuery q = MakeQuery(kC2, 501);
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPlan> plans,
                       opt.EnumerateJoinPlans(q));
  const JoinPlan* hash = nullptr;
  for (const JoinPlan& p : plans) {
    if (p.method == JoinMethod::kHashJoin) hash = &p;
  }
  ASSERT_NE(hash, nullptr);

  std::vector<MonitorRecord> records;
  EXPECT_EQ(RunPlan(*hash, q, true, &records), 500);
  const double expected_pages =
      std::ceil(500.0 / t_->rows_per_page());
  bool found = false;
  for (const MonitorRecord& m : records) {
    if (m.label == JoinPredKey(*t1_, kC2, *t_, kC2)) {
      found = true;
      // DPSample at f=0.01 on ~7 true pages has high variance per page,
      // but with the default full-sample fallback for few pages we accept
      // a broad band; what matters is the order of magnitude vs Yao's
      // ~200-page estimate.
      EXPECT_LT(m.actual_dpc, expected_pages * 60);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(JoinTest, InlJoinLinearCountingIsAccurate) {
  JoinQuery q = MakeQuery(kC5, 2001);  // 2000 scattered inner pages-ish
  // Force an INL plan regardless of cost.
  OptimizerHints hints;
  Optimizer opt(db_.get(), &stats_, &hints);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPlan> plans,
                       opt.EnumerateJoinPlans(q));
  const JoinPlan* inl = nullptr;
  for (const JoinPlan& p : plans) {
    if (p.method == JoinMethod::kIndexNestedLoops) inl = &p;
  }
  ASSERT_NE(inl, nullptr);

  std::vector<MonitorRecord> records;
  EXPECT_EQ(RunPlan(*inl, q, true, &records), 2000);

  // Ground truth: distinct T pages holding a row whose C5 value appears
  // among the filtered T1 rows' C5 values — by brute-force raw walk.
  std::set<int64_t> keys;
  {
    const HeapFile* f1 = t1_->file();
    for (PageNo p = 0; p < f1->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{f1->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(f1->RowInPage(page, s), &t1_->schema());
        if (row.GetInt64(kC1) < 2001) keys.insert(row.GetInt64(kC5));
      }
    }
  }
  std::set<PageNo> pages;
  {
    const HeapFile* f = t_->file();
    for (PageNo p = 0; p < f->page_count(); ++p) {
      const char* page = db_->disk()->RawPage(PageId{f->segment(), p});
      for (uint16_t s = 0; s < HeapFile::PageRowCount(page); ++s) {
        RowView row(f->RowInPage(page, s), &t_->schema());
        if (keys.count(row.GetInt64(kC5)) != 0) pages.insert(p);
      }
    }
  }
  const double truth = static_cast<double>(pages.size());
  bool found = false;
  for (const MonitorRecord& m : records) {
    if (m.label == JoinPredKey(*t1_, kC5, *t_, kC5)) {
      found = true;
      EXPECT_NEAR(m.actual_dpc, truth, 0.1 * truth)
          << "linear counting should be within 10%";
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(JoinTest, FeedbackFlipsHashJoinToInl) {
  // Correlated join column (C2), 2% outer selectivity: the true inner DPC
  // is tiny, Yao thinks it is huge, so the optimizer starts with Hash Join
  // and feedback should flip it to INL.
  JoinQuery q = MakeQuery(kC2, 401);
  FeedbackDriver driver(db_.get(), &stats_, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome, driver.RunJoin(q));
  EXPECT_NE(outcome.plan_before.find("HashJoin"), std::string::npos)
      << outcome.plan_before;
  EXPECT_NE(outcome.plan_after.find("IndexNestedLoops"), std::string::npos)
      << outcome.plan_after;
  EXPECT_GT(outcome.speedup, 0.3);
  EXPECT_LT(outcome.monitor_overhead, 0.05);
}

TEST_F(JoinTest, UncorrelatedJoinKeepsHashJoin) {
  JoinQuery q = MakeQuery(kC5, 2001);
  FeedbackDriver driver(db_.get(), &stats_, {});
  ASSERT_OK_AND_ASSIGN(FeedbackOutcome outcome, driver.RunJoin(q));
  EXPECT_NE(outcome.plan_before.find("HashJoin"), std::string::npos);
  EXPECT_NEAR(outcome.speedup, 0.0, 0.05);
}

}  // namespace
}  // namespace dpcf
