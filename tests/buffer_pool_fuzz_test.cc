// Buffer-pool model check: a random access pattern against a reference LRU
// simulation must produce identical hit/miss behaviour — per shard, for 1,
// 2 and 8 shards (1 shard must match the historical monolithic pool move
// for move) — and random pin/unpin interleavings must never corrupt
// accounting.

#include <list>
#include <tuple>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

/// Reference model: plain LRU over page numbers (no pinning).
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}

  // Returns true on hit.
  bool Touch(PageNo p) {
    auto it = pos_.find(p);
    if (it != pos_.end()) {
      order_.erase(it->second);
      order_.push_front(p);
      pos_[p] = order_.begin();
      return true;
    }
    if (order_.size() == capacity_) {
      pos_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(p);
    pos_[p] = order_.begin();
    return false;
  }

 private:
  size_t capacity_;
  std::list<PageNo> order_;
  std::unordered_map<PageNo, std::list<PageNo>::iterator> pos_;
};

/// Params: (rng seed, shard count).
class BufferPoolFuzz
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {
 protected:
  int seed() const { return std::get<0>(GetParam()); }
  size_t shards() const { return std::get<1>(GetParam()); }
};

TEST_P(BufferPoolFuzz, MatchesReferenceLruWithoutPins) {
  DiskManager disk(256);
  SegmentId seg = disk.CreateSegment("t");
  const PageNo kPages = 64;
  for (PageNo p = 0; p < kPages; ++p) disk.AllocatePage(seg);
  const size_t kCapacity = 8;
  BufferPool pool(&disk, kCapacity, BufferPoolOptions{shards()});
  ASSERT_EQ(pool.num_shards(), shards());
  // One reference LRU per shard, sized from the pool's own split, indexed
  // through the pool's own page-to-shard map: with 1 shard this is exactly
  // the historical monolithic model.
  std::vector<ReferenceLru> reference;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    reference.emplace_back(pool.shard_capacity(s));
  }

  Rng rng(static_cast<uint64_t>(seed()) * 31 + 1);
  for (int step = 0; step < 5000; ++step) {
    // Zipf-flavoured skew keeps hot pages hot.
    PageNo p = static_cast<PageNo>(rng.NextBounded(kPages));
    if (rng.NextBernoulli(0.5)) p %= 8;
    int64_t phys_before = disk.io_stats()->physical_reads();
    {
      auto g = pool.Fetch(PageId{seg, p});
      ASSERT_TRUE(g.ok());
    }
    bool pool_hit = disk.io_stats()->physical_reads() == phys_before;
    bool model_hit = reference[pool.shard_index(PageId{seg, p})].Touch(p);
    ASSERT_EQ(pool_hit, model_hit) << "step " << step << " page " << p;
  }
}

TEST_P(BufferPoolFuzz, RandomPinsNeverBreakAccounting) {
  DiskManager disk(256);
  SegmentId seg = disk.CreateSegment("t");
  for (PageNo p = 0; p < 32; ++p) disk.AllocatePage(seg);
  BufferPool pool(&disk, 8, BufferPoolOptions{shards()});
  Rng rng(static_cast<uint64_t>(seed()) * 97 + 5);
  std::vector<PageGuard> pins;

  for (int step = 0; step < 3000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.55 || pins.empty()) {
      // Try a fetch; it may fail only when every frame of the page's
      // shard is pinned (with 8 shards over 8 frames that is a single
      // pin, so exhaustion is routine here — the invariant must hold
      // through it, and a failed fetch must charge nothing).
      auto g = pool.Fetch(
          PageId{seg, static_cast<PageNo>(rng.NextBounded(32))});
      if (g.ok()) {
        if (rng.NextBernoulli(0.5) && pins.size() < 7) {
          pins.push_back(std::move(g).value());
        }
      } else {
        ASSERT_EQ(g.status().code(), StatusCode::kResourceExhausted);
        ASSERT_GE(pins.size(), 1u);
      }
    } else {
      size_t victim = rng.NextBounded(pins.size());
      pins.erase(pins.begin() + static_cast<long>(victim));
    }
    const IoStats& io = *disk.io_stats();
    ASSERT_EQ(io.logical_reads, io.buffer_hits + io.physical_reads());
    ASSERT_LE(pool.cached_pages(), pool.capacity());
  }
  pins.clear();
  EXPECT_OK(pool.ColdReset());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShards, BufferPoolFuzz,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{8})));

class BtreeDeleteFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BtreeDeleteFuzz, RandomInsertDeleteKeepsInvariantsAndContents) {
  DiskManager disk(512);
  BufferPool pool(&disk, 256);
  auto tree_r = Btree::Create(&pool, "t");
  ASSERT_TRUE(tree_r.ok());
  Btree tree = std::move(tree_r).value();

  std::set<std::pair<int64_t, uint64_t>> model;
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  for (int step = 0; step < 4000; ++step) {
    if (rng.NextBernoulli(0.65) || model.empty()) {
      int64_t k = rng.NextInt(0, 300);
      uint64_t aux = rng.NextBounded(50);
      Status st = tree.Insert({{k, 0}, aux});
      bool fresh = model.insert({k, aux}).second;
      ASSERT_EQ(st.ok(), fresh) << st.ToString();
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
      ASSERT_OK(tree.Delete({{it->first, 0}, it->second}));
      model.erase(it);
    }
  }
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.entry_count(), static_cast<int64_t>(model.size()));

  // Full iteration equals the model.
  auto it = tree.Begin();
  ASSERT_TRUE(it.ok());
  auto mit = model.begin();
  while (it->Valid()) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key().k1, mit->first);
    EXPECT_EQ(it->aux(), mit->second);
    ++mit;
    ASSERT_OK(it->Next());
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeDeleteFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace dpcf
