// MonitorRecord error factors and the statistics-xml rendering: the edge
// cases the diagnosis layer depends on (no estimate, empty results, XML
// escaping, optional estimate attributes).

#include <string>

#include <gtest/gtest.h>

#include "core/run_statistics.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

MonitorRecord Rec(double actual_dpc, double est_dpc, double actual_card = 0,
                  double est_card = -1) {
  MonitorRecord r;
  r.table = "T";
  r.label = "k";
  r.expr_text = "C1<10";
  r.mechanism = "prefix-exact";
  r.actual_dpc = actual_dpc;
  r.estimated_dpc = est_dpc;
  r.actual_cardinality = actual_card;
  r.estimated_cardinality = est_card;
  return r;
}

TEST(DpcErrorFactorTest, NoEstimateIsZero) {
  // -1 is the "no estimate attached" sentinel, not an estimate of -1.
  EXPECT_EQ(Rec(100, -1).DpcErrorFactor(), 0);
  EXPECT_EQ(Rec(100, 50, 10, -1).CardinalityErrorFactor(), 0);
}

TEST(DpcErrorFactorTest, SymmetricRatio) {
  // Over- and under-estimation by the same ratio give the same factor.
  EXPECT_DOUBLE_EQ(Rec(100, 400).DpcErrorFactor(), 4.0);
  EXPECT_DOUBLE_EQ(Rec(400, 100).DpcErrorFactor(), 4.0);
  EXPECT_DOUBLE_EQ(Rec(123, 123).DpcErrorFactor(), 1.0);
}

TEST(DpcErrorFactorTest, ZeroActualClampsToOnePage) {
  // An empty result (0 actual pages) must not produce an infinite factor;
  // both sides clamp to >= 1 page.
  EXPECT_DOUBLE_EQ(Rec(0, 8).DpcErrorFactor(), 8.0);
  EXPECT_DOUBLE_EQ(Rec(0, 0).DpcErrorFactor(), 1.0);
  EXPECT_DOUBLE_EQ(Rec(8, 0).DpcErrorFactor(), 8.0);
  // Sub-page fractional estimates (sampling can produce them) clamp too.
  EXPECT_DOUBLE_EQ(Rec(0.25, 0.5).DpcErrorFactor(), 1.0);
}

TEST(CardinalityErrorFactorTest, MirrorsDpcSemantics) {
  EXPECT_DOUBLE_EQ(Rec(0, -1, 0, 0).CardinalityErrorFactor(), 1.0);
  EXPECT_DOUBLE_EQ(Rec(0, -1, 10, 1000).CardinalityErrorFactor(), 100.0);
  EXPECT_DOUBLE_EQ(Rec(0, -1, 1000, 10).CardinalityErrorFactor(), 100.0);
}

TEST(RunStatisticsToXmlTest, RendersCountersAndMonitors) {
  RunStatistics stats;
  stats.plan_text = "TableScan(T, C1<10)";
  stats.rows_returned = 42;
  stats.io.logical_reads += 100;
  stats.io.buffer_hits += 60;
  stats.io.physical_seq_reads += 30;
  stats.io.physical_rand_reads += 10;
  stats.cpu.rows_processed = 2000;
  stats.simulated_ms = 12.5;
  stats.monitors.push_back(Rec(493, 500, 3103, 3103));

  const std::string xml = stats.ToXml();
  EXPECT_NE(xml.find("<Plan rows=\"42\">TableScan(T, C1&lt;10)</Plan>"),
            std::string::npos)
      << xml;
  EXPECT_NE(xml.find("<Io logical=\"100\" physicalSeq=\"30\" "
                     "physicalRand=\"10\" hits=\"60\"/>"),
            std::string::npos)
      << xml;
  EXPECT_NE(xml.find("mechanism=\"prefix-exact\""), std::string::npos);
  EXPECT_NE(xml.find("actualDpc=\"493.0\""), std::string::npos) << xml;
  EXPECT_NE(xml.find("estimatedDpc=\"500.0\""), std::string::npos) << xml;
  EXPECT_NE(xml.find("estimatedCard=\"3103.0\""), std::string::npos) << xml;
}

TEST(RunStatisticsToXmlTest, OmitsAbsentEstimates) {
  // A record the diagnosis layer never touched renders without the
  // estimated* attributes rather than with the -1 sentinel.
  RunStatistics stats;
  stats.monitors.push_back(Rec(493, -1));
  const std::string xml = stats.ToXml();
  EXPECT_EQ(xml.find("estimatedDpc"), std::string::npos) << xml;
  EXPECT_EQ(xml.find("estimatedCard"), std::string::npos) << xml;
  EXPECT_NE(xml.find("actualDpc=\"493.0\""), std::string::npos) << xml;
}

TEST(RunStatisticsToXmlTest, EscapesMarkupInExpressionText) {
  RunStatistics stats;
  MonitorRecord r = Rec(1, -1);
  r.expr_text = "C1<10 & C2>\"x\"";
  stats.monitors.push_back(r);
  const std::string xml = stats.ToXml();
  EXPECT_NE(xml.find("C1&lt;10 &amp; C2&gt;&quot;x&quot;"),
            std::string::npos)
      << xml;
}

}  // namespace
}  // namespace dpcf
