// Unit tests for storage/: disk manager I/O classification, buffer pool
// (LRU, pinning, dirty write-back, cold reset), simulated cost model.

#include <cstring>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dpcf {
namespace {

TEST(DiskManagerTest, SegmentsAndAllocation) {
  DiskManager disk(512);
  SegmentId a = disk.CreateSegment("a");
  SegmentId b = disk.CreateSegment("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(disk.SegmentName(a), "a");
  EXPECT_EQ(disk.SegmentPageCount(a), 0u);
  EXPECT_EQ(disk.AllocatePage(a), 0u);
  EXPECT_EQ(disk.AllocatePage(a), 1u);
  EXPECT_EQ(disk.AllocatePage(b), 0u);
  EXPECT_EQ(disk.SegmentPageCount(a), 2u);
}

TEST(DiskManagerTest, ReadWriteRoundtrip) {
  DiskManager disk(256);
  SegmentId seg = disk.CreateSegment("t");
  disk.AllocatePage(seg);
  std::vector<char> out(256), in(256, 0x5A);
  ASSERT_OK(disk.WritePage(PageId{seg, 0}, in.data()));
  ASSERT_OK(disk.ReadPage(PageId{seg, 0}, out.data()));
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 256), 0);
}

TEST(DiskManagerTest, RejectsUnknownPages) {
  DiskManager disk(256);
  std::vector<char> buf(256);
  EXPECT_EQ(disk.ReadPage(PageId{0, 0}, buf.data()).code(),
            StatusCode::kOutOfRange);
  SegmentId seg = disk.CreateSegment("t");
  EXPECT_EQ(disk.WritePage(PageId{seg, 3}, buf.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(DiskManagerTest, SequentialVsRandomClassification) {
  DiskManager disk(256);
  SegmentId seg = disk.CreateSegment("t");
  for (int i = 0; i < 10; ++i) disk.AllocatePage(seg);
  std::vector<char> buf(256);
  // First read: random (head position unknown).
  ASSERT_OK(disk.ReadPage(PageId{seg, 0}, buf.data()));
  // 1..4: each follows its predecessor => sequential.
  for (PageNo p = 1; p <= 4; ++p) {
    ASSERT_OK(disk.ReadPage(PageId{seg, p}, buf.data()));
  }
  // Jump: random, then a new sequential run.
  ASSERT_OK(disk.ReadPage(PageId{seg, 8}, buf.data()));
  ASSERT_OK(disk.ReadPage(PageId{seg, 9}, buf.data()));
  const IoStats& io = *disk.io_stats();
  EXPECT_EQ(io.physical_rand_reads, 2);
  EXPECT_EQ(io.physical_seq_reads, 5);
}

TEST(DiskManagerTest, CrossSegmentReadIsRandom) {
  DiskManager disk(256);
  SegmentId a = disk.CreateSegment("a");
  SegmentId b = disk.CreateSegment("b");
  disk.AllocatePage(a);
  disk.AllocatePage(a);
  disk.AllocatePage(b);
  std::vector<char> buf(256);
  ASSERT_OK(disk.ReadPage(PageId{a, 0}, buf.data()));
  ASSERT_OK(disk.ReadPage(PageId{b, 0}, buf.data()));  // random: new segment
  ASSERT_OK(disk.ReadPage(PageId{a, 1}, buf.data()));  // random: jumped away
  EXPECT_EQ(disk.io_stats()->physical_rand_reads, 3);
  EXPECT_EQ(disk.io_stats()->physical_seq_reads, 0);
}

TEST(DiskManagerTest, ResetReadHeadMakesNextReadRandom) {
  DiskManager disk(256);
  SegmentId seg = disk.CreateSegment("t");
  disk.AllocatePage(seg);
  disk.AllocatePage(seg);
  std::vector<char> buf(256);
  ASSERT_OK(disk.ReadPage(PageId{seg, 0}, buf.data()));
  disk.ResetReadHead();
  ASSERT_OK(disk.ReadPage(PageId{seg, 1}, buf.data()));  // would be seq
  EXPECT_EQ(disk.io_stats()->physical_rand_reads, 2);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(256), pool_(&disk_, 4) {
    seg_ = disk_.CreateSegment("t");
    for (int i = 0; i < 16; ++i) disk_.AllocatePage(seg_);
  }
  DiskManager disk_;
  BufferPool pool_;
  SegmentId seg_;
};

TEST_F(BufferPoolTest, HitAvoidsPhysicalRead) {
  {
    auto g = pool_.Fetch(PageId{seg_, 0});
    ASSERT_TRUE(g.ok());
  }
  int64_t before = disk_.io_stats()->physical_reads();
  {
    auto g = pool_.Fetch(PageId{seg_, 0});
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(disk_.io_stats()->physical_reads(), before);
  EXPECT_EQ(disk_.io_stats()->buffer_hits, 1);
  EXPECT_EQ(disk_.io_stats()->logical_reads, 2);
}

TEST_F(BufferPoolTest, LruEvictsOldestUnpinned) {
  for (PageNo p = 0; p < 4; ++p) {
    auto g = pool_.Fetch(PageId{seg_, p});
    ASSERT_TRUE(g.ok());
  }
  // Touch page 0 so page 1 is the LRU victim.
  { auto g = pool_.Fetch(PageId{seg_, 0}); ASSERT_TRUE(g.ok()); }
  { auto g = pool_.Fetch(PageId{seg_, 9}); ASSERT_TRUE(g.ok()); }  // evicts 1
  int64_t before = disk_.io_stats()->physical_reads();
  { auto g = pool_.Fetch(PageId{seg_, 0}); ASSERT_TRUE(g.ok()); }  // hit
  EXPECT_EQ(disk_.io_stats()->physical_reads(), before);
  { auto g = pool_.Fetch(PageId{seg_, 1}); ASSERT_TRUE(g.ok()); }  // miss
  EXPECT_EQ(disk_.io_stats()->physical_reads(), before + 1);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  std::vector<PageGuard> pins;
  for (PageNo p = 0; p < 4; ++p) {
    auto g = pool_.Fetch(PageId{seg_, p});
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(g).value());
  }
  auto g = pool_.Fetch(PageId{seg_, 10});
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
  pins.clear();
  EXPECT_TRUE(pool_.Fetch(PageId{seg_, 10}).ok());
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  {
    auto g = pool_.Fetch(PageId{seg_, 0});
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 'Z';
  }
  // Evict page 0 by filling the pool.
  for (PageNo p = 1; p <= 4; ++p) {
    auto g = pool_.Fetch(PageId{seg_, p});
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(disk_.RawPage(PageId{seg_, 0})[0], 'Z');
  EXPECT_GE(disk_.io_stats()->physical_writes, 1);
}

TEST_F(BufferPoolTest, NewPageAllocatesZeroedAndDirty) {
  PageId pid;
  {
    auto g = pool_.NewPage(seg_, &pid);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(pid.page_no, 16u);
    EXPECT_EQ((*g).data()[37], 0);
    g->mutable_data()[5] = 'Q';
  }
  ASSERT_OK(pool_.FlushAll());
  EXPECT_EQ(disk_.RawPage(pid)[5], 'Q');
}

TEST_F(BufferPoolTest, ColdResetEmptiesPool) {
  { auto g = pool_.Fetch(PageId{seg_, 2}); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool_.cached_pages(), 1u);
  ASSERT_OK(pool_.ColdReset());
  EXPECT_EQ(pool_.cached_pages(), 0u);
  int64_t before = disk_.io_stats()->physical_reads();
  { auto g = pool_.Fetch(PageId{seg_, 2}); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(disk_.io_stats()->physical_reads(), before + 1);
}

TEST_F(BufferPoolTest, ColdResetRefusesPinnedPages) {
  auto g = pool_.Fetch(PageId{seg_, 2});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(pool_.ColdReset().ok());
  g->Release();
  EXPECT_OK(pool_.ColdReset());
}

TEST_F(BufferPoolTest, GuardMoveTransfersPin) {
  auto g1 = pool_.Fetch(PageId{seg_, 3});
  ASSERT_TRUE(g1.ok());
  PageGuard g2 = std::move(g1).value();
  EXPECT_TRUE(g2.valid());
  PageGuard g3 = std::move(g2);
  EXPECT_FALSE(g2.valid());
  EXPECT_TRUE(g3.valid());
  g3.Release();
  EXPECT_OK(pool_.ColdReset());  // nothing pinned anymore
}

TEST(SimCostTest, TimeIsLinearInCounters) {
  SimCostParams p;
  IoStats io;
  CpuStats cpu;
  EXPECT_EQ(SimulatedMillis(io, cpu, p), 0.0);
  io.physical_seq_reads = 10;
  double t1 = SimulatedMillis(io, cpu, p);
  EXPECT_DOUBLE_EQ(t1, 10 * p.seq_read_ms);
  io.physical_rand_reads = 3;
  cpu.rows_processed = 1000;
  double t2 = SimulatedMillis(io, cpu, p);
  EXPECT_DOUBLE_EQ(t2, 10 * p.seq_read_ms + 3 * p.rand_read_ms +
                           1000 * p.cpu_row_ms);
}

TEST(SimCostTest, RandomCostsMoreThanSequential) {
  SimCostParams p;
  EXPECT_GT(p.rand_read_ms, p.seq_read_ms);
}

TEST(IoStatsTest, AccumulateAndReset) {
  IoStats a, b;
  a.physical_seq_reads = 1;
  b.physical_seq_reads = 2;
  b.logical_reads = 5;
  a += b;
  EXPECT_EQ(a.physical_seq_reads, 3);
  EXPECT_EQ(a.logical_reads, 5);
  a.Reset();
  EXPECT_EQ(a.physical_seq_reads, 0);
  EXPECT_NE(a.ToString().find("IoStats"), std::string::npos);
}

}  // namespace
}  // namespace dpcf
